// bitlevel-design — the library as a command-line tool.
//
// Usage:
//   bitlevel-design --kernel matmul --u 3 --p 4 --expansion II
//                   --action structure|verify|design|simulate [--json]
//
// Kernels come from the ir::kernels registry; --list-kernels prints
// them with their parameters. Actions:
//   structure — compose and print the bit-level dependence structure
//   verify    — empirically prove Theorem 3.1 for this instance
//   design    — explore space mappings + schedules, print ranked designs
//   simulate  — explore, pick the best design, run it cycle-accurately
//               on seeded random operands and check the results
//   batch     — run --batch independent seeded problems over ONE cached
//               plan; --sliced on|off|auto picks the 64-lane bit-sliced
//               fast path or the scalar reference, and the JSON reports
//               sliced-vs-scalar counters
//   optimal   — LP-certify the fastest explored schedule (or refute it)
//   animate   — ASCII space-time snapshots of the best design running
//   fault-campaign — sweep seeded fault kind x rate over the design and
//               report detection / recovery / degradation per cell
//               (--fault-kind, --fault-rate, --spares, --retries)
// --json switches the output to a machine-readable document (every
// document carries the process-wide plan-cache hit/miss counters);
// --memory streaming bounds simulator memory by the dependence window.
//
// Server mode: --serve --listen unix:/path|tcp:port runs a long-lived
// design-service daemon speaking newline-delimited JSON (see
// src/serve/protocol.hpp); --connect SPEC sends ONE request built from
// the same action flags and prints the result document, and --connect
// with --script FILE streams raw request lines in lockstep.
//
// Every action goes through the design pipeline (pipeline::compose via
// the global plan cache), so repeated compositions of the same request
// key within one process expand and map exactly once — and in server
// mode every client shares that one cache.
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/verify.hpp"
#include "core/workload.hpp"
#include "faults/model.hpp"
#include "ir/kernels.hpp"
#include "mapping/optimality.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/tiling.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/timeline.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

using namespace bitlevel;

namespace {

const char* const kActions[] = {"structure", "verify",  "design",         "simulate", "batch",
                                "tiled",     "optimal", "animate",        "fault-campaign"};

std::string allowed_actions() {
  std::string names;
  for (const char* a : kActions) {
    if (!names.empty()) names += ", ";
    names += a;
  }
  return names;
}

struct Args {
  std::string kernel = "matmul";
  std::string action = "structure";
  math::Int u = 3, v = 3, w = 3, p = 4;
  core::Expansion expansion = core::Expansion::kII;
  bool json = false;
  bool list_kernels = false;
  std::uint64_t seed = 1;
  int threads = 0;  // 0 = BITLEVEL_THREADS / hardware, 1 = serial
  sim::MemoryMode memory = sim::MemoryMode::kDense;
  // batch knobs.
  math::Int batch = 8;  // independent problems per --action batch
  pipeline::SlicedMode sliced = pipeline::SlicedMode::kAuto;
  pipeline::SlicedMode compiled = pipeline::SlicedMode::kAuto;
  int lanes = 0;  // 0 = auto (256 when compiled); else 64/128/256/512
  // tiled knobs (--tile TM[,TN[,TK]] and/or --max-pes BUDGET).
  pipeline::TileOptions tile;
  // fault-campaign knobs.
  std::vector<faults::FaultKind> fault_kinds;  // empty = every kind
  std::vector<double> fault_rates;             // empty = campaign default
  int spares = 2;
  int retries = 2;
  // server / client mode.
  bool serve = false;
  std::string listen = "unix:/tmp/bitlevel-design.sock";
  std::string connect;  // nonempty = client mode against a daemon
  std::string script;   // with --connect: raw request lines ("-" = stdin)
  int workers = 4;
  int queue = 64;
  // resilience knobs. --deadline-ms is triple-duty: a budget on a
  // one-shot run, the request's deadline_ms member with --connect, and
  // the server-wide default with --serve. --retries doubles as the
  // client retry bound in --connect mode (it still rides into the
  // request's fault-campaign knob).
  std::int64_t deadline_ms = 0;      // 0 = none
  std::int64_t max_deadline_ms = 0;  // --serve: hard cap (0 = uncapped)
  std::int64_t idle_timeout_ms = -1; // --serve: reap idle connections (-1 = never)
  std::int64_t backoff_ms = 100;     // --connect: retry backoff base
  // --serve: lane coalescing (see serve/coalesce.hpp). 0 disables.
  std::int64_t coalesce_window_us = 250;
  int coalesce_max = 512;            // combined items per group
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: bitlevel-design [--list-kernels] [--kernel NAME]\n"
               "                       [--u N] [--v N] [--w N] [--p BITS] [--expansion I|II]\n"
               "                       [--action structure|verify|design|simulate|batch|tiled|"
               "optimal|animate|fault-campaign]\n"
               "                       [--json] [--memory dense|streaming] [--seed N] "
               "[--threads N]\n"
               "                       [--batch N] [--sliced on|off|auto] "
               "[--compiled on|off|auto]\n"
               "                       [--lanes 0|64|128|256|512]\n"
               "                       [--tile TM[,TN[,TK]]] [--max-pes BUDGET]\n"
               "                       [--fault-kind all|NAME[,NAME...]] "
               "[--fault-rate R[,R...]]\n"
               "                       [--spares N] [--retries N] [--deadline-ms MS]\n"
               "       bitlevel-design --serve [--listen unix:PATH|tcp:PORT] "
               "[--workers N] [--queue N]\n"
               "                       [--deadline-ms MS] [--max-deadline-ms MS] "
               "[--idle-timeout-ms MS]\n"
               "                       [--coalesce-window-us US] [--coalesce-max N]\n"
               "       bitlevel-design --connect unix:PATH|tcp:PORT "
               "[--script FILE|-] [action flags]\n"
               "                       [--deadline-ms MS] [--retries N] [--backoff-ms MS]\n"
               "kernels: %s\n",
               ir::kernels::registered_names().c_str());
  std::exit(2);
}

/// Strict base-10 integer parsing: the whole token must be a number in
/// [lo, hi]. Rejects what atoll silently accepted — garbage ("--p abc"
/// became 0), trailing junk, overflow, and out-of-range sizes that
/// crashed deep inside the library.
math::Int parse_int(const std::string& flag, const char* text, math::Int lo, math::Int hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    usage((flag + " expects an integer, got '" + text + "'").c_str());
  }
  if (v < lo || v > hi) {
    usage((flag + " must be in [" + std::to_string(lo) + ", " + std::to_string(hi) + "], got " +
           text)
              .c_str());
  }
  return static_cast<math::Int>(v);
}

/// Strict probability parsing: the whole token must be a number in
/// [0, 1].
double parse_rate(const std::string& flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v >= 0.0 && v <= 1.0)) {
    usage((flag + " expects a number in [0, 1], got '" + text + "'").c_str());
  }
  return v;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t comma = text.find(',', at);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    parts.push_back(text.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return parts;
}

std::uint64_t parse_seed(const std::string& flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  // strtoull wraps negatives silently; ban the sign outright.
  if (end == text || *end != '\0' || errno == ERANGE || std::strchr(text, '-') != nullptr) {
    usage((flag + " expects a nonnegative integer, got '" + text + "'").c_str());
  }
  return static_cast<std::uint64_t>(v);
}

Args parse(int argc, char** argv) {
  Args args;
  constexpr math::Int kMaxExtent = 1'000'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--kernel") {
      args.kernel = next();
    } else if (flag == "--action") {
      args.action = next();
    } else if (flag == "--list-kernels") {
      args.list_kernels = true;
    } else if (flag == "--u") {
      args.u = parse_int(flag, next(), 1, kMaxExtent);
    } else if (flag == "--v") {
      args.v = parse_int(flag, next(), 1, kMaxExtent);
    } else if (flag == "--w") {
      args.w = parse_int(flag, next(), 1, kMaxExtent);
    } else if (flag == "--p") {
      args.p = parse_int(flag, next(), 1, 63);
    } else if (flag == "--seed") {
      args.seed = parse_seed(flag, next());
    } else if (flag == "--threads") {
      args.threads = static_cast<int>(parse_int(flag, next(), 0, 4096));
    } else if (flag == "--batch") {
      args.batch = parse_int(flag, next(), 1, 1'000'000);
    } else if (flag == "--sliced") {
      const std::string mode = next();
      if (mode == "on") {
        args.sliced = pipeline::SlicedMode::kOn;
      } else if (mode == "off") {
        args.sliced = pipeline::SlicedMode::kOff;
      } else if (mode == "auto") {
        args.sliced = pipeline::SlicedMode::kAuto;
      } else {
        usage("sliced must be on, off or auto");
      }
    } else if (flag == "--compiled") {
      const std::string mode = next();
      if (mode == "on") {
        args.compiled = pipeline::SlicedMode::kOn;
      } else if (mode == "off") {
        args.compiled = pipeline::SlicedMode::kOff;
      } else if (mode == "auto") {
        args.compiled = pipeline::SlicedMode::kAuto;
      } else {
        usage("compiled must be on, off or auto");
      }
    } else if (flag == "--lanes") {
      const math::Int lanes = parse_int(flag, next(), 0, 512);
      if (lanes != 0 && lanes != 64 && lanes != 128 && lanes != 256 && lanes != 512) {
        usage("lanes must be 0 (auto), 64, 128, 256 or 512");
      }
      args.lanes = static_cast<int>(lanes);
    } else if (flag == "--tile") {
      // TM alone tiles both space dimensions; TN and TK are optional
      // (unset tile_k spans the full k extent — no inter-tile
      // accumulation). 0 is rejected by the parse range.
      const std::vector<std::string> dims = split_commas(next());
      if (dims.empty() || dims.size() > 3) {
        usage("--tile expects TM[,TN[,TK]]");
      }
      args.tile.tile_m = parse_int(flag, dims[0].c_str(), 1, kMaxExtent);
      args.tile.tile_n =
          dims.size() >= 2 ? parse_int(flag, dims[1].c_str(), 1, kMaxExtent) : args.tile.tile_m;
      if (dims.size() >= 3) args.tile.tile_k = parse_int(flag, dims[2].c_str(), 1, kMaxExtent);
    } else if (flag == "--max-pes") {
      args.tile.max_pes = parse_int(flag, next(), 1, std::numeric_limits<math::Int>::max());
    } else if (flag == "--fault-kind") {
      const std::string kinds = next();
      if (kinds == "all") {
        args.fault_kinds.clear();
      } else {
        for (const std::string& name : split_commas(kinds)) {
          try {
            args.fault_kinds.push_back(faults::parse_fault_kind(name));
          } catch (const bitlevel::Error& e) {
            usage(e.what());
          }
        }
      }
    } else if (flag == "--fault-rate") {
      for (const std::string& rate : split_commas(next())) {
        args.fault_rates.push_back(parse_rate(flag, rate.c_str()));
      }
    } else if (flag == "--spares") {
      args.spares = static_cast<int>(parse_int(flag, next(), 0, 1'000'000));
    } else if (flag == "--retries") {
      args.retries = static_cast<int>(parse_int(flag, next(), 0, 1000));
    } else if (flag == "--memory") {
      const std::string m = next();
      if (m == "dense") {
        args.memory = sim::MemoryMode::kDense;
      } else if (m == "streaming") {
        args.memory = sim::MemoryMode::kStreaming;
      } else {
        usage("memory must be dense or streaming");
      }
    } else if (flag == "--expansion") {
      const std::string e = next();
      if (e == "I" || e == "1") {
        args.expansion = core::Expansion::kI;
      } else if (e == "II" || e == "2") {
        args.expansion = core::Expansion::kII;
      } else {
        usage("expansion must be I or II");
      }
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--serve") {
      args.serve = true;
    } else if (flag == "--listen") {
      args.listen = next();
    } else if (flag == "--connect") {
      args.connect = next();
    } else if (flag == "--script") {
      args.script = next();
    } else if (flag == "--workers") {
      args.workers = static_cast<int>(parse_int(flag, next(), 1, 1024));
    } else if (flag == "--queue") {
      args.queue = static_cast<int>(parse_int(flag, next(), 1, 1'000'000));
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = parse_int(flag, next(), 0, 86'400'000);
    } else if (flag == "--max-deadline-ms") {
      args.max_deadline_ms = parse_int(flag, next(), 0, 86'400'000);
    } else if (flag == "--idle-timeout-ms") {
      args.idle_timeout_ms = parse_int(flag, next(), -1, 86'400'000);
    } else if (flag == "--coalesce-window-us") {
      args.coalesce_window_us = parse_int(flag, next(), 0, 10'000'000);
    } else if (flag == "--coalesce-max") {
      args.coalesce_max = static_cast<int>(parse_int(flag, next(), 1, 4096));
    } else if (flag == "--backoff-ms") {
      args.backoff_ms = parse_int(flag, next(), 1, 60'000);
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (args.serve && !args.connect.empty()) {
    usage("--serve and --connect are mutually exclusive");
  }
  if (!args.script.empty() && args.connect.empty()) {
    usage("--script requires --connect");
  }
  if (args.serve) return args;  // the daemon validates per request
  // Registry-backed validation at parse time: unknown names exit 2 with
  // the allowed set instead of failing deep inside the library.
  if (!args.list_kernels && ir::kernels::find_kernel(args.kernel) == nullptr) {
    usage(("unknown kernel '" + args.kernel + "' (known: " + ir::kernels::registered_names() +
           ")")
              .c_str());
  }
  // Tiling flags are parse-time-validated against the action and the
  // kernel's registry metadata; extent-dependent checks (tile dims vs
  // instance) stay in pipeline::resolve_tile_dims.
  if (args.script.empty()) {
    if (pipeline::tiling_requested(args.tile) && args.action != "tiled") {
      usage("--tile/--max-pes require --action tiled");
    }
    if (args.action == "tiled") {
      if (!pipeline::tiling_requested(args.tile)) {
        usage("--action tiled requires --tile or --max-pes");
      }
      const ir::kernels::KernelInfo* info = ir::kernels::find_kernel(args.kernel);
      if (info != nullptr && info->tile_kernel == nullptr) {
        usage(("kernel '" + args.kernel + "' is not tileable (tileable kernels: " +
               ir::kernels::tileable_names() + ")")
                  .c_str());
      }
    }
  }
  if (!args.connect.empty()) {
    // Client mode speaks the daemon protocol: the design-family actions
    // plus stats (script mode sends raw lines; any action text is fine).
    if (!args.script.empty()) return args;
    const bool remote_ok = args.action == "design" || args.action == "simulate" ||
                           args.action == "batch" || args.action == "tiled" ||
                           args.action == "fault-campaign" || args.action == "stats";
    if (!remote_ok) {
      usage(("action '" + args.action +
             "' is not served remotely (allowed with --connect: design, simulate, batch, "
             "tiled, fault-campaign, stats)")
                .c_str());
    }
    return args;
  }
  bool action_ok = false;
  for (const char* a : kActions) action_ok = action_ok || args.action == a;
  if (!action_ok) {
    usage(("unknown action '" + args.action + "' (allowed: " + allowed_actions() + ")").c_str());
  }
  return args;
}

pipeline::DesignRequest make_request(const Args& a, pipeline::MappingStrategy strategy) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{a.kernel, a.u, a.v, a.w, 0};
  request.p = a.p;
  request.expansion = a.expansion;
  request.mapping = strategy;
  request.threads = a.threads;
  request.memory = a.memory;
  return request;
}

/// Compose through the process-wide cache: one expansion + one mapping
/// search per distinct request key, shared by every action and run.
pipeline::PlanPtr plan_for(const Args& a, pipeline::MappingStrategy strategy) {
  return pipeline::global_plan_cache().get_or_compose(make_request(a, strategy));
}

void emit_plan_cache_json(JsonWriter& w) {
  const pipeline::PlanCacheStats stats = pipeline::global_plan_cache().stats();
  // Kept FLAT: the serve soak strips this object from one-shot output
  // with a regex over {...} before byte-comparing against served
  // results — a nested object would break the strip.
  w.key("plan_cache").begin_object();
  w.key("hits").value(static_cast<std::int64_t>(stats.hits));
  w.key("misses").value(static_cast<std::int64_t>(stats.misses));
  w.key("resident_bytes").value(stats.resident_bytes);
  w.end_object();
}

/// The one gate every --json path exits through: the document is built
/// fully in memory first, validated, and written with ONE fwrite + a
/// checked flush — stdout carries a complete JSON document or (on
/// write failure) the error goes to stderr as plain text; a consumer
/// never sees a truncated document that still parses as a prefix.
int emit_document(const JsonWriter& w, int status) {
  const std::string doc = w.str();
  if (!json_valid(doc)) {
    std::fprintf(stderr, "error: internal: produced an invalid JSON document\n");
    return 1;
  }
  if (std::fwrite(doc.data(), 1, doc.size(), stdout) != doc.size() ||
      std::fputc('\n', stdout) == EOF || std::fflush(stdout) != 0) {
    std::fprintf(stderr, "error: failed to write JSON document to stdout\n");
    return 1;
  }
  return status;
}

/// The serve-layer view of the parsed flags — shared with the daemon's
/// request parser, so --connect requests mean exactly what local runs
/// mean.
serve::ActionParams action_params(const Args& a) {
  serve::ActionParams params;
  params.request = make_request(a, pipeline::MappingStrategy::kAuto);
  params.seed = a.seed;
  params.batch = a.batch;
  params.sliced = a.sliced;
  params.compiled = a.compiled;
  params.lanes = a.lanes;
  params.tile = a.tile;
  if (!a.fault_kinds.empty()) params.campaign.kinds = a.fault_kinds;
  if (!a.fault_rates.empty()) params.campaign.rates = a.fault_rates;
  params.campaign.seed = a.seed;
  params.campaign.spares = a.spares;
  params.campaign.max_retries = a.retries;
  params.deadline_ms = a.deadline_ms;
  // One-shot runs anchor the deadline here, at process start-of-work;
  // --connect sends deadline_ms on the wire instead and the daemon
  // anchors it at request arrival.
  if (a.connect.empty() && a.deadline_ms > 0) {
    params.cancel = CancelToken::with_deadline_ms(a.deadline_ms);
  }
  return params;
}

int run_list_kernels(const Args& a) {
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("kernels").begin_array();
    for (const auto& info : ir::kernels::registry()) {
      w.begin_object();
      w.key("name").value(info.name);
      w.key("arity").value(static_cast<std::int64_t>(info.arity));
      w.key("params").value(info.params);
      w.key("summary").value(info.summary);
      w.key("sliceable").value(info.sliceable);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return emit_document(w, 0);
  }
  std::printf("registered kernels:\n");
  for (const auto& info : ir::kernels::registry()) {
    std::printf("  %-12s %s\n               parameters: %s\n", info.name.c_str(), info.summary,
                info.params);
  }
  return 0;
}

void emit_structure_json(JsonWriter& w, const core::BitLevelStructure& s) {
  w.key("kernel").value(s.word.name);
  w.key("p").value(s.p);
  w.key("expansion").value(s.expansion == core::Expansion::kI ? "I" : "II");
  w.key("index_set").begin_object();
  w.key("lower").value(s.domain.lower());
  w.key("upper").value(s.domain.upper());
  w.key("points").value(s.domain.size());
  w.end_object();
  w.key("dependences").begin_array();
  for (const auto& col : s.deps.columns()) {
    w.begin_object();
    w.key("d").value(col.d);
    w.key("cause").value(col.cause);
    w.key("uniform").value(col.is_uniform());
    if (!col.is_uniform()) w.key("valid_at").value(col.valid.to_string(s.coord_names));
    w.end_object();
  }
  w.end_array();
}

int run_structure(const Args& a) {
  const pipeline::PlanPtr plan = plan_for(a, pipeline::MappingStrategy::kStructureOnly);
  if (!a.json) {
    std::printf("%s", plan->structure->to_string().c_str());
    return 0;
  }
  JsonWriter w;
  w.begin_object();
  emit_structure_json(w, *plan->structure);
  emit_plan_cache_json(w);
  w.end_object();
  return emit_document(w, 0);
}

int run_verify(const Args& a) {
  const pipeline::PlanPtr plan = plan_for(a, pipeline::MappingStrategy::kStructureOnly);
  // The plan's structure IS the Theorem 3.1 composition; verify it
  // against the trace without re-expanding.
  const auto report =
      core::verify_expansion(plan->model, a.p, a.expansion, *plan->structure);
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("ok").value(report.ok());
    w.key("traced_edges").value(static_cast<std::int64_t>(report.traced_edges));
    w.key("missing").value(static_cast<std::int64_t>(report.match.missing.size()));
    w.key("spurious").value(static_cast<std::int64_t>(report.match.spurious.size()));
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, report.ok() ? 0 : 1);
  } else {
    std::printf("Theorem 3.1 on %s (p=%lld, expansion %s): %s (%zu ground-truth edges)\n",
                a.kernel.c_str(), (long long)a.p,
                a.expansion == core::Expansion::kI ? "I" : "II",
                report.ok() ? "EXACT MATCH" : "MISMATCH", report.traced_edges);
    if (!report.ok()) std::printf("%s", report.match.to_string().c_str());
  }
  return report.ok() ? 0 : 1;
}

int run_design(const Args& a) {
  if (a.json) {
    // The daemon serves the same document: compute + emit are shared
    // (src/serve/actions), the CLI only appends its cache counters.
    const serve::DesignOutcome outcome =
        serve::run_design(pipeline::global_plan_cache(), action_params(a));
    JsonWriter w;
    w.begin_object();
    const int status = serve::emit_design_json(w, outcome);
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, status);
  }
  const pipeline::PlanPtr plan = plan_for(a, pipeline::MappingStrategy::kExplore);
  const mapping::ExploreResult& result = plan->explore;
  std::printf("explored %zu space mappings, %zu schedules; %zu feasible designs\n",
              result.spaces_tried, result.schedules_examined, result.designs.size());
  for (std::size_t i = 0; i < result.designs.size() && i < 5; ++i) {
    std::printf("#%zu:\n%s\n\n", i + 1, result.designs[i].to_string().c_str());
  }
  return result.designs.empty() ? 1 : 0;
}

int run_optimal(const Args& a) {
  const pipeline::PlanPtr plan = plan_for(a, pipeline::MappingStrategy::kAuto);
  if (!plan->has_mapping()) {
    std::fprintf(stderr, "no feasible design to certify\n");
    return 1;
  }
  const math::IntVec pi = plan->t->schedule();
  const core::BitLevelStructure& s = *plan->structure;
  const auto cert = mapping::certify_time_optimal(s.domain, s.deps, pi);
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("pi").value(pi);
    w.key("achieved").value(cert.achieved);
    w.key("lp_bound").value(cert.lp_bound.to_string());
    w.key("lower_bound").value(cert.lower_bound);
    w.key("certified_optimal").value(cert.certified);
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, 0);
  } else {
    std::printf("Pi = %s achieves %lld cycles; LP lower bound over ALL linear schedules: "
                "%lld (span %s)\n%s\n",
                math::to_string(pi).c_str(), (long long)cert.achieved,
                (long long)cert.lower_bound, cert.lp_bound.to_string().c_str(),
                cert.certified ? "CERTIFIED time optimal"
                               : "not optimal (a faster linear schedule may exist)");
  }
  return 0;
}

int run_animate(const Args& a) {
  const pipeline::PlanPtr plan = plan_for(a, pipeline::MappingStrategy::kAuto);
  if (!plan->has_mapping()) {
    std::fprintf(stderr, "no feasible design to animate\n");
    return 1;
  }
  sim::TimelineOptions options;
  options.max_cycles = 12;
  std::printf("%s", sim::cycle_snapshots(plan->structure->domain, *plan->t, options).c_str());
  return 0;
}

int run_simulate(const Args& a) {
  if (a.json) {
    const serve::ActionParams params = action_params(a);
    const serve::SimulateOutcome outcome =
        serve::run_simulate(pipeline::global_plan_cache(), params);
    if (!outcome.feasible) {
      std::fprintf(stderr, "no feasible design found\n");
      return 1;
    }
    JsonWriter w;
    w.begin_object();
    const int status = serve::emit_simulate_json(w, params, outcome);
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, status);
  }
  const pipeline::PlanPtr plan = plan_for(a, pipeline::MappingStrategy::kAuto);
  if (!plan->has_mapping()) {
    std::fprintf(stderr, "no feasible design found\n");
    return 1;
  }
  if (plan->origin == pipeline::MappingOrigin::kPublished) {
    std::printf("(explorer found nothing; using the published Fig. 4 design)\n");
  }

  // Seeded operands respecting the model's pipelining invariants.
  const core::Workload workload = core::make_safe_workload(plan->model, a.p, a.expansion, a.seed);
  const core::OperandFn xf = workload.x_fn();
  const core::OperandFn yf = workload.y_fn();
  const pipeline::PlanRunResult run =
      pipeline::run_plan(*plan, xf, yf, pipeline::RunOptions{a.threads, a.memory});
  const auto ref = core::evaluate_word_reference(plan->model, xf, yf);
  // A z-output the word-level reference never produced is a mismatch in
  // its own right (reported cleanly with the offending point), not an
  // out_of_range crash.
  bool ok = !run.z.empty();
  std::size_t missing_reference = 0;
  for (const auto& [j, v] : run.z) {
    const auto it = ref.find(j);
    if (it == ref.end()) {
      ++missing_reference;
      ok = false;
      std::printf("MISMATCH: array produced z%s but the reference has no such output\n",
                  math::to_string(j).c_str());
      continue;
    }
    ok = ok && v == it->second;
  }

  std::printf("design: Pi = %s, %lld cycles on %lld PEs\n",
              math::to_string(plan->t->schedule()).c_str(), (long long)run.stats.cycles,
              (long long)run.stats.pe_count);
  std::printf("results %s against word-level reference (%zu outputs)\n",
              ok ? "MATCH" : "DIFFER", run.z.size());
  std::printf("%s\n", run.stats.to_string().c_str());
  return ok ? 0 : 1;
}

int run_batch_action(const Args& a) {
  if (a.json) {
    const serve::ActionParams params = action_params(a);
    const serve::BatchOutcome outcome =
        serve::run_batch_action(pipeline::global_plan_cache(), params);
    if (!outcome.feasible) {
      std::fprintf(stderr, "no feasible design found\n");
      return 1;
    }
    JsonWriter w;
    w.begin_object();
    const int status = serve::emit_batch_json(w, params, outcome);
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, status);
  }
  const pipeline::DesignRequest request = make_request(a, pipeline::MappingStrategy::kAuto);
  const pipeline::PlanPtr plan = pipeline::global_plan_cache().get_or_compose(request);
  if (!plan->has_mapping()) {
    std::fprintf(stderr, "no feasible design found\n");
    return 1;
  }

  // One seeded workload per batch item (seed, seed+1, ...), loaded
  // fully before any OperandFn is taken: Workload::x_fn captures the
  // workload's table, so the vector must not reallocate afterwards.
  std::vector<core::Workload> workloads;
  workloads.reserve(static_cast<std::size_t>(a.batch));
  for (math::Int i = 0; i < a.batch; ++i) {
    workloads.push_back(core::make_safe_workload(plan->model, a.p, a.expansion,
                                                 a.seed + static_cast<std::uint64_t>(i)));
  }
  std::vector<pipeline::BatchItem> items;
  items.reserve(workloads.size());
  for (const core::Workload& load : workloads) {
    items.push_back(pipeline::BatchItem{load.x_fn(), load.y_fn()});
  }

  pipeline::BatchOptions options;
  options.threads = a.threads;
  options.memory = a.memory;
  options.sliced = a.sliced;
  options.compiled = a.compiled;
  options.lane_width = a.lanes;
  const pipeline::BatchResult batch =
      pipeline::run_batch(pipeline::global_plan_cache(), request, items, options);

  // Every item is checked against its own word-level reference.
  bool ok = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto ref = core::evaluate_word_reference(plan->model, items[i].x, items[i].y);
    const pipeline::PlanRunResult& run = batch.results[i];
    bool item_ok = !run.z.empty();
    for (const auto& [j, v] : run.z) {
      const auto it = ref.find(j);
      item_ok = item_ok && it != ref.end() && v == it->second;
    }
    if (!item_ok) {
      std::printf("MISMATCH: batch item %zu differs from the word-level reference\n", i);
    }
    ok = ok && item_ok;
  }
  const sim::SimulationStats& stats = batch.results.front().stats;
  std::printf("batch: %lld problems over Pi = %s (%s)\n", (long long)a.batch,
              math::to_string(plan->t->schedule()).c_str(),
              pipeline::to_string(a.sliced).c_str());
  std::printf("executed as %lld compiled group(s) (%lld items) + %lld sliced group(s) "
              "(%lld items) + %lld scalar item(s)\n",
              (long long)batch.compiled_groups, (long long)batch.compiled_items,
              (long long)batch.sliced_groups, (long long)batch.sliced_items,
              (long long)batch.scalar_items);
  std::printf("results %s against word-level references\n", ok ? "MATCH" : "DIFFER");
  std::printf("%s\n", stats.to_string().c_str());
  return ok ? 0 : 1;
}

int run_tiled_cli(const Args& a) {
  const serve::ActionParams params = action_params(a);
  const serve::TiledOutcome outcome =
      serve::run_tiled_action(pipeline::global_plan_cache(), params);
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    const int status = serve::emit_tiled_json(w, params, outcome);
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, status);
  }
  const pipeline::TiledPlan& plan = outcome.plan;
  const pipeline::TiledRunResult& run = outcome.run;
  std::printf("tiled %s: %lld x %lld x %lld as %lld x %lld x %lld tiles (grid %lld x %lld x "
              "%lld, %zu shapes)\n",
              a.kernel.c_str(), (long long)plan.m, (long long)plan.n, (long long)plan.k,
              (long long)plan.tile_m, (long long)plan.tile_n, (long long)plan.tile_k,
              (long long)plan.grid_m, (long long)plan.grid_n, (long long)plan.grid_k,
              plan.shapes.size());
  std::printf("virtual array: %lld PEs per tile", (long long)plan.tile_pes);
  if (plan.max_pes > 0) std::printf(" (budget %lld)", (long long)plan.max_pes);
  std::printf("; monolithic equivalent %lld PEs\n", (long long)(plan.m * plan.n * a.p * a.p));
  std::printf("tiles: %lld total, %lld executed, %lld shape-plan cache hits\n",
              (long long)run.tiles_total, (long long)run.tiles_executed,
              (long long)run.tile_cache_hits);
  std::printf("execution: %lld compiled + %lld sliced + %lld scalar items; %lld cycles per "
              "tile pass\n",
              (long long)run.compiled_items, (long long)run.sliced_items,
              (long long)run.scalar_items, (long long)run.stats.cycles);
  std::printf("results %s against word-level reference (%s check, %lld outputs)\n",
              outcome.correct ? "MATCH" : "DIFFER", outcome.full_check ? "full" : "sampled",
              (long long)outcome.checked_outputs);
  return outcome.correct ? 0 : 1;
}

int run_fault_campaign(const Args& a) {
  if (a.json) {
    const serve::ActionParams params = action_params(a);
    const serve::CampaignOutcome outcome =
        serve::run_fault_campaign(pipeline::global_plan_cache(), params);
    if (!outcome.feasible) {
      std::fprintf(stderr, "no feasible design found\n");
      return 1;
    }
    JsonWriter w;
    w.begin_object();
    const int status = serve::emit_campaign_json(w, params, outcome);
    emit_plan_cache_json(w);
    w.end_object();
    return emit_document(w, status);
  }
  const pipeline::DesignRequest request = make_request(a, pipeline::MappingStrategy::kAuto);
  const pipeline::PlanPtr plan = pipeline::global_plan_cache().get_or_compose(request);
  if (!plan->has_mapping()) {
    std::fprintf(stderr, "no feasible design found\n");
    return 1;
  }

  // Seeded operands respecting the model's pipelining invariants — the
  // same workload generator --action simulate uses.
  const core::Workload workload = core::make_safe_workload(plan->model, a.p, a.expansion, a.seed);
  pipeline::CampaignOptions options;
  if (!a.fault_kinds.empty()) options.kinds = a.fault_kinds;
  if (!a.fault_rates.empty()) options.rates = a.fault_rates;
  options.seed = a.seed;
  options.spares = a.spares;
  options.max_retries = a.retries;
  const pipeline::CampaignResult result = pipeline::run_campaign(
      pipeline::global_plan_cache(), request, workload.x_fn(), workload.y_fn(), options);

  std::printf("fault campaign: Pi = %s, %lld reference words, seed %llu\n",
              math::to_string(plan->t->schedule()).c_str(), (long long)result.reference_words,
              (unsigned long long)a.seed);
  std::printf("%s", result.to_table().c_str());
  return 0;
}

// ------------------------------------------------------- server mode

/// Write end of the running server's self-pipe; the signal handler may
/// only touch async-signal-safe state, so the fd lives in an atomic.
std::atomic<int> g_shutdown_fd{-1};

extern "C" void handle_shutdown_signal(int) {
  const int fd = g_shutdown_fd.load();
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

int run_serve(const Args& a) {
  // A client that disappears mid-response must surface as a send()
  // error on that one connection, never as a process-killing SIGPIPE
  // (belt to the MSG_NOSIGNAL suspenders on every socket write).
  std::signal(SIGPIPE, SIG_IGN);
  serve::ServerConfig config;
  config.listen = a.listen;
  config.workers = a.workers;
  config.max_queue = static_cast<std::size_t>(a.queue);
  config.default_deadline_ms = a.deadline_ms;
  config.max_deadline_ms = a.max_deadline_ms;
  config.idle_timeout_ms = a.idle_timeout_ms;
  config.coalesce_window_us = a.coalesce_window_us;
  config.max_coalesce_items = static_cast<std::size_t>(a.coalesce_max);
  serve::Server server(config);
  server.bind_and_listen();

  // SIGINT/SIGTERM begin a graceful drain: admitted requests finish
  // and get their responses before the process exits.
  g_shutdown_fd.store(server.shutdown_write_fd());
  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::fprintf(stderr, "bitlevel-design: serving on %s (%d workers, queue %d)\n",
               server.endpoint().c_str(), a.workers, a.queue);
  std::fflush(stderr);
  const serve::DrainReport report = server.run();
  g_shutdown_fd.store(-1);

  JsonWriter w;
  w.begin_object();
  w.key("drained").value(true);
  w.key("connections").value(static_cast<std::int64_t>(report.stats.connections));
  w.key("requests").value(static_cast<std::int64_t>(report.stats.requests));
  w.key("served_ok").value(static_cast<std::int64_t>(report.stats.served_ok));
  w.key("served_error").value(static_cast<std::int64_t>(report.stats.served_error));
  w.key("rejected_overloaded")
      .value(static_cast<std::int64_t>(report.stats.rejected_overloaded));
  w.key("rejected_oversized").value(static_cast<std::int64_t>(report.stats.rejected_oversized));
  w.key("rejected_deadline").value(static_cast<std::int64_t>(report.stats.rejected_deadline));
  w.key("coalesced_groups").value(static_cast<std::int64_t>(report.stats.coalesced_groups));
  w.key("coalesced_items").value(static_cast<std::int64_t>(report.stats.coalesced_items));
  w.key("coalesce_bypass_deadline")
      .value(static_cast<std::int64_t>(report.stats.coalesce_bypass_deadline));
  w.key("leaked_plans").value(static_cast<std::int64_t>(report.leaked_plans));
  w.end_object();
  std::fprintf(stderr, "%s\n", w.str().c_str());
  // A leaked plan after a full drain is a bug worth failing loudly on.
  return report.leaked_plans == 0 ? 0 : 1;
}

// ------------------------------------------------------- client mode

int run_script(serve::Client& client, const std::string& script) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (script != "-") {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "error: cannot open script '%s'\n", script.c_str());
      return 1;
    }
    in = &file;
  }
  // Strict lockstep: one request line, one response line, in order —
  // what makes daemon output byte-comparable against one-shot runs.
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::printf("%s\n", client.roundtrip(line).c_str());
  }
  if (std::fflush(stdout) != 0) {
    std::fprintf(stderr, "error: failed to write responses to stdout\n");
    return 1;
  }
  return 0;
}

int run_connect(const Args& a) {
  // A daemon that dies mid-request must surface as a send() error, not
  // kill the client with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  serve::Client client;
  if (!a.script.empty()) {
    client.connect(a.connect);
    return run_script(client, a.script);
  }

  const std::string request = serve::request_line(1, a.action, action_params(a));
  // Bounded retry: transport failures and structured errors the daemon
  // tags "retryable": true (overloaded, deadline_exceeded,
  // shutting_down) retry up to --retries times with deterministic
  // exponential backoff (--backoff-ms base, seed-derived jitter).
  // Fatal errors (parse, precondition, infeasible) never retry.
  std::string last_error;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      const std::int64_t wait_ms = serve::retry_backoff_ms(a.backoff_ms, attempt - 1, a.seed);
      std::fprintf(stderr, "retry %d/%d in %lld ms: %s\n", attempt, a.retries,
                   static_cast<long long>(wait_ms), last_error.c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
    std::string response;
    try {
      if (!client.connected()) client.connect(a.connect);
      response = client.roundtrip(request);
    } catch (const bitlevel::Error& e) {
      last_error = e.what();
      client.close();  // reconnect fresh on the next attempt
      if (attempt < a.retries) continue;
      std::fprintf(stderr, "error: %s\n", last_error.c_str());
      return 1;
    }
    const JsonValue envelope = json_parse(response);
    const JsonValue* okv = envelope.is_object() ? envelope.find("ok") : nullptr;
    if (okv == nullptr || !okv->is_bool()) {
      std::fprintf(stderr, "error: malformed response envelope: %s\n", response.c_str());
      return 1;
    }
    if (!okv->bool_v) {
      std::string code = "internal";
      std::string message = "unknown error";
      bool retryable = false;
      if (const JsonValue* error = envelope.find("error");
          error != nullptr && error->is_object()) {
        if (const JsonValue* c = error->find("code"); c != nullptr && c->is_string()) {
          code = c->string_v;
        }
        if (const JsonValue* m = error->find("message"); m != nullptr && m->is_string()) {
          message = m->string_v;
        }
        if (const JsonValue* r = error->find("retryable"); r != nullptr && r->is_bool()) {
          retryable = r->bool_v;
        }
      }
      if (retryable && attempt < a.retries) {
        last_error = code + ": " + message;
        continue;
      }
      std::fprintf(stderr, "error: %s: %s\n", code.c_str(), message.c_str());
      return 1;
    }
    // Print the raw "result" bytes — the same document a local --json
    // run prints (minus this process's plan_cache counters).
    const std::string result = json_member_text(response, "result");
    if (result.empty()) {
      std::fprintf(stderr, "error: response envelope carries no result: %s\n", response.c_str());
      return 1;
    }
    std::printf("%s\n", result.c_str());
    if (std::fflush(stdout) != 0) {
      std::fprintf(stderr, "error: failed to write result to stdout\n");
      return 1;
    }
    const JsonValue* statusv = envelope.find("status");
    if (statusv != nullptr && statusv->is_int()) return static_cast<int>(statusv->int_v);
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.serve) return run_serve(args);
    if (!args.connect.empty()) return run_connect(args);
    if (args.list_kernels) return run_list_kernels(args);
    if (args.action == "structure") return run_structure(args);
    if (args.action == "verify") return run_verify(args);
    if (args.action == "design") return run_design(args);
    if (args.action == "simulate") return run_simulate(args);
    if (args.action == "batch") return run_batch_action(args);
    if (args.action == "tiled") return run_tiled_cli(args);
    if (args.action == "optimal") return run_optimal(args);
    if (args.action == "animate") return run_animate(args);
    if (args.action == "fault-campaign") return run_fault_campaign(args);
    usage(("unknown action '" + args.action + "' (allowed: " + allowed_actions() + ")").c_str());
  } catch (const bitlevel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything non-bitlevel (std::bad_alloc, iostream failures, ...)
    // still exits cleanly instead of std::terminate.
    std::fprintf(stderr, "error: unexpected failure: %s\n", e.what());
    return 1;
  }
}
