// bitlevel-design — the library as a command-line tool.
//
// Usage:
//   bitlevel-design --kernel matmul --u 3 --p 4 --expansion II
//                   --action structure|verify|design|simulate [--json]
//
// Kernels: matmul (u), matmul_rect (u = m, v = n, w = k), conv (u = n,
// v = k), matvec (u = rows, v = cols), transform (u = n), scalar (u).
// Actions:
//   structure — compose and print the bit-level dependence structure
//   verify    — empirically prove Theorem 3.1 for this instance
//   design    — explore space mappings + schedules, print ranked designs
//   simulate  — explore, pick the best design, run it cycle-accurately
//               on seeded random operands and check the results
//   optimal   — LP-certify the fastest explored schedule (or refute it)
//   animate   — ASCII space-time snapshots of the best design running
// --json switches the output to a machine-readable document;
// --memory streaming bounds simulator memory by the dependence window.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <utility>
#include <string>
#include <vector>

#include "arch/bit_array.hpp"
#include "arch/matmul_arrays.hpp"
#include "core/evaluator.hpp"
#include "core/expansion.hpp"
#include "core/verify.hpp"
#include "core/workload.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"
#include "mapping/optimality.hpp"
#include "sim/timeline.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

using namespace bitlevel;

namespace {

struct Args {
  std::string kernel = "matmul";
  std::string action = "structure";
  math::Int u = 3, v = 3, w = 3, p = 4;
  core::Expansion expansion = core::Expansion::kII;
  bool json = false;
  std::uint64_t seed = 1;
  int threads = 0;  // 0 = BITLEVEL_THREADS / hardware, 1 = serial
  sim::MemoryMode memory = sim::MemoryMode::kDense;
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: bitlevel-design --kernel matmul|matmul_rect|conv|matvec|transform|scalar\n"
               "                       [--u N] [--v N] [--w N] [--p BITS] [--expansion I|II]\n"
               "                       [--action structure|verify|design|simulate|optimal|"
               "animate]\n"
               "                       [--json] [--memory dense|streaming] [--seed N] "
               "[--threads N]\n");
  std::exit(2);
}

/// Strict base-10 integer parsing: the whole token must be a number in
/// [lo, hi]. Rejects what atoll silently accepted — garbage ("--p abc"
/// became 0), trailing junk, overflow, and out-of-range sizes that
/// crashed deep inside the library.
math::Int parse_int(const std::string& flag, const char* text, math::Int lo, math::Int hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    usage((flag + " expects an integer, got '" + text + "'").c_str());
  }
  if (v < lo || v > hi) {
    usage((flag + " must be in [" + std::to_string(lo) + ", " + std::to_string(hi) + "], got " +
           text)
              .c_str());
  }
  return static_cast<math::Int>(v);
}

std::uint64_t parse_seed(const std::string& flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  // strtoull wraps negatives silently; ban the sign outright.
  if (end == text || *end != '\0' || errno == ERANGE || std::strchr(text, '-') != nullptr) {
    usage((flag + " expects a nonnegative integer, got '" + text + "'").c_str());
  }
  return static_cast<std::uint64_t>(v);
}

Args parse(int argc, char** argv) {
  Args args;
  constexpr math::Int kMaxExtent = 1'000'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--kernel") {
      args.kernel = next();
    } else if (flag == "--action") {
      args.action = next();
    } else if (flag == "--u") {
      args.u = parse_int(flag, next(), 1, kMaxExtent);
    } else if (flag == "--v") {
      args.v = parse_int(flag, next(), 1, kMaxExtent);
    } else if (flag == "--w") {
      args.w = parse_int(flag, next(), 1, kMaxExtent);
    } else if (flag == "--p") {
      args.p = parse_int(flag, next(), 1, 63);
    } else if (flag == "--seed") {
      args.seed = parse_seed(flag, next());
    } else if (flag == "--threads") {
      args.threads = static_cast<int>(parse_int(flag, next(), 0, 4096));
    } else if (flag == "--memory") {
      const std::string m = next();
      if (m == "dense") {
        args.memory = sim::MemoryMode::kDense;
      } else if (m == "streaming") {
        args.memory = sim::MemoryMode::kStreaming;
      } else {
        usage("memory must be dense or streaming");
      }
    } else if (flag == "--expansion") {
      const std::string e = next();
      if (e == "I" || e == "1") {
        args.expansion = core::Expansion::kI;
      } else if (e == "II" || e == "2") {
        args.expansion = core::Expansion::kII;
      } else {
        usage("expansion must be I or II");
      }
    } else if (flag == "--json") {
      args.json = true;
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  return args;
}

ir::WordLevelModel make_kernel(const Args& a) {
  if (a.kernel == "matmul") return ir::kernels::matmul(a.u);
  if (a.kernel == "matmul_rect") return ir::kernels::matmul_rect(a.u, a.v, a.w);
  if (a.kernel == "conv") return ir::kernels::convolution1d(a.u, a.v);
  if (a.kernel == "matvec") return ir::kernels::matvec(a.u, a.v);
  if (a.kernel == "transform") return ir::kernels::transform(a.u);
  if (a.kernel == "scalar") return ir::kernels::scalar_chain(1, a.u, 1);
  usage(("unknown kernel " + a.kernel).c_str());
}

void emit_structure_json(JsonWriter& w, const core::BitLevelStructure& s) {
  w.key("kernel").value(s.word.name);
  w.key("p").value(s.p);
  w.key("expansion").value(s.expansion == core::Expansion::kI ? "I" : "II");
  w.key("index_set").begin_object();
  w.key("lower").value(s.domain.lower());
  w.key("upper").value(s.domain.upper());
  w.key("points").value(s.domain.size());
  w.end_object();
  w.key("dependences").begin_array();
  for (const auto& col : s.deps.columns()) {
    w.begin_object();
    w.key("d").value(col.d);
    w.key("cause").value(col.cause);
    w.key("uniform").value(col.is_uniform());
    if (!col.is_uniform()) w.key("valid_at").value(col.valid.to_string(s.coord_names));
    w.end_object();
  }
  w.end_array();
}

int run_structure(const Args& a) {
  const auto s = core::expand(make_kernel(a), a.p, a.expansion);
  if (!a.json) {
    std::printf("%s", s.to_string().c_str());
    return 0;
  }
  JsonWriter w;
  w.begin_object();
  emit_structure_json(w, s);
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}

int run_verify(const Args& a) {
  const auto report = core::verify_expansion(make_kernel(a), a.p, a.expansion);
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("ok").value(report.ok());
    w.key("traced_edges").value(static_cast<std::int64_t>(report.traced_edges));
    w.key("missing").value(static_cast<std::int64_t>(report.match.missing.size()));
    w.key("spurious").value(static_cast<std::int64_t>(report.match.spurious.size()));
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("Theorem 3.1 on %s (p=%lld, expansion %s): %s (%zu ground-truth edges)\n",
                a.kernel.c_str(), (long long)a.p,
                a.expansion == core::Expansion::kI ? "I" : "II",
                report.ok() ? "EXACT MATCH" : "MISMATCH", report.traced_edges);
    if (!report.ok()) std::printf("%s", report.match.to_string().c_str());
  }
  return report.ok() ? 0 : 1;
}

mapping::ExploreResult explore(const core::BitLevelStructure& s, int threads) {
  mapping::ExploreOptions options;
  options.max_direction_sets = 32;
  // Larger word dimensions need larger schedule coefficients to stay
  // injective on the multiplexed coordinates.
  options.schedule_bound = s.word_dims() >= 2 ? 3 : 2;
  options.threads = threads;
  return mapping::explore_designs(s.domain, s.deps,
                                  mapping::InterconnectionPrimitives::mesh2d_diag(),
                                  mapping::DesignObjective::kTime, options);
}

/// The published Fig. 4 design, used as a fallback for 3-D word-level
/// kernels (matmul-shaped) where the generic explorer's candidate pool
/// cannot express the p-scaled projections of (4.2).
std::optional<std::pair<mapping::MappingMatrix, mapping::InterconnectionPrimitives>>
published_design(const core::BitLevelStructure& s) {
  if (s.word_dims() != 3) return std::nullopt;
  const auto t = arch::matmul_mapping(arch::MatmulMapping::kFig4, s.p);
  const auto prims = arch::matmul_primitives(arch::MatmulMapping::kFig4, s.p);
  const auto report = mapping::check_feasible(s.domain, s.deps, t, prims);
  if (!report.ok) return std::nullopt;
  return std::make_pair(t, prims);
}

int run_design(const Args& a) {
  const auto s = core::expand(make_kernel(a), a.p, a.expansion);
  const auto result = explore(s, a.threads);
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("spaces_tried").value(static_cast<std::int64_t>(result.spaces_tried));
    w.key("designs").begin_array();
    for (const auto& d : result.designs) {
      w.begin_object();
      w.key("pi").value(d.t.schedule());
      w.key("time").value(d.total_time);
      w.key("processors").value(d.processors);
      w.key("max_wire").value(d.max_wire);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("explored %zu space mappings, %zu schedules; %zu feasible designs\n",
              result.spaces_tried, result.schedules_examined, result.designs.size());
  for (std::size_t i = 0; i < result.designs.size() && i < 5; ++i) {
    std::printf("#%zu:\n%s\n\n", i + 1, result.designs[i].to_string().c_str());
  }
  return result.designs.empty() ? 1 : 0;
}

int run_optimal(const Args& a) {
  const auto s = core::expand(make_kernel(a), a.p, a.expansion);
  const auto designs = explore(s, a.threads);
  math::IntVec pi;
  if (!designs.designs.empty()) {
    pi = designs.designs.front().t.schedule();
  } else if (auto fallback = published_design(s)) {
    pi = fallback->first.schedule();
  } else {
    std::fprintf(stderr, "no feasible design to certify\n");
    return 1;
  }
  const auto cert = mapping::certify_time_optimal(s.domain, s.deps, pi);
  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("pi").value(pi);
    w.key("achieved").value(cert.achieved);
    w.key("lp_bound").value(cert.lp_bound.to_string());
    w.key("lower_bound").value(cert.lower_bound);
    w.key("certified_optimal").value(cert.certified);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("Pi = %s achieves %lld cycles; LP lower bound over ALL linear schedules: "
                "%lld (span %s)\n%s\n",
                math::to_string(pi).c_str(), (long long)cert.achieved,
                (long long)cert.lower_bound, cert.lp_bound.to_string().c_str(),
                cert.certified ? "CERTIFIED time optimal"
                               : "not optimal (a faster linear schedule may exist)");
  }
  return 0;
}

int run_animate(const Args& a) {
  const auto s = core::expand(make_kernel(a), a.p, a.expansion);
  const auto designs = explore(s, a.threads);
  mapping::MappingMatrix t(math::IntMat::identity(1));
  if (!designs.designs.empty()) {
    t = designs.designs.front().t;
  } else if (auto fallback = published_design(s)) {
    t = fallback->first;
  } else {
    std::fprintf(stderr, "no feasible design to animate\n");
    return 1;
  }
  sim::TimelineOptions options;
  options.max_cycles = 12;
  std::printf("%s", sim::cycle_snapshots(s.domain, t, options).c_str());
  return 0;
}

int run_simulate(const Args& a) {
  const auto model = make_kernel(a);
  const auto s = core::expand(model, a.p, a.expansion);
  const auto designs = explore(s, a.threads);
  mapping::MappingMatrix t(math::IntMat::identity(1));
  mapping::InterconnectionPrimitives prims = mapping::InterconnectionPrimitives::mesh2d_diag();
  if (!designs.designs.empty()) {
    t = designs.designs.front().t;
  } else if (auto fallback = published_design(s)) {
    if (!a.json) std::printf("(explorer found nothing; using the published Fig. 4 design)\n");
    t = fallback->first;
    prims = fallback->second;
  } else {
    std::fprintf(stderr, "no feasible design found\n");
    return 1;
  }
  arch::BitLevelArray array(s, t, prims);
  array.set_threads(a.threads);
  array.set_memory_mode(a.memory);

  // Seeded operands respecting the model's pipelining invariants.
  const core::Workload workload = core::make_safe_workload(model, a.p, a.expansion, a.seed);
  const core::OperandFn xf = workload.x_fn();
  const core::OperandFn yf = workload.y_fn();
  const auto run = array.run(xf, yf);
  const auto ref = core::evaluate_word_reference(model, xf, yf);
  // A z-output the word-level reference never produced is a mismatch in
  // its own right (reported cleanly with the offending point), not an
  // out_of_range crash.
  bool ok = !run.z.empty();
  std::size_t missing_reference = 0;
  for (const auto& [j, v] : run.z) {
    const auto it = ref.find(j);
    if (it == ref.end()) {
      ++missing_reference;
      ok = false;
      if (!a.json) {
        std::printf("MISMATCH: array produced z%s but the reference has no such output\n",
                    math::to_string(j).c_str());
      }
      continue;
    }
    ok = ok && v == it->second;
  }

  if (a.json) {
    JsonWriter w;
    w.begin_object();
    w.key("correct").value(ok);
    w.key("missing_reference").value(static_cast<std::int64_t>(missing_reference));
    w.key("cycles").value(run.stats.cycles);
    w.key("processors").value(run.stats.pe_count);
    w.key("computations").value(run.stats.computations);
    w.key("utilization").value(run.stats.pe_utilization);
    w.key("memory").value(a.memory == sim::MemoryMode::kStreaming ? "streaming" : "dense");
    w.key("peak_live_slots").value(run.stats.peak_live_slots);
    w.key("pi").value(t.schedule());
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("design: Pi = %s, %lld cycles on %lld PEs\n",
                math::to_string(t.schedule()).c_str(), (long long)run.stats.cycles,
                (long long)run.stats.pe_count);
    std::printf("results %s against word-level reference (%zu outputs)\n",
                ok ? "MATCH" : "DIFFER", run.z.size());
    std::printf("%s\n", run.stats.to_string().c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.action == "structure") return run_structure(args);
    if (args.action == "verify") return run_verify(args);
    if (args.action == "design") return run_design(args);
    if (args.action == "simulate") return run_simulate(args);
    if (args.action == "optimal") return run_optimal(args);
    if (args.action == "animate") return run_animate(args);
    usage(("unknown action " + args.action).c_str());
  } catch (const bitlevel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
