// Workload generation respecting the model's pipelining invariants.
//
// Model (3.5) *transports* operands: x(j) = x(j - h1) means the value
// is constant along every h1 chain, and the physical arrays implement
// exactly that movement. Valid workloads therefore draw a fresh value
// only where a chain enters the domain and copy it along the chain;
// per-point random tables would disagree with the array's dataflow.
#pragma once

#include <cstdint>
#include <map>

#include "core/evaluator.hpp"
#include "core/structure.hpp"

namespace bitlevel::core {

/// Operand tables for one run.
struct Workload {
  std::map<IntVec, std::uint64_t> x;
  std::map<IntVec, std::uint64_t> y;

  OperandFn x_fn() const {
    return [this](const IntVec& j) { return x.at(j); };
  }
  OperandFn y_fn() const {
    return [this](const IntVec& j) { return y.at(j); };
  }
};

/// Seeded random workload with entries in [0, bound], constant along
/// the h1 / h2 chains (free per point when the operand is external).
Workload make_pipelined_workload(const ir::WordLevelModel& model, std::uint64_t bound,
                                 std::uint64_t seed);

/// Convenience: bound chosen from the capacity precondition of the
/// expansion (max_safe_operand over the model's longest chain).
Workload make_safe_workload(const ir::WordLevelModel& model, Int p, Expansion e,
                            std::uint64_t seed);

/// Compose a batch axis into a word-level model: the domain becomes
/// [1, batches] x J_w with a leading coordinate, and every h vector is
/// zero-extended (chains and pipelines never cross batches). Expanding
/// and mapping the batched model streams independent problem instances
/// through one array (problem pipelining); see
/// mapping::min_initiation_interval for the schedule offset.
ir::WordLevelModel batch_model(const ir::WordLevelModel& model, Int batches);

}  // namespace bitlevel::core
