// Executable access-pattern programs for expanded bit-level algorithms.
//
// make_bitlevel_program() writes out, from first principles (explicit
// boundary reasoning, *not* by reading Theorem 3.1's regions), the
// guarded loop nest a human would obtain by manually expanding model
// (3.5) at the bit level under Expansion I or II. Feeding it to the
// trace / exact analyzers yields the ground-truth dependence relation
// that the composed structure of expand() is validated against — the
// empirical proof of Theorem 3.1, and the costly baseline of bench E4.
//
// Arrays: x, y (operand bit pipelines), z (partial/final sum bits),
// c (carries), cp (second carries c'), all subscripted by the full
// composed index vector (single-assignment form).
#pragma once

#include "core/structure.hpp"
#include "ir/program.hpp"

namespace bitlevel::core {

/// Build the guarded bit-level access program for `word` expanded with
/// p-bit add-shift arithmetic under expansion `e`.
ir::Program make_bitlevel_program(const ir::WordLevelModel& word, Int p, Expansion e);

}  // namespace bitlevel::core
