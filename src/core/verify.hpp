// Cross-validation of composed structures against ground truth.
//
// verify_expansion() ties the whole pipeline together: it derives the
// bit-level structure via Theorem 3.1 (constant-time composition),
// independently generates the expanded bit-level program and extracts
// its complete dependence relation by trace replay, and demands the two
// agree edge-for-edge. This is the repository's empirical proof of
// Theorem 3.1; the same pair of code paths also powers the cost
// comparison of bench E4.
#pragma once

#include "analysis/types.hpp"
#include "core/structure.hpp"

namespace bitlevel::core {

/// Result of a verification run.
struct VerificationReport {
  analysis::MatchReport match;      ///< Edge-set comparison.
  std::size_t traced_edges = 0;     ///< Ground-truth flow edges (nonzero distance).
  BitLevelStructure structure;      ///< The composed structure that was checked.

  bool ok() const { return match.ok; }
};

/// Compose via Theorem 3.1 and verify against the trace of the
/// independently generated bit-level program.
VerificationReport verify_expansion(const ir::WordLevelModel& word, Int p, Expansion e);

/// Verify an ALREADY composed structure (e.g. a cached design plan's)
/// against the trace, skipping the re-expansion. `structure` must be
/// the Theorem 3.1 composition of (word, p, e).
VerificationReport verify_expansion(const ir::WordLevelModel& word, Int p, Expansion e,
                                    const BitLevelStructure& structure);

}  // namespace bitlevel::core
