#include "core/verify.hpp"

#include "analysis/trace.hpp"
#include "core/bitlevel_program.hpp"
#include "core/expansion.hpp"

namespace bitlevel::core {

VerificationReport verify_expansion(const ir::WordLevelModel& word, Int p, Expansion e) {
  return verify_expansion(word, p, e, expand(word, p, e));
}

VerificationReport verify_expansion(const ir::WordLevelModel& word, Int p, Expansion e,
                                    const BitLevelStructure& structure) {
  const ir::Program program = make_bitlevel_program(word, p, e);
  const auto trace = analysis::trace_dependences(program);

  std::size_t nonzero = 0;
  for (const auto& inst : trace) {
    if (!math::is_zero(inst.distance())) ++nonzero;
  }

  VerificationReport report{analysis::match_structure(structure.deps, structure.domain, trace),
                            nonzero, structure};
  return report;
}

}  // namespace bitlevel::core
