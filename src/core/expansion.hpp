// Bit-level dependence structures as a function of three components
// (Theorem 3.1) — the paper's primary contribution.
//
// Instead of expanding a word-level algorithm to bit level and running a
// general dependence analysis over the (|J_w| * p^2)-point index set,
// expand() composes
//   1. the word-level dependence structure  (h1, h2, h3 of model 3.5),
//   2. the arithmetic algorithm's structure (delta1..delta3 of the
//      add-shift multiplier, eq. 3.4),
//   3. the chosen algorithm expansion       (Expansion I or II),
// into the full bit-level dependence matrix in constant time w.r.t. the
// problem size. Columns are annotated with the validity regions of the
// paper (eqs. 3.11b/3.11c), generalized in one respect: the paper writes
// the accumulation boundary of Expansion I as "j_n = u_n", which assumes
// h3 = e_n; expand() derives the exact region { j : j + h3 not in J_w }
// from h3, which reduces to the paper's for every kernel it considers.
#pragma once

#include "core/structure.hpp"

namespace bitlevel::core {

/// Compose the bit-level dependence structure of `word` expanded with
/// p-bit add-shift arithmetic under expansion `e` (Theorem 3.1).
/// Requires h3 (an accumulation) to be present and, when present, each
/// h vector to be lexicographically positive (sequentially executable).
BitLevelStructure expand(const ir::WordLevelModel& word, Int p, Expansion e);

/// The accumulation-boundary region { q : j + h3 outside J_w } of a
/// composed structure (where Expansion I performs its final reduction).
ir::ValidityRegion accumulation_boundary(const ir::WordLevelModel& word, std::size_t total_dims);

/// Histogram of how many input bits are summed at each index point
/// (partial product + every valid dependence-carried operand). The
/// paper's load-balance observation: Expansion I sums at most 3 bits
/// except on the accumulation boundary, while Expansion II sums 4-5
/// bits on the whole i1 = p hyperplane.
struct LoadHistogram {
  /// count[k] = number of index points summing exactly k input bits.
  std::vector<Int> count;

  Int max_inputs() const;
  std::string to_string() const;
};

LoadHistogram compute_load_histogram(const BitLevelStructure& s);

}  // namespace bitlevel::core
