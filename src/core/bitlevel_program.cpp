#include "core/bitlevel_program.hpp"

#include "core/expansion.hpp"
#include "support/error.hpp"

namespace bitlevel::core {

ir::Program make_bitlevel_program(const ir::WordLevelModel& word, Int p, Expansion e) {
  word.validate();
  BL_REQUIRE(word.h3.has_value(), "bit-level program requires an accumulation vector h3");
  const std::size_t n = word.dim();
  const std::size_t dims = n + 2;
  const std::size_t i1c = n;
  const std::size_t i2c = n + 1;

  using ir::ValidityRegion;
  const ValidityRegion at_face1 = ValidityRegion::coord_eq(i1c, 1);
  const ValidityRegion off_face1 = ValidityRegion::coord_ne(i1c, 1);
  const ValidityRegion at_face2 = ValidityRegion::coord_eq(i2c, 1);
  const ValidityRegion off_face2 = ValidityRegion::coord_ne(i2c, 1);
  // Where the accumulation chain ends: j + h3 leaves J_w. Expansion I
  // performs its deferred diagonal reduction exactly here.
  const ValidityRegion boundary = accumulation_boundary(word, dims);

  const ir::AffineMap id = ir::AffineMap::identity(dims);
  auto back = [&](const IntVec& d) { return ir::AffineMap::translate(math::neg(d)); };
  auto lift_word = [&](const IntVec& h) { return math::concat(h, IntVec{0, 0}); };
  auto lift_arith = [&](const IntVec& delta) { return math::concat(IntVec(n, 0), delta); };

  const IntVec d4 = lift_arith({1, 0});
  const IntVec d5 = lift_arith({0, 1});
  const IntVec d6 = lift_arith({1, -1});
  const IntVec d7 = lift_arith({0, 2});
  const IntVec d3 = lift_word(*word.h3);

  ir::Program prog{word.domain.product(ir::IndexSet::cube(2, p)), {}};

  // x bit pipeline: at the i1 = 1 face a bit arrives from the previous
  // word-level iteration (when x is pipelined at all); elsewhere from
  // the previous grid row.
  {
    ir::Statement st{{"x", id}, {}, "x(q) = x entry / pipeline"};
    if (word.h1) st.reads.push_back({"x", back(lift_word(*word.h1)), at_face1});
    st.reads.push_back({"x", back(d4), off_face1});
    prog.statements.push_back(std::move(st));
  }
  // y bit pipeline, symmetric on the i2 = 1 face.
  {
    ir::Statement st{{"y", id}, {}, "y(q) = y entry / pipeline"};
    if (word.h2) st.reads.push_back({"y", back(lift_word(*word.h2)), at_face2});
    st.reads.push_back({"y", back(d5), off_face2});
    prog.statements.push_back(std::move(st));
  }

  // The compressor cell: reads every summand its expansion supplies,
  // writes the new partial-sum bit z(q).
  {
    ir::Statement st{{"z", id}, {}, "z(q) = cell sum"};
    st.reads.push_back({"x", id});
    st.reads.push_back({"y", id});
    if (e == Expansion::kI) {
      // Partial sums forwarded point-to-point every iteration; the
      // diagonal reduction and second carries only at the chain end.
      st.reads.push_back({"z", back(d3)});
      st.reads.push_back({"z", back(d6), boundary && off_face1});
      st.reads.push_back({"c", back(d5), off_face2});
      st.reads.push_back({"cp", back(d7), boundary && ValidityRegion::coord_ge(i2c, 3)});
    } else {
      // Full multiplication each iteration; final z bits injected at the
      // grid boundary cells i1 = p or i2 = 1.
      st.reads.push_back(
          {"z", back(d3), ValidityRegion::coord_eq(i1c, p) || at_face2});
      st.reads.push_back({"z", back(d6), off_face1});
      st.reads.push_back({"c", back(d5), off_face2});
      st.reads.push_back(
          {"cp", back(d7), ValidityRegion::coord_eq(i1c, p) && ValidityRegion::coord_ge(i2c, 3)});
    }
    prog.statements.push_back(std::move(st));
  }

  // Carry producers. Their inputs are the same bits the z statement
  // already reads, so they carry no reads of their own; they exist so
  // consumers find their producers in the trace.
  prog.statements.push_back({{"c", id}, {}, "c(q) = cell carry"});
  {
    ir::Statement st{{"cp", id}, {}, "cp(q) = cell second carry"};
    st.guard = e == Expansion::kI ? boundary : ValidityRegion::coord_eq(i1c, p);
    prog.statements.push_back(std::move(st));
  }

  prog.validate();
  return prog;
}

}  // namespace bitlevel::core
