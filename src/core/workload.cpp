#include "core/workload.hpp"

#include <optional>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::core {

namespace {

void fill_chained(std::map<IntVec, std::uint64_t>& table, const ir::WordLevelModel& model,
                  const std::optional<IntVec>& h, std::uint64_t bound, Xoshiro256& rng) {
  model.domain.for_each([&](const IntVec& j) {
    if (h && model.domain.contains(math::sub(j, *h))) {
      table[j] = table.at(math::sub(j, *h));  // lex order visits producers first
    } else {
      table[j] = bound == 0 ? 0 : rng() % (bound + 1);
    }
    return true;
  });
}

}  // namespace

Workload make_pipelined_workload(const ir::WordLevelModel& model, std::uint64_t bound,
                                 std::uint64_t seed) {
  model.validate();
  Xoshiro256 rng(seed);
  Workload w;
  fill_chained(w.x, model, model.h1, bound, rng);
  fill_chained(w.y, model, model.h2, bound, rng);
  return w;
}

Workload make_safe_workload(const ir::WordLevelModel& model, Int p, Expansion e,
                            std::uint64_t seed) {
  return make_pipelined_workload(model, max_safe_operand(p, max_chain_length(model), e), seed);
}

ir::WordLevelModel batch_model(const ir::WordLevelModel& model, Int batches) {
  model.validate();
  BL_REQUIRE(batches >= 1, "need at least one batch");
  auto extend = [](const std::optional<IntVec>& h) -> std::optional<IntVec> {
    if (!h) return std::nullopt;
    return math::concat({0}, *h);
  };
  ir::WordLevelModel out{ir::IndexSet(math::concat({1}, model.domain.lower()),
                                      math::concat({batches}, model.domain.upper())),
                         extend(model.h1),
                         extend(model.h2),
                         extend(model.h3),
                         model.name + "_batched",
                         {}};
  out.coord_names.push_back("b");
  for (std::size_t i = 0; i < model.dim(); ++i) {
    out.coord_names.push_back(i < model.coord_names.size() ? model.coord_names[i]
                                                           : "j" + std::to_string(i + 1));
  }
  out.validate();
  return out;
}

}  // namespace bitlevel::core
