#include "core/structure.hpp"

#include <sstream>

namespace bitlevel::core {

std::string to_string(Expansion e) {
  return e == Expansion::kI ? "Expansion I (partial-sum forwarding)"
                            : "Expansion II (final-sum boundary addition)";
}

std::string BitLevelStructure::to_string() const {
  std::ostringstream os;
  os << "bit-level structure of '" << word.name << "' (p = " << p << ", "
     << core::to_string(expansion) << ")\n"
     << "J = " << domain.to_string() << "\nD:\n"
     << deps.to_string(coord_names);
  return os.str();
}

}  // namespace bitlevel::core
