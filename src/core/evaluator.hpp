// Functional (bit-exact) evaluation of expanded bit-level algorithms.
//
// The evaluator executes the bit-level computation an expansion
// describes — full-adder cells, carry chains, boundary injections — and
// returns the accumulated z words, so tests can check the architecture
// computes the same values as the word-level reference.
//
// The evaluator implements the paper-exact p x p grids (no east-edge
// carry completion), i.e. exactly what the simulated architectures of
// Figs. 4 and 5 compute. Any bit that would leave the grid raises
// OverflowError (never silent wrap). Sufficient preconditions for
// loss-free operation, validated exhaustively in the tests (DESIGN.md,
// "carry completion and capacity"):
//   - Expansion I:  sum over each accumulation chain of x(j) must stay
//     <= 2^(p-1) - 1  (rows are p-bit registers and the final diagonal
//     reduction needs one bit of headroom);
//   - Expansion II: x(j) < 2^(p-1) (the i2-indexed operand's top bit
//     clear, so column p carries no partial products) and every
//     intermediate z(j) < 2^(2p-1) (the bits the boundary re-injects).
// max_safe_operand() computes bounds the workload generators use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "core/structure.hpp"

namespace bitlevel::core {

/// Operand word at a word-level index point.
using OperandFn = std::function<std::uint64_t(const IntVec&)>;

/// Result of a bit-level evaluation.
struct BitLevelResult {
  /// Accumulated z word per word-level index point. Expansion II
  /// materializes z(j) at every point; Expansion I only at the
  /// accumulation-boundary points (elsewhere z exists only as the
  /// distributed p^2-bit partial-sum state).
  std::map<IntVec, std::uint64_t> z;
};

/// Execute the expansion's bit-level computation over the whole index
/// set. x/y supply operand words per word-level point (must fit p bits).
BitLevelResult evaluate_bitlevel(const BitLevelStructure& s, const OperandFn& x,
                                 const OperandFn& y);

/// Word-level reference: z(j) = z(j - h3) + x(j) * y(j) in plain 64-bit
/// arithmetic, at every word-level point.
std::map<IntVec, std::uint64_t> evaluate_word_reference(const ir::WordLevelModel& word,
                                                        const OperandFn& x, const OperandFn& y);

/// Longest accumulation chain (number of points linked by h3) in the
/// model's domain.
Int max_chain_length(const ir::WordLevelModel& word);

/// Largest operand magnitude that satisfies the capacity precondition
/// for chains of the given length (both operands drawn from
/// [0, bound]).
std::uint64_t max_safe_operand(Int p, Int chain_length, Expansion e);

}  // namespace bitlevel::core
