#include "core/expansion.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bitlevel::core {

namespace {

using ir::ValidityRegion;

/// [h; 0, 0] — a word-level vector lifted into the composed space.
IntVec lift_word(const IntVec& h) { return math::concat(h, IntVec{0, 0}); }

/// [0...0; delta] — an arithmetic-level vector lifted.
IntVec lift_arith(std::size_t n, const IntVec& delta) {
  return math::concat(IntVec(n, 0), delta);
}

}  // namespace

ir::ValidityRegion accumulation_boundary(const ir::WordLevelModel& word,
                                         std::size_t total_dims) {
  BL_REQUIRE(word.h3.has_value(), "accumulation boundary requires h3");
  BL_REQUIRE(total_dims >= word.dim(), "composed dimension must include the word dimensions");
  const IntVec& h3 = *word.h3;
  const IntVec& lo = word.domain.lower();
  const IntVec& hi = word.domain.upper();
  bool have = false;
  ValidityRegion region = ValidityRegion::all();
  for (std::size_t k = 0; k < h3.size(); ++k) {
    if (h3[k] == 0) continue;
    // j_k + h3_k leaves [lo_k, hi_k].
    ValidityRegion atom = h3[k] > 0 ? ValidityRegion::coord_ge(k, hi[k] - h3[k] + 1)
                                    : ValidityRegion::coord_le(k, lo[k] - h3[k] - 1);
    region = have ? (region || atom) : atom;
    have = true;
  }
  BL_REQUIRE(have, "h3 must be nonzero");
  return region;
}

BitLevelStructure expand(const ir::WordLevelModel& word, Int p, Expansion e) {
  word.validate();
  BL_REQUIRE(p >= 1, "operand width must be >= 1");
  BL_REQUIRE(word.h3.has_value(), "expansion requires an accumulation vector h3");
  for (const auto* h : {&word.h1, &word.h2, &word.h3}) {
    if (h->has_value()) {
      BL_REQUIRE(math::lex_positive(**h),
                 "pipelining vectors must be lexicographically positive");
    }
  }

  const std::size_t n = word.dim();
  const std::size_t i1c = n;      // coordinate index of i1
  const std::size_t i2c = n + 1;  // coordinate index of i2

  BitLevelStructure s{word.domain.product(ir::IndexSet::cube(2, p)),
                      {},
                      word,
                      p,
                      e,
                      {}};
  // Coordinate names j1..jn, i1, i2.
  for (std::size_t k = 0; k < n; ++k) {
    s.coord_names.push_back(k < word.coord_names.size() && !word.coord_names[k].empty()
                                ? word.coord_names[k]
                                : "j" + std::to_string(k + 1));
  }
  s.coord_names.push_back("i1");
  s.coord_names.push_back("i2");

  const ValidityRegion boundary = accumulation_boundary(word, n + 2);

  // d1, d2: word-level operand pipelining, entering the arithmetic grid
  // at its i1 = 1 / i2 = 1 faces.
  if (word.h1) s.deps.add({lift_word(*word.h1), "x", ValidityRegion::coord_eq(i1c, 1)});
  if (word.h2) s.deps.add({lift_word(*word.h2), "y", ValidityRegion::coord_eq(i2c, 1)});

  // d3: the accumulation flow z(j - h3) -> z(j). Uniform under
  // Expansion I (partial sums forwarded cell-to-cell); restricted to the
  // boundary cells i1 = p or i2 = 1 under Expansion II (final bits).
  {
    ValidityRegion v = e == Expansion::kI
                           ? ValidityRegion::all()
                           : (ValidityRegion::coord_eq(i1c, p) || ValidityRegion::coord_eq(i2c, 1));
    s.deps.add({lift_word(*word.h3), "z", std::move(v)});
  }

  // d4, d5: the add-shift grid's internal pipelining (delta1, delta2 of
  // eq. 3.4, prefixed by zeros). Present regardless of h1/h2: operand
  // bits always traverse the grid once inside an iteration.
  s.deps.add({lift_arith(n, {1, 0}), "x", ValidityRegion::coord_ne(i1c, 1)});
  s.deps.add({lift_arith(n, {0, 1}), "y,c", ValidityRegion::coord_ne(i2c, 1)});

  // d6: the diagonal partial-sum flow (delta3). Uniform under Expansion
  // II (each iteration is a full multiplication); only on the
  // accumulation boundary under Expansion I (deferred final reduction).
  {
    ValidityRegion v = e == Expansion::kI ? boundary : ValidityRegion::all();
    s.deps.add({lift_arith(n, {1, -1}), "z", std::move(v)});
  }

  // d7: the second carry c' where more than three bits are summed.
  {
    ValidityRegion v =
        e == Expansion::kI
            ? (boundary && (ValidityRegion::coord_ne(i1c, 1) ||
                            !ValidityRegion::coord_in(i2c, {1, 2})))
            : ValidityRegion::coord_eq(i1c, p);
    s.deps.add({lift_arith(n, {0, 2}), "c'", std::move(v)});
  }

  return s;
}

Int LoadHistogram::max_inputs() const {
  for (std::size_t k = count.size(); k-- > 0;) {
    if (count[k] != 0) return static_cast<Int>(k);
  }
  return 0;
}

std::string LoadHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < count.size(); ++k) {
    if (count[k] != 0) os << k << " inputs: " << count[k] << " points\n";
  }
  return os.str();
}

LoadHistogram compute_load_histogram(const BitLevelStructure& s) {
  LoadHistogram h;
  h.count.assign(8, 0);
  s.domain.for_each([&](const IntVec& q) {
    // Every cell sums its partial-product bit plus each dependence-
    // carried summand (z flows, the carry, the second carry) that is
    // valid here with a producer inside J. Operand pipelining (x, y)
    // feeds the AND gate, not the adder.
    Int inputs = 1;
    for (const auto& col : s.deps.columns()) {
      if (col.cause != "z" && col.cause != "y,c" && col.cause != "c'") continue;
      if (!col.valid.contains(q)) continue;
      if (!s.domain.contains(math::sub(q, col.d))) continue;
      ++inputs;
    }
    h.count[static_cast<std::size_t>(inputs)] += 1;
    return true;
  });
  return h;
}

}  // namespace bitlevel::core
