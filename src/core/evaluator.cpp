#include "core/evaluator.hpp"

#include <cmath>
#include <vector>

#include "arith/bits.hpp"
#include "arith/grid_pass.hpp"
#include "core/expansion.hpp"
#include "support/error.hpp"

namespace bitlevel::core {

namespace {

using arith::from_bits;
using arith::max_value;
using arith::to_bits;

/// One Expansion I interior step: add the partial-product matrix of
/// (xv, yv) into the p^2-bit distributed state with carries rippling
/// east within each row. Rows are p-bit registers: a carry out of the
/// east edge means the capacity precondition was violated.
std::vector<int> row_accumulate(Int p, const std::vector<int>& state, std::uint64_t xv,
                                std::uint64_t yv) {
  const int pi = static_cast<int>(p);
  const std::vector<int> xb = to_bits(xv, pi);
  const std::vector<int> yb = to_bits(yv, pi);
  std::vector<int> next(static_cast<std::size_t>(p * p), 0);
  for (int i1 = 1; i1 <= pi; ++i1) {
    int carry = 0;
    for (int i2 = 1; i2 <= pi; ++i2) {
      const std::size_t at = static_cast<std::size_t>((i1 - 1) * p + (i2 - 1));
      const int pp = xb[static_cast<std::size_t>(i2 - 1)] & yb[static_cast<std::size_t>(i1 - 1)];
      const int total = pp + state[at] + carry;
      next[at] = total & 1;
      carry = total >> 1;
    }
    if (carry != 0) {
      throw OverflowError(
          "Expansion I row overflow: accumulation chain exceeds the p-bit row capacity "
          "(see max_safe_operand)");
    }
  }
  return next;
}

/// The paper-exact p x p reduction grid with diagonal flow: exactly the
/// dependence structure of Figs. 3-5, with no virtual columns. Cell
/// (i1, i2) sums pp + inject + carry-in + second-carry-in + diagonal-in
/// and emits s/c/c'. Any carry that would leave the grid other than the
/// extracted output bit c(p, p) raises OverflowError.
struct PaperGrid {
  Int p;
  std::vector<int> s, c, cp;

  std::size_t at(Int i1, Int i2) const {
    return static_cast<std::size_t>((i1 - 1) * p + (i2 - 1));
  }

  /// 2p output bits: s(i, 1) for i <= p, s(p, i-p+1) for p < i <= 2p-1,
  /// and c(p, p) as bit 2p.
  std::uint64_t output_value() const {
    std::vector<int> bits;
    bits.reserve(static_cast<std::size_t>(2 * p));
    for (Int i = 1; i <= p; ++i) bits.push_back(s[at(i, 1)]);
    for (Int i2 = 2; i2 <= p; ++i2) bits.push_back(s[at(p, i2)]);
    bits.push_back(c[at(p, p)]);
    return from_bits(bits);
  }
};

PaperGrid paper_grid_pass(Int p, const arith::CellBit& pp, const arith::CellBit& inject) {
  PaperGrid g{p, {}, {}, {}};
  const auto cells = static_cast<std::size_t>(p * p);
  g.s.assign(cells, 0);
  g.c.assign(cells, 0);
  g.cp.assign(cells, 0);
  for (Int i1 = 1; i1 <= p; ++i1) {
    for (Int i2 = 1; i2 <= p; ++i2) {
      const int total = (pp ? pp(i1, i2) : 0) + (inject ? inject(i1, i2) : 0) +
                        (i2 >= 2 ? g.c[g.at(i1, i2 - 1)] : 0) +
                        (i2 >= 3 ? g.cp[g.at(i1, i2 - 2)] : 0) +
                        (i1 >= 2 && i2 + 1 <= p ? g.s[g.at(i1 - 1, i2 + 1)] : 0);
      g.s[g.at(i1, i2)] = total & 1;
      g.c[g.at(i1, i2)] = (total >> 1) & 1;
      g.cp[g.at(i1, i2)] = (total >> 2) & 1;
    }
  }
  // Bits leaving the east edge are lost by the paper's structure; the
  // capacity preconditions guarantee they are zero.
  for (Int i1 = 1; i1 <= p; ++i1) {
    const bool lost = (i1 < p && g.c[g.at(i1, p)] != 0) || g.cp[g.at(i1, p)] != 0 ||
                      (p >= 2 && g.cp[g.at(i1, p - 1)] != 0);
    if (lost) {
      throw OverflowError("bit-level grid overflow at row " + std::to_string(i1) +
                          ": operands violate the capacity precondition (see "
                          "max_safe_operand)");
    }
  }
  return g;
}

arith::CellBit partial_products(const std::vector<int>& xb, const std::vector<int>& yb) {
  return [&xb, &yb](Int i1, Int i2) {
    return xb[static_cast<std::size_t>(i2 - 1)] & yb[static_cast<std::size_t>(i1 - 1)];
  };
}

BitLevelResult evaluate_expansion1(const BitLevelStructure& s, const OperandFn& x,
                                   const OperandFn& y) {
  const Int p = s.p;
  const ir::ValidityRegion boundary = accumulation_boundary(s.word, s.dim());
  const IntVec h3 = *s.word.h3;
  const ir::IndexSet& jw = s.word.domain;

  BitLevelResult out;
  std::map<IntVec, std::vector<int>> state;
  jw.for_each([&](const IntVec& j) {
    const std::uint64_t xv = x(j);
    const std::uint64_t yv = y(j);
    BL_REQUIRE(xv <= max_value(static_cast<int>(p)) && yv <= max_value(static_cast<int>(p)),
               "operands must fit in p bits");
    std::vector<int> prev(static_cast<std::size_t>(p * p), 0);
    const IntVec producer = math::sub(j, h3);
    if (auto it = state.find(producer); it != state.end()) {
      prev = std::move(it->second);
      state.erase(it);  // each state has exactly one consumer
    }
    if (!boundary.contains(j)) {
      state.emplace(j, row_accumulate(p, prev, xv, yv));
    } else {
      // Chain end: the deferred diagonal reduction with the accumulated
      // state injected per cell.
      const std::vector<int> xb = to_bits(xv, static_cast<int>(p));
      const std::vector<int> yb = to_bits(yv, static_cast<int>(p));
      const PaperGrid grid = paper_grid_pass(p, partial_products(xb, yb), [&](Int i1, Int i2) {
        return prev[static_cast<std::size_t>((i1 - 1) * p + (i2 - 1))];
      });
      out.z.emplace(j, grid.output_value());
    }
    return true;
  });
  return out;
}

BitLevelResult evaluate_expansion2(const BitLevelStructure& s, const OperandFn& x,
                                   const OperandFn& y) {
  const Int p = s.p;
  const IntVec h3 = *s.word.h3;
  const std::uint64_t reinject_limit = 1ULL << (2 * p - 1);

  BitLevelResult out;
  s.word.domain.for_each([&](const IntVec& j) {
    const std::uint64_t xv = x(j);
    const std::uint64_t yv = y(j);
    BL_REQUIRE(xv <= max_value(static_cast<int>(p)) && yv <= max_value(static_cast<int>(p)),
               "operands must fit in p bits");
    std::uint64_t zin = 0;
    const IntVec producer = math::sub(j, h3);
    if (auto it = out.z.find(producer); it != out.z.end()) zin = it->second;
    if (zin >= reinject_limit) {
      throw OverflowError(
          "Expansion II overflow: intermediate z exceeds the 2p-1 bits the boundary cells "
          "re-inject (see max_safe_operand)");
    }
    const std::vector<int> xb = to_bits(xv, static_cast<int>(p));
    const std::vector<int> yb = to_bits(yv, static_cast<int>(p));
    const PaperGrid grid = paper_grid_pass(p, partial_products(xb, yb), [&](Int i1, Int i2) {
      // The 2p-1 final bits of z(j - h3) enter at the boundary cells:
      // bit i1 at (i1, 1) for i1 < p, bit p+i2-1 at (p, i2).
      if (i2 == 1 && i1 <= p - 1) return static_cast<int>((zin >> (i1 - 1)) & 1);
      if (i1 == p) return static_cast<int>((zin >> (p + i2 - 2)) & 1);
      return 0;
    });
    out.z.emplace(j, grid.output_value());
    return true;
  });
  return out;
}

}  // namespace

BitLevelResult evaluate_bitlevel(const BitLevelStructure& s, const OperandFn& x,
                                 const OperandFn& y) {
  return s.expansion == Expansion::kI ? evaluate_expansion1(s, x, y)
                                      : evaluate_expansion2(s, x, y);
}

std::map<IntVec, std::uint64_t> evaluate_word_reference(const ir::WordLevelModel& word,
                                                        const OperandFn& x, const OperandFn& y) {
  word.validate();
  BL_REQUIRE(word.h3.has_value(), "reference accumulation requires h3");
  std::map<IntVec, std::uint64_t> z;
  word.domain.for_each([&](const IntVec& j) {
    std::uint64_t acc = 0;
    if (auto it = z.find(math::sub(j, *word.h3)); it != z.end()) acc = it->second;
    z.emplace(j, acc + x(j) * y(j));
    return true;
  });
  return z;
}

Int max_chain_length(const ir::WordLevelModel& word) {
  BL_REQUIRE(word.h3.has_value(), "chain length requires h3");
  const IntVec& h3 = *word.h3;
  Int chain = 0;
  bool bounded = false;
  for (std::size_t k = 0; k < h3.size(); ++k) {
    if (h3[k] == 0) continue;
    const Int extent = word.domain.upper()[k] - word.domain.lower()[k];
    const Int step = h3[k] < 0 ? -h3[k] : h3[k];
    const Int links = extent / step;
    chain = bounded ? std::min(chain, links) : links;
    bounded = true;
  }
  BL_REQUIRE(bounded, "h3 must be nonzero");
  return chain + 1;
}

std::uint64_t max_safe_operand(Int p, Int chain_length, Expansion e) {
  BL_REQUIRE(p >= 2 && p <= 31 && chain_length >= 1, "invalid capacity query");
  const std::uint64_t half = (1ULL << (p - 1)) - 1;  // 2^(p-1) - 1
  if (e == Expansion::kI) {
    // sum over the chain of x(j) must stay <= 2^(p-1) - 1.
    return half / static_cast<std::uint64_t>(chain_length);
  }
  // x < 2^(p-1) and chain_length * m^2 < 2^(2p-1).
  const long double limit =
      (std::pow(2.0L, static_cast<long double>(2 * p - 1)) - 1.0L) /
      static_cast<long double>(chain_length);
  const std::uint64_t m = static_cast<std::uint64_t>(std::sqrt(limit));
  return std::min(m, half);
}

}  // namespace bitlevel::core
