// The bit-level dependence structure produced by algorithm expansion.
#pragma once

#include <string>
#include <vector>

#include "ir/triplet.hpp"

namespace bitlevel::core {

using math::Int;
using math::IntVec;

/// The two algorithm expansions of Section 3.2.
///
/// kI  — partial-sum forwarding (Fig. 2b / Fig. 3b, matrix D_I of eq.
///       3.8): the p^2 partial-sum bits of z(j - h3) flow point-to-point
///       into iteration j (d3 uniform); the diagonal reduction (d6) and
///       the second carry (d7) appear only on the accumulation boundary.
/// kII — final-sum boundary addition (Fig. 2a / Fig. 3c, matrix D_II of
///       eq. 3.9): every iteration performs a complete add-shift
///       multiplication (d6 uniform) and the 2p-1 final bits of
///       z(j - h3) are injected at the boundary cells i1 = p or i2 = 1
///       (d3 valid there); second carries live on the i1 = p hyperplane.
enum class Expansion { kI, kII };

std::string to_string(Expansion e);

/// Bit-level algorithm structure: the (J, D) of Theorem 3.1 with
/// bookkeeping for the embedded word-level model.
struct BitLevelStructure {
  ir::IndexSet domain;          ///< J = J_w x J_as  (n+2 dimensions).
  ir::DependenceMatrix deps;    ///< D_I or D_II with validity regions.
  ir::WordLevelModel word;      ///< The word-level model that was expanded.
  Int p = 0;                    ///< Operand width in bits.
  Expansion expansion = Expansion::kI;
  std::vector<std::string> coord_names;  ///< j1..jn, i1, i2.

  std::size_t word_dims() const { return word.dim(); }
  std::size_t dim() const { return domain.dim(); }

  /// Index of the i1 / i2 coordinate within the composed index vector.
  std::size_t i1_coord() const { return word_dims(); }
  std::size_t i2_coord() const { return word_dims() + 1; }

  std::string to_string() const;
};

}  // namespace bitlevel::core
