#include "arith/bits.hpp"

#include "support/error.hpp"

namespace bitlevel::arith {

std::vector<int> to_bits(std::uint64_t value, int width) {
  BL_REQUIRE(width >= 1 && width <= 63, "bit width must be in [1, 63]");
  BL_REQUIRE(width == 63 || value < (1ULL << width), "value does not fit in the requested width");
  std::vector<int> bits(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bits[static_cast<std::size_t>(i)] = (value >> i) & 1U;
  return bits;
}

std::uint64_t from_bits(const std::vector<int>& bits) {
  BL_REQUIRE(bits.size() <= 64, "too many bits for a 64-bit value");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    BL_REQUIRE(bits[i] == 0 || bits[i] == 1, "bit values must be 0 or 1");
    value |= static_cast<std::uint64_t>(bits[i]) << i;
  }
  return value;
}

std::uint64_t max_value(int width) {
  BL_REQUIRE(width >= 1 && width <= 63, "bit width must be in [1, 63]");
  return (1ULL << width) - 1;
}

}  // namespace bitlevel::arith
