// One combinational pass of the add-shift reduction grid.
//
// Both algorithm expansions reduce to passes over a p x (p+2) grid of
// compressor cells. Cell (i1, i2) sums up to five bits —
//   - its partial-product bit pp(i1, i2)            (zero on virtual columns),
//   - an injected bit inject(i1, i2)                (Expansion I state or
//     Expansion II boundary z bits; zero for plain multiplication),
//   - the carry from (i1, i2-1)        [delta2 / d5],
//   - the second carry from (i1, i2-2) [delta4 / d7],
//   - the diagonal partial sum from (i1-1, i2+1) [delta3 / d6] —
// and produces a sum bit s, carry c (weight 2) and second carry c'
// (weight 4).
//
// Columns p+1 and p+2 are *virtual*: they carry no partial product and
// exist so that carries leaving the east edge of row i1 (weights
// 2^{i1+p-1}, 2^{i1+p}) re-enter row i1+1 through the diagonal, exactly
// the completion the paper's boundary condition s(i1, p+1) = 0 glosses
// over (without it the grid drops value — see tests/arith_addshift).
// The pass verifies that nothing escapes past column p+2, which the
// capacity analysis guarantees.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "math/checked.hpp"

namespace bitlevel::arith {

/// Bit source for a grid pass: (i1, i2) -> 0/1, with 1 <= i1, i2 <= p.
using CellBit = std::function<int(math::Int i1, math::Int i2)>;

/// Result of one grid pass over p rows and p+2 columns.
class GridPassResult {
 public:
  GridPassResult(math::Int p, math::Int width);

  math::Int p() const { return p_; }
  math::Int width() const { return width_; }

  int s(math::Int i1, math::Int i2) const { return s_[index(i1, i2)]; }
  int c(math::Int i1, math::Int i2) const { return c_[index(i1, i2)]; }
  int c2(math::Int i1, math::Int i2) const { return c2_[index(i1, i2)]; }

  /// The reduced value, little-endian, 2p+3 bits: bit i (1-based) is
  /// s(i, 1) for i < p, then row p's cells and its east-edge carries.
  std::vector<int> output_bits() const;

  /// output_bits() as an integer.
  std::uint64_t output_value() const;

 private:
  friend GridPassResult run_grid_pass(math::Int p, const CellBit& pp, const CellBit& inject);
  std::size_t index(math::Int i1, math::Int i2) const;
  math::Int p_;
  math::Int width_;
  std::vector<int> s_, c_, c2_;
};

/// Run one pass. `pp` supplies partial-product bits over [1,p]^2 and
/// `inject` the per-cell injected bit (may be nullptr for all-zero).
/// Throws OverflowError if any value would escape the east edge — the
/// capacity precondition documented in DESIGN.md was violated.
GridPassResult run_grid_pass(math::Int p, const CellBit& pp, const CellBit& inject);

}  // namespace bitlevel::arith
