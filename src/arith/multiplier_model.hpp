// Word-level processing-element latency models (Section 4.2).
//
// The word-level baseline architecture executes one multiply-accumulate
// per beat; the beat length t_b depends on the arithmetic algorithm
// inside the PE. The paper compares against two models:
//   - add-shift:  t_b = O(p^2)  (p sequential add-shift steps, each a
//                 p-bit ripple addition) -> speedup O(p^2) for Fig. 4
//   - carry-save: t_b = O(p)    (carry-save array multiplier)
//                 -> speedup O(p)
#pragma once

#include <string>

#include "arith/add_shift.hpp"
#include "arith/carry_save.hpp"

namespace bitlevel::arith {

/// Which multiplier sits inside a word-level PE.
enum class WordMultiplier {
  kAddShift,   ///< Sequential add-shift, t_b = p^2.
  kCarrySave,  ///< Carry-save array, t_b = 2p.
};

/// Beat length t_b (cycles per word-level multiply-accumulate).
inline math::Int word_pe_latency(WordMultiplier kind, math::Int p) {
  switch (kind) {
    case WordMultiplier::kAddShift:
      return AddShiftMultiplier::sequential_latency(p);
    case WordMultiplier::kCarrySave:
      return CarrySaveMultiplier::latency(p);
  }
  return 0;  // unreachable
}

inline std::string to_string(WordMultiplier kind) {
  switch (kind) {
    case WordMultiplier::kAddShift:
      return "add-shift (t_b = p^2)";
    case WordMultiplier::kCarrySave:
      return "carry-save (t_b = 2p)";
  }
  return "?";
}

}  // namespace bitlevel::arith
