#include "arith/add_shift.hpp"

#include "arith/bits.hpp"
#include "arith/grid_pass.hpp"
#include "support/error.hpp"

namespace bitlevel::arith {

int AddShiftGrid::s(Int i1, Int i2) const {
  BL_REQUIRE(i1 >= 1 && i1 <= p && i2 >= 1 && i2 <= p, "cell index out of range");
  return s_cell[static_cast<std::size_t>((i1 - 1) * p + (i2 - 1))];
}

int AddShiftGrid::c(Int i1, Int i2) const {
  BL_REQUIRE(i1 >= 1 && i1 <= p && i2 >= 1 && i2 <= p, "cell index out of range");
  return c_cell[static_cast<std::size_t>((i1 - 1) * p + (i2 - 1))];
}

AddShiftMultiplier::AddShiftMultiplier(Int p) : p_(p) {
  BL_REQUIRE(p >= 1 && p <= 31, "operand width must be in [1, 31] bits");
}

AddShiftGrid AddShiftMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  const int p = static_cast<int>(p_);
  BL_REQUIRE(a <= max_value(p) && b <= max_value(p), "operands must fit in p bits");
  const std::vector<int> abits = to_bits(a, p);
  const std::vector<int> bbits = to_bits(b, p);

  // One pass of the reduction grid with no injected bits; the virtual
  // columns implement the east-edge carry completion (see grid_pass.hpp).
  const GridPassResult pass = run_grid_pass(
      p_,
      [&](Int i1, Int i2) {
        return abits[static_cast<std::size_t>(i2 - 1)] & bbits[static_cast<std::size_t>(i1 - 1)];
      },
      nullptr);

  AddShiftGrid grid;
  grid.p = p_;
  grid.s_cell.assign(static_cast<std::size_t>(p * p), 0);
  grid.c_cell.assign(static_cast<std::size_t>(p * p), 0);
  for (int i1 = 1; i1 <= p; ++i1) {
    for (int i2 = 1; i2 <= p; ++i2) {
      const std::size_t at = static_cast<std::size_t>((i1 - 1) * p + (i2 - 1));
      grid.s_cell[at] = pass.s(i1, i2);
      grid.c_cell[at] = pass.c(i1, i2);
    }
  }

  // The product of two p-bit operands fits in 2p bits; bits above 2p of
  // the pass output are structurally zero for plain multiplication.
  std::vector<int> bits = pass.output_bits();
  for (std::size_t i = static_cast<std::size_t>(2 * p); i < bits.size(); ++i) {
    BL_REQUIRE(bits[i] == 0, "product exceeded 2p bits");
  }
  bits.resize(static_cast<std::size_t>(2 * p));
  grid.product_bits = std::move(bits);
  grid.product = from_bits(grid.product_bits);
  return grid;
}

ir::AlgorithmTriplet AddShiftMultiplier::triplet() const {
  ir::AlgorithmTriplet t{ir::IndexSet::cube(2, p_), {}, {}, {"i1", "i2"}};
  t.deps.add({delta1(), "a", ir::ValidityRegion::all()});
  t.deps.add({delta2(), "b,c", ir::ValidityRegion::all()});
  t.deps.add({delta3(), "s", ir::ValidityRegion::all()});
  t.computations = {
      "a(i) = a(i - delta1)",
      "b(i) = b(i - delta2)",
      "c(i) = g(a(i) & b(i), c(i - delta2), s(i - delta3))",
      "s(i) = f(a(i) & b(i), c(i - delta2), s(i - delta3))",
  };
  return t;
}

ir::Program AddShiftMultiplier::access_program() const {
  const ir::AffineMap id = ir::AffineMap::identity(2);
  const ir::AffineMap m_d1 = ir::AffineMap::translate(math::neg(delta1()));
  const ir::AffineMap m_d2 = ir::AffineMap::translate(math::neg(delta2()));
  const ir::AffineMap m_d3 = ir::AffineMap::translate(math::neg(delta3()));
  ir::Program prog{ir::IndexSet::cube(2, p_),
                   {
                       {{"a", id}, {{"a", m_d1}}, "a(i) = a(i - delta1)"},
                       {{"b", id}, {{"b", m_d2}}, "b(i) = b(i - delta2)"},
                       {{"c", id},
                        {{"a", id}, {"b", id}, {"c", m_d2}, {"s", m_d3}},
                        "c(i) = g(a&b, c(i - delta2), s(i - delta3))"},
                       {{"s", id},
                        {{"a", id}, {"b", id}, {"c", m_d2}, {"s", m_d3}},
                        "s(i) = f(a&b, c(i - delta2), s(i - delta3))"},
                   }};
  prog.validate();
  return prog;
}

}  // namespace bitlevel::arith
