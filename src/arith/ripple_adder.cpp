#include "arith/ripple_adder.hpp"

#include "arith/bits.hpp"
#include "support/error.hpp"

namespace bitlevel::arith {

RippleCarryAdder::RippleCarryAdder(math::Int p) : p_(p) {
  BL_REQUIRE(p >= 1 && p <= 62, "operand width must be in [1, 62] bits");
}

RippleCarryResult RippleCarryAdder::add(std::uint64_t a, std::uint64_t b) const {
  const int p = static_cast<int>(p_);
  BL_REQUIRE(a <= max_value(p) && b <= max_value(p), "operands must fit in p bits");
  const std::vector<int> abits = to_bits(a, p);
  const std::vector<int> bbits = to_bits(b, p);

  RippleCarryResult out;
  out.sum_bits.assign(static_cast<std::size_t>(p + 1), 0);
  out.carry_chain.assign(static_cast<std::size_t>(p), 0);
  int carry = 0;
  for (int i = 0; i < p; ++i) {
    const int ai = abits[static_cast<std::size_t>(i)];
    const int bi = bbits[static_cast<std::size_t>(i)];
    out.sum_bits[static_cast<std::size_t>(i)] = sum_f(ai, bi, carry);
    carry = carry_g(ai, bi, carry);
    out.carry_chain[static_cast<std::size_t>(i)] = carry;
  }
  out.sum_bits[static_cast<std::size_t>(p)] = carry;
  out.sum = from_bits(out.sum_bits);
  return out;
}

ir::AlgorithmTriplet RippleCarryAdder::triplet() const {
  ir::AlgorithmTriplet t{ir::IndexSet(math::IntVec{1}, math::IntVec{p_}), {}, {}, {"i"}};
  t.deps.add({math::IntVec{1}, "c", ir::ValidityRegion::all()});
  t.computations = {
      "s(i) = f(a(i), b(i), c(i - 1))",
      "c(i) = g(a(i), b(i), c(i - 1))",
  };
  return t;
}

ir::Program RippleCarryAdder::access_program() const {
  const ir::AffineMap id = ir::AffineMap::identity(1);
  const ir::AffineMap prev = ir::AffineMap::translate(math::IntVec{-1});
  ir::Program prog{ir::IndexSet(math::IntVec{1}, math::IntVec{p_}),
                   {
                       {{"s", id}, {{"c", prev}}, "s(i) = f(a_i, b_i, c(i-1))"},
                       {{"c", id}, {{"c", prev}}, "c(i) = g(a_i, b_i, c(i-1))"},
                   }};
  prog.validate();
  return prog;
}

}  // namespace bitlevel::arith
