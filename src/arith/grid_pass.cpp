#include "arith/grid_pass.hpp"

#include "arith/bits.hpp"
#include "support/error.hpp"

namespace bitlevel::arith {

GridPassResult::GridPassResult(math::Int p, math::Int width) : p_(p), width_(width) {
  const auto n = static_cast<std::size_t>(p * width);
  s_.assign(n, 0);
  c_.assign(n, 0);
  c2_.assign(n, 0);
}

std::size_t GridPassResult::index(math::Int i1, math::Int i2) const {
  BL_REQUIRE(i1 >= 1 && i1 <= p_ && i2 >= 1 && i2 <= width_, "grid cell index out of range");
  return static_cast<std::size_t>((i1 - 1) * width_ + (i2 - 1));
}

std::vector<int> GridPassResult::output_bits() const {
  // Bits 1..p-1 exit at column 1 of rows 1..p-1; row p holds the rest,
  // including its own east-edge carries as the top two bits.
  std::vector<int> bits;
  bits.reserve(static_cast<std::size_t>(p_ - 1 + width_ + 2));
  for (math::Int i = 1; i <= p_ - 1; ++i) bits.push_back(s(i, 1));
  for (math::Int i2 = 1; i2 <= width_; ++i2) bits.push_back(s(p_, i2));
  const int extra = c(p_, width_) + 2 * c2(p_, width_) + c2(p_, width_ - 1);
  bits.push_back(extra & 1);
  bits.push_back((extra >> 1) & 1);
  return bits;
}

std::uint64_t GridPassResult::output_value() const { return from_bits(output_bits()); }

GridPassResult run_grid_pass(math::Int p, const CellBit& pp, const CellBit& inject) {
  BL_REQUIRE(p >= 1, "grid requires p >= 1");
  const math::Int width = p + 2;
  GridPassResult g(p, width);
  for (math::Int i1 = 1; i1 <= p; ++i1) {
    for (math::Int i2 = 1; i2 <= width; ++i2) {
      const int pp_bit = (i2 <= p && pp) ? pp(i1, i2) : 0;
      const int inject_bit = (i2 <= p && inject) ? inject(i1, i2) : 0;
      const int carry_in = (i2 >= 2) ? g.c(i1, i2 - 1) : 0;
      const int carry2_in = (i2 >= 3) ? g.c2(i1, i2 - 2) : 0;
      const int diag_in = (i1 >= 2 && i2 + 1 <= width) ? g.s(i1 - 1, i2 + 1) : 0;
      const int total = pp_bit + inject_bit + carry_in + carry2_in + diag_in;
      const std::size_t at = g.index(i1, i2);
      g.s_[at] = total & 1;
      g.c_[at] = (total >> 1) & 1;
      g.c2_[at] = (total >> 2) & 1;
    }
  }
  // Rows 1..p-1 must not lose value past the east edge; the capacity
  // analysis (DESIGN.md, "carry completion") guarantees two virtual
  // columns absorb everything.
  for (math::Int i1 = 1; i1 < p; ++i1) {
    if (g.c(i1, width) != 0 || g.c2(i1, width) != 0 || (width >= 2 && g.c2(i1, width - 1) != 0)) {
      throw OverflowError("grid pass overflow: value escaped the east edge of row " +
                          std::to_string(i1));
    }
  }
  return g;
}

}  // namespace bitlevel::arith
