// The add-shift multiplication algorithm (Hwang [3]; paper Section 3.1).
//
// Multiplies two nonnegative p-bit integers on a p x p grid of
// full-adder cells. Cell (i1, i2) adds the partial-product bit
// a_{i2} & b_{i1}, the carry from the west cell (i1, i2-1), and the
// partial-sum bit from the north-east cell (i1-1, i2+1), producing a new
// partial-sum bit and a carry (program (3.1)-(3.3), Fig. 1b/1c).
//
// The dependence structure is the triplet A_as = (J_as, D_as, E_as) of
// eq. (3.4): J_as = [1,p]^2 and
//     D_as = [ d1 d2 d3 ] = [ 1  0  1 ]   causes: a | b,c | s
//                           [ 0  1 -1 ]
//
// Output bits: s_i = s(i, 1) for 1 <= i <= p and s_i = s(p, i-p+1) for
// p < i <= 2p-1 (the paper keeps 2p-1 bits). Two corrections make the
// implementation exact for *all* p-bit operands:
//   1. carry completion — the carry leaving the east edge of row i1
//      becomes the diagonal input of row i1+1 (the paper's boundary
//      condition s(i1, p+1) = 0 silently drops it; see grid_pass.hpp);
//   2. the full 2p-bit product includes the final carry out of cell
//      (p, p) as bit 2p.
// Both are validated exhaustively in tests/arith_addshift_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::arith {

using math::Int;

/// Full cell-grid result of one add-shift multiplication.
struct AddShiftGrid {
  Int p = 0;
  /// s_cell[(i1-1)*p + (i2-1)] = partial-sum bit s(i1, i2), i1, i2 in [1, p].
  std::vector<int> s_cell;
  /// c_cell likewise for carry bits c(i1, i2).
  std::vector<int> c_cell;
  /// Product bits, little-endian, 2p bits (bit 2p is the carry out of
  /// cell (p, p); the paper's s has bits 1..2p-1).
  std::vector<int> product_bits;
  /// The product as an integer.
  std::uint64_t product = 0;

  int s(Int i1, Int i2) const;
  int c(Int i1, Int i2) const;
};

/// Bit-level add-shift multiplier.
class AddShiftMultiplier {
 public:
  /// Construct for p-bit operands, 1 <= p <= 31.
  explicit AddShiftMultiplier(Int p);

  Int p() const { return p_; }

  /// Evaluate the full grid for a * b; both operands must fit in p bits.
  AddShiftGrid multiply(std::uint64_t a, std::uint64_t b) const;

  /// The dependence triplet (J_as, D_as, E_as) of eq. (3.4).
  ir::AlgorithmTriplet triplet() const;

  /// The executable access-pattern program (3.3), for trace validation.
  ir::Program access_program() const;

  /// Dependence vectors delta_1, delta_2, delta_3 of (3.4).
  static math::IntVec delta1() { return {1, 0}; }
  static math::IntVec delta2() { return {0, 1}; }
  static math::IntVec delta3() { return {1, -1}; }

  /// Latency of a *sequential word-level* multiplier built from p
  /// add-shift steps, each a p-bit ripple-carry addition: p * p cycles.
  /// This is the t_b = O(p^2) model in the Section 4.2 comparison.
  static Int sequential_latency(Int p) { return math::checked_mul(p, p); }

 private:
  Int p_;
};

}  // namespace bitlevel::arith
