// Ripple-carry addition of two integers as a 1-D bit-level algorithm.
//
// The paper defers the adder's dependence structure to the technical
// report [7]; we re-derive it: index set J_rc = [1, p], one cell per bit
// position, with the single uniform dependence delta = [1] carrying the
// carry bit from position i-1 to position i. Cell i computes
//   s(i) = f(a_i, b_i, c(i-1)),   c(i) = g(a_i, b_i, c(i-1)).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::arith {

/// Result of one ripple-carry addition.
struct RippleCarryResult {
  std::vector<int> sum_bits;  ///< p+1 bits, little-endian (bit p+1 = carry out).
  std::uint64_t sum = 0;
  std::vector<int> carry_chain;  ///< c(1..p), for inspection.
};

/// Bit-level ripple-carry adder for p-bit operands.
class RippleCarryAdder {
 public:
  explicit RippleCarryAdder(math::Int p);

  math::Int p() const { return p_; }

  /// a + b with full carry chain; operands must fit in p bits.
  RippleCarryResult add(std::uint64_t a, std::uint64_t b) const;

  /// The dependence triplet (J_rc, D_rc, E_rc).
  ir::AlgorithmTriplet triplet() const;

  /// Executable access-pattern program, for trace validation.
  ir::Program access_program() const;

  /// Latency of the carry chain in cell traversals: p.
  static math::Int latency(math::Int p) { return p; }

 private:
  math::Int p_;
};

}  // namespace bitlevel::arith
