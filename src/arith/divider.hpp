// Non-restoring array division (Hwang [3]).
//
// Divides a 2p-bit dividend by a p-bit divisor on a p x (p+1) array of
// controlled add/subtract (CAS) cells. Row i1 computes
//   t = (2*r_{i-1} + a_{p-i1}) - B   when the control T_i1 = 1,
//   t = (2*r_{i-1} + a_{p-i1}) + B   when T_i1 = 0,
// as a (p+1)-bit CAS ripple (cell: s = r ^ (b ^ T) ^ c, carry =
// majority; carry-in at the LSB cell = T). The quotient bit q_i1 is the
// carry out of the MSB cell and becomes the next row's control.
//
// Dependence structure (J_div = [1,p] x [1,p+1], i2 = 1 is the LSB):
//   d1 = [0,  1]  "c,T"  (carry and control cross the row)  i2 != 1
//   d2 = [1,  1]  "r"    (remainder bits shift left one)    i1,i2 != 1
//   d3 = [1,  0]  "b"    (divisor pipelined down)           i1 != 1
//   d4 = [1, -p]  "q"    (the MSB carry-out becomes the next row's
//                          control at the LSB cell)         i1 != 1, i2 == 1
//
// The control recurrence d4 is what makes bit-level division
// fundamentally different from multiplication: any linear schedule
// needs Pi*[1,-p] >= 1, so pi_1 >= p*pi_2 + 1 and the total time is
// Theta(p^2) — a quotient bit cannot be produced until the previous
// row's carry has crossed the whole row. optimal_schedule() returns
// Pi = [p+1, 1], which achieves p^2 + p cycles (given a [0,-p] return
// wire; with nearest-neighbour links only, Pi = [2p, 1] is needed).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::arith {

/// Result of one array division.
struct DivisionResult {
  std::uint64_t quotient = 0;
  std::uint64_t remainder = 0;
  std::vector<int> quotient_bits;  ///< q_1 (first row) .. q_p, MSB first.
};

/// Bit-level non-restoring divider.
class NonRestoringDivider {
 public:
  /// Construct for p-bit divisors (2p-bit dividends), 1 <= p <= 31.
  explicit NonRestoringDivider(math::Int p);

  math::Int p() const { return p_; }

  /// dividend / divisor with remainder. Preconditions: divisor >= 1 and
  /// dividend < divisor * 2^p (the quotient fits p bits).
  DivisionResult divide(std::uint64_t dividend, std::uint64_t divisor) const;

  /// The dependence triplet described above.
  ir::AlgorithmTriplet triplet() const;

  /// Executable access-pattern program, for trace validation.
  ir::Program access_program() const;

  /// The time-optimal linear schedule Pi = [p+1, 1] (with a [0,-p]
  /// control-return wire).
  math::IntVec optimal_schedule() const { return {p_ + 1, 1}; }

  /// Total time of the optimal schedule over J_div: p^2 + p.
  math::Int optimal_total_time() const { return p_ * p_ + p_; }

 private:
  math::Int p_;
};

}  // namespace bitlevel::arith
