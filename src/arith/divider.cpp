#include "arith/divider.hpp"

#include "arith/bits.hpp"
#include "support/error.hpp"

namespace bitlevel::arith {

NonRestoringDivider::NonRestoringDivider(math::Int p) : p_(p) {
  BL_REQUIRE(p >= 1 && p <= 31, "divisor width must be in [1, 31] bits");
}

DivisionResult NonRestoringDivider::divide(std::uint64_t dividend, std::uint64_t divisor) const {
  const int p = static_cast<int>(p_);
  BL_REQUIRE(divisor >= 1 && divisor <= max_value(p), "divisor must be a nonzero p-bit value");
  BL_REQUIRE(dividend < (divisor << p), "quotient must fit in p bits (dividend < divisor * 2^p)");

  const std::vector<int> abits = to_bits(dividend, 2 * p);
  std::vector<int> bbits = to_bits(divisor, p);
  bbits.push_back(0);  // the CAS rows are p+1 bits wide

  // r_0 = top p bits of the dividend (< divisor by the precondition),
  // in a (p+1)-bit register.
  std::vector<int> r(static_cast<std::size_t>(p + 1), 0);
  for (int k = 0; k < p; ++k) r[static_cast<std::size_t>(k)] = abits[static_cast<std::size_t>(p + k)];

  DivisionResult out;
  int control = 1;  // first operation subtracts
  for (int i1 = 1; i1 <= p; ++i1) {
    // Shift in the next dividend bit: t = 2*r + a_{p-i1} (mod 2^{p+1}).
    std::vector<int> t(static_cast<std::size_t>(p + 1), 0);
    t[0] = abits[static_cast<std::size_t>(p - i1)];
    for (int k = 1; k <= p; ++k) t[static_cast<std::size_t>(k)] = r[static_cast<std::size_t>(k - 1)];
    // CAS ripple: +/- divisor, controlled by `control`.
    int carry = control;
    for (int k = 0; k <= p; ++k) {
      const int x = t[static_cast<std::size_t>(k)];
      const int y = bbits[static_cast<std::size_t>(k)] ^ control;
      r[static_cast<std::size_t>(k)] = sum_f(x, y, carry);
      carry = carry_g(x, y, carry);
    }
    out.quotient_bits.push_back(carry);  // q_{i1} = MSB carry-out
    control = carry;
  }

  for (int i = 0; i < p; ++i) {
    out.quotient |= static_cast<std::uint64_t>(out.quotient_bits[static_cast<std::size_t>(i)])
                    << (p - 1 - i);
  }
  // Final remainder: low p bits, plus the non-restoring correction when
  // the last partial remainder is negative (q_p = 0).
  if (out.quotient_bits.back() == 1) {
    std::uint64_t rem = 0;
    for (int k = 0; k < p; ++k) rem |= static_cast<std::uint64_t>(r[static_cast<std::size_t>(k)]) << k;
    out.remainder = rem;
  } else {
    // r is negative in (p+1)-bit two's complement: remainder = r + B.
    std::int64_t full = 0;
    for (int k = 0; k <= p; ++k) full |= static_cast<std::int64_t>(r[static_cast<std::size_t>(k)]) << k;
    if (r[static_cast<std::size_t>(p)] == 1) full -= (1LL << (p + 1));
    out.remainder = static_cast<std::uint64_t>(full + static_cast<std::int64_t>(divisor));
  }
  return out;
}

ir::AlgorithmTriplet NonRestoringDivider::triplet() const {
  using ir::ValidityRegion;
  const math::Int p = p_;
  ir::AlgorithmTriplet t{ir::IndexSet({1, 1}, {p, p + 1}), {}, {}, {"i1", "i2"}};
  t.deps.add({{0, 1}, "c,T", ValidityRegion::coord_ne(1, 1)});
  t.deps.add({{1, 1}, "r", ValidityRegion::coord_ne(0, 1) && ValidityRegion::coord_ne(1, 1)});
  t.deps.add({{1, 0}, "b", ValidityRegion::coord_ne(0, 1)});
  t.deps.add({{1, -p}, "q",
              ValidityRegion::coord_ne(0, 1) && ValidityRegion::coord_eq(1, 1)});
  t.computations = {
      "r(i) = CAS sum:  r^< ^ (b ^ T) ^ c",
      "c(i) = CAS carry: majority(r^<, b ^ T, c)",
      "T(i) = control pipeline (row entry: previous row's MSB carry)",
  };
  return t;
}

ir::Program NonRestoringDivider::access_program() const {
  using ir::ValidityRegion;
  const math::Int p = p_;
  const ir::AffineMap id = ir::AffineMap::identity(2);
  const ir::AffineMap from_w = ir::AffineMap::translate({0, -1});     // (i1, i2-1)
  const ir::AffineMap from_nw = ir::AffineMap::translate({-1, -1});   // (i1-1, i2-1)
  const ir::AffineMap from_n = ir::AffineMap::translate({-1, 0});     // (i1-1, i2)
  const ir::AffineMap from_msb = ir::AffineMap::translate({-1, p});   // (i1-1, p+1)

  const ValidityRegion not_first_row = ValidityRegion::coord_ne(0, 1);
  const ValidityRegion not_lsb = ValidityRegion::coord_ne(1, 1);
  const ValidityRegion lsb = ValidityRegion::coord_eq(1, 1);

  ir::Program prog{ir::IndexSet({1, 1}, {p, p + 1}), {}};
  // Divisor pipeline.
  prog.statements.push_back(
      {{"b", id}, {{"b", from_n, not_first_row}}, "b(i) = b(i - [1,0])"});
  // Control: crosses the row from the LSB; enters each row (after the
  // first) from the previous row's MSB carry-out.
  prog.statements.push_back({{"T", id},
                             {{"T", from_w, not_lsb}, {"c", from_msb, not_first_row && lsb}},
                             "T(i) = control pipeline / row entry"});
  // The CAS cell: sum and carry. Reads declared once (on r).
  prog.statements.push_back({{"r", id},
                             {{"r", from_nw, not_first_row && not_lsb},
                              {"c", from_w, not_lsb}},
                             "r(i) = CAS sum"});
  prog.statements.push_back({{"c", id}, {}, "c(i) = CAS carry"});
  prog.validate();
  return prog;
}

}  // namespace bitlevel::arith
