// Bit-vector helpers and the full-adder cell functions (3.2).
//
// The paper's bit-level computations are built from two Boolean
// functions over three input bits:
//   g(x1, x2, x3) = (x1 & x2) | (x2 & x3) | (x3 & x1)   -- carry
//   f(x1, x2, x3) = x1 ^ x2 ^ x3                        -- sum
// i.e. a full adder. Everything in src/arith and the bit-level PE bodies
// in src/arch reduces to these two functions plus AND gates.
#pragma once

#include <cstdint>
#include <vector>

#include "math/checked.hpp"

namespace bitlevel::arith {

using math::Int;

/// Carry function g of (3.2): majority of three bits.
inline int carry_g(int x1, int x2, int x3) { return (x1 & x2) | (x2 & x3) | (x3 & x1); }

/// Sum function f of (3.2): parity of three bits.
inline int sum_f(int x1, int x2, int x3) { return x1 ^ x2 ^ x3; }

/// Little-endian bit decomposition: bit i of the result is bit i of
/// `value` (bits[0] is the paper's a_1). Exactly `width` bits; the value
/// must fit.
std::vector<int> to_bits(std::uint64_t value, int width);

/// Inverse of to_bits (little-endian).
std::uint64_t from_bits(const std::vector<int>& bits);

/// Largest value representable in `width` bits: 2^width - 1.
std::uint64_t max_value(int width);

}  // namespace bitlevel::arith
