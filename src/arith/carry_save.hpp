// Carry-save array multiplication.
//
// Section 4.2's word-level comparison assumes a faster multiplier than
// sequential add-shift: a carry-save array multiplier whose latency is
// O(p). We model the classical structure — p rows of carry-save adders
// (carries deferred one column left) followed by a final ripple
// carry-propagate addition over the top p bits — and expose both the
// functional result and the latency formula used by the word-level
// baseline architecture.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "ir/triplet.hpp"
#include "math/checked.hpp"

namespace bitlevel::arith {

/// Result of a carry-save multiplication.
struct CarrySaveResult {
  std::uint64_t product = 0;
  std::vector<int> product_bits;  ///< 2p bits, little-endian.
  math::Int csa_depth = 0;        ///< Rows of carry-save reduction traversed.
  math::Int cpa_length = 0;       ///< Length of the final carry-propagate add.
};

/// Word-level carry-save array multiplier model.
class CarrySaveMultiplier {
 public:
  explicit CarrySaveMultiplier(math::Int p);

  math::Int p() const { return p_; }

  /// Exact product via carry-save reduction; operands must fit in p bits.
  CarrySaveResult multiply(std::uint64_t a, std::uint64_t b) const;

  /// Latency model: p CSA rows + p-bit final carry-propagate = 2p
  /// cell delays. The t_b = O(p) model of Section 4.2.
  static math::Int latency(math::Int p) { return math::checked_mul(2, p); }

  /// The carry-save multiplier's bit-level dependence triplet — the
  /// "derive once per arithmetic algorithm" structure the paper's
  /// Section 3.1 calls for, here for the second multiplier it names.
  /// Index set J_cs = [1, p+1] x [1, 2p]: rows 1..p are carry-save
  /// reduction steps, row p+1 the final carry-propagate addition.
  ///   d1 = [1, 0]  cause "s"        (sum bits fall straight down)
  ///   d2 = [1, 1]  cause "a,c"      (carries defer down-right; the a
  ///                                  operand rides the same diagonal)
  ///   d3 = [0, 1]  cause "b,c_cpa"  (b crosses each reduction row; the
  ///                                  CPA carry ripples along row p+1)
  /// Unlike the add-shift grid (3.4), none of these is uniform: each is
  /// annotated with its band/row region, exercising the conditional-
  /// dependence machinery the expansions introduced.
  ir::AlgorithmTriplet triplet() const;

  /// The executable access-pattern program matching triplet(), for
  /// trace validation.
  ir::Program access_program() const;

 private:
  math::Int p_;
};

}  // namespace bitlevel::arith
