#include "arith/carry_save.hpp"

#include "arith/bits.hpp"
#include "support/error.hpp"

namespace bitlevel::arith {

namespace {

using ir::ValidityRegion;

/// The partial-product band i1 <= i2 <= i1 + p - 1 (where a_k & b_{i1}
/// exists), as a validity region over (i1, i2).
ValidityRegion band(math::Int p) {
  // i2 - i1 >= 0  and  i1 - i2 >= -(p - 1).
  return ValidityRegion::affine_ge({-1, 1}, 0) && ValidityRegion::affine_ge({1, -1}, -(p - 1));
}

}  // namespace

CarrySaveMultiplier::CarrySaveMultiplier(math::Int p) : p_(p) {
  BL_REQUIRE(p >= 1 && p <= 31, "operand width must be in [1, 31] bits");
}

CarrySaveResult CarrySaveMultiplier::multiply(std::uint64_t a, std::uint64_t b) const {
  const int p = static_cast<int>(p_);
  BL_REQUIRE(a <= max_value(p) && b <= max_value(p), "operands must fit in p bits");
  const std::vector<int> abits = to_bits(a, p);
  const std::vector<int> bbits = to_bits(b, p);
  const int width = 2 * p;

  // Running sum/carry vectors in carry-save form. Row i adds the partial
  // product (a & b_i) << i; carries are deferred to the next row, one
  // column to the left.
  std::vector<int> sum(static_cast<std::size_t>(width), 0);
  std::vector<int> carry(static_cast<std::size_t>(width), 0);
  for (int row = 0; row < p; ++row) {
    std::vector<int> next_sum(static_cast<std::size_t>(width), 0);
    std::vector<int> next_carry(static_cast<std::size_t>(width), 0);
    for (int col = 0; col < width; ++col) {
      const int acol = col - row;
      const int pp =
          (acol >= 0 && acol < p) ? (abits[static_cast<std::size_t>(acol)] & bbits[static_cast<std::size_t>(row)]) : 0;
      const int s = sum[static_cast<std::size_t>(col)];
      const int c = carry[static_cast<std::size_t>(col)];
      next_sum[static_cast<std::size_t>(col)] = sum_f(pp, s, c);
      if (col + 1 < width) next_carry[static_cast<std::size_t>(col + 1)] = carry_g(pp, s, c);
    }
    sum = std::move(next_sum);
    carry = std::move(next_carry);
  }

  // Final carry-propagate addition of the residual sum and carry words.
  CarrySaveResult out;
  out.product_bits.assign(static_cast<std::size_t>(width), 0);
  int cin = 0;
  for (int col = 0; col < width; ++col) {
    const int s = sum[static_cast<std::size_t>(col)];
    const int c = carry[static_cast<std::size_t>(col)];
    out.product_bits[static_cast<std::size_t>(col)] = sum_f(s, c, cin);
    cin = carry_g(s, c, cin);
  }
  BL_REQUIRE(cin == 0, "carry out of a 2p-bit product must be zero");
  out.product = from_bits(out.product_bits);
  out.csa_depth = p_;
  out.cpa_length = p_;
  return out;
}

ir::AlgorithmTriplet CarrySaveMultiplier::triplet() const {
  const math::Int p = p_;
  ir::AlgorithmTriplet t{ir::IndexSet({1, 1}, {p + 1, 2 * p}), {}, {}, {"i1", "i2"}};
  // Sum bits fall straight down through every reduction row and into
  // the final carry-propagate row.
  t.deps.add({{1, 0}, "s", ValidityRegion::coord_ne(0, 1)});
  // Carries defer one column right into the next row; the a operand
  // rides the same diagonal through the reduction rows.
  t.deps.add({{1, 1}, "a,c", ValidityRegion::coord_ne(0, 1) && ValidityRegion::coord_ne(1, 1)});
  // b crosses each reduction row within the partial-product band; on
  // row p+1 the same direction carries the CPA ripple.
  t.deps.add({{0, 1}, "b,c_cpa",
              (ValidityRegion::coord_le(0, p) && ValidityRegion::affine_ge({-1, 1}, 1) &&
               ValidityRegion::affine_ge({1, -1}, -(p - 1))) ||
                  (ValidityRegion::coord_eq(0, p + 1) && ValidityRegion::coord_ge(1, 2))});
  t.computations = {
      "rows 1..p:  s(i) = f(a&b, s(i-[1,0]), c(i-[1,1]));  c(i) = g(...)",
      "row p+1:    s(i) = f(s(i-[1,0]), c(i-[1,1]), c_cpa(i-[0,1]));  c_cpa(i) = g(...)",
  };
  return t;
}

ir::Program CarrySaveMultiplier::access_program() const {
  const math::Int p = p_;
  const ir::AffineMap id = ir::AffineMap::identity(2);
  const ir::AffineMap from_n = ir::AffineMap::translate({-1, 0});    // (i1-1, i2)
  const ir::AffineMap from_nw = ir::AffineMap::translate({-1, -1});  // (i1-1, i2-1)
  const ir::AffineMap from_w = ir::AffineMap::translate({0, -1});    // (i1, i2-1)

  const ValidityRegion rows = ValidityRegion::coord_le(0, p);
  const ValidityRegion cpa_row = ValidityRegion::coord_eq(0, p + 1);
  const ValidityRegion not_first_row = ValidityRegion::coord_ne(0, 1);
  const ValidityRegion not_first_col = ValidityRegion::coord_ne(1, 1);

  ir::Program prog{ir::IndexSet({1, 1}, {p + 1, 2 * p}), {}};
  // a pipeline: diagonal within the partial-product band.
  {
    ir::Statement st{{"a", id}, {{"a", from_nw, not_first_row}}, "a(i) = a(i - [1,1])"};
    st.guard = rows && band(p);
    prog.statements.push_back(std::move(st));
  }
  // b pipeline: along each reduction row, entering at i2 = i1.
  {
    ir::Statement st{{"b", id},
                     {{"b", from_w, ValidityRegion::affine_ge({-1, 1}, 1)}},
                     "b(i) = b(i - [0,1])"};
    st.guard = rows && band(p);
    prog.statements.push_back(std::move(st));
  }
  // Carry-save reduction cell (rows 1..p).
  {
    ir::Statement st{{"s", id},
                     {{"s", from_n, not_first_row}, {"c", from_nw, not_first_row && not_first_col}},
                     "s(i) = f(pp, s^, c^<)"};
    st.guard = rows;
    prog.statements.push_back(st);
    st.write.array = "c";
    st.label = "c(i) = g(pp, s^, c^<)";
    prog.statements.push_back(std::move(st));
  }
  // Final carry-propagate row (i1 = p+1).
  {
    ir::Statement st{{"s", id},
                     {{"s", from_n},
                      {"c", from_nw, not_first_col},
                      {"c_cpa", from_w, not_first_col}},
                     "s(i) = f(s^, c^<, c_cpa<)"};
    st.guard = cpa_row;
    prog.statements.push_back(st);
    st.write.array = "c_cpa";
    st.label = "c_cpa(i) = g(s^, c^<, c_cpa<)";
    prog.statements.push_back(std::move(st));
  }
  prog.validate();
  return prog;
}

}  // namespace bitlevel::arith
