#include "math/snf.hpp"

#include <cstdlib>

#include "math/checked.hpp"
#include "support/error.hpp"

namespace bitlevel::math {

namespace {

void swap_rows(IntMat& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  IntVec ra = m.row(a), rb = m.row(b);
  m.set_row(a, rb);
  m.set_row(b, ra);
}

void swap_cols(IntMat& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  IntVec ca = m.col(a), cb = m.col(b);
  m.set_col(a, cb);
  m.set_col(b, ca);
}

// row_i -= q * row_k
void axpy_row(IntMat& m, std::size_t i, Int q, std::size_t k) {
  if (q == 0) return;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    m.at(i, c) = checked_sub(m.at(i, c), checked_mul(q, m.at(k, c)));
  }
}

// col_j -= q * col_k
void axpy_col(IntMat& m, std::size_t j, Int q, std::size_t k) {
  if (q == 0) return;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    m.at(r, j) = checked_sub(m.at(r, j), checked_mul(q, m.at(r, k)));
  }
}

void negate_row(IntMat& m, std::size_t r) {
  for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) = checked_neg(m.at(r, c));
}

}  // namespace

SmithForm smith_normal_form(const IntMat& a) {
  SmithForm out{a, IntMat::identity(a.rows()), IntMat::identity(a.cols()), 0};
  IntMat& s = out.s;
  IntMat& u = out.u;
  IntMat& v = out.v;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t bound = m < n ? m : n;

  for (std::size_t t = 0; t < bound; ++t) {
    // Find the smallest-magnitude nonzero entry in the trailing block.
    std::size_t pr = m, pc = n;
    for (std::size_t r = t; r < m; ++r) {
      for (std::size_t c = t; c < n; ++c) {
        const Int val = s.at(r, c);
        if (val == 0) continue;
        if (pr == m || std::llabs(val) < std::llabs(s.at(pr, pc))) {
          pr = r;
          pc = c;
        }
      }
    }
    if (pr == m) break;  // trailing block is zero
    swap_rows(s, t, pr);
    swap_rows(u, t, pr);
    swap_cols(s, t, pc);
    swap_cols(v, t, pc);

    // Eliminate the rest of row t and column t; iterate because the
    // quotient-remainder steps can reintroduce entries.
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (std::size_t r = t + 1; r < m; ++r) {
        if (s.at(r, t) == 0) continue;
        const Int q = floor_div(s.at(r, t), s.at(t, t));
        axpy_row(s, r, q, t);
        axpy_row(u, r, q, t);
        if (s.at(r, t) != 0) {
          // Remainder is smaller in magnitude than the pivot; promote it.
          swap_rows(s, t, r);
          swap_rows(u, t, r);
          dirty = true;
        }
      }
      for (std::size_t c = t + 1; c < n; ++c) {
        if (s.at(t, c) == 0) continue;
        const Int q = floor_div(s.at(t, c), s.at(t, t));
        axpy_col(s, c, q, t);
        axpy_col(v, c, q, t);
        if (s.at(t, c) != 0) {
          swap_cols(s, t, c);
          swap_cols(v, t, c);
          dirty = true;
        }
      }
    }

    // Enforce the divisibility chain: if some trailing entry is not
    // divisible by the pivot, fold its row into row t and redo.
    bool redo = false;
    for (std::size_t r = t + 1; r < m && !redo; ++r) {
      for (std::size_t c = t + 1; c < n && !redo; ++c) {
        if (s.at(r, c) % s.at(t, t) != 0) {
          axpy_row(s, t, -1, r);  // row_t += row_r
          axpy_row(u, t, -1, r);
          redo = true;
        }
      }
    }
    if (redo) {
      --t;  // reprocess this pivot position
      continue;
    }
    if (s.at(t, t) < 0) {
      negate_row(s, t);
      negate_row(u, t);
    }
  }

  for (std::size_t t = 0; t < bound; ++t) {
    if (s.at(t, t) != 0) ++out.rank;
  }
  return out;
}

}  // namespace bitlevel::math
