// Column-style Hermite normal form.
//
// For an m x n integer matrix A, computes H = A * U with U unimodular
// (n x n) such that H is in column echelon form: each pivot row has a
// single positive pivot entry, entries to its right are zero, and
// entries to its left (in earlier pivot columns) are reduced into
// [0, pivot). The tail columns of H are identically zero, so the
// matching tail columns of U form a basis of the integer null space of
// A — exactly what the exact Diophantine dependence test needs.
#pragma once

#include <cstddef>
#include <vector>

#include "math/int_mat.hpp"

namespace bitlevel::math {

/// Hermite decomposition H = A * U.
struct HermiteForm {
  IntMat h;                          ///< Column echelon form (m x n).
  IntMat u;                          ///< Unimodular transform (n x n).
  std::vector<std::size_t> pivot_rows;  ///< pivot_rows[k] = row of pivot in column k.
  std::size_t rank = 0;              ///< Number of pivot columns.
};

/// Compute the column-style Hermite normal form of `a`.
HermiteForm hermite_normal_form(const IntMat& a);

/// Basis of the integer null space { x in Z^n : a x = 0 } — the tail
/// columns of the Hermite transform. The returned matrix has
/// a.cols() - rank(a) columns.
IntMat null_space_basis(const IntMat& a);

}  // namespace bitlevel::math
