// Exact rational linear programming (dense two-phase simplex).
//
// Purpose-built for schedule-optimality certification: the LP
//     minimize c.x   subject to   A x >= b,  x >= 0
// over exact rationals, with Bland's rule for guaranteed termination.
// Problem sizes here are tiny (a dozen variables, a handful of
// constraints), so a dense tableau is the right tool.
#pragma once

#include <optional>
#include <vector>

#include "math/rational.hpp"

namespace bitlevel::math {

/// minimize objective . x  subject to  constraints x >= bounds, x >= 0.
struct LinearProgram {
  std::vector<std::vector<Rational>> constraints;  ///< One row per constraint.
  std::vector<Rational> bounds;                    ///< Right-hand sides.
  std::vector<Rational> objective;                 ///< Cost coefficients.
};

/// Outcome of an LP solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

/// Solution of a solved LP.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  Rational value;               ///< Optimal objective (when kOptimal).
  std::vector<Rational> x;      ///< An optimal point (when kOptimal).
};

/// Solve with the two-phase simplex method (exact arithmetic).
LpSolution solve_linear_program(const LinearProgram& lp);

}  // namespace bitlevel::math
