#include "math/diophantine.hpp"

#include <algorithm>

#include "math/checked.hpp"
#include "math/hnf.hpp"
#include "support/error.hpp"

namespace bitlevel::math {

std::optional<DiophantineSolution> solve_diophantine(const IntMat& a, const IntVec& b) {
  BL_REQUIRE(b.size() == a.rows(), "right-hand side dimension must equal row count");
  const HermiteForm hf = hermite_normal_form(a);
  const std::size_t n = a.cols();

  // Forward substitution on the column echelon form H: pivot k sits at
  // (pivot_rows[k], k); entries above a pivot row within columns >= k
  // are zero, so scanning rows top-down determines y one pivot at a time
  // and turns every non-pivot row into a pure consistency check.
  IntVec y(n, 0);
  std::size_t next_pivot = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Int acc = 0;
    for (std::size_t k = 0; k < hf.rank; ++k) {
      if (hf.pivot_rows[k] < r) acc = checked_add(acc, checked_mul(hf.h.at(r, k), y[k]));
    }
    const Int rem = checked_sub(b[r], acc);
    if (next_pivot < hf.rank && hf.pivot_rows[next_pivot] == r) {
      const Int pivot = hf.h.at(r, next_pivot);
      if (rem % pivot != 0) return std::nullopt;
      y[next_pivot] = rem / pivot;
      ++next_pivot;
    } else if (rem != 0) {
      return std::nullopt;
    }
  }

  DiophantineSolution out{hf.u.mul(y), IntMat(n, n - hf.rank)};
  for (std::size_t k = hf.rank; k < n; ++k) out.kernel.set_col(k - hf.rank, hf.u.col(k));
  return out;
}

std::optional<DiophantineSolution> solve_single_equation(const IntVec& a, Int c) {
  IntMat m(1, a.size());
  m.set_row(0, a);
  return solve_diophantine(m, IntVec{c});
}

namespace {

// Recursive lattice walk. `kernel` is in column echelon form so that the
// pivot row of parameter i constrains t_i once t_0..t_{i-1} are fixed.
void enumerate_rec(const IntVec& particular, const IntMat& kernel,
                   const std::vector<std::size_t>& pivot_rows, const IntVec& lo, const IntVec& hi,
                   std::size_t level, IntVec& t, std::vector<IntVec>& out, std::size_t limit) {
  const std::size_t f = kernel.cols();
  if (limit != 0 && out.size() >= limit) return;
  if (level == f) {
    IntVec x = particular;
    for (std::size_t i = 0; i < f; ++i) {
      if (t[i] != 0) x = add(x, scale(t[i], kernel.col(i)));
    }
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (x[j] < lo[j] || x[j] > hi[j]) return;
    }
    out.push_back(std::move(x));
    return;
  }
  const std::size_t r = pivot_rows[level];
  // Value of x[r] contributed by already-fixed parameters. Columns after
  // `level` are zero at this pivot row by the echelon property.
  Int base = particular[r];
  for (std::size_t i = 0; i < level; ++i) {
    base = checked_add(base, checked_mul(t[i], kernel.at(r, i)));
  }
  const Int coef = kernel.at(r, level);
  // lo[r] <= base + coef * t_level <= hi[r]
  Int tmin, tmax;
  if (coef > 0) {
    tmin = ceil_div(checked_sub(lo[r], base), coef);
    tmax = floor_div(checked_sub(hi[r], base), coef);
  } else {
    tmin = ceil_div(checked_sub(hi[r], base), coef);
    tmax = floor_div(checked_sub(lo[r], base), coef);
  }
  for (Int v = tmin; v <= tmax; ++v) {
    t[level] = v;
    enumerate_rec(particular, kernel, pivot_rows, lo, hi, level + 1, t, out, limit);
    if (limit != 0 && out.size() >= limit) return;
  }
}

}  // namespace

std::vector<IntVec> enumerate_solutions_in_box(const IntMat& a, const IntVec& b, const IntVec& lo,
                                               const IntVec& hi, std::size_t limit) {
  BL_REQUIRE(lo.size() == a.cols() && hi.size() == a.cols(),
             "box bounds must match the solution dimension");
  const auto sol = solve_diophantine(a, b);
  std::vector<IntVec> out;
  if (!sol) return out;

  // Re-echelonize the kernel so each parameter is bounded by its pivot
  // row; the lattice is unchanged (right-multiplication by unimodular U).
  const HermiteForm kf = hermite_normal_form(sol->kernel);
  // A kernel basis is linearly independent, so every column has a pivot.
  BL_REQUIRE(kf.rank == sol->kernel.cols(), "kernel basis must have full column rank");

  IntVec t(kf.h.cols(), 0);
  enumerate_rec(sol->particular, kf.h, kf.pivot_rows, lo, hi, 0, t, out, limit);
  return out;
}

}  // namespace bitlevel::math
