#include "math/int_mat.hpp"

#include "support/error.hpp"
#include "support/format.hpp"

namespace bitlevel::math {

IntMat::IntMat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

IntMat::IntMat(std::initializer_list<std::initializer_list<Int>> rows)
    : rows_(rows.size()), cols_(rows.size() == 0 ? 0 : rows.begin()->size()) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    BL_REQUIRE(r.size() == cols_, "all rows must have the same length");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

IntMat::IntMat(std::size_t rows, std::size_t cols, std::vector<Int> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  BL_REQUIRE(data_.size() == rows_ * cols_, "row-major data must have rows*cols entries");
}

IntMat IntMat::identity(std::size_t n) {
  IntMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntMat IntMat::from_columns(const std::vector<IntVec>& columns) {
  if (columns.empty()) return IntMat(0, 0);
  const std::size_t rows = columns.front().size();
  IntMat m(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    BL_REQUIRE(columns[c].size() == rows, "all columns must have the same dimension");
    for (std::size_t r = 0; r < rows; ++r) m.at(r, c) = columns[c][r];
  }
  return m;
}

IntMat IntMat::from_rows(const std::vector<IntVec>& rows) {
  if (rows.empty()) return IntMat(0, 0);
  const std::size_t cols = rows.front().size();
  IntMat m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    BL_REQUIRE(rows[r].size() == cols, "all rows must have the same dimension");
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Int& IntMat::at(std::size_t r, std::size_t c) {
  BL_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Int IntMat::at(std::size_t r, std::size_t c) const {
  BL_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

IntVec IntMat::row(std::size_t r) const {
  BL_REQUIRE(r < rows_, "row index out of range");
  return IntVec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

IntVec IntMat::col(std::size_t c) const {
  BL_REQUIRE(c < cols_, "column index out of range");
  IntVec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void IntMat::set_row(std::size_t r, const IntVec& v) {
  BL_REQUIRE(r < rows_ && v.size() == cols_, "row assignment shape mismatch");
  for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = v[c];
}

void IntMat::set_col(std::size_t c, const IntVec& v) {
  BL_REQUIRE(c < cols_ && v.size() == rows_, "column assignment shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
}

IntVec IntMat::mul(const IntVec& v) const {
  BL_REQUIRE(v.size() == cols_, "matrix-vector dimension mismatch");
  IntVec out(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    Int acc = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc = checked_add(acc, checked_mul(data_[r * cols_ + c], v[c]));
    }
    out[r] = acc;
  }
  return out;
}

IntMat IntMat::mul(const IntMat& other) const {
  BL_REQUIRE(cols_ == other.rows_, "matrix-matrix dimension mismatch");
  IntMat out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Int a = data_[r * cols_ + k];
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) = checked_add(out.at(r, c), checked_mul(a, other.at(k, c)));
      }
    }
  }
  return out;
}

IntMat IntMat::transpose() const {
  IntMat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = data_[r * cols_ + c];
  }
  return out;
}

IntMat IntMat::hstack(const IntMat& other) const {
  BL_REQUIRE(rows_ == other.rows_, "hstack requires equal row counts");
  IntMat out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (std::size_t c = 0; c < other.cols_; ++c) out.at(r, cols_ + c) = other.at(r, c);
  }
  return out;
}

IntMat IntMat::vstack(const IntMat& other) const {
  BL_REQUIRE(cols_ == other.cols_, "vstack requires equal column counts");
  IntMat out(rows_ + other.rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) out.set_row(r, row(r));
  for (std::size_t r = 0; r < other.rows_; ++r) out.set_row(rows_ + r, other.row(r));
  return out;
}

IntMat IntMat::select_columns(const std::vector<std::size_t>& indices) const {
  IntMat out(rows_, indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    BL_REQUIRE(indices[i] < cols_, "column selection index out of range");
    out.set_col(i, col(indices[i]));
  }
  return out;
}

std::string IntMat::to_string() const { return format_matrix(data_, rows_, cols_); }

}  // namespace bitlevel::math
