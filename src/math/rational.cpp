#include "math/rational.hpp"

#include "math/gcd.hpp"
#include "support/error.hpp"

namespace bitlevel::math {

Rational::Rational(Int num, Int den) : num_(num), den_(den) {
  BL_REQUIRE(den != 0, "rational denominator must be nonzero");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked_neg(num_);
    den_ = checked_neg(den_);
  }
  const Int g = gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(checked_add(checked_mul(num_, o.den_), checked_mul(o.num_, den_)),
                  checked_mul(den_, o.den_));
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(checked_sub(checked_mul(num_, o.den_), checked_mul(o.num_, den_)),
                  checked_mul(den_, o.den_));
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(checked_mul(num_, o.num_), checked_mul(den_, o.den_));
}

Rational Rational::operator/(const Rational& o) const {
  BL_REQUIRE(o.num_ != 0, "rational division by zero");
  return Rational(checked_mul(num_, o.den_), checked_mul(den_, o.num_));
}

Rational Rational::operator-() const { return Rational(checked_neg(num_), den_); }

bool Rational::operator<(const Rational& o) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return checked_mul(num_, o.den_) < checked_mul(o.num_, den_);
}

bool Rational::operator<=(const Rational& o) const {
  return checked_mul(num_, o.den_) <= checked_mul(o.num_, den_);
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace bitlevel::math
