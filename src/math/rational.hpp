// Exact rational numbers over Int.
//
// Schedule optimization compares candidate linear schedules by ratios
// (cycles per index point, speedup factors); Rational keeps those
// comparisons exact where doubles would round.
#pragma once

#include <string>

#include "math/checked.hpp"

namespace bitlevel::math {

/// Exact rational p/q, always stored normalized: q > 0, gcd(|p|, q) = 1.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// Integer value.
  Rational(Int value) : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// num/den; den must be nonzero.
  Rational(Int num, Int den);

  Int num() const { return num_; }
  Int den() const { return den_; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  bool operator==(const Rational& o) const = default;
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  /// Closest double (for reporting only; comparisons stay exact).
  double to_double() const;

  /// "p/q" or just "p" when q == 1.
  std::string to_string() const;

 private:
  void normalize();
  Int num_;
  Int den_;
};

}  // namespace bitlevel::math
