// Greatest common divisors and the extended Euclidean algorithm —
// the number-theoretic core of the GCD dependence test and of Hermite /
// Smith normal form computation.
#pragma once

#include <vector>

#include "math/checked.hpp"

namespace bitlevel::math {

/// gcd(a, b) >= 0; gcd(0, 0) == 0.
Int gcd(Int a, Int b);

/// Least common multiple; lcm(0, x) == 0. Throws OverflowError when the
/// result does not fit in Int.
Int lcm(Int a, Int b);

/// Result of the extended Euclidean algorithm: g = gcd(a, b) >= 0 and
/// Bezout coefficients with a*x + b*y == g.
struct ExtGcd {
  Int g;
  Int x;
  Int y;
};

/// Extended Euclidean algorithm. The returned coefficients are the
/// minimal pair produced by the classical iteration.
ExtGcd extended_gcd(Int a, Int b);

/// gcd of a whole range (0 for an empty range); always nonnegative.
Int gcd_all(const std::vector<Int>& values);

/// True when the entries are setwise coprime (gcd of all entries is 1);
/// Definition 4.1 condition (5) applies this to the rows of T.
bool coprime(const std::vector<Int>& values);

}  // namespace bitlevel::math
