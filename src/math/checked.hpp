// Overflow-checked arithmetic on the repository-wide integer type.
//
// All integer linear algebra in this library runs on 64-bit integers
// with explicit overflow detection. Index sets, dependence vectors and
// mapping matrices are tiny (entries rarely exceed a few thousand), but
// fraction-free elimination and schedule-length formulas can square and
// sum entries; silently wrapping would corrupt feasibility verdicts.
#pragma once

#include <cstdint>

namespace bitlevel::math {

/// The repository-wide signed integer type.
using Int = std::int64_t;

/// a + b, throwing OverflowError on signed overflow.
Int checked_add(Int a, Int b);

/// a - b, throwing OverflowError on signed overflow.
Int checked_sub(Int a, Int b);

/// a * b, throwing OverflowError on signed overflow.
Int checked_mul(Int a, Int b);

/// -a, throwing OverflowError when a == INT64_MIN.
Int checked_neg(Int a);

/// Floor division (rounds toward negative infinity). b must be nonzero.
Int floor_div(Int a, Int b);

/// Ceiling division (rounds toward positive infinity). b must be nonzero.
Int ceil_div(Int a, Int b);

/// Mathematical modulus: result in [0, |b|). b must be nonzero.
Int mod_floor(Int a, Int b);

}  // namespace bitlevel::math
