// Dense integer matrices with overflow-checked arithmetic.
//
// Dependence matrices D, space mappings S, schedules Pi and
// interconnection-primitive matrices P are all small dense integer
// matrices; IntMat is the shared representation.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "math/int_vec.hpp"

namespace bitlevel::math {

/// Row-major dense matrix over Int. Rows and columns may be zero (an
/// n x 0 dependence matrix is a valid "no dependences" value).
class IntMat {
 public:
  /// rows x cols zero matrix.
  IntMat(std::size_t rows, std::size_t cols);

  /// Build from nested initializer lists; all rows must have equal size.
  IntMat(std::initializer_list<std::initializer_list<Int>> rows);

  /// Build from row-major data; data.size() must equal rows*cols.
  IntMat(std::size_t rows, std::size_t cols, std::vector<Int> data);

  /// n x n identity.
  static IntMat identity(std::size_t n);

  /// Matrix whose columns are the given vectors (all of equal dimension).
  static IntMat from_columns(const std::vector<IntVec>& columns);

  /// Matrix whose rows are the given vectors (all of equal dimension).
  static IntMat from_rows(const std::vector<IntVec>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Int& at(std::size_t r, std::size_t c);
  Int at(std::size_t r, std::size_t c) const;

  IntVec row(std::size_t r) const;
  IntVec col(std::size_t c) const;

  void set_row(std::size_t r, const IntVec& v);
  void set_col(std::size_t c, const IntVec& v);

  /// this * v (matrix-vector product); v.size() must equal cols().
  IntVec mul(const IntVec& v) const;

  /// this * other; other.rows() must equal cols().
  IntMat mul(const IntMat& other) const;

  IntMat transpose() const;

  /// [this | other] side by side; row counts must match.
  IntMat hstack(const IntMat& other) const;

  /// [this; other] stacked; column counts must match.
  IntMat vstack(const IntMat& other) const;

  /// Submatrix of the listed columns, in the given order.
  IntMat select_columns(const std::vector<std::size_t>& indices) const;

  bool operator==(const IntMat& other) const = default;

  /// Aligned multi-line rendering.
  std::string to_string() const;

  /// Row-major backing store (for serialization and formatting).
  const std::vector<Int>& data() const { return data_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Int> data_;
};

}  // namespace bitlevel::math
