#include "math/int_vec.hpp"

#include "math/gcd.hpp"
#include "support/error.hpp"
#include "support/format.hpp"

namespace bitlevel::math {

namespace {
void require_same_dim(const IntVec& a, const IntVec& b) {
  BL_REQUIRE(a.size() == b.size(), "vector dimensions must match");
}
}  // namespace

IntVec add(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = checked_add(a[i], b[i]);
  return out;
}

IntVec sub(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = checked_sub(a[i], b[i]);
  return out;
}

IntVec scale(Int s, const IntVec& a) {
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = checked_mul(s, a[i]);
  return out;
}

IntVec neg(const IntVec& a) {
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = checked_neg(a[i]);
  return out;
}

Int dot(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  Int acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = checked_add(acc, checked_mul(a[i], b[i]));
  return acc;
}

bool is_zero(const IntVec& a) {
  for (Int v : a) {
    if (v != 0) return false;
  }
  return true;
}

bool all_ge(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

int lex_compare(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

bool lex_positive(const IntVec& a) {
  for (Int v : a) {
    if (v > 0) return true;
    if (v < 0) return false;
  }
  return false;
}

IntVec concat(const IntVec& a, const IntVec& b) {
  IntVec out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Int l1_norm(const IntVec& a) {
  Int acc = 0;
  for (Int v : a) acc = checked_add(acc, v < 0 ? checked_neg(v) : v);
  return acc;
}

Int content(const IntVec& a) {
  Int g = 0;
  for (Int v : a) g = gcd(g, v);
  return g;
}

std::string to_string(const IntVec& a) { return format_vector(a); }

}  // namespace bitlevel::math
