// Linear Diophantine systems A x = b over the integers.
//
// General dependence analysis (the baseline this paper's contribution
// avoids) reduces each potential dependence between two array references
// to such a system: a dependence exists iff the system has an integer
// solution inside the iteration space. We compute the full solution set
// as a particular solution plus a lattice (basis of the integer null
// space of A), so callers can enumerate or bound-check solutions.
#pragma once

#include <optional>
#include <vector>

#include "math/int_mat.hpp"

namespace bitlevel::math {

/// Complete integer solution set of A x = b:
///   { particular + kernel * t : t in Z^f }
/// where f = kernel.cols() is the number of free parameters.
struct DiophantineSolution {
  IntVec particular;  ///< One integer solution.
  IntMat kernel;      ///< Columns form a basis of { x : A x = 0 }.
};

/// Solve A x = b over Z. Returns std::nullopt when no integer solution
/// exists. A may be any shape; b.size() must equal A.rows().
std::optional<DiophantineSolution> solve_diophantine(const IntMat& a, const IntVec& b);

/// Solve the single equation sum_i a[i] x[i] = c over Z.
/// Returns std::nullopt when gcd(a) does not divide c (the GCD test).
std::optional<DiophantineSolution> solve_single_equation(const IntVec& a, Int c);

/// Enumerate all integer solutions of A x = b with lo <= x <= hi
/// (componentwise). Intended for the small systems of bit-level
/// dependence analysis; the search walks the solution lattice and prunes
/// with interval arithmetic per free parameter. `limit` caps the number
/// of returned solutions (0 = unlimited).
std::vector<IntVec> enumerate_solutions_in_box(const IntMat& a, const IntVec& b, const IntVec& lo,
                                               const IntVec& hi, std::size_t limit = 0);

}  // namespace bitlevel::math
