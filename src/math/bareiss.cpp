#include "math/bareiss.hpp"

#include <utility>

#include "support/error.hpp"

namespace bitlevel::math {

namespace {

// One Bareiss elimination sweep over a working copy. Returns the rank
// and, through `det`, the determinant when the matrix is square.
// The classic two-step division-exact update is
//   a[i][j] = (a[k][k]*a[i][j] - a[i][k]*a[k][j]) / prev_pivot
// where the division is exact (Sylvester's identity).
std::size_t eliminate(IntMat work, Int* det) {
  const std::size_t rows = work.rows();
  const std::size_t cols = work.cols();
  Int prev_pivot = 1;
  Int sign = 1;
  std::size_t rank = 0;
  std::size_t pivot_col = 0;
  for (std::size_t pr = 0; pr < rows && pivot_col < cols; ++pivot_col) {
    // Find a nonzero pivot in this column at/under row pr.
    std::size_t sel = pr;
    while (sel < rows && work.at(sel, pivot_col) == 0) ++sel;
    if (sel == rows) continue;  // column is structurally zero below pr
    if (sel != pr) {
      IntVec a = work.row(pr), b = work.row(sel);
      work.set_row(pr, b);
      work.set_row(sel, a);
      sign = -sign;
    }
    const Int pivot = work.at(pr, pivot_col);
    for (std::size_t i = pr + 1; i < rows; ++i) {
      for (std::size_t j = pivot_col + 1; j < cols; ++j) {
        Int num = checked_sub(checked_mul(pivot, work.at(i, j)),
                              checked_mul(work.at(i, pivot_col), work.at(pr, j)));
        // Exact by Sylvester's identity.
        work.at(i, j) = num / prev_pivot;
      }
      work.at(i, pivot_col) = 0;
    }
    prev_pivot = pivot;
    ++rank;
    ++pr;
  }
  if (det != nullptr) {
    if (rank < rows) {
      *det = 0;
    } else {
      *det = checked_mul(sign, prev_pivot);
    }
  }
  return rank;
}

}  // namespace

std::size_t rank(const IntMat& m) { return eliminate(m, nullptr); }

Int determinant(const IntMat& m) {
  BL_REQUIRE(m.rows() == m.cols(), "determinant requires a square matrix");
  if (m.rows() == 0) return 1;
  Int det = 0;
  eliminate(m, &det);
  return det;
}

bool is_unimodular(const IntMat& m) {
  if (m.rows() != m.cols()) return false;
  const Int d = determinant(m);
  return d == 1 || d == -1;
}

}  // namespace bitlevel::math
