#include "math/simplex.hpp"

#include <cstddef>

#include "support/error.hpp"

namespace bitlevel::math {

namespace {

/// Dense simplex tableau with an explicit basis, exact rationals and
/// Bland's anti-cycling rule.
class Tableau {
 public:
  // rows x (cols + 1) tableau; the last column is the RHS.
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), t_(rows, std::vector<Rational>(cols + 1)), basis_(rows, 0) {}

  Rational& at(std::size_t r, std::size_t c) { return t_[r][c]; }
  Rational& rhs(std::size_t r) { return t_[r][cols_]; }
  std::size_t basis(std::size_t r) const { return basis_[r]; }
  void set_basis(std::size_t r, std::size_t var) { basis_[r] = var; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const Rational p = t_[pr][pc];
    BL_REQUIRE(p != Rational(0), "pivot on a zero element");
    for (auto& v : t_[pr]) v = v / p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const Rational f = t_[r][pc];
      if (f == Rational(0)) continue;
      for (std::size_t c = 0; c <= cols_; ++c) t_[r][c] = t_[r][c] - f * t_[pr][c];
    }
    basis_[pr] = pc;
  }

  /// Minimize cost . x over the current feasible basis. `allowed[j]`
  /// masks columns eligible to enter. Returns false when unbounded.
  bool minimize(const std::vector<Rational>& cost, const std::vector<bool>& allowed) {
    while (true) {
      // Reduced costs: r_j = c_j - c_B . B^{-1} A_j (computed directly
      // from the tableau since it is kept in canonical form).
      std::size_t entering = cols_;
      for (std::size_t j = 0; j < cols_; ++j) {
        if (!allowed[j]) continue;
        Rational rj = cost[j];
        for (std::size_t r = 0; r < rows_; ++r) rj = rj - cost[basis_[r]] * t_[r][j];
        if (rj < Rational(0)) {
          entering = j;  // Bland: first (smallest-index) negative
          break;
        }
      }
      if (entering == cols_) return true;  // optimal
      // Ratio test with Bland's tie-break (smallest basis variable).
      std::size_t leaving = rows_;
      Rational best_ratio;
      for (std::size_t r = 0; r < rows_; ++r) {
        if (t_[r][entering] <= Rational(0)) continue;
        const Rational ratio = t_[r][cols_] / t_[r][entering];
        if (leaving == rows_ || ratio < best_ratio ||
            (ratio == best_ratio && basis_[r] < basis_[leaving])) {
          leaving = r;
          best_ratio = ratio;
        }
      }
      if (leaving == rows_) return false;  // unbounded
      pivot(leaving, entering);
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<Rational>> t_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution solve_linear_program(const LinearProgram& lp) {
  const std::size_t m = lp.constraints.size();
  const std::size_t n = lp.objective.size();
  BL_REQUIRE(lp.bounds.size() == m, "one bound per constraint required");
  for (const auto& row : lp.constraints) {
    BL_REQUIRE(row.size() == n, "constraint arity must match the objective");
  }

  // Standard form: A x - s = b with s >= 0, then artificials for a
  // starting identity basis. Rows with negative b are negated first so
  // every RHS is nonnegative.
  // Columns: [0, n) original, [n, n+m) surplus, [n+m, n+2m) artificial.
  const std::size_t cols = n + 2 * m;
  Tableau t(m, cols);
  for (std::size_t r = 0; r < m; ++r) {
    const bool flip = lp.bounds[r] < Rational(0);
    const Rational sign = flip ? Rational(-1) : Rational(1);
    for (std::size_t j = 0; j < n; ++j) t.at(r, j) = sign * lp.constraints[r][j];
    t.at(r, n + r) = sign * Rational(-1);
    t.at(r, n + m + r) = 1;
    t.rhs(r) = sign * lp.bounds[r];
    t.set_basis(r, n + m + r);
  }

  // Phase 1: minimize the sum of artificials.
  std::vector<Rational> phase1_cost(cols, Rational(0));
  for (std::size_t j = n + m; j < cols; ++j) phase1_cost[j] = 1;
  std::vector<bool> allowed(cols, true);
  if (!t.minimize(phase1_cost, allowed)) {
    // Phase 1 is bounded below by zero; this cannot happen.
    throw Error("phase-1 simplex reported unbounded");
  }
  Rational phase1_value(0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis(r) >= n + m) phase1_value = phase1_value + t.rhs(r);
  }
  if (phase1_value != Rational(0)) return {LpStatus::kInfeasible, {}, {}};

  // Drive any residual (degenerate) artificials out of the basis.
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis(r) < n + m) continue;
    std::size_t pc = cols;
    for (std::size_t j = 0; j < n + m; ++j) {
      if (t.at(r, j) != Rational(0)) {
        pc = j;
        break;
      }
    }
    if (pc != cols) t.pivot(r, pc);
    // A fully zero row is a redundant constraint; its artificial stays
    // basic at value zero and never re-enters (banned below).
  }

  // Phase 2: original objective, artificial columns banned.
  std::vector<Rational> cost(cols, Rational(0));
  for (std::size_t j = 0; j < n; ++j) cost[j] = lp.objective[j];
  for (std::size_t j = n + m; j < cols; ++j) allowed[j] = false;
  if (!t.minimize(cost, allowed)) return {LpStatus::kUnbounded, {}, {}};

  LpSolution sol;
  sol.status = LpStatus::kOptimal;
  sol.x.assign(n, Rational(0));
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis(r) < n) sol.x[t.basis(r)] = t.rhs(r);
  }
  sol.value = Rational(0);
  for (std::size_t j = 0; j < n; ++j) sol.value = sol.value + lp.objective[j] * sol.x[j];
  return sol;
}

}  // namespace bitlevel::math
