// Integer column vectors.
//
// Index points, dependence vectors and schedule rows are all small dense
// integer vectors; std::vector<Int> is the storage, and this header adds
// the overflow-checked linear-algebra vocabulary on top of it.
#pragma once

#include <string>
#include <vector>

#include "math/checked.hpp"

namespace bitlevel::math {

/// Dense integer vector (column vector by convention).
using IntVec = std::vector<Int>;

/// Elementwise a + b; dimensions must match.
IntVec add(const IntVec& a, const IntVec& b);

/// Elementwise a - b; dimensions must match.
IntVec sub(const IntVec& a, const IntVec& b);

/// Scalar multiple s * a.
IntVec scale(Int s, const IntVec& a);

/// Elementwise negation.
IntVec neg(const IntVec& a);

/// Inner product a . b; dimensions must match.
Int dot(const IntVec& a, const IntVec& b);

/// True when every entry is zero (the empty vector counts as zero).
bool is_zero(const IntVec& a);

/// True when every entry of a is >= the matching entry of b (the paper's
/// componentwise >= on vectors).
bool all_ge(const IntVec& a, const IntVec& b);

/// Lexicographic comparison: negative / zero / positive like strcmp.
int lex_compare(const IntVec& a, const IntVec& b);

/// True when a is lexicographically positive (first nonzero entry > 0);
/// the classical validity condition for a dependence distance vector.
bool lex_positive(const IntVec& a);

/// Concatenate two vectors: [a; b].
IntVec concat(const IntVec& a, const IntVec& b);

/// Sum of absolute values (L1 norm); used for wire-length accounting.
Int l1_norm(const IntVec& a);

/// gcd of all entries (0 for the zero vector); always nonnegative.
Int content(const IntVec& a);

/// "[a, b, c]" rendering.
std::string to_string(const IntVec& a);

}  // namespace bitlevel::math
