#include "math/gcd.hpp"

#include "support/error.hpp"

namespace bitlevel::math {

Int gcd(Int a, Int b) {
  // Work on nonnegative values; |INT64_MIN| overflows, so reject it.
  if (a < 0) a = checked_neg(a);
  if (b < 0) b = checked_neg(b);
  while (b != 0) {
    Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

Int lcm(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  Int g = gcd(a, b);
  Int q = (a < 0 ? -a : a) / g;
  return checked_mul(q, b < 0 ? -b : b);
}

ExtGcd extended_gcd(Int a, Int b) {
  // Invariants: old_r = a*old_x + b*old_y, r = a*x + b*y.
  Int old_r = a, r = b;
  Int old_x = 1, x = 0;
  Int old_y = 0, y = 1;
  while (r != 0) {
    Int q = old_r / r;
    Int tmp = checked_sub(old_r, checked_mul(q, r));
    old_r = r;
    r = tmp;
    tmp = checked_sub(old_x, checked_mul(q, x));
    old_x = x;
    x = tmp;
    tmp = checked_sub(old_y, checked_mul(q, y));
    old_y = y;
    y = tmp;
  }
  if (old_r < 0) {
    old_r = checked_neg(old_r);
    old_x = checked_neg(old_x);
    old_y = checked_neg(old_y);
  }
  return {old_r, old_x, old_y};
}

Int gcd_all(const std::vector<Int>& values) {
  Int g = 0;
  for (Int v : values) g = gcd(g, v);
  return g;
}

bool coprime(const std::vector<Int>& values) { return gcd_all(values) == 1; }

}  // namespace bitlevel::math
