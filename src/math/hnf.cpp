#include "math/hnf.hpp"

#include <cstdlib>

#include "math/checked.hpp"
#include "support/error.hpp"

namespace bitlevel::math {

namespace {

void swap_cols(IntMat& m, std::size_t a, std::size_t b) {
  if (a == b) return;
  IntVec ca = m.col(a), cb = m.col(b);
  m.set_col(a, cb);
  m.set_col(b, ca);
}

void negate_col(IntMat& m, std::size_t c) {
  for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, c) = checked_neg(m.at(r, c));
}

// col_j -= q * col_k
void axpy_col(IntMat& m, std::size_t j, Int q, std::size_t k) {
  if (q == 0) return;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    m.at(r, j) = checked_sub(m.at(r, j), checked_mul(q, m.at(r, k)));
  }
}

}  // namespace

HermiteForm hermite_normal_form(const IntMat& a) {
  HermiteForm out{a, IntMat::identity(a.cols()), {}, 0};
  IntMat& h = out.h;
  IntMat& u = out.u;
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  std::size_t pivot_col = 0;
  for (std::size_t row = 0; row < m && pivot_col < n; ++row) {
    // Reduce the tail of this row (columns >= pivot_col) to a single
    // positive entry at pivot_col via gcd column operations. Rows above
    // have zero entries in these columns, so they are unaffected.
    while (true) {
      // Pick the column with the smallest nonzero magnitude as pivot.
      std::size_t best = n;
      for (std::size_t j = pivot_col; j < n; ++j) {
        const Int v = h.at(row, j);
        if (v == 0) continue;
        if (best == n || std::llabs(v) < std::llabs(h.at(row, best))) best = j;
      }
      if (best == n) break;  // whole tail is zero: no pivot in this row
      swap_cols(h, pivot_col, best);
      swap_cols(u, pivot_col, best);
      if (h.at(row, pivot_col) < 0) {
        negate_col(h, pivot_col);
        negate_col(u, pivot_col);
      }
      const Int pivot = h.at(row, pivot_col);
      bool clean = true;
      for (std::size_t j = pivot_col + 1; j < n; ++j) {
        const Int q = floor_div(h.at(row, j), pivot);
        axpy_col(h, j, q, pivot_col);
        axpy_col(u, j, q, pivot_col);
        if (h.at(row, j) != 0) clean = false;
      }
      if (clean) break;
    }
    if (pivot_col < n && h.at(row, pivot_col) != 0) {
      // Canonicalize: reduce this row's entries in earlier pivot columns
      // into [0, pivot).
      const Int pivot = h.at(row, pivot_col);
      for (std::size_t j = 0; j < pivot_col; ++j) {
        const Int q = floor_div(h.at(row, j), pivot);
        axpy_col(h, j, q, pivot_col);
        axpy_col(u, j, q, pivot_col);
      }
      out.pivot_rows.push_back(row);
      ++pivot_col;
    }
  }
  out.rank = pivot_col;
  return out;
}

IntMat null_space_basis(const IntMat& a) {
  const HermiteForm hf = hermite_normal_form(a);
  IntMat basis(a.cols(), a.cols() - hf.rank);
  for (std::size_t k = hf.rank; k < a.cols(); ++k) basis.set_col(k - hf.rank, hf.u.col(k));
  return basis;
}

}  // namespace bitlevel::math
