// Fraction-free Gaussian elimination (Bareiss algorithm).
//
// Exact integer rank and determinant are needed by Definition 4.1:
// condition (4) requires rank(T) == k and the injectivity check for
// square T reduces to |det(T)| >= 1 plus a lattice argument. Bareiss
// keeps all intermediates integral and bounds their growth by minors of
// the input, which the overflow-checked arithmetic then verifies.
#pragma once

#include "math/int_mat.hpp"

namespace bitlevel::math {

/// Exact rank of an integer matrix.
std::size_t rank(const IntMat& m);

/// Exact determinant of a square integer matrix.
Int determinant(const IntMat& m);

/// True when the square matrix is unimodular (|det| == 1); Hermite and
/// Smith transforms must satisfy this postcondition.
bool is_unimodular(const IntMat& m);

}  // namespace bitlevel::math
