// Smith normal form: U * A * V = S with U, V unimodular and S diagonal
// with s_1 | s_2 | ... | s_r. Used by the lattice-injectivity check for
// mapping matrices (Definition 4.1 condition 3) and exercised heavily by
// the property tests as an independent cross-check of the Hermite code.
#pragma once

#include "math/int_mat.hpp"

namespace bitlevel::math {

/// Smith decomposition U * A * V = S.
struct SmithForm {
  IntMat s;  ///< Diagonal form, same shape as A; diagonal nonnegative.
  IntMat u;  ///< Unimodular row transform (rows x rows).
  IntMat v;  ///< Unimodular column transform (cols x cols).
  std::size_t rank = 0;  ///< Number of nonzero diagonal entries.
};

/// Compute the Smith normal form of `a`.
SmithForm smith_normal_form(const IntMat& a);

}  // namespace bitlevel::math
