#include "math/checked.hpp"

#include <limits>

#include "support/error.hpp"

namespace bitlevel::math {

Int checked_add(Int a, Int b) {
  Int out;
  if (__builtin_add_overflow(a, b, &out)) throw OverflowError("integer addition overflow");
  return out;
}

Int checked_sub(Int a, Int b) {
  Int out;
  if (__builtin_sub_overflow(a, b, &out)) throw OverflowError("integer subtraction overflow");
  return out;
}

Int checked_mul(Int a, Int b) {
  Int out;
  if (__builtin_mul_overflow(a, b, &out)) throw OverflowError("integer multiplication overflow");
  return out;
}

Int checked_neg(Int a) {
  if (a == std::numeric_limits<Int>::min()) throw OverflowError("integer negation overflow");
  return -a;
}

Int floor_div(Int a, Int b) {
  BL_REQUIRE(b != 0, "division by zero");
  Int q = a / b;
  Int r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

Int ceil_div(Int a, Int b) {
  BL_REQUIRE(b != 0, "division by zero");
  Int q = a / b;
  Int r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

Int mod_floor(Int a, Int b) {
  BL_REQUIRE(b != 0, "modulus by zero");
  Int r = a % b;
  if (r < 0) r += (b < 0 ? -b : b);
  return r;
}

}  // namespace bitlevel::math
