#include "mapping/primitives.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bitlevel::mapping {

Int InterconnectionPrimitives::max_wire_length() const {
  Int best = 0;
  for (std::size_t c = 0; c < p.cols(); ++c) best = std::max(best, math::l1_norm(p.col(c)));
  return best;
}

InterconnectionPrimitives InterconnectionPrimitives::mesh2d() {
  return {IntMat{{1, -1, 0, 0, 0}, {0, 0, 1, -1, 0}}, "mesh2d"};
}

InterconnectionPrimitives InterconnectionPrimitives::mesh2d_diag() {
  // The paper's P' (4.7): [1,0], [0,1], [1,-1], [0,0].
  return {IntMat{{1, 0, 1, 0}, {0, 1, -1, 0}}, "mesh2d+diag"};
}

InterconnectionPrimitives InterconnectionPrimitives::fig4(Int span) {
  BL_REQUIRE(span >= 1, "long-wire span must be >= 1");
  // The paper's P (4.3): [p,0], [0,p], [0,0], [1,0], [0,1], [1,-1].
  return {IntMat{{span, 0, 0, 1, 0, 1}, {0, span, 0, 0, 1, -1}}, "fig4-long-wires"};
}

}  // namespace bitlevel::mapping
