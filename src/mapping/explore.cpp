#include "mapping/explore.hpp"

#include <algorithm>
#include <sstream>

#include "mapping/projection.hpp"
#include "mapping/schedule.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {

std::string DesignCandidate::to_string() const {
  std::ostringstream os;
  os << "projections:\n"
     << projections.to_string() << "\nT = [S; Pi]:\n"
     << t.to_string() << "\ntime " << total_time << ", PEs " << processors << ", max wire "
     << max_wire;
  return os.str();
}

ExploreResult explore_designs(const ir::IndexSet& domain, const ir::DependenceMatrix& deps,
                              const InterconnectionPrimitives& prims, DesignObjective objective,
                              const ExploreOptions& options) {
  const std::size_t n = domain.dim();
  const std::size_t array_dims = prims.dim();
  BL_REQUIRE(array_dims < n, "target array must have fewer dimensions than the algorithm");
  const std::size_t m = n - array_dims;  // projection directions per set

  ExploreResult result;
  std::vector<IntVec> candidates = options.seed_directions;
  for (auto& d : candidate_directions(n, options.direction_support)) {
    candidates.push_back(std::move(d));
  }
  const auto sets = independent_direction_sets(candidates, m, options.max_direction_sets);

  for (const IntMat& u : sets) {
    ++result.spaces_tried;
    const IntMat space = space_mapping_from_projections(u);

    ScheduleSearchOptions sopt;
    sopt.coefficient_bound = options.schedule_bound;
    sopt.keep = options.keep_per_space;
    const auto found = search_schedules(domain, deps, space, prims, sopt);
    result.schedules_examined += found.examined;

    for (const auto& cand : found.feasible) {
      const MappingMatrix t(space, cand.pi);
      // Recover K to account the wires this design actually uses.
      const auto report = check_feasible(domain, deps, t, prims);
      BL_REQUIRE(report.ok, "search returned an infeasible schedule");
      Int max_wire = 0;
      for (std::size_t j = 0; j < prims.count(); ++j) {
        bool used = false;
        for (std::size_t i = 0; i < deps.size(); ++i) used = used || report.k->at(j, i) > 0;
        if (used) max_wire = std::max(max_wire, math::l1_norm(prims.p.col(j)));
      }
      result.designs.push_back({u, t, cand.total_time, processor_count(space, domain),
                                max_wire});
    }
  }

  const auto better = [objective](const DesignCandidate& a, const DesignCandidate& b) {
    switch (objective) {
      case DesignObjective::kTime:
        if (a.total_time != b.total_time) return a.total_time < b.total_time;
        return a.processors < b.processors;
      case DesignObjective::kProcessors:
        if (a.processors != b.processors) return a.processors < b.processors;
        return a.total_time < b.total_time;
      case DesignObjective::kWire:
        if (a.max_wire != b.max_wire) return a.max_wire < b.max_wire;
        return a.total_time < b.total_time;
    }
    return false;  // unreachable
  };
  std::sort(result.designs.begin(), result.designs.end(), better);
  return result;
}

}  // namespace bitlevel::mapping
