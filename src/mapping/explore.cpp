#include "mapping/explore.hpp"

#include <algorithm>
#include <sstream>

#include "mapping/projection.hpp"
#include "mapping/schedule.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace bitlevel::mapping {

std::string DesignCandidate::to_string() const {
  std::ostringstream os;
  os << "projections:\n"
     << projections.to_string() << "\nT = [S; Pi]:\n"
     << t.to_string() << "\ntime " << total_time << ", PEs " << processors << ", max wire "
     << max_wire;
  return os.str();
}

ExploreResult explore_designs(const ir::IndexSet& domain, const ir::DependenceMatrix& deps,
                              const InterconnectionPrimitives& prims, DesignObjective objective,
                              const ExploreOptions& options) {
  const std::size_t n = domain.dim();
  const std::size_t array_dims = prims.dim();
  BL_REQUIRE(array_dims < n, "target array must have fewer dimensions than the algorithm");
  const std::size_t m = n - array_dims;  // projection directions per set

  ExploreResult result;
  std::vector<IntVec> candidates = options.seed_directions;
  for (auto& d : candidate_directions(n, options.direction_support)) {
    candidates.push_back(std::move(d));
  }
  const auto sets = independent_direction_sets(candidates, m, options.max_direction_sets);
  result.spaces_tried = sets.size();

  // One direction set: search its schedules (serially — the pool is
  // already partitioned one level up) and emit the feasible designs.
  const auto try_space = [&](const IntMat& u, std::vector<DesignCandidate>& designs,
                             std::size_t& schedules_examined, bool& budget_exhausted) {
    const IntMat space = space_mapping_from_projections(u);

    ScheduleSearchOptions sopt;
    sopt.coefficient_bound = options.schedule_bound;
    sopt.keep = options.keep_per_space;
    sopt.threads = 1;
    sopt.max_examined = options.schedule_budget;
    const auto found = search_schedules(domain, deps, space, prims, sopt);
    schedules_examined += found.examined;
    budget_exhausted = budget_exhausted || found.budget_exhausted;

    for (const auto& cand : found.feasible) {
      const MappingMatrix t(space, cand.pi);
      // Recover K to account the wires this design actually uses.
      const auto report = check_feasible(domain, deps, t, prims);
      BL_REQUIRE(report.ok, "search returned an infeasible schedule");
      Int max_wire = 0;
      for (std::size_t j = 0; j < prims.count(); ++j) {
        bool used = false;
        for (std::size_t i = 0; i < deps.size(); ++i) used = used || report.k->at(j, i) > 0;
        if (used) max_wire = std::max(max_wire, math::l1_norm(prims.p.col(j)));
      }
      designs.push_back({u, t, cand.total_time, processor_count(space, domain), max_wire});
    }
  };

  const std::size_t nthreads = support::ThreadPool::resolve_threads(options.threads);
  if (nthreads == 1 || sets.size() < 2) {
    for (const IntMat& u : sets) {
      try_space(u, result.designs, result.schedules_examined, result.budget_exhausted);
    }
  } else {
    // Deterministic partition of the direction-set pool; chunk-order
    // merge reproduces the serial emission order.
    std::vector<std::vector<DesignCandidate>> designs(nthreads);
    std::vector<std::size_t> examined(nthreads, 0);
    std::vector<char> exhausted(nthreads, 0);
    support::ThreadPool::shared().parallel_for(
        nthreads, 0, sets.size(), [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          bool hit = false;
          for (std::size_t s = lo; s < hi; ++s) try_space(sets[s], designs[chunk], examined[chunk], hit);
          exhausted[chunk] = hit ? 1 : 0;
        });
    for (std::size_t c = 0; c < nthreads; ++c) {
      result.schedules_examined += examined[c];
      result.budget_exhausted = result.budget_exhausted || exhausted[c] != 0;
      result.designs.insert(result.designs.end(), std::make_move_iterator(designs[c].begin()),
                            std::make_move_iterator(designs[c].end()));
    }
  }

  // Strict total order: the objective keys first, then the mapping
  // itself as the tie-break, so the ranking is byte-identical for every
  // thread count (std::sort is not stable).
  const auto better = [objective](const DesignCandidate& a, const DesignCandidate& b) {
    switch (objective) {
      case DesignObjective::kTime:
        if (a.total_time != b.total_time) return a.total_time < b.total_time;
        if (a.processors != b.processors) return a.processors < b.processors;
        break;
      case DesignObjective::kProcessors:
        if (a.processors != b.processors) return a.processors < b.processors;
        if (a.total_time != b.total_time) return a.total_time < b.total_time;
        break;
      case DesignObjective::kWire:
        if (a.max_wire != b.max_wire) return a.max_wire < b.max_wire;
        if (a.total_time != b.total_time) return a.total_time < b.total_time;
        break;
    }
    if (a.t.matrix().data() != b.t.matrix().data()) return a.t.matrix().data() < b.t.matrix().data();
    return a.projections.data() < b.projections.data();
  };
  std::sort(result.designs.begin(), result.designs.end(), better);
  return result;
}

}  // namespace bitlevel::mapping
