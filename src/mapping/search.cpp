#include "mapping/search.hpp"

#include <algorithm>

#include "mapping/schedule.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {

ScheduleSearchResult search_schedules(const ir::IndexSet& domain,
                                      const ir::DependenceMatrix& deps, const IntMat& space,
                                      const InterconnectionPrimitives& prims,
                                      const ScheduleSearchOptions& options) {
  const std::size_t n = domain.dim();
  BL_REQUIRE(options.coefficient_bound >= 1, "coefficient bound must be >= 1");

  ScheduleSearchResult result;
  const Int b = options.coefficient_bound;
  IntVec pi(n, -b);
  const FeasibilityOptions fopts{options.check_injectivity};

  while (true) {
    ++result.examined;
    // Quick screens before the full feasibility machinery: Pi must be
    // nonzero and order every dependence forward.
    bool plausible = !math::is_zero(pi);
    if (plausible) {
      for (std::size_t i = 0; i < deps.size() && plausible; ++i) {
        plausible = math::dot(pi, deps[i].d) > 0;
      }
    }
    if (plausible) {
      const MappingMatrix t(space, pi);
      const FeasibilityReport report = check_feasible(domain, deps, t, prims, fopts);
      if (report.ok) {
        result.feasible.push_back({pi, execution_time(pi, domain)});
      }
    }
    // Advance the odometer; stop when every digit wraps.
    bool advanced = false;
    for (std::size_t k = n; k-- > 0;) {
      if (pi[k] < b) {
        ++pi[k];
        advanced = true;
        break;
      }
      pi[k] = -b;
    }
    if (!advanced) break;
  }

  std::sort(result.feasible.begin(), result.feasible.end(),
            [](const ScheduleCandidate& a, const ScheduleCandidate& b2) {
              if (a.total_time != b2.total_time) return a.total_time < b2.total_time;
              return a.pi < b2.pi;
            });
  if (options.keep != 0 && result.feasible.size() > options.keep) {
    result.feasible.resize(options.keep);
  }
  return result;
}

}  // namespace bitlevel::mapping
