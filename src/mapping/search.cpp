#include "mapping/search.hpp"

#include <algorithm>
#include <limits>

#include "mapping/schedule.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace bitlevel::mapping {

namespace {

/// One worker's sweep over the odometer positions [from, to): decode
/// the starting digits, enumerate in the same order as the serial loop,
/// and collect the feasible candidates in enumeration order.
void sweep_range(std::size_t from, std::size_t to, std::size_t n, Int b,
                 const ir::IndexSet& domain, const ir::DependenceMatrix& deps,
                 const IntMat& space, const InterconnectionPrimitives& prims,
                 const FeasibilityOptions& fopts, std::vector<ScheduleCandidate>& out) {
  const std::size_t radix = static_cast<std::size_t>(2 * b + 1);
  // Decode `from` into odometer digits (most significant first).
  IntVec pi(n, -b);
  std::size_t rest = from;
  for (std::size_t k = n; k-- > 0;) {
    pi[k] = -b + static_cast<Int>(rest % radix);
    rest /= radix;
  }
  for (std::size_t at = from; at < to; ++at) {
    // Quick screens before the full feasibility machinery: Pi must be
    // nonzero and order every dependence forward.
    bool plausible = !math::is_zero(pi);
    if (plausible) {
      for (std::size_t i = 0; i < deps.size() && plausible; ++i) {
        plausible = math::dot(pi, deps[i].d) > 0;
      }
    }
    if (plausible) {
      const MappingMatrix t(space, pi);
      const FeasibilityReport report = check_feasible(domain, deps, t, prims, fopts);
      if (report.ok) {
        out.push_back({pi, execution_time(pi, domain)});
      }
    }
    // Advance the odometer.
    for (std::size_t k = n; k-- > 0;) {
      if (pi[k] < b) {
        ++pi[k];
        break;
      }
      pi[k] = -b;
    }
  }
}

}  // namespace

ScheduleSearchResult search_schedules(const ir::IndexSet& domain,
                                      const ir::DependenceMatrix& deps, const IntMat& space,
                                      const InterconnectionPrimitives& prims,
                                      const ScheduleSearchOptions& options) {
  const std::size_t n = domain.dim();
  BL_REQUIRE(options.coefficient_bound >= 1, "coefficient bound must be >= 1");

  ScheduleSearchResult result;
  const Int b = options.coefficient_bound;
  const FeasibilityOptions fopts{options.check_injectivity};

  // Total odometer positions (2b+1)^n, accumulated overflow-safely in
  // 64 bits. A saturated space cannot be enumerated at all (the count
  // does not even fit size_t), so the sweep is refused outright and
  // reported as such — examined stays the true count of candidates
  // visited (zero), not a sentinel.
  const unsigned long long radix = 2ULL * static_cast<unsigned long long>(b) + 1ULL;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t total = 1;
  for (std::size_t i = 0; i < n && !result.saturated; ++i) {
    if (static_cast<unsigned long long>(total) > kMax / radix) {
      result.saturated = true;
    } else {
      total = static_cast<std::size_t>(total * radix);
    }
  }
  if (result.saturated) {
    result.examined = 0;
    return result;
  }
  // Iteration watchdog: sweep only the deterministic odometer prefix
  // the budget allows, flagging the result as partial.
  if (options.max_examined != 0 && total > options.max_examined) {
    result.budget_exhausted = true;
    total = options.max_examined;
  }
  result.examined = total;

  const std::size_t nthreads = support::ThreadPool::resolve_threads(options.threads);
  if (nthreads == 1 || total < 2) {
    sweep_range(0, total, n, b, domain, deps, space, prims, fopts, result.feasible);
  } else {
    // Deterministic partition of the odometer; chunk-order concatenation
    // reproduces the serial enumeration order exactly.
    std::vector<std::vector<ScheduleCandidate>> found(nthreads);
    support::ThreadPool::shared().parallel_for(
        nthreads, 0, total, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          sweep_range(lo, hi, n, b, domain, deps, space, prims, fopts, found[chunk]);
        });
    for (auto& part : found) {
      result.feasible.insert(result.feasible.end(), std::make_move_iterator(part.begin()),
                             std::make_move_iterator(part.end()));
    }
  }

  std::sort(result.feasible.begin(), result.feasible.end(),
            [](const ScheduleCandidate& a, const ScheduleCandidate& b2) {
              if (a.total_time != b2.total_time) return a.total_time < b2.total_time;
              return a.pi < b2.pi;
            });
  if (options.keep != 0 && result.feasible.size() > options.keep) {
    result.feasible.resize(options.keep);
  }
  return result;
}

}  // namespace bitlevel::mapping
