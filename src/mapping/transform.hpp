// Linear algorithm transformations (Definition 4.1).
//
// A mapping matrix T = [S; Pi] in Z^{k x n} sends the computation at
// index point j to processor S*j (a (k-1)-vector) at time Pi*j (a
// scalar). The feasibility conditions live in feasibility.hpp; this
// header is the data type.
#pragma once

#include <string>

#include "math/int_mat.hpp"

namespace bitlevel::mapping {

using math::Int;
using math::IntMat;
using math::IntVec;

/// T = [S; Pi]: the first k-1 rows map to space, the last row to time.
class MappingMatrix {
 public:
  /// Wrap a k x n matrix; requires k >= 1 (at least a schedule row).
  explicit MappingMatrix(IntMat t);

  /// Build from an explicit space part and schedule row.
  MappingMatrix(const IntMat& space, const IntVec& schedule);

  std::size_t k() const { return t_.rows(); }
  std::size_t n() const { return t_.cols(); }

  const IntMat& matrix() const { return t_; }

  /// S: the space mapping (k-1 x n).
  IntMat space() const;

  /// Pi: the linear schedule (row vector of length n).
  IntVec schedule() const;

  /// Processor coordinates S*j of an index point.
  IntVec processor(const IntVec& j) const;

  /// Execution time Pi*j of an index point.
  Int time(const IntVec& j) const;

  /// Full image T*j = [processor; time].
  IntVec apply(const IntVec& j) const { return t_.mul(j); }

  bool operator==(const MappingMatrix& other) const = default;

  std::string to_string() const { return t_.to_string(); }

 private:
  IntMat t_;
};

}  // namespace bitlevel::mapping
