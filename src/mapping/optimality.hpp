// Schedule-optimality certification (the rigorous form of Theorem 4.5).
//
// For a box domain J and dependence matrix D, every valid linear
// schedule satisfies Pi * d >= 1 per column (condition 1 with integer
// Pi), and its total time is sum_i extent_i * |pi_i| + 1. Relaxing Pi
// to rationals gives the LP
//     minimize  sum_i extent_i * (u_i + v_i)
//     s.t.      (u - v) . d_j >= 1  for every column j,  u, v >= 0
// whose optimum L lower-bounds every integer schedule's span; hence any
// achieved schedule with span == ceil(L) is provably time optimal among
// ALL linear schedules — no coefficient bound, no search horizon. This
// turns the paper's deferred Theorem 4.5 proof into a checkable
// certificate.
#pragma once

#include "ir/dependence.hpp"
#include "ir/index_set.hpp"
#include "math/rational.hpp"
#include "mapping/transform.hpp"

namespace bitlevel::mapping {

/// Result of an optimality check.
struct OptimalityCertificate {
  math::Rational lp_bound;   ///< LP optimum L (span, excluding the +1).
  Int lower_bound = 0;       ///< ceil(L) + 1: no integer schedule is faster.
  Int achieved = 0;          ///< The candidate schedule's total time.
  bool certified = false;    ///< achieved == lower_bound.
  IntVec lp_schedule_num;    ///< Numerators of an optimal fractional Pi.
  Int lp_schedule_den = 1;   ///< Common denominator.
};

/// Rational lower bound on the schedule span (time minus one) of any
/// linear schedule satisfying condition 1. Throws NotFoundError when no
/// schedule exists at all (the LP is infeasible, i.e. the dependence
/// cone is not pointed).
math::Rational schedule_span_lower_bound(const ir::IndexSet& domain,
                                         const ir::DependenceMatrix& deps);

/// Certify (or refute) that `pi` is a time-optimal linear schedule.
OptimalityCertificate certify_time_optimal(const ir::IndexSet& domain,
                                           const ir::DependenceMatrix& deps, const IntVec& pi);

}  // namespace bitlevel::mapping
