// Exhaustive schedule search.
//
// Theorem 4.5 claims T of (4.2) is time optimal. The search enumerates
// every integer schedule row Pi with bounded coefficients, keeps those
// satisfying the feasibility conditions against a fixed space mapping S
// and primitive set P, and ranks them by total execution time — the
// empirical check of the optimality claim (bench E8).
#pragma once

#include <vector>

#include "ir/dependence.hpp"
#include "mapping/feasibility.hpp"

namespace bitlevel::mapping {

/// One feasible schedule found by the search.
struct ScheduleCandidate {
  IntVec pi;
  Int total_time = 0;
};

/// Search options.
struct ScheduleSearchOptions {
  Int coefficient_bound = 2;      ///< Enumerate pi_i in [-bound, bound].
  bool check_injectivity = true;  ///< Enforce condition 3 for [S; Pi].
  std::size_t keep = 0;           ///< Keep only the best N (0 = all).
  /// Workers partitioning the (2b+1)^n odometer. 0 = BITLEVEL_THREADS /
  /// hardware concurrency, 1 = the serial sweep. The ranked result is
  /// byte-identical for every thread count (deterministic partition,
  /// chunk-order merge, total-order ranking).
  int threads = 0;
  /// Iteration watchdog: enumerate at most this many odometer positions
  /// (0 = unbounded). A larger space is swept only over its first
  /// `max_examined` positions — a deterministic prefix, identical for
  /// every thread count — and the partial result carries
  /// budget_exhausted (mirroring the saturation flag) instead of
  /// running without bound.
  std::size_t max_examined = 0;
};

/// Result of a schedule search.
struct ScheduleSearchResult {
  std::vector<ScheduleCandidate> feasible;  ///< Sorted by total_time.
  std::size_t examined = 0;  ///< Schedules actually enumerated (0 when saturated).
  /// True when (2 * coefficient_bound + 1)^dim overflows size_t: such a
  /// space cannot be swept, so nothing was enumerated and `feasible` is
  /// empty. Callers wanting results must shrink the bound or the
  /// dimensionality.
  bool saturated = false;
  /// True when ScheduleSearchOptions::max_examined cut the sweep short:
  /// `feasible` and `examined` cover only the enumerated prefix.
  bool budget_exhausted = false;
};

/// Enumerate schedules for the fixed space mapping `space` over the
/// algorithm (domain, deps) and array `prims`.
ScheduleSearchResult search_schedules(const ir::IndexSet& domain,
                                      const ir::DependenceMatrix& deps, const IntMat& space,
                                      const InterconnectionPrimitives& prims,
                                      const ScheduleSearchOptions& options = {});

}  // namespace bitlevel::mapping
