// Interconnection-primitive matrices.
//
// P describes the physical links of the target processor array: each
// column is a displacement a datum can travel in one time unit. The
// zero column models stationary data (a register, no wire). Long wires
// (displacement p) are what the time-optimal Fig. 4 architecture trades
// for speed; Fig. 5 does without them.
#pragma once

#include <string>

#include "math/int_mat.hpp"

namespace bitlevel::mapping {

using math::Int;
using math::IntMat;
using math::IntVec;

/// The link set of a target array; columns of `p` are primitives.
struct InterconnectionPrimitives {
  IntMat p;
  std::string name;

  std::size_t dim() const { return p.rows(); }
  std::size_t count() const { return p.cols(); }

  /// Length of the longest wire (max L1 norm of any primitive).
  Int max_wire_length() const;

  /// Four nearest neighbours (E, W, S, N) plus the stationary link.
  static InterconnectionPrimitives mesh2d();

  /// Nearest neighbours, stationary, plus the south-west diagonal
  /// [1, -1] used by the bit-level arrays (Fig. 5's P' of eq. 4.7).
  static InterconnectionPrimitives mesh2d_diag();

  /// Fig. 4's P of eq. 4.3: long wires of span `span` in both
  /// dimensions, stationary, unit steps, and the diagonal:
  /// columns [span,0], [0,span], [0,0], [1,0], [0,1], [1,-1].
  static InterconnectionPrimitives fig4(Int span);
};

}  // namespace bitlevel::mapping
