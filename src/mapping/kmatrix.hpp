// Solving S*D = P*K under the utilization constraint (4.1).
//
// Column i of K decomposes the space displacement S*d_i into a
// multiset of interconnection primitives; the datum then needs
// sum_j k_ji hops, which must not exceed the Pi*d_i time units between
// production and consumption. The solver finds, per column, a
// nonnegative integer decomposition with the fewest hops (bounded
// depth-first search — dimensions and budgets are tiny).
#pragma once

#include <optional>

#include "mapping/primitives.hpp"

namespace bitlevel::mapping {

/// Decomposition of one displacement: counts per primitive.
struct HopDecomposition {
  IntVec counts;  ///< counts[j] = uses of primitive j.
  Int hops = 0;   ///< sum of counts.
};

/// Minimal-hop decomposition of `target` over the primitives, with at
/// most `budget` hops. Returns std::nullopt when impossible. The zero
/// primitive (stationary) is never chosen by the minimal solution for a
/// nonzero target and contributes zero movement for a zero target.
std::optional<HopDecomposition> decompose_displacement(const InterconnectionPrimitives& prims,
                                                       const IntVec& target, Int budget);

/// Solve S*D = P*K columnwise under (4.1): k_ji >= 0 and
/// sum_j k_ji <= pi_d[i] (the schedule slack of dependence i).
/// Returns the full K (prims.count() x sd.cols()), or std::nullopt with
/// the index of the first infeasible column in *bad_column.
std::optional<IntMat> solve_k_matrix(const InterconnectionPrimitives& prims, const IntMat& sd,
                                     const IntVec& pi_d, std::size_t* bad_column = nullptr);

}  // namespace bitlevel::mapping
