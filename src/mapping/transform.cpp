#include "mapping/transform.hpp"

#include "support/error.hpp"

namespace bitlevel::mapping {

MappingMatrix::MappingMatrix(IntMat t) : t_(std::move(t)) {
  BL_REQUIRE(t_.rows() >= 1, "mapping matrix needs at least the schedule row");
  BL_REQUIRE(t_.cols() >= 1, "mapping matrix needs at least one column");
}

MappingMatrix::MappingMatrix(const IntMat& space, const IntVec& schedule)
    : t_(space.vstack(IntMat::from_rows({schedule}))) {}

IntMat MappingMatrix::space() const {
  IntMat s(t_.rows() - 1, t_.cols());
  for (std::size_t r = 0; r + 1 < t_.rows(); ++r) s.set_row(r, t_.row(r));
  return s;
}

IntVec MappingMatrix::schedule() const { return t_.row(t_.rows() - 1); }

IntVec MappingMatrix::processor(const IntVec& j) const {
  return space().mul(j);
}

Int MappingMatrix::time(const IntVec& j) const { return math::dot(schedule(), j); }

}  // namespace bitlevel::mapping
