// Automatic design-space exploration.
//
// Ties the whole Section 4 machinery into one call: enumerate candidate
// space mappings (from projection-direction sets), search linear
// schedules for each, keep the Definition-4.1-feasible designs, and
// rank them by the designer's objective (time, processors, wire
// length). This is the "systematically programming or designing
// bit-level processor arrays" workflow the paper's introduction promises.
#pragma once

#include <string>
#include <vector>

#include "ir/dependence.hpp"
#include "mapping/feasibility.hpp"
#include "mapping/search.hpp"

namespace bitlevel::mapping {

/// One complete feasible design.
struct DesignCandidate {
  IntMat projections;   ///< The direction set that induced S.
  MappingMatrix t;      ///< [S; Pi], feasible per Definition 4.1.
  Int total_time = 0;
  Int processors = 0;
  Int max_wire = 0;     ///< Longest primitive actually used by K.

  std::string to_string() const;
};

/// Exploration knobs.
struct ExploreOptions {
  int direction_support = 2;      ///< Entry support of candidate directions.
  std::size_t max_direction_sets = 64;  ///< Cap on S candidates tried.
  Int schedule_bound = 2;         ///< Pi coefficient bound per S.
  std::size_t keep_per_space = 1; ///< Best schedules kept per S.
  /// Extra candidate directions prepended to the enumerated pool —
  /// domain knowledge like the Fig. 4 projections [1,0,0,-p,0] whose
  /// p-scaled entries the generic {-1,0,1} pool cannot express.
  std::vector<IntVec> seed_directions;
  /// Workers partitioning the direction-set pool (each worker sweeps
  /// its spaces' schedules serially). 0 = BITLEVEL_THREADS / hardware
  /// concurrency, 1 = serial. Ranked designs are byte-identical for
  /// every thread count.
  int threads = 0;
  /// Iteration watchdog: per-space cap on schedule odometer positions
  /// (ScheduleSearchOptions::max_examined; 0 = unbounded). Pathological
  /// bounds then yield a partial, deterministic result with
  /// ExploreResult::budget_exhausted set instead of sweeping forever.
  std::size_t schedule_budget = 0;
};

/// Objective for the final ranking.
enum class DesignObjective {
  kTime,        ///< Minimize total execution time.
  kProcessors,  ///< Minimize PE count (ties broken by time).
  kWire,        ///< Minimize longest wire (ties broken by time).
};

/// Result of an exploration.
struct ExploreResult {
  std::vector<DesignCandidate> designs;  ///< Sorted by the objective.
  std::size_t spaces_tried = 0;
  std::size_t schedules_examined = 0;
  /// True when ExploreOptions::schedule_budget truncated at least one
  /// space's schedule sweep: `designs` ranks only the examined prefix.
  bool budget_exhausted = false;
};

/// Explore (k-1)-dimensional arrays for the algorithm (domain, deps) on
/// a target with primitive set `prims` (prims.dim() == k-1).
ExploreResult explore_designs(const ir::IndexSet& domain, const ir::DependenceMatrix& deps,
                              const InterconnectionPrimitives& prims,
                              DesignObjective objective = DesignObjective::kTime,
                              const ExploreOptions& options = {});

}  // namespace bitlevel::mapping
