#include "mapping/kmatrix.hpp"

#include "support/error.hpp"

namespace bitlevel::mapping {

namespace {

// Depth-first search over primitive counts: at `index`, the remaining
// displacement must be covered by primitives index.. with at most
// `budget` further hops. Returns the count vector through `counts` when
// a solution with exactly the probed hop total exists.
bool cover(const IntMat& prims, std::size_t index, IntVec& remaining, Int budget,
           IntVec& counts) {
  if (math::is_zero(remaining)) return true;
  if (index == prims.cols() || budget == 0) return false;
  const IntVec prim = prims.col(index);
  if (math::is_zero(prim)) {
    // Stationary link: never moves the datum; skip for nonzero targets.
    return cover(prims, index + 1, remaining, budget, counts);
  }
  for (Int use = 0; use <= budget; ++use) {
    if (use > 0) {
      for (std::size_t r = 0; r < remaining.size(); ++r) {
        remaining[r] = math::checked_sub(remaining[r], prim[r]);
      }
    }
    counts[index] = use;
    if (cover(prims, index + 1, remaining, budget - use, counts)) return true;
  }
  // Restore the displacement consumed by the final iteration.
  for (std::size_t r = 0; r < remaining.size(); ++r) {
    remaining[r] = math::checked_add(remaining[r], math::checked_mul(budget, prim[r]));
  }
  counts[index] = 0;
  return false;
}

}  // namespace

std::optional<HopDecomposition> decompose_displacement(const InterconnectionPrimitives& prims,
                                                       const IntVec& target, Int budget) {
  BL_REQUIRE(target.size() == prims.dim(), "displacement dimension must match the primitives");
  BL_REQUIRE(budget >= 0, "hop budget must be nonnegative");
  // Probe increasing hop totals so the first hit is minimal.
  for (Int hops = 0; hops <= budget; ++hops) {
    IntVec counts(prims.count(), 0);
    IntVec remaining = target;
    if (cover(prims.p, 0, remaining, hops, counts)) {
      // cover() may use fewer hops than probed; recompute the total.
      Int used = 0;
      for (Int c : counts) used = math::checked_add(used, c);
      return HopDecomposition{std::move(counts), used};
    }
  }
  return std::nullopt;
}

std::optional<IntMat> solve_k_matrix(const InterconnectionPrimitives& prims, const IntMat& sd,
                                     const IntVec& pi_d, std::size_t* bad_column) {
  BL_REQUIRE(sd.rows() == prims.dim(), "S*D row count must match the primitive dimension");
  BL_REQUIRE(pi_d.size() == sd.cols(), "schedule slack must have one entry per dependence");
  IntMat k(prims.count(), sd.cols());
  for (std::size_t i = 0; i < sd.cols(); ++i) {
    const auto dec = decompose_displacement(prims, sd.col(i), pi_d[i]);
    if (!dec) {
      if (bad_column != nullptr) *bad_column = i;
      return std::nullopt;
    }
    k.set_col(i, dec->counts);
  }
  return k;
}

}  // namespace bitlevel::mapping
