// The paper's published bit-level matmul mappings (Section 4).
//
// Fig. 4 (eq. 4.2): time-optimal mapping with long [p,0]/[0,p] wires.
// Fig. 5 (eq. 4.6): nearest-neighbour wiring only, slower schedule.
//
// These are pure data — the T matrices and the primitive sets they were
// designed for — placed in the mapping layer so both the design
// pipeline (published-mapping strategy, explorer fallback) and the arch
// wrappers can share one definition. The batched variants extend T with
// a leading batch column whose schedule entry is the initiation
// interval, streaming independent problem instances through one array.
#pragma once

#include "mapping/primitives.hpp"
#include "mapping/transform.hpp"

namespace bitlevel::mapping {

/// Which of the paper's two matmul mappings.
enum class PublishedMapping { kFig4, kFig5 };

/// The mapping matrix T of (4.2) / T' of (4.6) for word length p.
MappingMatrix published_matmul_mapping(PublishedMapping which, Int p);

/// The primitive set the mapping was designed for: (4.3) for Fig. 4,
/// (4.7) for Fig. 5.
InterconnectionPrimitives published_matmul_primitives(PublishedMapping which, Int p);

/// The initiation interval of the published schedules for u x u
/// operands: every PE is busy for u consecutive cycles per problem (the
/// j3 coefficient of both schedules is 1), and the injectivity analysis
/// shows a batch offset of u is the smallest conflict-free one.
Int published_matmul_initiation_interval(Int u);

/// T extended for a batched model (leading batch coordinate): the space
/// rows are batch-blind, the schedule offsets each batch by the
/// initiation interval for u x u operands.
MappingMatrix published_matmul_batched_mapping(PublishedMapping which, Int p, Int u);

}  // namespace bitlevel::mapping
