#include "mapping/feasibility.hpp"

#include <sstream>

#include "math/bareiss.hpp"
#include "math/diophantine.hpp"
#include "math/gcd.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {

std::string FeasibilityReport::to_string() const {
  if (ok) return "feasible";
  std::ostringstream os;
  os << "infeasible:\n";
  for (const auto& v : violations) os << "  - " << v << '\n';
  return os.str();
}

bool injective_on(const ir::IndexSet& domain, const MappingMatrix& t) {
  // T j1 = T j2 with j1 != j2 in J  <=>  a nonzero integer null vector
  // of T lies in the difference box J - J. Enumerate null vectors inside
  // the box; only the zero vector may appear.
  const std::size_t n = t.n();
  BL_REQUIRE(domain.dim() == n, "domain dimension must match the mapping");
  IntVec ext(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ext[i] = math::checked_sub(domain.upper()[i], domain.lower()[i]);
  }
  IntVec lo = math::neg(ext);
  const auto solutions =
      math::enumerate_solutions_in_box(t.matrix(), IntVec(t.k(), 0), lo, ext, 2);
  // The zero vector always solves; a second solution is a collision.
  return solutions.size() <= 1;
}

FeasibilityReport check_feasible(const ir::IndexSet& domain, const ir::DependenceMatrix& deps,
                                 const MappingMatrix& t, const InterconnectionPrimitives& prims,
                                 const FeasibilityOptions& options) {
  FeasibilityReport report;
  BL_REQUIRE(deps.empty() || deps.dim() == t.n(),
             "dependence dimension must match the mapping");
  BL_REQUIRE(prims.dim() + 1 == t.k(),
             "primitive dimension must match the array dimension k-1");

  const IntVec pi = t.schedule();
  const IntMat d = deps.as_matrix();

  // (1) Pi * D > 0.
  IntVec pi_d(deps.size(), 0);
  for (std::size_t i = 0; i < deps.size(); ++i) {
    pi_d[i] = math::dot(pi, d.col(i));
    if (pi_d[i] <= 0) {
      std::ostringstream os;
      os << "condition 1: Pi * d" << (i + 1) << " = " << pi_d[i] << " <= 0 (cause "
         << deps[i].cause << ")";
      report.violations.push_back(os.str());
    }
  }

  // (2) S*D = P*K with the utilization constraint (4.1). Only checkable
  // once every column has positive slack.
  if (report.violations.empty()) {
    const IntMat sd = t.space().mul(d);
    std::size_t bad = 0;
    auto k = solve_k_matrix(prims, sd, pi_d, &bad);
    if (!k) {
      std::ostringstream os;
      os << "condition 2: S * d" << (bad + 1) << " = " << math::to_string(sd.col(bad))
         << " not realizable over " << prims.name << " within " << pi_d[bad] << " hops";
      report.violations.push_back(os.str());
    } else {
      report.k = std::move(*k);
    }
  }

  // (4) rank(T) = k (checked before the costlier injectivity scan).
  if (math::rank(t.matrix()) != t.k()) {
    report.violations.push_back("condition 4: rank(T) < k (maps into a lower-dimensional array)");
  }

  // (3) injectivity on J.
  if (options.check_injectivity && !injective_on(domain, t)) {
    report.violations.push_back(
        "condition 3: two index points map to the same (processor, time)");
  }

  // (5) entries of T relatively prime.
  if (math::gcd_all(t.matrix().data()) != 1) {
    report.violations.push_back("condition 5: entries of T share a common factor");
  }

  report.ok = report.violations.empty();
  return report;
}

std::string describe_routing(const ir::DependenceMatrix& deps, const MappingMatrix& t,
                             const InterconnectionPrimitives& prims, const IntMat& k) {
  BL_REQUIRE(k.rows() == prims.count() && k.cols() == deps.size(),
             "routing matrix shape must be (primitives x dependences)");
  const IntMat space = t.space();
  const IntVec pi = t.schedule();
  std::ostringstream os;
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const auto& col = deps[i];
    const IntVec sd = space.mul(col.d);
    os << "d" << (i + 1) << " (" << col.cause << "): displacement "
       << math::to_string(sd);
    Int hops = 0;
    bool first = true;
    for (std::size_t j = 0; j < prims.count(); ++j) {
      const Int uses = k.at(j, i);
      if (uses == 0) continue;
      os << (first ? " via " : " + ");
      if (uses > 1) os << uses << " x ";
      os << math::to_string(prims.p.col(j));
      hops = math::checked_add(hops, uses);
      first = false;
    }
    if (first) os << " (stationary)";
    const Int slack = math::checked_sub(math::dot(pi, col.d), hops);
    if (slack > 0) {
      os << ", " << slack << (math::is_zero(sd) ? " register(s)" : " buffer register(s)");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace bitlevel::mapping
