// Projection-based space mappings.
//
// Classical systolic design picks *projection directions*: index points
// that differ by a projection vector execute on the same processor. For
// an n-dimensional algorithm mapped to a (k-1)-dimensional array one
// chooses m = n - (k-1) linearly independent directions U = [u1 ... um];
// the space mapping S is then any integer basis of
//     { r in Z^n : r . u_i = 0 for all i }  =  null(U^T),
// so that S*U = 0 and rank(S) = k-1. This module builds S from
// directions and enumerates small candidate direction sets — the
// design-space exploration the paper's references [5, 6, 10] describe,
// here driving the explorer in explore.hpp.
#pragma once

#include <optional>
#include <vector>

#include "math/int_mat.hpp"

namespace bitlevel::mapping {

using math::Int;
using math::IntMat;
using math::IntVec;

/// Space mapping from projection directions: the rows of the result
/// span the integer null space of directions^T. Requires the directions
/// (columns of `directions`) to be linearly independent; the result has
/// n - directions.cols() rows. Throws PreconditionError on dependent
/// directions.
IntMat space_mapping_from_projections(const IntMat& directions);

/// Candidate projection directions for exploration: all primitive
/// lexicographically-positive vectors with entries in [-1, 1] and at
/// most `max_support` nonzero entries (unit vectors first).
std::vector<IntVec> candidate_directions(std::size_t n, int max_support = 2);

/// All size-m subsets of `candidates` that are linearly independent,
/// yielded as n x m matrices; `limit` caps the number returned
/// (0 = unlimited).
std::vector<IntMat> independent_direction_sets(const std::vector<IntVec>& candidates,
                                               std::size_t m, std::size_t limit = 0);

}  // namespace bitlevel::mapping
