#include "mapping/schedule.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace bitlevel::mapping {

Int execution_time(const IntVec& pi, const ir::IndexSet& domain) {
  BL_REQUIRE(pi.size() == domain.dim(), "schedule dimension must match the domain");
  Int span = 0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const Int extent = math::checked_sub(domain.upper()[i], domain.lower()[i]);
    const Int mag = pi[i] < 0 ? math::checked_neg(pi[i]) : pi[i];
    span = math::checked_add(span, math::checked_mul(mag, extent));
  }
  return math::checked_add(span, 1);
}

Int processor_count(const IntMat& space, const ir::IndexSet& domain) {
  std::set<IntVec> cells;
  domain.for_each([&](const IntVec& q) {
    cells.insert(space.mul(q));
    return true;
  });
  return static_cast<Int>(cells.size());
}

Int min_initiation_interval(const MappingMatrix& t, const ir::IndexSet& domain) {
  const IntMat space = t.space();
  const IntVec pi = t.schedule();
  std::map<IntVec, std::pair<Int, Int>> window;  // PE -> (min t, max t)
  domain.for_each([&](const IntVec& q) {
    const Int when = math::dot(pi, q);
    auto [it, inserted] = window.insert({space.mul(q), {when, when}});
    if (!inserted) {
      it->second.first = std::min(it->second.first, when);
      it->second.second = std::max(it->second.second, when);
    }
    return true;
  });
  Int interval = 1;
  for (const auto& [pe, w] : window) {
    interval = std::max(interval, w.second - w.first + 1);
  }
  return interval;
}

OccupancyStats occupancy(const MappingMatrix& t, const ir::IndexSet& domain) {
  OccupancyStats stats;
  stats.total_time = execution_time(t.schedule(), domain);
  stats.computations = domain.size();

  std::set<IntVec> cells;
  std::set<IntVec> spacetime;
  std::map<Int, Int> per_step;
  const IntMat space = t.space();
  const IntVec pi = t.schedule();
  domain.for_each([&](const IntVec& q) {
    IntVec cell = space.mul(q);
    const Int when = math::dot(pi, q);
    IntVec st = cell;
    st.push_back(when);
    BL_REQUIRE(spacetime.insert(st).second,
               "computational conflict: two index points share (processor, time)");
    cells.insert(std::move(cell));
    per_step[when] += 1;
    return true;
  });
  stats.processors = static_cast<Int>(cells.size());
  for (const auto& [when, count] : per_step) {
    if (count > stats.peak_parallelism) stats.peak_parallelism = count;
  }
  stats.utilization = static_cast<double>(stats.computations) /
                      (static_cast<double>(stats.processors) *
                       static_cast<double>(stats.total_time));
  return stats;
}

}  // namespace bitlevel::mapping
