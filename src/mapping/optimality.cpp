#include "mapping/optimality.hpp"

#include "math/gcd.hpp"
#include "math/simplex.hpp"
#include "mapping/schedule.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {

namespace {

math::LpSolution schedule_lp(const ir::IndexSet& domain, const ir::DependenceMatrix& deps) {
  const std::size_t n = domain.dim();
  BL_REQUIRE(!deps.empty(), "optimality needs at least one dependence");
  BL_REQUIRE(deps.dim() == n, "dependence dimension must match the domain");

  // Variables: u_0..u_{n-1}, v_0..v_{n-1} with pi = u - v.
  math::LinearProgram lp;
  lp.objective.assign(2 * n, math::Rational(0));
  for (std::size_t i = 0; i < n; ++i) {
    const math::Rational extent(domain.upper()[i] - domain.lower()[i]);
    lp.objective[i] = extent;
    lp.objective[n + i] = extent;
  }
  for (const auto& col : deps.columns()) {
    std::vector<math::Rational> row(2 * n, math::Rational(0));
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = math::Rational(col.d[i]);
      row[n + i] = math::Rational(-col.d[i]);
    }
    lp.constraints.push_back(std::move(row));
    lp.bounds.emplace_back(1);
  }
  return math::solve_linear_program(lp);
}

}  // namespace

math::Rational schedule_span_lower_bound(const ir::IndexSet& domain,
                                         const ir::DependenceMatrix& deps) {
  const auto sol = schedule_lp(domain, deps);
  if (sol.status == math::LpStatus::kInfeasible) {
    throw NotFoundError("no linear schedule orders these dependences (cone not pointed)");
  }
  BL_REQUIRE(sol.status == math::LpStatus::kOptimal, "schedule LP cannot be unbounded");
  return sol.value;
}

OptimalityCertificate certify_time_optimal(const ir::IndexSet& domain,
                                           const ir::DependenceMatrix& deps, const IntVec& pi) {
  BL_REQUIRE(pi.size() == domain.dim(), "schedule dimension must match the domain");
  for (const auto& col : deps.columns()) {
    BL_REQUIRE(math::dot(pi, col.d) > 0, "candidate schedule violates condition 1");
  }

  const auto sol = schedule_lp(domain, deps);
  BL_REQUIRE(sol.status == math::LpStatus::kOptimal,
             "schedule LP must be solvable when a valid candidate exists");

  OptimalityCertificate cert;
  cert.lp_bound = sol.value;
  // ceil(num/den) for a nonnegative rational.
  cert.lower_bound = math::ceil_div(sol.value.num(), sol.value.den()) + 1;
  cert.achieved = execution_time(pi, domain);
  cert.certified = cert.achieved == cert.lower_bound;

  // Report the fractional optimum pi* = u - v on a common denominator.
  const std::size_t n = domain.dim();
  math::Int den = 1;
  for (std::size_t i = 0; i < n; ++i) {
    den = math::lcm(den, (sol.x[i] - sol.x[n + i]).den());
  }
  if (den == 0) den = 1;
  cert.lp_schedule_den = den;
  cert.lp_schedule_num.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const math::Rational p = sol.x[i] - sol.x[n + i];
    cert.lp_schedule_num[i] = p.num() * (den / p.den());
  }
  return cert;
}

}  // namespace bitlevel::mapping
