// Schedule metrics: total execution time, processor counts, utilization.
#pragma once

#include <map>

#include "ir/index_set.hpp"
#include "mapping/transform.hpp"

namespace bitlevel::mapping {

/// Total execution time of a linear schedule over a box domain:
///   t = max{ Pi (q1 - q2) : q1, q2 in J } + 1     (eq. 4.5)
/// which for a box is  sum_i |pi_i| * (hi_i - lo_i) + 1.
Int execution_time(const IntVec& pi, const ir::IndexSet& domain);

/// Number of distinct processors |{ S q : q in J }| (by enumeration).
Int processor_count(const IntMat& space, const ir::IndexSet& domain);

/// Space-time occupancy statistics of a mapping over a domain.
struct OccupancyStats {
  Int total_time = 0;        ///< execution_time(Pi, J).
  Int processors = 0;        ///< |S(J)|.
  Int computations = 0;      ///< |J|.
  Int peak_parallelism = 0;  ///< max computations in one time step.
  double utilization = 0.0;  ///< computations / (processors * total_time).
};

/// Compute occupancy by enumerating the domain (also re-verifies that no
/// (processor, time) pair is used twice — a conflict would mean the
/// mapping is infeasible).
OccupancyStats occupancy(const MappingMatrix& t, const ir::IndexSet& domain);

/// Minimal initiation interval for problem pipelining: the largest
/// per-processor busy window max(Pi q) - min(Pi q) + 1 over the PEs of
/// the mapping. Offsetting successive problem instances by this many
/// cycles keeps their busy windows disjoint on every PE, so streaming
/// is conflict-free (each instance individually satisfies condition 3).
Int min_initiation_interval(const MappingMatrix& t, const ir::IndexSet& domain);

}  // namespace bitlevel::mapping
