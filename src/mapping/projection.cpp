#include "mapping/projection.hpp"

#include "math/bareiss.hpp"
#include "math/gcd.hpp"
#include "math/hnf.hpp"
#include "math/int_vec.hpp"
#include "support/error.hpp"

namespace bitlevel::mapping {

IntMat space_mapping_from_projections(const IntMat& directions) {
  BL_REQUIRE(directions.cols() >= 1 && directions.cols() < directions.rows(),
             "need between 1 and n-1 projection directions");
  BL_REQUIRE(math::rank(directions) == directions.cols(),
             "projection directions must be linearly independent");
  // Rows of S = basis of null(U^T).
  const IntMat basis = math::null_space_basis(directions.transpose());
  return basis.transpose();
}

std::vector<IntVec> candidate_directions(std::size_t n, int max_support) {
  BL_REQUIRE(n >= 1 && max_support >= 1, "invalid direction enumeration request");
  std::vector<IntVec> out;
  // Unit vectors first: they produce the axis-projection mappings the
  // literature uses most.
  for (std::size_t i = 0; i < n; ++i) {
    IntVec e(n, 0);
    e[i] = 1;
    out.push_back(std::move(e));
  }
  // Then every other primitive lex-positive {-1,0,1} vector with small
  // support, in odometer order.
  IntVec v(n, -1);
  while (true) {
    int support = 0;
    for (Int x : v) support += (x != 0);
    const bool unit = support == 1;
    if (support >= 2 && support <= max_support && math::lex_positive(v) &&
        math::content(v) == 1 && !unit) {
      out.push_back(v);
    }
    std::size_t k = n;
    bool advanced = false;
    while (k-- > 0) {
      if (v[k] < 1) {
        ++v[k];
        advanced = true;
        break;
      }
      v[k] = -1;
    }
    if (!advanced) break;
  }
  return out;
}

namespace {

void subsets_rec(const std::vector<IntVec>& candidates, std::size_t m, std::size_t start,
                 std::vector<std::size_t>& picked, std::vector<IntMat>& out, std::size_t limit) {
  if (limit != 0 && out.size() >= limit) return;
  if (picked.size() == m) {
    std::vector<IntVec> cols;
    cols.reserve(m);
    for (std::size_t i : picked) cols.push_back(candidates[i]);
    IntMat u = IntMat::from_columns(cols);
    if (math::rank(u) == m) out.push_back(std::move(u));
    return;
  }
  for (std::size_t i = start; i < candidates.size(); ++i) {
    picked.push_back(i);
    subsets_rec(candidates, m, i + 1, picked, out, limit);
    picked.pop_back();
    if (limit != 0 && out.size() >= limit) return;
  }
}

}  // namespace

std::vector<IntMat> independent_direction_sets(const std::vector<IntVec>& candidates,
                                               std::size_t m, std::size_t limit) {
  BL_REQUIRE(m >= 1, "need at least one direction per set");
  std::vector<IntMat> out;
  std::vector<std::size_t> picked;
  subsets_rec(candidates, m, 0, picked, out, limit);
  return out;
}

}  // namespace bitlevel::mapping
