// The five feasibility conditions of Definition 4.1.
//
// check_feasible() verifies, for an algorithm (J, D) and a candidate
// mapping T = [S; Pi] onto an array with primitives P:
//   (1) Pi * D > 0           — dependences respect the schedule;
//   (2) S*D = P*K with (4.1) — every displacement realizable in the
//                              link budget Pi * d_i;
//   (3) injectivity on J     — no two computations collide in
//                              (processor, time);
//   (4) rank(T) = k          — genuinely (k-1)-dimensional array;
//   (5) gcd of T's entries 1 — no globally idle beats.
// The report lists each violated condition with a precise reason, so
// infeasible designs fail loudly and debuggably.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/dependence.hpp"
#include "ir/index_set.hpp"
#include "mapping/kmatrix.hpp"
#include "mapping/transform.hpp"

namespace bitlevel::mapping {

/// Outcome of a feasibility check.
struct FeasibilityReport {
  bool ok = false;
  std::vector<std::string> violations;  ///< Human-readable, one per failure.
  std::optional<IntMat> k;              ///< The K matrix when condition 2 holds.

  std::string to_string() const;
};

/// Options for the expensive parts of the check.
struct FeasibilityOptions {
  /// Verify condition 3 exhaustively over the difference box (exact).
  /// When false, only the necessary rank-based screen runs.
  bool check_injectivity = true;
};

/// Check all five conditions of Definition 4.1.
FeasibilityReport check_feasible(const ir::IndexSet& domain, const ir::DependenceMatrix& deps,
                                 const MappingMatrix& t, const InterconnectionPrimitives& prims,
                                 const FeasibilityOptions& options = {});

/// Condition 3 alone: is T injective on the box `domain`? Exact: T's
/// integer null vectors are enumerated inside the difference box.
bool injective_on(const ir::IndexSet& domain, const MappingMatrix& t);

/// Human-readable wiring summary of a routed design — the textual form
/// of the paper's Fig. 4/5 interconnect drawings: per dependence column,
/// its cause, the space displacement S*d, the primitive route from K,
/// and the buffer registers implied by the schedule slack.
std::string describe_routing(const ir::DependenceMatrix& deps, const MappingMatrix& t,
                             const InterconnectionPrimitives& prims, const IntMat& k);

}  // namespace bitlevel::mapping
