#include "mapping/published.hpp"

namespace bitlevel::mapping {

MappingMatrix published_matmul_mapping(PublishedMapping which, Int p) {
  if (which == PublishedMapping::kFig4) {
    // T of (4.2).
    return MappingMatrix(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {1, 1, 1, 2, 1}});
  }
  // T' of (4.6).
  return MappingMatrix(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {p, p, 1, 2, 1}});
}

InterconnectionPrimitives published_matmul_primitives(PublishedMapping which, Int p) {
  return which == PublishedMapping::kFig4 ? InterconnectionPrimitives::fig4(p)
                                          : InterconnectionPrimitives::mesh2d_diag();
}

Int published_matmul_initiation_interval(Int u) { return u; }

MappingMatrix published_matmul_batched_mapping(PublishedMapping which, Int p, Int u) {
  const MappingMatrix base = published_matmul_mapping(which, p);
  math::IntMat tb(3, 6);
  for (std::size_t r = 0; r < 2; ++r) {
    tb.at(r, 0) = 0;
    for (std::size_t c = 0; c < 5; ++c) tb.at(r, c + 1) = base.matrix().at(r, c);
  }
  tb.at(2, 0) = published_matmul_initiation_interval(u);
  for (std::size_t c = 0; c < 5; ++c) tb.at(2, c + 1) = base.matrix().at(2, c);
  return MappingMatrix(std::move(tb));
}

}  // namespace bitlevel::mapping
