// Signed matrix multiplication on the unsigned bit-level arrays.
//
// The paper's arrays multiply nonnegative integers. Signed operands are
// supported through the bias identity: with x = x' - B and y = y' - B
// (B = 2^(w-1), so x', y' are the offset-binary encodings in [0, 2^w)),
//     sum_k x_ik * y_kj
//       = sum_k x'_ik y'_kj  -  B * sum_k y'_kj  -  B * sum_k x'_ik
//         + u * B^2.
// All three sums run on the *same* unsigned array — the product term
// directly, the two correction sums as multiplications by the all-ones
// matrix — so every bit of the signed result still flows through
// full-adder cells. A w-bit signed multiply needs an array built for
// p >= w+1 operand bits (the offset encodings use w bits but the
// capacity preconditions require headroom; see core::max_safe_operand).
#pragma once

#include <vector>

#include "arch/matmul_arrays.hpp"

namespace bitlevel::arch {

/// Dense u x u signed matrix, 1-based accessors.
class SignedWordMatrix {
 public:
  explicit SignedWordMatrix(Int u, std::int64_t fill = 0);

  Int u() const { return u_; }
  std::int64_t& at(Int row, Int col);
  std::int64_t at(Int row, Int col) const;

  static SignedWordMatrix multiply_reference(const SignedWordMatrix& a,
                                             const SignedWordMatrix& b);

  /// Random entries in [-bound, bound].
  static SignedWordMatrix random(Int u, std::int64_t bound, std::uint64_t seed);

  bool operator==(const SignedWordMatrix&) const = default;

 private:
  Int u_;
  std::vector<std::int64_t> data_;
};

/// Result of a signed multiply: the product and the three unsigned
/// array runs' statistics (their cycle counts are identical; an actual
/// deployment would pipeline the three passes).
struct SignedMatmulResult {
  SignedWordMatrix z;
  sim::SimulationStats stats;  ///< Stats of one pass.
  Int passes = 3;
};

/// Z = X * Y for signed w-bit entries (|entry| < 2^(w-1)) on the given
/// unsigned array. Requires array.p() >= w + 1 and the capacity bound
/// core::max_safe_operand(array.p(), u, kII) >= 2^w - 1.
SignedMatmulResult multiply_signed(const BitLevelMatmulArray& array, Int w,
                                   const SignedWordMatrix& x, const SignedWordMatrix& y);

}  // namespace bitlevel::arch
