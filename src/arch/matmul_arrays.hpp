// The paper's two bit-level matrix-multiplication architectures.
//
// Fig. 4 (eq. 4.2): time-optimal mapping with long [p,0]/[0,p] wires;
//   total time 3(u-1) + 3(p-1) + 1, u^2 p^2 PEs, one buffered link (d4).
// Fig. 5 (eq. 4.6): nearest-neighbour wiring only; slower schedule
//   Pi' = [p, p, 1, 2, 1]; same PE count.
//
// Both are thin wrappers that compose matmul's word-level model,
// Expansion II, the published mapping matrices, and the matching
// interconnection primitives into a BitLevelArray, and speak in terms
// of u x u operand matrices. Composition is routed through the global
// design-plan cache (pipeline::global_plan_cache()), so constructing
// many arrays — or streaming many batches — for the same
// (u, p, mapping) performs Theorem 3.1's expansion and the feasibility
// machinery exactly once per key.
#pragma once

#include <vector>

#include "arch/bit_array.hpp"
#include "mapping/published.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/tiling.hpp"

namespace bitlevel::arch {

/// Dense u x u matrix of unsigned words, row-major, 1-based accessors.
class WordMatrix {
 public:
  WordMatrix(Int u, std::uint64_t fill = 0);

  Int u() const { return u_; }
  std::uint64_t& at(Int row, Int col);
  std::uint64_t at(Int row, Int col) const;

  /// Plain cubic reference multiply.
  static WordMatrix multiply_reference(const WordMatrix& a, const WordMatrix& b);

  /// Random matrix with entries in [0, bound].
  static WordMatrix random(Int u, std::uint64_t bound, std::uint64_t seed);

  bool operator==(const WordMatrix&) const = default;

 private:
  Int u_;
  std::vector<std::uint64_t> data_;
};

/// Result of running a matmul architecture.
struct MatmulRunResult {
  WordMatrix z;
  sim::SimulationStats stats;
};

/// Result of a matmul run under an installed fault model.
struct MatmulFaultRunResult {
  /// The (possibly corrupted or partial) product; zero-filled where the
  /// run aborted before read-out.
  WordMatrix z;
  sim::SimulationStats stats;
  faults::FaultReport report;
};

/// Which of the paper's two mappings to instantiate. The matrices
/// themselves live in mapping/published.hpp so the design pipeline can
/// use them too; these aliases keep the arch-level spelling.
using MatmulMapping = mapping::PublishedMapping;

/// The mapping matrix T of (4.2) / T' of (4.6) for word length p.
inline mapping::MappingMatrix matmul_mapping(MatmulMapping which, Int p) {
  return mapping::published_matmul_mapping(which, p);
}

/// The primitive set the mapping was designed for: (4.3) for Fig. 4,
/// (4.7) for Fig. 5.
inline mapping::InterconnectionPrimitives matmul_primitives(MatmulMapping which, Int p) {
  return mapping::published_matmul_primitives(which, p);
}

/// Result of streaming a batch of products through one array.
struct BatchRunResult {
  std::vector<WordMatrix> z;
  sim::SimulationStats stats;
  /// Cycles from one batch's start to the next: the array accepts a new
  /// problem every `initiation_interval` cycles (problem pipelining).
  Int initiation_interval = 0;
};

/// Result of a lane-parallel (bit-sliced) batch run.
struct SlicedBatchRunResult {
  std::vector<WordMatrix> z;   ///< One product per item, in order.
  /// Statistics of one machine pass. Simulator statistics are value
  /// independent, so every item of every group reports the same
  /// figures; one copy suffices.
  sim::SimulationStats stats;
  // How the items were executed (pipeline::BatchResult counters; every
  // item lands in exactly one bucket).
  Int compiled_groups = 0;  ///< Lane groups run by the compiled wide-lane path.
  Int compiled_items = 0;   ///< Items carried as compiled wide lanes.
  Int sliced_groups = 0;    ///< Machine passes taken by the interpreted sliced path.
  Int sliced_items = 0;     ///< Items carried as interpreted bit lanes.
  Int scalar_items = 0;     ///< Items run through the scalar path.
};

/// A ready-to-run bit-level matmul array (Expansion II structure).
class BitLevelMatmulArray {
 public:
  BitLevelMatmulArray(MatmulMapping which, Int u, Int p);

  Int u() const { return u_; }
  Int p() const { return p_; }
  const BitLevelArray& array() const { return array_; }

  /// Worker threads for the cycle-accurate runs (multiply and
  /// multiply_batch; see sim::MachineConfig::threads). Results are
  /// identical for every value.
  void set_threads(int threads) { array_.set_threads(threads); }
  int threads() const { return array_.threads(); }

  /// Simulator memory mode for the cycle-accurate runs (see
  /// sim::MemoryMode and BitLevelArray::set_memory_mode). Results are
  /// identical; streaming bounds peak memory by the wavefront.
  void set_memory_mode(sim::MemoryMode mode) { array_.set_memory_mode(mode); }
  sim::MemoryMode memory_mode() const { return array_.memory_mode(); }

  /// Multiply-accumulate Z = X * Y on the array; X entries must keep
  /// their top bit clear and Z must fit 2p-1 bits (see
  /// core::max_safe_operand with Expansion II).
  MatmulRunResult multiply(const WordMatrix& x, const WordMatrix& y) const;

  /// multiply() under a fault model (BitLevelArray::run_under_faults):
  /// seeded injection, parity + ABFT detection, bounded-retry recovery,
  /// graceful degradation into the returned report.
  MatmulFaultRunResult multiply_under_faults(const WordMatrix& x, const WordMatrix& y,
                                             const faults::FaultModel& model,
                                             bool checks = true) const;

  /// The paper's closed-form total time for this mapping ((4.5), or the
  /// corrected evaluation of (4.8) — see EXPERIMENTS.md erratum E6).
  Int predicted_cycles() const;

  /// Stream `problems` independent products through the SAME array,
  /// each batch offset by one initiation interval (u cycles for Fig. 4:
  /// every PE is busy for u consecutive cycles per problem, so batches
  /// interleave conflict-free and PE utilization approaches 1 as the
  /// stream grows). Implemented by composing a batch axis into the
  /// word-level model — the whole Definition 4.1 machinery verifies the
  /// batched mapping ONCE per (u, p, batch) key in the plan cache;
  /// repeat runs reuse the cached plan instead of re-expanding. Fig. 4
  /// only (the Fig. 5 schedule needs a (2p+1)-cycle interval; supported
  /// the same way).
  BatchRunResult multiply_batch(const std::vector<WordMatrix>& xs,
                                const std::vector<WordMatrix>& ys) const;

  /// The initiation interval of this mapping's batched schedule.
  Int batch_initiation_interval() const;

  /// Run `xs.size()` independent products through the UNBATCHED array
  /// via the bit-sliced lane engine: up to 64 problems ride the bit
  /// lanes of one machine pass (pipeline::run_batch's sliced fast
  /// path), so the per-item marginal cost drops by the lane width
  /// instead of by schedule overlap. Results are bit-identical to
  /// multiply() per item. `mode` kOff forces the scalar reference
  /// path; kAuto slices whenever the batch has >= 2 items. `compiled`
  /// and `lane_width` select the plan's straight-line wide-lane
  /// executor (pipeline::BatchOptions::compiled / lane_width): by
  /// default sliced groups ride the compiled schedule 256 lanes at a
  /// time when the plan carries one.
  SlicedBatchRunResult multiply_batch_sliced(
      const std::vector<WordMatrix>& xs, const std::vector<WordMatrix>& ys,
      pipeline::SlicedMode mode = pipeline::SlicedMode::kAuto,
      pipeline::SlicedMode compiled = pipeline::SlicedMode::kAuto, int lane_width = 0) const;

  /// u^2 p^2 for both mappings.
  Int predicted_processors() const;

 private:
  MatmulMapping which_;
  Int u_;
  Int p_;
  BitLevelArray array_;
};

/// Result of a tiled matmul run (see pipeline/tiling.hpp).
struct TiledMatmulResult {
  WordMatrix z;
  /// Statistics of one interior-tile pass (value-independent).
  sim::SimulationStats stats;
  Int tiles_total = 0;
  Int tiles_executed = 0;
  Int tile_cache_hits = 0;
  Int tile_pes = 0;  ///< PE count of one interior tile's array.
  // Per-tile execution accounting (run_batch buckets):
  // compiled + sliced + scalar == tiles_executed.
  Int compiled_items = 0;
  Int sliced_items = 0;
  Int scalar_items = 0;
};

/// Multiply Z = X * Y on a BOUNDED virtual array: the instance is
/// decomposed into a grid of matmul_rect tiles (pipeline::compose_tiled
/// under the published mapping `which`), every tile streams through the
/// sliced/compiled batch engine, and k-axis partial sums accumulate in
/// plain words — bit-identical to BitLevelMatmulArray::multiply
/// wherever the monolithic array fits. Tile shape plans rendezvous in
/// the global plan cache: one composition per distinct shape per
/// process, however large the grid.
TiledMatmulResult multiply_tiled(MatmulMapping which, Int p, const WordMatrix& x,
                                 const WordMatrix& y, const pipeline::TileOptions& tile,
                                 const pipeline::TiledRunOptions& run = {});

}  // namespace bitlevel::arch
