// Generic bit-level processor array.
//
// BitLevelArray turns a composed bit-level structure (Theorem 3.1) plus
// a feasible mapping into a runnable cycle-accurate machine. The cell
// body — the paper's compressor — lives in pipeline/executor.hpp; this
// class owns the structure/mapping/routing triple and the run-time
// knobs. Structures are held by shared_ptr so arrays built from cached
// design plans (pipeline::PlanCache) share one expansion instead of
// copying it.
//
// Capacity honesty: a nonzero carry with no consuming edge means the
// paper's fixed grid would drop value; the array throws OverflowError
// instead (preconditions in core/evaluator.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "core/evaluator.hpp"
#include "core/structure.hpp"
#include "faults/report.hpp"
#include "sim/machine.hpp"

namespace bitlevel::arch {

using math::Int;
using math::IntVec;

/// Result of one array run.
struct ArrayRunResult {
  sim::SimulationStats stats;
  /// Final accumulated z word per accumulation-boundary word point.
  std::map<IntVec, std::uint64_t> z;
};

/// Result of one array run under an installed fault model.
struct FaultyArrayRunResult {
  sim::SimulationStats stats;
  /// Read-out words; empty when the run aborted (report.completed is
  /// false — a corrupted carry hit the capacity honesty check).
  std::map<IntVec, std::uint64_t> z;
  faults::FaultReport report;
};

/// A bit-level systolic array for a composed structure and mapping.
class BitLevelArray {
 public:
  /// Checks Definition 4.1 feasibility (throws PreconditionError with
  /// the violated conditions otherwise) and freezes the routing.
  BitLevelArray(core::BitLevelStructure structure, mapping::MappingMatrix t,
                mapping::InterconnectionPrimitives prims);

  /// Shares a structure composed elsewhere (typically a cached design
  /// plan). When `k` is supplied it must be the routing matrix of a
  /// feasibility check already performed for exactly this
  /// (structure, t, prims) triple — the check is then skipped; absent,
  /// feasibility is verified here.
  BitLevelArray(std::shared_ptr<const core::BitLevelStructure> structure,
                mapping::MappingMatrix t, mapping::InterconnectionPrimitives prims,
                std::optional<math::IntMat> k = std::nullopt);

  const core::BitLevelStructure& structure() const { return *structure_; }
  const mapping::MappingMatrix& t() const { return t_; }
  const math::IntMat& k() const { return k_; }

  /// Worker threads the simulator fans each cycle over (see
  /// sim::MachineConfig::threads; 0 = BITLEVEL_THREADS / hardware
  /// concurrency, 1 = serial). Results are identical for every value.
  void set_threads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

  /// Simulator memory mode (see sim::MemoryMode). Streaming retires
  /// interior cells once the dependence window passes them and retains
  /// only the boundary cells the result read-out needs, so peak memory
  /// follows the wavefront instead of |J|. Results are identical.
  void set_memory_mode(sim::MemoryMode mode) { memory_ = mode; }
  sim::MemoryMode memory_mode() const { return memory_; }

  /// Cycle-accurate run with the given operand words per word-level
  /// index point. Returns statistics and the final z words.
  ArrayRunResult run(const core::OperandFn& x, const core::OperandFn& y) const;

  /// Cycle-accurate run under a fault model: seeded injection at the
  /// produce/transmit boundaries, parity detection and bounded-retry
  /// recovery at each cycle barrier (unless `checks` is false), ABFT
  /// read-out verification for matmul-shaped models, and graceful
  /// degradation into the returned report — never an abort.
  FaultyArrayRunResult run_under_faults(const core::OperandFn& x, const core::OperandFn& y,
                                        const faults::FaultModel& model,
                                        bool checks = true) const;

 private:
  std::shared_ptr<const core::BitLevelStructure> structure_;
  mapping::MappingMatrix t_;
  mapping::InterconnectionPrimitives prims_;
  math::IntMat k_;
  int threads_ = 0;
  sim::MemoryMode memory_ = sim::MemoryMode::kDense;
};

}  // namespace bitlevel::arch
