#include "arch/word_array.hpp"

#include "ir/kernels.hpp"
#include "mapping/feasibility.hpp"
#include "support/error.hpp"

namespace bitlevel::arch {

namespace {
constexpr std::size_t kX = 0, kY = 1, kZ = 2;
}  // namespace

WordLevelMatmulArray::WordLevelMatmulArray(Int u, arith::WordMultiplier multiplier, Int p)
    : u_(u),
      p_(p),
      multiplier_(multiplier),
      triplet_([&] {
        BL_REQUIRE(u >= 1 && p >= 1, "array extents must be >= 1");
        return ir::kernels::matmul(u).triplet();
      }()),
      t_(math::IntMat{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}),
      prims_(mapping::InterconnectionPrimitives::mesh2d()),
      k_(0, 0) {
  // Verify Definition 4.1 and freeze the routing ONCE per instance —
  // multiply() reuses the plan instead of re-deriving it per call.
  const auto report = mapping::check_feasible(triplet_.domain, triplet_.deps, t_, prims_);
  BL_REQUIRE(report.ok, "word-level mapping must be feasible: " + report.to_string());
  k_ = *report.k;
}

WordRunResult WordLevelMatmulArray::multiply(const WordMatrix& x, const WordMatrix& y) const {
  BL_REQUIRE(x.u() == u_ && y.u() == u_, "operand extents must match the array");

  sim::ExternalFn external = [&](const IntVec& j, std::size_t column) -> sim::Outputs {
    sim::Outputs out(3, 0);
    // Column order of the word triplet: x, y, z.
    if (column == 0) out[kX] = static_cast<Int>(x.at(j[0], j[2]));
    if (column == 1) out[kY] = static_cast<Int>(y.at(j[2], j[1]));
    return out;
  };
  sim::ComputeFn compute = [&](const IntVec&,
                               const std::vector<sim::ColumnInput>& in) -> sim::Outputs {
    sim::Outputs out(3, 0);
    out[kX] = in[0].producer[kX];
    out[kY] = in[1].producer[kY];
    out[kZ] = math::checked_add(in[2].producer[kZ],
                                math::checked_mul(out[kX], out[kY]));
    return out;
  };

  sim::MachineConfig cfg{triplet_.domain, triplet_.deps, t_,
                         prims_,          k_,           {"x", "y", "z"},
                         threads_};
  cfg.memory = memory_;
  if (memory_ == sim::MemoryMode::kStreaming) {
    // Only the accumulation-chain ends (j3 = u) are read back.
    cfg.observe = [u = u_](const IntVec& j) { return j[2] == u; };
  }
  sim::Machine machine(std::move(cfg), compute, external);
  WordRunResult result{WordMatrix(u_), machine.run(), 0};
  result.total_cycles = math::checked_mul(result.beat_stats.cycles, beat_length());
  for (Int i = 1; i <= u_; ++i) {
    for (Int j = 1; j <= u_; ++j) {
      result.z.at(i, j) =
          static_cast<std::uint64_t>(machine.outputs_at(IntVec{i, j, u_})[kZ]);
    }
  }
  return result;
}

}  // namespace bitlevel::arch
