// The word-level baseline architecture (Section 4.2's comparison).
//
// The best word-level matmul array [Li & Wah 1985] maps (2.3) with
// S = [[1,0,0],[0,1,0]] and Pi = [1,1,1]: u^2 processors, 3(u-1)+1
// beats, each beat one word multiply-accumulate. The beat length t_b
// depends on the PE's arithmetic: p^2 cycles with a sequential
// add-shift multiplier, 2p with a carry-save array multiplier
// (arith::WordMultiplier). Total time = (3(u-1)+1) * t_b — the number
// the bit-level architectures are measured against.
#pragma once

#include "arch/matmul_arrays.hpp"
#include "arith/multiplier_model.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::arch {

/// Result of a word-level baseline run.
struct WordRunResult {
  WordMatrix z;
  sim::SimulationStats beat_stats;  ///< Machine stats in beats.
  Int total_cycles = 0;             ///< beats * t_b.
};

/// The u x u word-level systolic matmul array.
class WordLevelMatmulArray {
 public:
  /// Composes the word-level triplet, verifies the [Li & Wah 1985]
  /// mapping (Definition 4.1) and freezes the routing once; multiply()
  /// only streams operands through the frozen plan.
  WordLevelMatmulArray(Int u, arith::WordMultiplier multiplier, Int p);

  Int u() const { return u_; }
  Int p() const { return p_; }
  arith::WordMultiplier multiplier() const { return multiplier_; }

  /// Beats of the linear schedule: 3(u-1) + 1.
  Int beats() const { return 3 * (u_ - 1) + 1; }

  /// Cycles per beat: t_b of the chosen multiplier.
  Int beat_length() const { return arith::word_pe_latency(multiplier_, p_); }

  /// Total cycles: beats() * beat_length().
  Int predicted_cycles() const { return beats() * beat_length(); }

  /// u^2 word-level processors.
  Int predicted_processors() const { return u_ * u_; }

  /// Worker threads the simulator fans each beat over (see
  /// sim::MachineConfig::threads). Results are identical for every value.
  void set_threads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

  /// Simulator memory mode (see sim::MemoryMode). Streaming retains
  /// only the chain-end cells (j3 = u) that hold the final Z words.
  void set_memory_mode(sim::MemoryMode mode) { memory_ = mode; }
  sim::MemoryMode memory_mode() const { return memory_; }

  /// Run Z = X * Y cycle-accurately (at beat granularity; each beat is
  /// one MAC whose internal latency is the multiplier model's).
  WordRunResult multiply(const WordMatrix& x, const WordMatrix& y) const;

 private:
  Int u_;
  Int p_;
  arith::WordMultiplier multiplier_;
  // The frozen design: composed in the constructor, reused by every
  // multiply() call (one feasibility check per array instance).
  ir::AlgorithmTriplet triplet_;
  mapping::MappingMatrix t_;
  mapping::InterconnectionPrimitives prims_;
  math::IntMat k_;
  int threads_ = 0;
  sim::MemoryMode memory_ = sim::MemoryMode::kDense;
};

}  // namespace bitlevel::arch
