// The bit-serial multiplier: a lower-dimensional mapping.
//
// The paper's design method (refs [5, 6, 10]) maps n-dimensional
// algorithms onto (k-1)-dimensional arrays for any k. Applying it to
// the add-shift structure (3.4) itself with k = 2 — the 2-D grid
// collapsed onto a LINEAR array of p cells by
//
//     T = [ S ]   =  [ 0  1 ]      (PE = i2, time = 2*i1 + i2)
//         [ Pi]      [ 2  1 ]
//
// — reproduces the classic bit-serial multiplier: p full-adder cells,
// operand a resident per cell, b and the carries streaming through,
// total time 3p - 2. Definition 4.1 holds with nearest-neighbour links
// only (S*delta1 = 0 stationary, S*delta2 = +1, S*delta3 = -1).
//
// Paper-exact structure (no east-edge carry completion), so the
// multiplicand must keep its top bit clear: a < 2^(p-1); see
// docs/THEORY.md §2.
#pragma once

#include <cstdint>

#include "ir/triplet.hpp"
#include "sim/machine.hpp"

namespace bitlevel::arch {

using math::Int;

/// A p-cell linear array multiplying a * b bit-serially.
class BitSerialMultiplier {
 public:
  /// Composes the add-shift triplet, verifies the linear mapping
  /// (Definition 4.1) and freezes the routing once; multiply() only
  /// streams operands through the frozen machine plan.
  explicit BitSerialMultiplier(Int p);

  Int p() const { return p_; }

  /// Number of processing cells: p (vs p^2 for the 2-D grid).
  Int cells() const { return p_; }

  /// Total time of the linear schedule [2, 1] over [1,p]^2: 3p - 2.
  Int predicted_cycles() const { return 3 * p_ - 2; }

  struct Result {
    std::uint64_t product = 0;
    sim::SimulationStats stats;
  };

  /// Multiply on the simulated linear array. Preconditions:
  /// a < 2^(p-1) (top bit clear), b < 2^p.
  Result multiply(std::uint64_t a, std::uint64_t b) const;

 private:
  Int p_;
  // The frozen design: composed in the constructor, reused by every
  // multiply() call (one feasibility check per multiplier instance).
  ir::AlgorithmTriplet triplet_;
  mapping::MappingMatrix t_;
  mapping::InterconnectionPrimitives line_;
  math::IntMat k_;
};

}  // namespace bitlevel::arch
