#include "arch/matmul_arrays.hpp"

#include "pipeline/cache.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::arch {

namespace {

/// The cached design plan of a (possibly batched) published matmul
/// array: one Theorem 3.1 expansion + one feasibility check per
/// distinct (u, p, mapping, batch) key per process.
pipeline::PlanPtr matmul_plan(MatmulMapping which, math::Int u, math::Int p, math::Int batch) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", u, 0, 0, batch};
  request.p = p;
  request.expansion = core::Expansion::kII;
  request.mapping = which == MatmulMapping::kFig4 ? pipeline::MappingStrategy::kPublishedFig4
                                                  : pipeline::MappingStrategy::kPublishedFig5;
  return pipeline::global_plan_cache().get_or_compose(request);
}

}  // namespace

WordMatrix::WordMatrix(Int u, std::uint64_t fill)
    : u_(u), data_(static_cast<std::size_t>(u * u), fill) {
  BL_REQUIRE(u >= 1, "matrix extent must be >= 1");
}

std::uint64_t& WordMatrix::at(Int row, Int col) {
  BL_REQUIRE(row >= 1 && row <= u_ && col >= 1 && col <= u_, "matrix index out of range");
  return data_[static_cast<std::size_t>((row - 1) * u_ + (col - 1))];
}

std::uint64_t WordMatrix::at(Int row, Int col) const {
  BL_REQUIRE(row >= 1 && row <= u_ && col >= 1 && col <= u_, "matrix index out of range");
  return data_[static_cast<std::size_t>((row - 1) * u_ + (col - 1))];
}

WordMatrix WordMatrix::multiply_reference(const WordMatrix& a, const WordMatrix& b) {
  BL_REQUIRE(a.u_ == b.u_, "matrix extents must match");
  WordMatrix z(a.u_);
  for (Int i = 1; i <= a.u_; ++i) {
    for (Int j = 1; j <= a.u_; ++j) {
      std::uint64_t acc = 0;
      for (Int k = 1; k <= a.u_; ++k) acc += a.at(i, k) * b.at(k, j);
      z.at(i, j) = acc;
    }
  }
  return z;
}

WordMatrix WordMatrix::random(Int u, std::uint64_t bound, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  WordMatrix m(u);
  for (Int i = 1; i <= u; ++i) {
    for (Int j = 1; j <= u; ++j) m.at(i, j) = rng() % (bound + 1);
  }
  return m;
}

BitLevelMatmulArray::BitLevelMatmulArray(MatmulMapping which, Int u, Int p)
    : which_(which), u_(u), p_(p), array_([&] {
        const pipeline::PlanPtr plan = matmul_plan(which, u, p, 0);
        return BitLevelArray(plan->structure, *plan->t, *plan->prims, plan->k);
      }()) {}

MatmulRunResult BitLevelMatmulArray::multiply(const WordMatrix& x, const WordMatrix& y) const {
  BL_REQUIRE(x.u() == u_ && y.u() == u_, "operand extents must match the array");
  // Model (2.3): x(j1, j2, j3) carries X[j1, j3]; y carries Y[j3, j2].
  const core::OperandFn xf = [&x](const IntVec& j) { return x.at(j[0], j[2]); };
  const core::OperandFn yf = [&y](const IntVec& j) { return y.at(j[2], j[1]); };
  const ArrayRunResult raw = array_.run(xf, yf);

  MatmulRunResult result{WordMatrix(u_), raw.stats};
  // Chain ends at j3 = u hold Z[j1, j2].
  for (const auto& [j, value] : raw.z) result.z.at(j[0], j[1]) = value;
  return result;
}

MatmulFaultRunResult BitLevelMatmulArray::multiply_under_faults(const WordMatrix& x,
                                                                const WordMatrix& y,
                                                                const faults::FaultModel& model,
                                                                bool checks) const {
  BL_REQUIRE(x.u() == u_ && y.u() == u_, "operand extents must match the array");
  const core::OperandFn xf = [&x](const IntVec& j) { return x.at(j[0], j[2]); };
  const core::OperandFn yf = [&y](const IntVec& j) { return y.at(j[2], j[1]); };
  FaultyArrayRunResult raw = array_.run_under_faults(xf, yf, model, checks);

  MatmulFaultRunResult result{WordMatrix(u_), std::move(raw.stats), std::move(raw.report)};
  for (const auto& [j, value] : raw.z) result.z.at(j[0], j[1]) = value;
  return result;
}

Int BitLevelMatmulArray::batch_initiation_interval() const {
  return mapping::published_matmul_initiation_interval(u_);
}

BatchRunResult BitLevelMatmulArray::multiply_batch(const std::vector<WordMatrix>& xs,
                                                   const std::vector<WordMatrix>& ys) const {
  BL_REQUIRE(!xs.empty() && xs.size() == ys.size(),
             "batch needs equal, nonzero operand counts");
  const Int batches = static_cast<Int>(xs.size());
  for (const auto& m : xs) BL_REQUIRE(m.u() == u_, "operand extents must match the array");
  for (const auto& m : ys) BL_REQUIRE(m.u() == u_, "operand extents must match the array");

  // The batched design (batch axis composed into the word-level model,
  // batch-blind S, schedule offset by the initiation interval) comes
  // from the plan cache: the expansion and the Definition 4.1 machinery
  // run once per (u, p, mapping, batch) key, not once per call.
  const pipeline::PlanPtr plan = matmul_plan(which_, u_, p_, batches);
  BitLevelArray array(plan->structure, *plan->t, *plan->prims, plan->k);
  array.set_threads(array_.threads());
  array.set_memory_mode(array_.memory_mode());
  const auto raw = array.run(
      [&](const IntVec& j) { return xs[static_cast<std::size_t>(j[0] - 1)].at(j[1], j[3]); },
      [&](const IntVec& j) { return ys[static_cast<std::size_t>(j[0] - 1)].at(j[3], j[2]); });

  BatchRunResult result{std::vector<WordMatrix>(static_cast<std::size_t>(batches),
                                                WordMatrix(u_)),
                        raw.stats, batch_initiation_interval()};
  for (const auto& [j, value] : raw.z) {
    result.z[static_cast<std::size_t>(j[0] - 1)].at(j[1], j[2]) = value;
  }
  return result;
}

SlicedBatchRunResult BitLevelMatmulArray::multiply_batch_sliced(
    const std::vector<WordMatrix>& xs, const std::vector<WordMatrix>& ys,
    pipeline::SlicedMode mode, pipeline::SlicedMode compiled, int lane_width) const {
  BL_REQUIRE(!xs.empty() && xs.size() == ys.size(),
             "batch needs equal, nonzero operand counts");
  for (const auto& m : xs) BL_REQUIRE(m.u() == u_, "operand extents must match the array");
  for (const auto& m : ys) BL_REQUIRE(m.u() == u_, "operand extents must match the array");

  // The UNBATCHED plan (batch = 0): the lane engine multiplexes the
  // problems onto bit positions, not onto a composed batch axis, so
  // this is the same (u, p, mapping) key multiply() uses.
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", u_, 0, 0, 0};
  request.p = p_;
  request.expansion = core::Expansion::kII;
  request.mapping = which_ == MatmulMapping::kFig4 ? pipeline::MappingStrategy::kPublishedFig4
                                                   : pipeline::MappingStrategy::kPublishedFig5;

  // Model (2.3): x(j1, j2, j3) carries X[j1, j3]; y carries Y[j3, j2].
  std::vector<pipeline::BatchItem> items;
  items.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    items.push_back(pipeline::BatchItem{
        [m = &xs[i]](const IntVec& j) { return m->at(j[0], j[2]); },
        [m = &ys[i]](const IntVec& j) { return m->at(j[2], j[1]); }});
  }

  pipeline::BatchOptions options;
  options.threads = array_.threads();
  options.memory = array_.memory_mode();
  options.sliced = mode;
  options.compiled = compiled;
  options.lane_width = lane_width;
  const pipeline::BatchResult raw =
      pipeline::run_batch(pipeline::global_plan_cache(), request, items, options);

  SlicedBatchRunResult result;
  result.z.assign(xs.size(), WordMatrix(u_));
  result.stats = raw.results.front().stats;
  result.compiled_groups = raw.compiled_groups;
  result.compiled_items = raw.compiled_items;
  result.sliced_groups = raw.sliced_groups;
  result.sliced_items = raw.sliced_items;
  result.scalar_items = raw.scalar_items;
  for (std::size_t i = 0; i < raw.results.size(); ++i) {
    // Chain ends at j3 = u hold Z[j1, j2].
    for (const auto& [j, value] : raw.results[i].z) result.z[i].at(j[0], j[1]) = value;
  }
  return result;
}

Int BitLevelMatmulArray::predicted_cycles() const {
  if (which_ == MatmulMapping::kFig4) {
    return 3 * (u_ - 1) + 3 * (p_ - 1) + 1;  // (4.5)
  }
  // Pi' = [p, p, 1, 2, 1] evaluated over J (the paper's printed (4.8)
  // has an arithmetic slip; see EXPERIMENTS.md erratum E6).
  return (2 * p_ + 1) * (u_ - 1) + 3 * (p_ - 1) + 1;
}

Int BitLevelMatmulArray::predicted_processors() const { return u_ * u_ * p_ * p_; }

TiledMatmulResult multiply_tiled(MatmulMapping which, Int p, const WordMatrix& x,
                                 const WordMatrix& y, const pipeline::TileOptions& tile,
                                 const pipeline::TiledRunOptions& run) {
  BL_REQUIRE(x.u() == y.u(), "matrix extents must match");
  const Int u = x.u();

  pipeline::DesignRequest base;
  base.kernel = pipeline::KernelSpec{"matmul", u, 0, 0, 0};
  base.p = p;
  base.expansion = core::Expansion::kII;
  base.mapping = which == MatmulMapping::kFig4 ? pipeline::MappingStrategy::kPublishedFig4
                                               : pipeline::MappingStrategy::kPublishedFig5;

  pipeline::PlanCache& cache = pipeline::global_plan_cache();
  const pipeline::TiledPlan plan = pipeline::compose_tiled(cache, base, tile);

  TiledMatmulResult result{WordMatrix(u)};
  // Model (2.3) operand layout, as in multiply(): x(j) = X[j1, j3],
  // y(j) = Y[j3, j2]. Tile partial sums land through the sink.
  const pipeline::TiledRunResult raw = pipeline::run_tiled(
      cache, plan, [&x](const IntVec& j) { return x.at(j[0], j[2]); },
      [&y](const IntVec& j) { return y.at(j[2], j[1]); }, run,
      [&result](Int i, Int j, std::uint64_t partial) { result.z.at(i, j) += partial; });

  result.stats = raw.stats;
  result.tiles_total = raw.tiles_total;
  result.tiles_executed = raw.tiles_executed;
  result.tile_cache_hits = raw.tile_cache_hits;
  result.tile_pes = plan.tile_pes;
  result.compiled_items = raw.compiled_items;
  result.sliced_items = raw.sliced_items;
  result.scalar_items = raw.scalar_items;
  return result;
}

}  // namespace bitlevel::arch
