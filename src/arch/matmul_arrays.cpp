#include "arch/matmul_arrays.hpp"

#include "core/expansion.hpp"
#include "core/workload.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::arch {

WordMatrix::WordMatrix(Int u, std::uint64_t fill)
    : u_(u), data_(static_cast<std::size_t>(u * u), fill) {
  BL_REQUIRE(u >= 1, "matrix extent must be >= 1");
}

std::uint64_t& WordMatrix::at(Int row, Int col) {
  BL_REQUIRE(row >= 1 && row <= u_ && col >= 1 && col <= u_, "matrix index out of range");
  return data_[static_cast<std::size_t>((row - 1) * u_ + (col - 1))];
}

std::uint64_t WordMatrix::at(Int row, Int col) const {
  BL_REQUIRE(row >= 1 && row <= u_ && col >= 1 && col <= u_, "matrix index out of range");
  return data_[static_cast<std::size_t>((row - 1) * u_ + (col - 1))];
}

WordMatrix WordMatrix::multiply_reference(const WordMatrix& a, const WordMatrix& b) {
  BL_REQUIRE(a.u_ == b.u_, "matrix extents must match");
  WordMatrix z(a.u_);
  for (Int i = 1; i <= a.u_; ++i) {
    for (Int j = 1; j <= a.u_; ++j) {
      std::uint64_t acc = 0;
      for (Int k = 1; k <= a.u_; ++k) acc += a.at(i, k) * b.at(k, j);
      z.at(i, j) = acc;
    }
  }
  return z;
}

WordMatrix WordMatrix::random(Int u, std::uint64_t bound, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  WordMatrix m(u);
  for (Int i = 1; i <= u; ++i) {
    for (Int j = 1; j <= u; ++j) m.at(i, j) = rng() % (bound + 1);
  }
  return m;
}

mapping::MappingMatrix matmul_mapping(MatmulMapping which, Int p) {
  if (which == MatmulMapping::kFig4) {
    // T of (4.2).
    return mapping::MappingMatrix(
        math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {1, 1, 1, 2, 1}});
  }
  // T' of (4.6).
  return mapping::MappingMatrix(
      math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {p, p, 1, 2, 1}});
}

mapping::InterconnectionPrimitives matmul_primitives(MatmulMapping which, Int p) {
  return which == MatmulMapping::kFig4 ? mapping::InterconnectionPrimitives::fig4(p)
                                       : mapping::InterconnectionPrimitives::mesh2d_diag();
}

BitLevelMatmulArray::BitLevelMatmulArray(MatmulMapping which, Int u, Int p)
    : which_(which),
      u_(u),
      p_(p),
      array_(core::expand(ir::kernels::matmul(u), p, core::Expansion::kII),
             matmul_mapping(which, p), matmul_primitives(which, p)) {}

MatmulRunResult BitLevelMatmulArray::multiply(const WordMatrix& x, const WordMatrix& y) const {
  BL_REQUIRE(x.u() == u_ && y.u() == u_, "operand extents must match the array");
  // Model (2.3): x(j1, j2, j3) carries X[j1, j3]; y carries Y[j3, j2].
  const core::OperandFn xf = [&x](const IntVec& j) { return x.at(j[0], j[2]); };
  const core::OperandFn yf = [&y](const IntVec& j) { return y.at(j[2], j[1]); };
  const ArrayRunResult raw = array_.run(xf, yf);

  MatmulRunResult result{WordMatrix(u_), raw.stats};
  // Chain ends at j3 = u hold Z[j1, j2].
  for (const auto& [j, value] : raw.z) result.z.at(j[0], j[1]) = value;
  return result;
}

Int BitLevelMatmulArray::batch_initiation_interval() const {
  // Every PE is busy for u consecutive cycles per problem (the j3
  // coefficient of both published schedules is 1), and the injectivity
  // analysis shows a batch offset of u is the smallest conflict-free
  // one.
  return u_;
}

BatchRunResult BitLevelMatmulArray::multiply_batch(const std::vector<WordMatrix>& xs,
                                                   const std::vector<WordMatrix>& ys) const {
  BL_REQUIRE(!xs.empty() && xs.size() == ys.size(),
             "batch needs equal, nonzero operand counts");
  const Int batches = static_cast<Int>(xs.size());
  for (const auto& m : xs) BL_REQUIRE(m.u() == u_, "operand extents must match the array");
  for (const auto& m : ys) BL_REQUIRE(m.u() == u_, "operand extents must match the array");

  // Compose a batch axis into the word-level model: chains and operand
  // pipelines stay within a batch (zero batch components).
  const ir::WordLevelModel batched = core::batch_model(ir::kernels::matmul(u_), batches);
  const core::BitLevelStructure s = core::expand(batched, p_, core::Expansion::kII);

  // The batched mapping: same S (batch-blind), schedule offset by the
  // initiation interval per batch. Feasibility (incl. conflict-freedom
  // across batches) is re-verified by the array constructor.
  const mapping::MappingMatrix base = matmul_mapping(which_, p_);
  math::IntMat tb(3, 6);
  for (std::size_t r = 0; r < 2; ++r) {
    tb.at(r, 0) = 0;
    for (std::size_t c = 0; c < 5; ++c) tb.at(r, c + 1) = base.matrix().at(r, c);
  }
  tb.at(2, 0) = batch_initiation_interval();
  for (std::size_t c = 0; c < 5; ++c) tb.at(2, c + 1) = base.matrix().at(2, c);

  BitLevelArray array(s, mapping::MappingMatrix(std::move(tb)),
                      matmul_primitives(which_, p_));
  array.set_threads(array_.threads());
  array.set_memory_mode(array_.memory_mode());
  const auto raw = array.run(
      [&](const IntVec& j) { return xs[static_cast<std::size_t>(j[0] - 1)].at(j[1], j[3]); },
      [&](const IntVec& j) { return ys[static_cast<std::size_t>(j[0] - 1)].at(j[3], j[2]); });

  BatchRunResult result{std::vector<WordMatrix>(static_cast<std::size_t>(batches),
                                                WordMatrix(u_)),
                        raw.stats, batch_initiation_interval()};
  for (const auto& [j, value] : raw.z) {
    result.z[static_cast<std::size_t>(j[0] - 1)].at(j[1], j[2]) = value;
  }
  return result;
}

Int BitLevelMatmulArray::predicted_cycles() const {
  if (which_ == MatmulMapping::kFig4) {
    return 3 * (u_ - 1) + 3 * (p_ - 1) + 1;  // (4.5)
  }
  // Pi' = [p, p, 1, 2, 1] evaluated over J (the paper's printed (4.8)
  // has an arithmetic slip; see EXPERIMENTS.md erratum E6).
  return (2 * p_ + 1) * (u_ - 1) + 3 * (p_ - 1) + 1;
}

Int BitLevelMatmulArray::predicted_processors() const { return u_ * u_ * p_ * p_; }

}  // namespace bitlevel::arch
