#include "arch/bit_serial.hpp"

#include "arith/add_shift.hpp"
#include "arith/bits.hpp"
#include "mapping/feasibility.hpp"
#include "support/error.hpp"

namespace bitlevel::arch {

namespace {
// Channel layout: a/b operand bits, carry, partial sum.
constexpr std::size_t kA = 0, kB = 1, kC = 2, kS = 3;
}  // namespace

BitSerialMultiplier::BitSerialMultiplier(Int p)
    : p_(p),
      triplet_([&] {
        BL_REQUIRE(p >= 1 && p <= 31, "operand width must be in [1, 31] bits");
        return arith::AddShiftMultiplier(p).triplet();
      }()),
      t_(math::IntMat{{0, 1}, {2, 1}}),
      line_{math::IntMat{{1, -1, 0}}, "line"},
      k_(0, 0) {
  // Verify Definition 4.1 and freeze the routing ONCE per instance —
  // multiply() reuses the plan instead of re-deriving it per call.
  const auto report = mapping::check_feasible(triplet_.domain, triplet_.deps, t_, line_);
  BL_REQUIRE(report.ok, "the bit-serial mapping must be feasible: " + report.to_string());
  k_ = *report.k;
}

BitSerialMultiplier::Result BitSerialMultiplier::multiply(std::uint64_t a,
                                                          std::uint64_t b) const {
  const Int p = p_;
  BL_REQUIRE(p == 1 || a < (1ULL << (p - 1)),
             "bit-serial multiplicand must keep its top bit clear (paper-exact grid)");
  BL_REQUIRE(b <= arith::max_value(static_cast<int>(p)), "multiplier must fit in p bits");

  sim::ExternalFn external = [&](const math::IntVec& i, std::size_t column) -> sim::Outputs {
    sim::Outputs out(4, 0);
    // Column order of (3.4): delta1 (a), delta2 (b,c), delta3 (s).
    if (column == 0) out[kA] = static_cast<Int>((a >> (i[1] - 1)) & 1U);
    if (column == 1) out[kB] = static_cast<Int>((b >> (i[0] - 1)) & 1U);
    return out;  // carries and partial sums enter as zero
  };
  sim::ComputeFn compute = [&](const math::IntVec&,
                               const std::vector<sim::ColumnInput>& in) -> sim::Outputs {
    const Int av = in[0].producer[kA];
    const Int bv = in[1].producer[kB];
    const Int pp = av & bv;
    const Int cin = in[1].producer[kC];
    const Int sin = in[2].producer[kS];
    sim::Outputs out(4, 0);
    out[kA] = av;
    out[kB] = bv;
    out[kS] = arith::sum_f(static_cast<int>(pp), static_cast<int>(cin), static_cast<int>(sin));
    out[kC] = arith::carry_g(static_cast<int>(pp), static_cast<int>(cin), static_cast<int>(sin));
    return out;
  };

  sim::Machine machine({triplet_.domain, triplet_.deps, t_, line_, k_, {"a", "b", "c", "s"}},
                       compute, external);
  Result result;
  result.stats = machine.run();

  // Product bits per (3.1): s(i, 1) for i <= p, s(p, i-p+1) beyond,
  // plus c(p, p) as bit 2p (zero-extended by the precondition analysis).
  std::vector<int> bits;
  bits.reserve(static_cast<std::size_t>(2 * p));
  for (Int i = 1; i <= p; ++i) {
    bits.push_back(static_cast<int>(machine.outputs_at({i, 1})[kS]));
  }
  for (Int i2 = 2; i2 <= p; ++i2) {
    bits.push_back(static_cast<int>(machine.outputs_at({p, i2})[kS]));
  }
  bits.push_back(static_cast<int>(machine.outputs_at({p, p})[kC]));
  result.product = arith::from_bits(bits);
  return result;
}

}  // namespace bitlevel::arch
