#include "arch/signed_matmul.hpp"

#include "core/evaluator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::arch {

SignedWordMatrix::SignedWordMatrix(Int u, std::int64_t fill)
    : u_(u), data_(static_cast<std::size_t>(u * u), fill) {
  BL_REQUIRE(u >= 1, "matrix extent must be >= 1");
}

std::int64_t& SignedWordMatrix::at(Int row, Int col) {
  BL_REQUIRE(row >= 1 && row <= u_ && col >= 1 && col <= u_, "matrix index out of range");
  return data_[static_cast<std::size_t>((row - 1) * u_ + (col - 1))];
}

std::int64_t SignedWordMatrix::at(Int row, Int col) const {
  BL_REQUIRE(row >= 1 && row <= u_ && col >= 1 && col <= u_, "matrix index out of range");
  return data_[static_cast<std::size_t>((row - 1) * u_ + (col - 1))];
}

SignedWordMatrix SignedWordMatrix::multiply_reference(const SignedWordMatrix& a,
                                                      const SignedWordMatrix& b) {
  BL_REQUIRE(a.u_ == b.u_, "matrix extents must match");
  SignedWordMatrix z(a.u_);
  for (Int i = 1; i <= a.u_; ++i) {
    for (Int j = 1; j <= a.u_; ++j) {
      std::int64_t acc = 0;
      for (Int k = 1; k <= a.u_; ++k) acc += a.at(i, k) * b.at(k, j);
      z.at(i, j) = acc;
    }
  }
  return z;
}

SignedWordMatrix SignedWordMatrix::random(Int u, std::int64_t bound, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  SignedWordMatrix m(u);
  for (Int i = 1; i <= u; ++i) {
    for (Int j = 1; j <= u; ++j) m.at(i, j) = rng.uniform(-bound, bound);
  }
  return m;
}

SignedMatmulResult multiply_signed(const BitLevelMatmulArray& array, Int w,
                                   const SignedWordMatrix& x, const SignedWordMatrix& y) {
  const Int u = array.u();
  BL_REQUIRE(x.u() == u && y.u() == u, "operand extents must match the array");
  BL_REQUIRE(w >= 1 && array.p() >= w + 1,
             "signed w-bit entries need an array built for p >= w+1 bits");
  const std::int64_t bias = 1LL << (w - 1);
  const std::uint64_t encoded_max = (1ULL << w) - 1;
  BL_REQUIRE(core::max_safe_operand(array.p(), u, core::Expansion::kII) >= encoded_max,
             "offset-binary operands exceed the array's capacity bound; increase p");

  // Offset-binary encodings and the all-ones matrix.
  WordMatrix xe(u), ye(u), ones(u, 1);
  for (Int i = 1; i <= u; ++i) {
    for (Int j = 1; j <= u; ++j) {
      BL_REQUIRE(x.at(i, j) >= -bias && x.at(i, j) < bias, "x entry out of signed range");
      BL_REQUIRE(y.at(i, j) >= -bias && y.at(i, j) < bias, "y entry out of signed range");
      xe.at(i, j) = static_cast<std::uint64_t>(x.at(i, j) + bias);
      ye.at(i, j) = static_cast<std::uint64_t>(y.at(i, j) + bias);
    }
  }

  // Three unsigned passes: the product and the two correction sums.
  // All three stream through ONE array instance, so the design plan
  // (expansion + feasibility) composed for it is reused, not rebuilt.
  const MatmulRunResult prod = array.multiply(xe, ye);
  const MatmulRunResult row_sums = array.multiply(xe, ones);   // (i,j) -> sum_k x'_ik
  const MatmulRunResult col_sums = array.multiply(ones, ye);   // (i,j) -> sum_k y'_kj

  SignedMatmulResult out{SignedWordMatrix(u), prod.stats, 3};
  const std::int64_t constant = static_cast<std::int64_t>(u) * bias * bias;
  for (Int i = 1; i <= u; ++i) {
    for (Int j = 1; j <= u; ++j) {
      out.z.at(i, j) = static_cast<std::int64_t>(prod.z.at(i, j)) -
                       bias * static_cast<std::int64_t>(col_sums.z.at(i, j)) -
                       bias * static_cast<std::int64_t>(row_sums.z.at(i, j)) + constant;
    }
  }
  return out;
}

}  // namespace bitlevel::arch
