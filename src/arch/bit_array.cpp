#include "arch/bit_array.hpp"

#include <utility>

#include "mapping/feasibility.hpp"
#include "pipeline/executor.hpp"
#include "support/error.hpp"

namespace bitlevel::arch {

BitLevelArray::BitLevelArray(core::BitLevelStructure structure, mapping::MappingMatrix t,
                             mapping::InterconnectionPrimitives prims)
    : BitLevelArray(std::make_shared<const core::BitLevelStructure>(std::move(structure)),
                    std::move(t), std::move(prims)) {}

BitLevelArray::BitLevelArray(std::shared_ptr<const core::BitLevelStructure> structure,
                             mapping::MappingMatrix t, mapping::InterconnectionPrimitives prims,
                             std::optional<math::IntMat> k)
    : structure_(std::move(structure)), t_(std::move(t)), prims_(std::move(prims)), k_(0, 0) {
  BL_REQUIRE(structure_ != nullptr, "array requires a structure");
  if (k.has_value()) {
    k_ = *std::move(k);
  } else {
    const auto report =
        mapping::check_feasible(structure_->domain, structure_->deps, t_, prims_);
    BL_REQUIRE(report.ok, "mapping is infeasible for this structure: " + report.to_string());
    k_ = *report.k;
  }
}

ArrayRunResult BitLevelArray::run(const core::OperandFn& x, const core::OperandFn& y) const {
  pipeline::PlanRunResult run = pipeline::run_mapped_structure(
      *structure_, t_, prims_, k_, x, y, pipeline::RunOptions{threads_, memory_});
  return ArrayRunResult{std::move(run.stats), std::move(run.z)};
}

FaultyArrayRunResult BitLevelArray::run_under_faults(const core::OperandFn& x,
                                                     const core::OperandFn& y,
                                                     const faults::FaultModel& model,
                                                     bool checks) const {
  pipeline::RunOptions options{threads_, memory_};
  options.faults = &model;
  options.fault_checks = checks;
  pipeline::PlanRunResult run =
      pipeline::run_mapped_structure(*structure_, t_, prims_, k_, x, y, options);
  return FaultyArrayRunResult{std::move(run.stats), std::move(run.z),
                              std::move(*run.fault_report)};
}

}  // namespace bitlevel::arch
