// The design-service daemon: many concurrent clients, one plan cache.
//
// A poll-based acceptor thread owns every socket: it accepts
// connections (Unix-domain or loopback TCP), frames newline-delimited
// requests with a hard per-line byte bound, and admits them into a
// BOUNDED queue — when the queue is full the request is rejected
// immediately with a structured "overloaded" error instead of queueing
// unboundedly (admission control). A fixed pool of request workers
// drains the queue through serve::handle_line against the shared
// PlanCache, so one warm plan serves every client; per-request thread
// budgets ride the request's "threads" knob into the process-wide
// support::ThreadPool exactly as CLI runs do.
//
// Shutdown is graceful by construction: shutdown() (or one byte on the
// self-pipe a SIGINT/SIGTERM handler writes to) stops the acceptor,
// the workers finish every admitted request and write its response,
// and run() returns a drain report whose leaked_plans count proves no
// request still holds a plan reference.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <map>
#include <optional>

#include "serve/coalesce.hpp"
#include "serve/histogram.hpp"
#include "serve/protocol.hpp"

namespace bitlevel::serve {

/// A parsed listen/connect spec: "unix:<path>" or "tcp:<port>"
/// (loopback only). Throws PreconditionError on anything else.
struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< Unix socket path.
  int port = 0;      ///< TCP port; 0 binds an ephemeral port.

  std::string to_string() const;
};

Endpoint parse_endpoint(const std::string& spec);

struct ServerConfig {
  std::string listen = "unix:/tmp/bitlevel-design.sock";
  int workers = 4;                     ///< Request worker threads (>= 1).
  std::size_t max_queue = 64;          ///< Admission bound (>= 1).
  std::size_t max_line_bytes = 1 << 20;  ///< Framing bound per request line.
  /// Acceptor poll timeout in ms (-1 = block until an event). A finite
  /// tick lets the loop re-arm its fd set on a schedule even when no
  /// byte ever arrives; the shutdown pipe wakes it either way — and it
  /// paces the idle-connection reaper below.
  int accept_poll_ms = 1000;
  /// Default deadline applied to requests that carry no "deadline_ms"
  /// member (0 = none). Anchored at request arrival, like per-request
  /// deadlines.
  std::int64_t default_deadline_ms = 0;
  /// Hard cap on EVERY request's effective deadline (0 = uncapped): a
  /// request asking for more gets clamped, and when neither the
  /// request nor the default sets one, the cap itself applies — no
  /// request may run longer than this.
  std::int64_t max_deadline_ms = 0;
  /// Close connections idle (no bytes read, no response written, no
  /// request in flight) longer than this, in ms. -1 = never reap.
  std::int64_t idle_timeout_ms = -1;
  /// Budget for one blocked response write before the connection is
  /// dropped (slow-writer guard): a reader that stops draining its
  /// socket stalls a worker for at most this long, then loses the
  /// connection instead of wedging the pool.
  int write_stall_ms = 30'000;
  /// Lane-coalescing window in microseconds: when a worker pops a
  /// coalescible batch request, it holds an open group for this long so
  /// other in-flight requests with the same coalesce key can join and
  /// share ONE combined lane-group execution (see serve/coalesce.hpp).
  /// 0 disables coalescing entirely — every request executes solo. A
  /// request whose arrival-anchored deadline cannot survive the window
  /// bypasses coalescing instead of missing it.
  std::int64_t coalesce_window_us = 250;
  /// Hard cap on combined items per coalesced group; the group closes
  /// early when full. The default is one widest compiled lane block.
  std::size_t max_coalesce_items = 512;
  /// Cache to serve from; nullptr = pipeline::global_plan_cache().
  pipeline::PlanCache* cache = nullptr;
  /// Test hook enabling the hidden "test-stall" action (see
  /// serve::ServeContext::test_stall). Never set in production.
  std::function<void()> test_stall;
};

/// Counter snapshot; monotone except in_flight (a gauge). The ledger
/// balances: every framed request lands in exactly one of served_ok /
/// served_error / rejected_*, so after a drain
///   requests == served_ok + served_error
///               + rejected_overloaded + rejected_oversized
///               + rejected_deadline.
/// (Mid-run, in_flight accounts for the difference.)
struct ServerStats {
  std::uint64_t connections = 0;          ///< Accepted connections.
  std::uint64_t requests = 0;             ///< Complete request lines framed.
  std::uint64_t served_ok = 0;            ///< Executed, "ok":true.
  std::uint64_t served_error = 0;         ///< Executed, structured error.
  std::uint64_t rejected_overloaded = 0;  ///< Admission-control rejections.
  std::uint64_t rejected_oversized = 0;   ///< Framing-bound rejections.
  std::uint64_t rejected_deadline = 0;    ///< Shed at pop: deadline already expired.
  std::uint64_t in_flight = 0;            ///< Queued + executing right now.
  // Lane coalescing (see serve/coalesce.hpp). A "coalesced" group has
  // >= 2 members; solo groups (the window expired unjoined) count in
  // neither — their requests executed exactly as without coalescing.
  std::uint64_t coalesced_groups = 0;         ///< Combined runs with >= 2 members.
  std::uint64_t coalesced_items = 0;          ///< Batch items carried by those runs.
  std::uint64_t coalesce_bypass_deadline = 0; ///< Requests that skipped coalescing
                                              ///< because their deadline could not
                                              ///< survive the window.
};

/// What a graceful drain left behind.
struct DrainReport {
  ServerStats stats;
  std::size_t leaked_plans = 0;  ///< PlanCache refs still held; 0 = clean.
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Create, bind and listen on the configured endpoint. Throws
  /// bitlevel::Error on a malformed spec or socket failure. A stale
  /// Unix socket file from a dead daemon is replaced.
  void bind_and_listen();

  /// The canonical endpoint after bind_and_listen() — for TCP the
  /// actual bound port ("tcp:41763"), so tcp:0 callers can connect.
  const std::string& endpoint() const { return endpoint_text_; }

  /// Serve until shutdown; returns after the drain completed. Requires
  /// bind_and_listen() first.
  DrainReport run();

  /// Begin a graceful drain (thread-safe, idempotent).
  void shutdown();

  /// Write end of the self-pipe: a signal handler writing one byte
  /// here triggers the same graceful drain (async-signal-safe).
  int shutdown_write_fd() const { return shutdown_pipe_[1]; }

  ServerStats stats() const;

 private:
  struct Connection;
  /// A request line parsed once for the coalescer, cached on its Task
  /// so repeated queue sweeps never re-parse a line.
  struct TaskProbe {
    ParsedRequest request;
    std::string key;  ///< coalesce_key(request); empty = not coalescible.
  };
  struct Task {
    std::shared_ptr<Connection> connection;
    std::string line;
    /// When the acceptor framed the line — deadlines are anchored
    /// here, so time spent queued counts against them and the worker
    /// can shed a task whose deadline expired while it waited.
    std::chrono::steady_clock::time_point arrival;
    std::shared_ptr<TaskProbe> probe;  ///< Lazy; filled at first classification.
  };
  /// A forming lane group: one leader worker holds it open for the
  /// coalesce window; same-key tasks join from other workers' pops and
  /// from the leader's queue sweeps. Guarded by queue_mu_ until
  /// closed, then owned by the leader alone.
  struct OpenGroup {
    std::string key;
    std::chrono::steady_clock::time_point close_at;
    bool closed = false;
    std::size_t items = 0;  ///< Combined batch items across members.
    std::vector<Task> tasks;  ///< Parallel to members.
    std::vector<CoalesceMember> members;
    std::vector<std::optional<std::chrono::steady_clock::time_point>> deadlines;
  };
  /// Per-coalesce-key occupancy accounting for the stats endpoint.
  struct KeyStats {
    std::uint64_t groups = 0;  ///< Groups closed under this key (any size).
    std::uint64_t items = 0;   ///< Batch items those groups carried.
    Log2Histogram occupancy;   ///< Items-per-group distribution.
  };

  void accept_loop();
  void worker_loop();
  void reap_idle_connections();
  void handle_readable(const std::shared_ptr<Connection>& connection);
  void admit_line(const std::shared_ptr<Connection>& connection, std::string line);
  void write_response(Connection& connection, const std::string& response);
  /// Coalescing at pop time: join an open same-key group, or lead a new
  /// one through its window and execute it. Returns false when the task
  /// is not coalescible (or bypassed for its deadline) — the caller
  /// runs the solo path and finishes the task; true means the group
  /// machinery owns the task's response and accounting.
  bool try_coalesce(Task& task, const CancelToken& cancel, bool has_deadline,
                    std::chrono::steady_clock::time_point deadline);
  /// Move every queued same-key task into the group (queue_mu_ held).
  void sweep_queue_into(OpenGroup& group);
  /// Execute a closed group and answer every member (no locks held).
  void execute_group(OpenGroup& group);
  void add_member(OpenGroup& group, Task task, const CancelToken& cancel,
                  std::optional<std::chrono::steady_clock::time_point> deadline);
  /// Response-written bookkeeping shared by the solo and group paths:
  /// activity stamp, pending--, executing_--.
  void finish_task(const Task& task);

  ServerConfig config_;
  Endpoint bound_;
  std::string endpoint_text_;
  pipeline::PlanCache* cache_ = nullptr;
  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};

  std::vector<std::shared_ptr<Connection>> connections_;  ///< Acceptor-owned.

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool draining_ = false;
  /// Open (still joinable) lane groups by coalesce key; queue_mu_.
  std::map<std::string, std::shared_ptr<OpenGroup>> open_groups_;
  /// Wakes waiting group leaders: on joins, on admissions while any
  /// group is open, and on drain.
  std::condition_variable coalesce_cv_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> served_ok_{0};
  std::atomic<std::uint64_t> served_error_{0};
  std::atomic<std::uint64_t> rejected_overloaded_{0};
  std::atomic<std::uint64_t> rejected_oversized_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> executing_{0};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> coalesced_groups_{0};
  std::atomic<std::uint64_t> coalesced_items_{0};
  std::atomic<std::uint64_t> coalesce_bypass_deadline_{0};

  /// Per-request total latency (framed -> answered) in microseconds;
  /// fixed log2 buckets, recorded lock-free on the hot path.
  Log2Histogram latency_hist_us_;
  /// Items per closed coalesce group (solo groups included, so the
  /// distribution shows real occupancy, not just the wins).
  Log2Histogram occupancy_hist_;
  std::mutex coalesce_keys_mu_;
  std::map<std::string, KeyStats> coalesce_keys_;
};

}  // namespace bitlevel::serve
