// Shared action runners — one implementation behind the CLI and the
// design-service daemon.
//
// Each action splits into a compute step (pipeline calls over a
// PlanCache, returning a plain outcome struct) and a JSON emitter that
// writes the members of the action's machine-readable document into an
// open object. The CLI's --json path and the daemon's "result" payload
// call the SAME emitter, so a served response is byte-identical to a
// one-shot CLI document by construction (the CLI appends only its
// process-wide plan_cache counters afterwards; the daemon exposes the
// shared cache through the stats action instead).
#pragma once

#include <cstdint>
#include <string>

#include "pipeline/cache.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/tiling.hpp"
#include "support/json.hpp"

namespace bitlevel::serve {

/// Everything an action run needs beyond the design request itself.
/// Defaults mirror the CLI's flag defaults.
struct ActionParams {
  pipeline::DesignRequest request;  ///< Kernel, p, expansion + execution knobs.
  std::uint64_t seed = 1;
  math::Int batch = 8;
  pipeline::SlicedMode sliced = pipeline::SlicedMode::kAuto;
  /// Batch action: compiled-path selection and lane width, forwarded to
  /// pipeline::BatchOptions::compiled / lane_width.
  pipeline::SlicedMode compiled = pipeline::SlicedMode::kAuto;
  int lanes = 0;
  pipeline::CampaignOptions campaign;  ///< fault-campaign knobs (seed synced).
  pipeline::TileOptions tile;          ///< tiled action: grid knobs / PE budget.
  /// Wire-level deadline request member (0 = absent). The serve layer
  /// resolves it against the server default and hard cap; the CLI's
  /// --connect mode forwards it verbatim.
  std::int64_t deadline_ms = 0;
  /// Cooperative cancellation for the run, threaded into every
  /// pipeline option struct by the runners. Installed by the server
  /// (deadline anchored at request arrival), by handle_line for direct
  /// callers with a deadline_ms member, or by the one-shot CLI from
  /// --deadline-ms. Never serialized; null (the default) is free.
  CancelToken cancel;
};

// ---------------------------------------------------------------- design

struct DesignOutcome {
  pipeline::PlanPtr plan;
};

/// Explore the design space (MappingStrategy::kExplore).
DesignOutcome run_design(pipeline::PlanCache& cache, const ActionParams& params);

/// Members of the design --json document. Returns the CLI exit status
/// (1 when no feasible design was found).
int emit_design_json(JsonWriter& w, const DesignOutcome& outcome);

// -------------------------------------------------------------- simulate

struct SimulateOutcome {
  pipeline::PlanPtr plan;            ///< Always set; check feasible.
  bool feasible = false;             ///< False: no mapping; run is empty.
  pipeline::PlanRunResult run;
  bool correct = false;              ///< Outputs match the word-level reference.
  std::int64_t missing_reference = 0;
};

/// Compose (strategy kAuto), run seeded operands, verify against the
/// word-level reference.
SimulateOutcome run_simulate(pipeline::PlanCache& cache, const ActionParams& params);

/// Members of the simulate --json document. Returns the CLI exit
/// status (1 on mismatch). Requires outcome.feasible.
int emit_simulate_json(JsonWriter& w, const ActionParams& params, const SimulateOutcome& outcome);

// ----------------------------------------------------------------- batch

struct BatchOutcome {
  pipeline::PlanPtr plan;
  bool feasible = false;
  pipeline::BatchResult batch;
  bool correct = false;  ///< Every item matches its own reference.
};

/// Run `params.batch` seeded problems (seed, seed+1, ...) over one
/// cached plan, sliced per params.sliced, each verified independently.
BatchOutcome run_batch_action(pipeline::PlanCache& cache, const ActionParams& params);

/// Members of the batch --json document. Returns the CLI exit status.
/// Requires outcome.feasible.
int emit_batch_json(JsonWriter& w, const ActionParams& params, const BatchOutcome& outcome);

// ----------------------------------------------------------------- tiled

struct TiledOutcome {
  pipeline::TiledPlan plan;          ///< The composed tile grid + shape plans.
  pipeline::TiledRunResult run;
  bool correct = false;              ///< Checked outputs match the reference.
  bool full_check = false;           ///< Every output verified (else sampled).
  math::Int checked_outputs = 0;     ///< Output elements compared.
};

/// Decompose the instance onto a bounded virtual array (params.tile),
/// stream every tile through the batch engine, and verify the
/// accumulated product against the word-level reference — fully for
/// instances up to 2^22 output-element-times-k products, by corner +
/// center sampling beyond that (so huge instances stay checkable in
/// O(k) per sample). Operands are procedural (seeded hash of the word
/// point), honoring the pipelining invariants, so memory stays O(1) in
/// the instance size. Throws PreconditionError on invalid tile options
/// (the serve path maps it to a structured bad_request error).
TiledOutcome run_tiled_action(pipeline::PlanCache& cache, const ActionParams& params);

/// Members of the tiled --json document. Returns the CLI exit status
/// (1 on mismatch).
int emit_tiled_json(JsonWriter& w, const ActionParams& params, const TiledOutcome& outcome);

// -------------------------------------------------------- fault-campaign

struct CampaignOutcome {
  pipeline::PlanPtr plan;
  bool feasible = false;
  pipeline::CampaignResult result;
};

/// Sweep fault kind x rate over the cached plan with the seeded
/// workload the simulate action uses.
CampaignOutcome run_fault_campaign(pipeline::PlanCache& cache, const ActionParams& params);

/// Members of the fault-campaign --json document. Returns 0. Requires
/// outcome.feasible.
int emit_campaign_json(JsonWriter& w, const ActionParams& params, const CampaignOutcome& outcome);

}  // namespace bitlevel::serve
