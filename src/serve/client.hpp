// A blocking client for the design-service daemon.
//
// Connects to the same "unix:<path>" / "tcp:<port>" specs the server
// listens on, sends one JSON request per line and reads one JSON
// response per line. Deliberately synchronous: the CLI's --connect
// mode, the soak test and the bench all speak strict lockstep
// request/response, which is also what makes byte-comparison against
// one-shot CLI output deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace bitlevel::serve {

/// Deterministic exponential backoff with seeded jitter for client-side
/// retries of retryable errors (overloaded / deadline_exceeded /
/// shutting_down): base * 2^attempt plus a hash-derived jitter in
/// [0, base). attempt counts from 0. Pure function of its arguments, so
/// tests (and reruns with the same seed) see identical schedules.
std::int64_t retry_backoff_ms(std::int64_t base_ms, int attempt, std::uint64_t seed);

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon. Throws bitlevel::Error on a malformed spec
  /// or a connection failure (daemon not running, wrong path...).
  void connect(const std::string& endpoint_spec);

  bool connected() const { return fd_ >= 0; }

  /// Send one request line (newline appended). Throws on I/O failure.
  void send_line(const std::string& line);

  /// Read one response line (newline stripped). Returns false on EOF
  /// with no pending data; throws on I/O failure or an over-long line.
  bool recv_line(std::string* line);

  /// send_line + recv_line; throws if the daemon hung up mid-request.
  std::string roundtrip(const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Bytes read past the last returned line.
};

}  // namespace bitlevel::serve
