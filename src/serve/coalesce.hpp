// Cross-request lane coalescing: dynamic micro-batching of in-flight
// batch requests onto shared sliced/compiled lane groups.
//
// The daemon's unit of admission is one request, but the lane engines'
// unit of work is one group of up to 512 independent items: 64
// concurrent single-multiply clients executed in isolation pay 64 full
// wavefront passes where one 64-lane pass would do. The coalescer
// closes that gap: requests that resolve to the same coalesce key —
// identical canonical plan key AND identical execution knobs — are
// gathered by the server into one member list and executed here as ONE
// combined pipeline::run_batch call; each member's items occupy a
// contiguous lane range, and the per-item attribution run_batch
// records (BatchResult::item_paths / item_groups) lets every member's
// response report the exact ledger of what its own items did.
//
// Correctness contract: a member's "result" document is byte-identical
// to what the solo path (serve::handle_line) would have produced —
// shared stats are value-independent, operands are packed per member
// from its own seed, and verification runs per member against the
// word-level reference. The one visible difference is the execution
// ledger when coalescing CHANGES the path (a batch=1 member rides
// lanes instead of the scalar path); the counters then report what
// actually happened, never a fiction.
//
// Cancellation composes with PR 9's deadline machinery: each member
// carries its own arrival-anchored token, a member whose token fires
// is masked out of the result scatter (BatchOptions::mask_item) and
// answered with a retryable deadline_exceeded envelope, and the group
// keeps running for everyone else — a cancelled member never tears its
// groupmates. The combined run's own token is the LATEST member
// deadline (null when any member is unbounded), so the group aborts
// only when no member could use the result.
#pragma once

#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace bitlevel::serve {

/// One member of a coalesced lane group.
struct CoalesceMember {
  ParsedRequest request;  ///< valid, action "batch" (see coalesce_key).
  /// Per-member cancellation (deadline anchored at the member's own
  /// arrival). Null = unbounded. A fired token masks this member's
  /// lanes out of the scatter and turns its response into a retryable
  /// deadline_exceeded envelope.
  CancelToken cancel;
  // Filled by run_coalesced_group:
  std::string response;  ///< Complete one-line envelope.
  bool ok = false;       ///< Envelope carries "ok":true.
};

/// The coalesce key of a parsed request: members mapping to the same
/// key may legally share one combined run_batch. Composition: the
/// canonical plan key (kernel/extents/p/expansion/mapping/objective)
/// plus every execution knob the combined run consumes — memory,
/// threads, sliced, compiled, lanes. Seed, batch size, id and deadline
/// vary freely per member. Empty when the request cannot coalesce: not
/// a valid "batch" action, or sliced pinned off (a scalar-pinned
/// request gains nothing from lane packing and its document promises a
/// scalar ledger).
std::string coalesce_key(const ParsedRequest& request);

/// Execute every member's items as ONE combined batch over the shared
/// plan and fill each member's response/ok. Never throws: composition
/// and execution errors become the same structured error envelopes the
/// solo path produces, stamped into every unanswered member.
void run_coalesced_group(pipeline::PlanCache& cache, std::vector<CoalesceMember>& members,
                         const CancelToken& group_cancel);

}  // namespace bitlevel::serve
