#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace bitlevel::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

constexpr std::size_t kMaxLineBytes = 1 << 22;  // 4 MiB; responses are small.

/// SplitMix64 finalizer — the same mixer the workload generators use,
/// local here to keep the client layer dependency-free.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::int64_t retry_backoff_ms(std::int64_t base_ms, int attempt, std::uint64_t seed) {
  if (base_ms <= 0) return 0;
  if (attempt < 0) attempt = 0;
  if (attempt > 20) attempt = 20;  // cap the doubling well below overflow
  const std::int64_t backoff = base_ms << attempt;
  const std::int64_t jitter = static_cast<std::int64_t>(
      mix64(seed ^ (static_cast<std::uint64_t>(attempt) + 1)) %
      static_cast<std::uint64_t>(base_ms));
  return backoff + jitter;
}

Client::~Client() { close(); }

void Client::connect(const std::string& endpoint_spec) {
  BL_REQUIRE(fd_ < 0, "client is already connected");
  const Endpoint endpoint = parse_endpoint(endpoint_spec);
  if (endpoint.is_unix) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) fail_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string detail = std::strerror(errno);
      close();
      throw Error("connect(" + endpoint.to_string() + "): " + detail);
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail_errno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string detail = std::strerror(errno);
      close();
      throw Error("connect(" + endpoint.to_string() + "): " + detail);
    }
  }
  buffer_.clear();
}

void Client::send_line(const std::string& line) {
  BL_REQUIRE(fd_ >= 0, "client is not connected");
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a daemon that hung up must not SIGPIPE the client.
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail_errno("send");
  }
}

bool Client::recv_line(std::string* line) {
  BL_REQUIRE(fd_ >= 0, "client is not connected");
  BL_REQUIRE(line != nullptr, "recv_line requires an output string");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    BL_REQUIRE(buffer_.size() <= kMaxLineBytes, "response line exceeds 4 MiB");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      BL_REQUIRE(buffer_.empty(), "connection closed mid-line");
      return false;
    }
    if (errno == EINTR) continue;
    fail_errno("recv");
  }
}

std::string Client::roundtrip(const std::string& line) {
  send_line(line);
  std::string response;
  if (!recv_line(&response)) {
    throw Error("daemon closed the connection before responding");
  }
  return response;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace bitlevel::serve
