#include "serve/protocol.hpp"

#include <exception>
#include <limits>

#include "faults/model.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel::serve {

namespace {

/// Internal: a request rejected before (or instead of) execution.
struct RequestError {
  std::string code;
  std::string message;
};

constexpr std::int64_t kMaxExtent = 1'000'000'000;
constexpr std::int64_t kMaxDeadlineMs = 86'400'000;  // 24h: a deadline, not "forever".

const char* const kDesignActions[] = {"design", "simulate", "batch", "tiled", "fault-campaign"};

bool is_design_action(const std::string& action) {
  for (const char* a : kDesignActions) {
    if (action == a) return true;
  }
  return false;
}

[[noreturn]] void reject(const std::string& message) {
  throw RequestError{"bad_request", message};
}

std::int64_t take_int(const JsonValue& v, const std::string& name, std::int64_t lo,
                      std::int64_t hi) {
  if (!v.is_int()) reject("'" + name + "' must be an integer");
  if (v.int_v < lo || v.int_v > hi) {
    reject("'" + name + "' must be in [" + std::to_string(lo) + ", " + std::to_string(hi) +
           "], got " + std::to_string(v.int_v));
  }
  return v.int_v;
}

std::string take_string(const JsonValue& v, const std::string& name) {
  if (!v.is_string()) reject("'" + name + "' must be a string");
  return v.string_v;
}

/// Parse every member of a design-family request, strictly: unknown
/// members, wrong types and out-of-range values are all bad_request
/// (the same discipline the CLI's flag parser enforces).
ActionParams parse_params(const JsonValue& doc, const std::string& action) {
  ActionParams params;
  const bool batch_action = action == "batch";
  const bool tiled_action = action == "tiled";
  const bool campaign_action = action == "fault-campaign";
  for (const auto& [name, v] : doc.object_v) {
    if (name == "id" || name == "action") continue;
    if (name == "kernel") {
      params.request.kernel.name = take_string(v, name);
    } else if (name == "u") {
      params.request.kernel.u = take_int(v, name, 1, kMaxExtent);
    } else if (name == "v") {
      params.request.kernel.v = take_int(v, name, 1, kMaxExtent);
    } else if (name == "w") {
      params.request.kernel.w = take_int(v, name, 1, kMaxExtent);
    } else if (name == "p") {
      params.request.p = take_int(v, name, 1, 63);
    } else if (name == "expansion") {
      const std::string e = take_string(v, name);
      if (e == "I" || e == "1") {
        params.request.expansion = core::Expansion::kI;
      } else if (e == "II" || e == "2") {
        params.request.expansion = core::Expansion::kII;
      } else {
        reject("'expansion' must be I or II");
      }
    } else if (name == "seed") {
      params.seed = static_cast<std::uint64_t>(
          take_int(v, name, 0, std::numeric_limits<std::int64_t>::max()));
    } else if (name == "threads") {
      params.request.threads = static_cast<int>(take_int(v, name, 0, 4096));
    } else if (name == "memory") {
      const std::string m = take_string(v, name);
      if (m == "dense") {
        params.request.memory = sim::MemoryMode::kDense;
      } else if (m == "streaming") {
        params.request.memory = sim::MemoryMode::kStreaming;
      } else {
        reject("'memory' must be dense or streaming");
      }
    } else if (name == "batch" && batch_action) {
      params.batch = take_int(v, name, 1, 1'000'000);
    } else if (name == "sliced" && (batch_action || tiled_action)) {
      const std::string mode = take_string(v, name);
      if (mode == "on") {
        params.sliced = pipeline::SlicedMode::kOn;
      } else if (mode == "off") {
        params.sliced = pipeline::SlicedMode::kOff;
      } else if (mode == "auto") {
        params.sliced = pipeline::SlicedMode::kAuto;
      } else {
        reject("'sliced' must be on, off or auto");
      }
    } else if (name == "compiled" && (batch_action || tiled_action)) {
      const std::string mode = take_string(v, name);
      if (mode == "on") {
        params.compiled = pipeline::SlicedMode::kOn;
      } else if (mode == "off") {
        params.compiled = pipeline::SlicedMode::kOff;
      } else if (mode == "auto") {
        params.compiled = pipeline::SlicedMode::kAuto;
      } else {
        reject("'compiled' must be on, off or auto");
      }
    } else if (name == "lanes" && (batch_action || tiled_action)) {
      const std::int64_t lanes = take_int(v, name, 0, 512);
      if (lanes != 0 && lanes != 64 && lanes != 128 && lanes != 256 && lanes != 512) {
        reject("'lanes' must be 0 (auto), 64, 128, 256 or 512");
      }
      params.lanes = static_cast<int>(lanes);
    } else if (name == "tile_m" && tiled_action) {
      params.tile.tile_m = take_int(v, name, 1, kMaxExtent);
    } else if (name == "tile_n" && tiled_action) {
      params.tile.tile_n = take_int(v, name, 1, kMaxExtent);
    } else if (name == "tile_k" && tiled_action) {
      params.tile.tile_k = take_int(v, name, 1, kMaxExtent);
    } else if (name == "max_pes" && tiled_action) {
      params.tile.max_pes = take_int(v, name, 1, std::numeric_limits<std::int64_t>::max());
    } else if (name == "fault_kinds" && campaign_action) {
      if (!v.is_array()) reject("'fault_kinds' must be an array of strings");
      params.campaign.kinds.clear();
      for (const JsonValue& kind : v.array_v) {
        try {
          params.campaign.kinds.push_back(faults::parse_fault_kind(take_string(kind, name)));
        } catch (const Error& e) {
          reject(e.what());
        }
      }
      if (params.campaign.kinds.empty()) params.campaign.kinds = faults::all_fault_kinds();
    } else if (name == "fault_rates" && campaign_action) {
      if (!v.is_array()) reject("'fault_rates' must be an array of numbers");
      params.campaign.rates.clear();
      for (const JsonValue& rate : v.array_v) {
        if (!rate.is_number()) reject("'fault_rates' must be an array of numbers");
        const double r = rate.as_double();
        if (!(r >= 0.0 && r <= 1.0)) reject("'fault_rates' entries must be in [0, 1]");
        params.campaign.rates.push_back(r);
      }
      if (params.campaign.rates.empty()) reject("'fault_rates' must not be empty");
    } else if (name == "spares" && campaign_action) {
      params.campaign.spares = static_cast<int>(take_int(v, name, 0, 1'000'000));
    } else if (name == "retries" && campaign_action) {
      params.campaign.max_retries = static_cast<int>(take_int(v, name, 0, 1000));
    } else if (name == "deadline_ms") {
      params.deadline_ms = take_int(v, name, 1, kMaxDeadlineMs);
    } else {
      reject("unknown member '" + name + "' for action '" + action + "'");
    }
  }
  if (ir::kernels::find_kernel(params.request.kernel.name) == nullptr) {
    reject("unknown kernel '" + params.request.kernel.name +
           "' (known: " + ir::kernels::registered_names() + ")");
  }
  if (tiled_action && !pipeline::tiling_requested(params.tile)) {
    reject("action 'tiled' requires tile_m/tile_n/tile_k or max_pes");
  }
  return params;
}

void write_id(JsonWriter& w, std::optional<std::int64_t> id) {
  w.key("id");
  if (id.has_value()) {
    w.value(*id);
  } else {
    w.null_value();
  }
}

std::string ok_response(std::optional<std::int64_t> id, const std::string& action, int status,
                        const std::string& result_json) {
  return ok_envelope(id, action, status, result_json);
}

std::string stats_response(const ServeContext& context, std::optional<std::int64_t> id) {
  JsonWriter result;
  result.begin_object();
  result.key("server").begin_object();
  if (context.emit_server_stats) context.emit_server_stats(result);
  result.end_object();
  const pipeline::PlanCacheStats stats = context.cache.stats();
  result.key("plan_cache").begin_object();
  result.key("hits").value(stats.hits);
  result.key("misses").value(stats.misses);
  result.key("evictions").value(stats.evictions);
  result.key("size").value(static_cast<std::int64_t>(stats.size));
  result.key("capacity").value(static_cast<std::int64_t>(stats.capacity));
  result.key("resident_bytes").value(stats.resident_bytes);
  result.key("leaked_plans").value(static_cast<std::int64_t>(context.cache.leaked_plans()));
  result.key("entries").begin_array();
  for (const pipeline::PlanCacheEntryStats& entry : context.cache.entry_stats()) {
    result.begin_object();
    result.key("key").value(entry.key);
    result.key("bytes").value(static_cast<std::int64_t>(entry.bytes));
    result.end_object();
  }
  result.end_array();
  result.end_object();
  result.end_object();
  return ok_response(id, "stats", 0, result.str());
}

std::string run_design_action(const ServeContext& context, std::optional<std::int64_t> id,
                              const std::string& action, const ActionParams& params) {
  JsonWriter result;
  result.begin_object();
  int status = 0;
  if (action == "design") {
    const DesignOutcome outcome = run_design(context.cache, params);
    status = emit_design_json(result, outcome);
  } else if (action == "simulate") {
    const SimulateOutcome outcome = run_simulate(context.cache, params);
    if (!outcome.feasible) throw RequestError{"infeasible", "no feasible design found"};
    status = emit_simulate_json(result, params, outcome);
  } else if (action == "batch") {
    const BatchOutcome outcome = run_batch_action(context.cache, params);
    if (!outcome.feasible) throw RequestError{"infeasible", "no feasible design found"};
    status = emit_batch_json(result, params, outcome);
  } else if (action == "tiled") {
    const TiledOutcome outcome = run_tiled_action(context.cache, params);
    status = emit_tiled_json(result, params, outcome);
  } else {
    const CampaignOutcome outcome = run_fault_campaign(context.cache, params);
    if (!outcome.feasible) throw RequestError{"infeasible", "no feasible design found"};
    status = emit_campaign_json(result, params, outcome);
  }
  result.end_object();
  return ok_response(id, action, status, result.str());
}

}  // namespace

std::string ok_envelope(std::optional<std::int64_t> id, const std::string& action, int status,
                        const std::string& result_json) {
  JsonWriter w;
  w.begin_object();
  write_id(w, id);
  w.key("ok").value(true);
  w.key("action").value(action);
  w.key("status").value(status);
  w.key("result").raw_value(result_json);
  w.end_object();
  return w.str();
}

std::string with_timing(const std::string& response, std::int64_t queue_us,
                        std::int64_t exec_us) {
  // Every envelope is one JSON object, so the splice point is the
  // opening brace; consumers parse the envelope (never byte-compare
  // it), and the "result" member's bytes are untouched.
  const std::size_t brace = response.find('{');
  if (brace == std::string::npos) return response;
  std::string out;
  out.reserve(response.size() + 48);
  out.append(response, 0, brace + 1);
  out += "\"queue_us\":" + std::to_string(queue_us) + ",\"exec_us\":" +
         std::to_string(exec_us) + ",";
  out.append(response, brace + 1, std::string::npos);
  return out;
}

ParsedRequest parse_request(const std::string& line) {
  ParsedRequest parsed;
  try {
    const JsonValue doc = json_parse(line);
    if (!doc.is_object()) return parsed;
    if (const JsonValue* idv = doc.find("id")) {
      if (!idv->is_int()) return parsed;
      parsed.id = idv->int_v;
    }
    const JsonValue* actionv = doc.find("action");
    if (actionv == nullptr || !actionv->is_string()) return parsed;
    parsed.action = actionv->string_v;
    if (!is_design_action(parsed.action)) return parsed;
    parsed.params = parse_params(doc, parsed.action);
    parsed.valid = true;
  } catch (...) {
    // Malformed in any way: the caller falls back to handle_line,
    // whose own parse reports the structured error.
    parsed.valid = false;
  }
  return parsed;
}

std::string error_response(std::optional<std::int64_t> id, const std::string& code,
                           const std::string& message) {
  JsonWriter w;
  w.begin_object();
  write_id(w, id);
  w.key("ok").value(false);
  w.key("error").begin_object();
  w.key("code").value(code);
  w.key("message").value(message);
  w.key("retryable").value(error_retryable(code));
  w.end_object();
  w.end_object();
  return w.str();
}

bool error_retryable(const std::string& code) {
  return code == "overloaded" || code == "deadline_exceeded" || code == "shutting_down";
}

std::optional<std::int64_t> peek_request_id(const std::string& line) {
  return peek_request_meta(line).id;
}

RequestMeta peek_request_meta(const std::string& line) {
  // Single allocation-free scan instead of a full DOM parse. This runs
  // on the worker pop path whenever deadlines are in play, and on the
  // shed path its cost IS most of the cost of turning away an expired
  // request — the overload bench gates that at < 1% of an executed
  // request. String/escape state and brace depth are tracked so a key
  // can only match at the top level of the request object; anything
  // malformed is simply skipped (the full parser produces the real
  // error when the request executes).
  RequestMeta meta;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  std::size_t key_begin = 0;
  std::size_t key_end = 0;  // last completed string literal [begin, end)
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        key_end = i;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        key_begin = i + 1;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        break;
      case ':': {
        if (depth != 1 || key_end < key_begin) break;
        const std::size_t key_len = key_end - key_begin;
        const bool is_id = key_len == 2 && line.compare(key_begin, key_len, "id") == 0;
        const bool is_deadline =
            key_len == 11 && line.compare(key_begin, key_len, "deadline_ms") == 0;
        if (!is_id && !is_deadline) break;
        std::size_t j = i + 1;
        while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
        bool negative = false;
        if (j < line.size() && line[j] == '-') {
          negative = true;
          ++j;
        }
        if (j >= line.size() || line[j] < '0' || line[j] > '9') break;
        std::int64_t value = 0;
        while (j < line.size() && line[j] >= '0' && line[j] <= '9') {
          if (value > (std::numeric_limits<std::int64_t>::max() - 9) / 10) {
            value = -1;  // overflow: treat as absent
            break;
          }
          value = value * 10 + (line[j] - '0');
          ++j;
        }
        if (value < 0) break;
        if (negative) value = -value;
        if (is_id) meta.id = value;
        if (is_deadline && value >= 1 && value <= kMaxDeadlineMs) meta.deadline_ms = value;
        break;
      }
      default:
        break;
    }
  }
  return meta;
}

namespace {

std::string handle_line_impl(const ServeContext& context, const std::string& line,
                             bool& success, const CancelToken& cancel) {
  std::optional<std::int64_t> id;
  success = false;
  try {
    const JsonValue doc = json_parse(line);
    if (!doc.is_object()) {
      return error_response(id, "parse_error", "request must be a JSON object");
    }
    if (const JsonValue* idv = doc.find("id")) {
      if (!idv->is_int()) return error_response(id, "bad_request", "'id' must be an integer");
      id = idv->int_v;
    }
    const JsonValue* actionv = doc.find("action");
    if (actionv == nullptr) return error_response(id, "bad_request", "missing 'action'");
    if (!actionv->is_string()) {
      return error_response(id, "bad_request", "'action' must be a string");
    }
    const std::string action = actionv->string_v;

    if (action == "stats") {
      for (const auto& [name, unused] : doc.object_v) {
        if (name != "id" && name != "action") {
          return error_response(id, "bad_request",
                                "unknown member '" + name + "' for action 'stats'");
        }
      }
      success = true;
      return stats_response(context, id);
    }
    if (action == "test-stall" && context.test_stall) {
      context.test_stall();
      success = true;
      return ok_response(id, action, 0, "{}");
    }
    if (!is_design_action(action)) {
      return error_response(id, "bad_request",
                            "unknown action '" + action +
                                "' (allowed: design, simulate, batch, tiled, fault-campaign, "
                                "stats)");
    }
    ActionParams params = parse_params(doc, action);
    params.cancel = cancel;
    if (!params.cancel.valid() && params.deadline_ms > 0) {
      params.cancel = CancelToken::with_deadline_ms(params.deadline_ms);
    }
    const std::string response = run_design_action(context, id, action, params);
    success = true;
    return response;
  } catch (const JsonParseError& e) {
    return error_response(id, "parse_error", e.what());
  } catch (const RequestError& e) {
    return error_response(id, e.code, e.message);
  } catch (const DeadlineExceededError& e) {
    // A cooperative cancellation fired at a wavefront/tile/lane-group
    // boundary: the run unwound before producing any result, so the
    // caller gets this structured (retryable) envelope, never a torn
    // document. Must precede the generic Error catch below.
    return error_response(id, "deadline_exceeded", e.what());
  } catch (const Error& e) {
    // A pipeline precondition/overflow/not-found raised by execution:
    // the request was answerable but invalid — per-request scope, the
    // daemon keeps serving.
    return error_response(id, "bad_request", e.what());
  } catch (const std::exception& e) {
    return error_response(id, "internal", e.what());
  }
}

}  // namespace

std::string handle_line(const ServeContext& context, const std::string& line, bool* ok,
                        const CancelToken& cancel) {
  bool success = false;
  const std::string response = handle_line_impl(context, line, success, cancel);
  if (ok != nullptr) *ok = success;
  return response;
}

std::string request_line(std::int64_t id, const std::string& action,
                         const ActionParams& params) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("action").value(action);
  if (is_design_action(action)) {
    w.key("kernel").value(params.request.kernel.name);
    w.key("u").value(params.request.kernel.u);
    w.key("v").value(params.request.kernel.v);
    w.key("w").value(params.request.kernel.w);
    w.key("p").value(params.request.p);
    w.key("expansion").value(params.request.expansion == core::Expansion::kI ? "I" : "II");
    w.key("seed").value(params.seed);
    w.key("threads").value(params.request.threads);
    w.key("memory").value(params.request.memory == sim::MemoryMode::kStreaming ? "streaming"
                                                                               : "dense");
    if (action == "batch") {
      w.key("batch").value(params.batch);
      w.key("sliced").value(pipeline::to_string(params.sliced));
      w.key("compiled").value(pipeline::to_string(params.compiled));
      w.key("lanes").value(static_cast<std::int64_t>(params.lanes));
    }
    if (action == "tiled") {
      w.key("sliced").value(pipeline::to_string(params.sliced));
      w.key("compiled").value(pipeline::to_string(params.compiled));
      w.key("lanes").value(static_cast<std::int64_t>(params.lanes));
      if (params.tile.tile_m > 0) w.key("tile_m").value(params.tile.tile_m);
      if (params.tile.tile_n > 0) w.key("tile_n").value(params.tile.tile_n);
      if (params.tile.tile_k > 0) w.key("tile_k").value(params.tile.tile_k);
      if (params.tile.max_pes > 0) w.key("max_pes").value(params.tile.max_pes);
    }
    if (action == "fault-campaign") {
      w.key("fault_kinds").begin_array();
      for (const faults::FaultKind kind : params.campaign.kinds) {
        w.value(faults::to_string(kind));
      }
      w.end_array();
      w.key("fault_rates").begin_array();
      for (const double rate : params.campaign.rates) w.value(rate);
      w.end_array();
      w.key("spares").value(params.campaign.spares);
      w.key("retries").value(params.campaign.max_retries);
    }
    if (params.deadline_ms > 0) w.key("deadline_ms").value(params.deadline_ms);
  }
  w.end_object();
  return w.str();
}

}  // namespace bitlevel::serve
