#include "serve/coalesce.hpp"

#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/workload.hpp"
#include "support/error.hpp"

namespace bitlevel::serve {

std::string coalesce_key(const ParsedRequest& request) {
  if (!request.valid || request.action != "batch") return "";
  const ActionParams& params = request.params;
  // A scalar-pinned request gains nothing from lane packing; leave it
  // on the solo path so its document keeps its scalar ledger.
  if (params.sliced == pipeline::SlicedMode::kOff) return "";
  pipeline::DesignRequest design = params.request;
  design.mapping = pipeline::MappingStrategy::kAuto;  // what the batch action composes
  std::string key = pipeline::canonical_key(design);
  key += "|memory=";
  key += params.request.memory == sim::MemoryMode::kStreaming ? "streaming" : "dense";
  key += "|threads=" + std::to_string(params.request.threads);
  key += "|sliced=" + pipeline::to_string(params.sliced);
  key += "|compiled=" + pipeline::to_string(params.compiled);
  key += "|lanes=" + std::to_string(params.lanes);
  return key;
}

namespace {

/// Stamp `code`/`message` into every member that has no response yet —
/// the group-wide error paths (infeasible plan, group deadline fired,
/// a pipeline precondition). Mirrors handle_line's catch taxonomy.
void fail_unanswered(std::vector<CoalesceMember>& members, const std::string& code,
                     const std::string& message) {
  for (CoalesceMember& member : members) {
    if (!member.response.empty()) continue;
    member.response = error_response(member.request.id, code, message);
    member.ok = false;
  }
}

}  // namespace

void run_coalesced_group(pipeline::PlanCache& cache, std::vector<CoalesceMember>& members,
                         const CancelToken& group_cancel) {
  BL_REQUIRE(!members.empty(), "coalesced group needs at least one member");
  try {
    // Member layout: contiguous item ranges of one combined batch, in
    // member order. first[m] is where member m's items start.
    std::vector<std::size_t> first(members.size(), 0);
    std::size_t total = 0;
    for (std::size_t m = 0; m < members.size(); ++m) {
      first[m] = total;
      total += static_cast<std::size_t>(members[m].request.params.batch);
    }

    pipeline::DesignRequest request = members.front().request.params.request;
    request.mapping = pipeline::MappingStrategy::kAuto;
    group_cancel.check("batch start");
    const pipeline::PlanPtr plan = cache.get_or_compose(request);
    if (!plan->has_mapping()) {
      fail_unanswered(members, "infeasible", "no feasible design found");
      return;
    }

    // Operands per member from its OWN seed (seed, seed+1, ...) —
    // exactly the solo batch action's workloads, so the de-sliced
    // results are byte-identical to a per-request run. Loaded fully
    // before any OperandFn is taken (Workload::x_fn captures the
    // table; the vector must not reallocate afterwards).
    std::vector<core::Workload> workloads;
    workloads.reserve(total);
    std::vector<std::size_t> member_of(total, 0);
    for (std::size_t m = 0; m < members.size(); ++m) {
      const ActionParams& params = members[m].request.params;
      for (math::Int i = 0; i < params.batch; ++i) {
        if ((workloads.size() & 255) == 0) group_cancel.check("workload materialization");
        member_of[workloads.size()] = m;
        workloads.push_back(core::make_safe_workload(plan->model, request.p, request.expansion,
                                                     params.seed +
                                                         static_cast<std::uint64_t>(i)));
      }
    }
    std::vector<pipeline::BatchItem> items;
    items.reserve(total);
    for (const core::Workload& load : workloads) {
      items.push_back(pipeline::BatchItem{load.x_fn(), load.y_fn()});
    }

    // Execution knobs are part of the coalesce key, so the front
    // member's are everyone's. The scatter mask drops a member's lanes
    // the moment its own token fires — the group result is never torn,
    // the member just stops receiving it.
    const ActionParams& shared = members.front().request.params;
    pipeline::BatchOptions options;
    options.threads = request.threads;
    options.memory = request.memory;
    options.sliced = shared.sliced;
    options.compiled = shared.compiled;
    options.lane_width = shared.lanes;
    options.cancel = group_cancel;
    options.mask_item = [&members, &member_of](std::size_t index) {
      return members[member_of[index]].cancel.cancelled();
    };
    pipeline::BatchResult combined = pipeline::run_batch(cache, request, items, options);

    // Scatter: one response per member, built from its slice of the
    // combined result. The ledger counts what the member's items
    // actually did — distinct lane-group ordinals per path over its
    // contiguous range (ordinals are assigned in item order, so a
    // transition marks a new group).
    for (std::size_t m = 0; m < members.size(); ++m) {
      CoalesceMember& member = members[m];
      if (member.cancel.cancelled()) {
        member.response =
            error_response(member.request.id, "deadline_exceeded",
                           "deadline expired during coalesced execution; the member's lanes "
                           "were masked from the scatter");
        member.ok = false;
        continue;
      }
      const std::size_t count = static_cast<std::size_t>(member.request.params.batch);
      BatchOutcome outcome;
      outcome.plan = plan;
      outcome.feasible = true;
      pipeline::BatchResult& view = outcome.batch;
      view.plan = combined.plan;
      view.plan_was_cached = combined.plan_was_cached;
      view.compiled_lane_width = combined.compiled_lane_width;
      view.results.reserve(count);
      for (std::size_t i = first[m]; i < first[m] + count; ++i) {
        const pipeline::ItemPath path = combined.item_paths[i];
        const bool new_group = i == first[m] || combined.item_groups[i] != combined.item_groups[i - 1];
        switch (path) {
          case pipeline::ItemPath::kCompiled:
            view.compiled_items += 1;
            if (new_group) view.compiled_groups += 1;
            break;
          case pipeline::ItemPath::kSliced:
            view.sliced_items += 1;
            if (new_group) view.sliced_groups += 1;
            break;
          case pipeline::ItemPath::kScalar:
            view.scalar_items += 1;
            break;
        }
        view.results.push_back(std::move(combined.results[i]));
      }

      // Per-member verification against the word-level reference —
      // the same check, item for item, the solo batch action runs.
      bool ok = true;
      bool cancelled = false;
      for (std::size_t i = 0; i < count; ++i) {
        group_cancel.check("batch verification");
        if (member.cancel.cancelled()) {
          cancelled = true;
          break;
        }
        const pipeline::BatchItem& item = items[first[m] + i];
        const auto ref = core::evaluate_word_reference(plan->model, item.x, item.y);
        const pipeline::PlanRunResult& run = view.results[i];
        bool item_ok = !run.z.empty();
        for (const auto& [j, v] : run.z) {
          const auto it = ref.find(j);
          item_ok = item_ok && it != ref.end() && v == it->second;
        }
        ok = ok && item_ok;
      }
      if (cancelled) {
        member.response = error_response(member.request.id, "deadline_exceeded",
                                         "deadline expired during coalesced verification");
        member.ok = false;
        continue;
      }
      outcome.correct = ok;

      JsonWriter result;
      result.begin_object();
      const int status = emit_batch_json(result, member.request.params, outcome);
      result.end_object();
      member.response = ok_envelope(member.request.id, "batch", status, result.str());
      member.ok = true;
    }
  } catch (const DeadlineExceededError& e) {
    fail_unanswered(members, "deadline_exceeded", e.what());
  } catch (const Error& e) {
    fail_unanswered(members, "bad_request", e.what());
  } catch (const std::exception& e) {
    fail_unanswered(members, "internal", e.what());
  }
}

}  // namespace bitlevel::serve
