#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "support/cancel.hpp"
#include "support/error.hpp"

namespace bitlevel::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

/// Monotonic clock in ms, for the per-connection last-activity stamps
/// (atomics can't hold a time_point).
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The effective deadline of a request asking for `request_ms` (0 =
/// none): the request's own value, else the server default, and never
/// beyond the hard cap — which applies even to requests that asked for
/// nothing. 0 = no deadline.
std::int64_t resolved_deadline_ms(const ServerConfig& config, std::int64_t request_ms) {
  std::int64_t ms = request_ms > 0 ? request_ms : config.default_deadline_ms;
  if (config.max_deadline_ms > 0) {
    ms = ms > 0 ? std::min(ms, config.max_deadline_ms) : config.max_deadline_ms;
  }
  return ms;
}

std::int64_t us_between(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us > 0 ? us : 0;
}

void emit_histogram(JsonWriter& w, const Log2Histogram::Snapshot& s) {
  w.begin_object();
  w.key("count").value(s.count);
  w.key("p50").value(s.quantile(0.50));
  w.key("p95").value(s.quantile(0.95));
  w.key("p99").value(s.quantile(0.99));
  // Trim trailing zero buckets; bucket b >= 1 holds [2^(b-1), 2^b).
  std::size_t last = 0;
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    if (s.buckets[b] != 0) last = b + 1;
  }
  w.key("buckets").begin_array();
  for (std::size_t b = 0; b < last; ++b) w.value(s.buckets[b]);
  w.end_array();
  w.end_object();
}

}  // namespace

std::string Endpoint::to_string() const {
  return is_unix ? "unix:" + path : "tcp:" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.is_unix = true;
    endpoint.path = spec.substr(5);
    BL_REQUIRE(!endpoint.path.empty(), "unix endpoint needs a socket path (unix:/path)");
    // sun_path is a fixed 108-byte field; reject instead of truncating.
    BL_REQUIRE(endpoint.path.size() < sizeof(sockaddr_un{}.sun_path),
               "unix socket path too long");
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.is_unix = false;
    const std::string text = spec.substr(4);
    char* end = nullptr;
    errno = 0;
    const long port = std::strtol(text.c_str(), &end, 10);
    BL_REQUIRE(!text.empty() && end != nullptr && *end == '\0' && errno != ERANGE &&
                   port >= 0 && port <= 65535,
               "tcp endpoint needs a port in [0, 65535] (tcp:PORT)");
    endpoint.port = static_cast<int>(port);
    return endpoint;
  }
  throw PreconditionError("endpoint must be unix:/path or tcp:PORT, got '" + spec + "'");
}

/// One client connection. The acceptor thread owns fd lifetime and the
/// read buffer; workers share the write side under write_mu so each
/// response line reaches the socket contiguously.
struct Server::Connection {
  int fd = -1;
  std::string buffer;            ///< Unframed bytes (acceptor thread only).
  bool overflowed = false;       ///< Oversized-line mode: discard to newline.
  std::mutex write_mu;
  std::atomic<bool> alive{true};
  /// Last byte read or response written (now_ms clock), for the idle
  /// reaper. Stamped at accept, on every read, and after every
  /// response.
  std::atomic<std::int64_t> last_activity_ms{0};
  /// Requests admitted but not yet answered: a connection with work in
  /// flight is never "idle", however long its deadline lets it run.
  std::atomic<int> pending{0};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  BL_REQUIRE(config_.workers >= 1, "server needs at least one worker");
  BL_REQUIRE(config_.max_queue >= 1, "server queue bound must be >= 1");
  // The smallest useful request ({"action":"stats"} and kin) needs a
  // few dozen bytes; a bound below that would reject every line.
  BL_REQUIRE(config_.max_line_bytes >= 64,
             "server line bound must hold a minimal request (>= 64 bytes)");
  BL_REQUIRE(config_.accept_poll_ms >= -1, "accept poll timeout must be >= -1");
  BL_REQUIRE(config_.default_deadline_ms >= 0, "default deadline must be >= 0 (0 = none)");
  BL_REQUIRE(config_.max_deadline_ms >= 0, "deadline cap must be >= 0 (0 = uncapped)");
  BL_REQUIRE(config_.idle_timeout_ms >= -1, "idle timeout must be >= -1 (-1 = never reap)");
  BL_REQUIRE(config_.write_stall_ms >= 0, "write stall budget must be >= 0");
  BL_REQUIRE(config_.coalesce_window_us >= 0,
             "coalesce window must be >= 0 us (0 disables coalescing)");
  BL_REQUIRE(config_.max_coalesce_items >= 1, "coalesce item cap must be >= 1");
  cache_ = config_.cache != nullptr ? config_.cache : &pipeline::global_plan_cache();
  if (pipe(shutdown_pipe_) != 0) fail_errno("pipe");
  set_nonblocking(shutdown_pipe_[0]);
  set_nonblocking(shutdown_pipe_[1]);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (bound_.is_unix && !bound_.path.empty() && listen_fd_ >= 0) ::unlink(bound_.path.c_str());
  for (int fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::bind_and_listen() {
  BL_REQUIRE(listen_fd_ < 0, "bind_and_listen called twice");
  bound_ = parse_endpoint(config_.listen);
  if (bound_.is_unix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_errno("socket(AF_UNIX)");
    // A socket file left by a dead daemon would make bind fail forever;
    // replace it (but never delete a non-socket path).
    struct stat st {};
    if (::lstat(bound_.path.c_str(), &st) == 0) {
      BL_REQUIRE(S_ISSOCK(st.st_mode),
                 "listen path exists and is not a socket: " + bound_.path);
      ::unlink(bound_.path.c_str());
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, bound_.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      fail_errno("bind(" + bound_.path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback service only
    addr.sin_port = htons(static_cast<std::uint16_t>(bound_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      fail_errno("bind(tcp:" + std::to_string(bound_.port) + ")");
    }
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      fail_errno("getsockname");
    }
    bound_.port = ntohs(actual.sin_port);
  }
  if (::listen(listen_fd_, 128) != 0) fail_errno("listen");
  set_nonblocking(listen_fd_);
  endpoint_text_ = bound_.to_string();
}

void Server::shutdown() {
  // One byte wakes the poll loop; writes and the pipe are
  // async-signal-safe, so signal handlers may call this path too.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(shutdown_pipe_[1], &byte, 1);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = accepted_.load();
  s.requests = requests_.load();
  s.served_ok = served_ok_.load();
  s.served_error = served_error_.load();
  s.rejected_overloaded = rejected_overloaded_.load();
  s.rejected_oversized = rejected_oversized_.load();
  s.rejected_deadline = rejected_deadline_.load();
  s.in_flight = queued_.load() + executing_.load();
  s.coalesced_groups = coalesced_groups_.load();
  s.coalesced_items = coalesced_items_.load();
  s.coalesce_bypass_deadline = coalesce_bypass_deadline_.load();
  return s;
}

void Server::write_response(Connection& connection, const std::string& response) {
  if (!connection.alive.load()) return;
  const std::string line = response + "\n";
  std::lock_guard<std::mutex> lock(connection.write_mu);
  std::size_t sent = 0;
  int waited_ms = 0;
  while (sent < line.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon.
    const ssize_t n =
        ::send(connection.fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      waited_ms = 0;  // progress resets the stall budget
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow-writer guard: a client that stopped reading must not pin a
      // worker forever. Give it write_stall_ms of back-pressure in
      // 100ms poll chunks, then drop the connection.
      if (waited_ms >= config_.write_stall_ms) {
        connection.alive.store(false);
        return;
      }
      const int chunk_ms =
          std::min(100, std::max(1, config_.write_stall_ms - waited_ms));
      pollfd pfd{connection.fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, chunk_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;   // interrupted wait, not a stall
        connection.alive.store(false);  // poll failure: treat the fd as gone
        return;
      }
      if (ready == 0) {
        // Only a full timed-out chunk counts against the budget; a
        // writable round or an interrupted wait must not eat it.
        waited_ms += chunk_ms;
        continue;
      }
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        connection.alive.store(false);  // peer reset while we waited
        return;
      }
      continue;  // POLLOUT: the window reopened, retry the send
    }
    if (n < 0 && errno == EINTR) continue;
    connection.alive.store(false);  // client gone; drop the response
    return;
  }
  connection.last_activity_ms.store(now_ms());
}

void Server::admit_line(const std::shared_ptr<Connection>& connection, std::string line) {
  requests_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < config_.max_queue) {
      // pending++ before the push: once a worker can see the task, the
      // reaper must already consider the connection busy.
      connection->pending.fetch_add(1);
      queue_.push_back(Task{connection, std::move(line), std::chrono::steady_clock::now()});
      queued_.fetch_add(1);
      queue_cv_.notify_one();
      // A waiting group leader sweeps the queue on every wake; a fresh
      // admission may be exactly the join it is waiting for.
      if (!open_groups_.empty()) coalesce_cv_.notify_all();
      return;
    }
  }
  // Bounded admission: reject NOW with a structured error — the daemon
  // stays responsive under overload instead of buffering unboundedly.
  rejected_overloaded_.fetch_add(1);
  write_response(*connection,
                 error_response(peek_request_id(line), "overloaded",
                                "request queue full (" + std::to_string(config_.max_queue) +
                                    "); retry later"));
}

void Server::handle_readable(const std::shared_ptr<Connection>& connection) {
  char chunk[65536];
  while (true) {
    const ssize_t n = ::recv(connection->fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      connection->alive.store(false);
      return;
    }
    if (n == 0) {
      connection->alive.store(false);
      return;
    }
    connection->buffer.append(chunk, static_cast<std::size_t>(n));
    connection->last_activity_ms.store(now_ms());
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = connection->buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = connection->buffer.substr(start, nl - start);
      start = nl + 1;
      if (connection->overflowed) {
        // The tail of an oversized line: already rejected, resync here.
        connection->overflowed = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > config_.max_line_bytes) {
        // A complete line can also break the framing bound (it arrived
        // whole within one poll round): same structured rejection.
        requests_.fetch_add(1);
        rejected_oversized_.fetch_add(1);
        write_response(*connection,
                       error_response(peek_request_id(line), "oversized",
                                      "request line exceeds " +
                                          std::to_string(config_.max_line_bytes) + " bytes"));
        continue;
      }
      admit_line(connection, std::move(line));
    }
    connection->buffer.erase(0, start);
    if (!connection->overflowed && connection->buffer.size() > config_.max_line_bytes) {
      // Framing bound: reject the line without waiting for its newline,
      // then discard bytes until one arrives (strict parse errors,
      // never a crash — and never an unbounded buffer).
      requests_.fetch_add(1);
      rejected_oversized_.fetch_add(1);
      write_response(*connection,
                     error_response(std::nullopt, "oversized",
                                    "request line exceeds " +
                                        std::to_string(config_.max_line_bytes) + " bytes"));
      connection->buffer.clear();
      connection->overflowed = true;
    }
  }
}

void Server::accept_loop() {
  while (true) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{shutdown_pipe_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& connection : connections_) {
      fds.push_back(pollfd{connection->fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), config_.accept_poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    if (ready > 0) {
      if (fds[0].revents != 0) return;  // shutdown byte: begin the drain
      if ((fds[1].revents & POLLIN) != 0) {
        while (true) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) {
            if (errno == EINTR) continue;
            // EAGAIN: the backlog is drained. Anything else (ECONNABORTED,
            // EMFILE, ...) is per-connection, not fatal to the daemon —
            // drop out and let the next poll round retry.
            break;
          }
          set_nonblocking(fd);
          accepted_.fetch_add(1);
          auto connection = std::make_shared<Connection>();
          connection->fd = fd;
          connection->last_activity_ms.store(now_ms());
          connections_.push_back(std::move(connection));
        }
      }
      for (std::size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        handle_readable(connections_[i - 2]);
      }
    }
    // Idle ticks (ready == 0) fall through here too: the reaper is
    // paced by accept_poll_ms even when no byte ever arrives.
    reap_idle_connections();
    // Drop closed connections; queued tasks keep theirs alive through
    // the shared_ptr until their responses are (not) written.
    std::vector<std::shared_ptr<Connection>> alive;
    alive.reserve(connections_.size());
    for (auto& connection : connections_) {
      if (connection->alive.load()) alive.push_back(std::move(connection));
    }
    connections_.swap(alive);
  }
}

void Server::reap_idle_connections() {
  if (config_.idle_timeout_ms < 0) return;  // -1: never reap
  const std::int64_t now = now_ms();
  for (const auto& connection : connections_) {
    if (!connection->alive.load()) continue;
    // A connection with an admitted-but-unanswered request is busy, not
    // idle — a long-running request must never be reaped out from
    // under its own response. Workers stamp last_activity BEFORE
    // decrementing pending, so this test never sees a stale stamp with
    // pending already zero.
    if (connection->pending.load() > 0) continue;
    if (now - connection->last_activity_ms.load() > config_.idle_timeout_ms) {
      connection->alive.store(false);  // the sweep below closes the fd
    }
  }
}

void Server::worker_loop() {
  const ServeContext context{
      *cache_,
      [this](JsonWriter& w) {
        const ServerStats s = stats();
        w.key("endpoint").value(endpoint_text_);
        w.key("connections").value(s.connections);
        w.key("requests").value(s.requests);
        w.key("served_ok").value(s.served_ok);
        w.key("served_error").value(s.served_error);
        w.key("rejected_overloaded").value(s.rejected_overloaded);
        w.key("rejected_oversized").value(s.rejected_oversized);
        w.key("rejected_deadline").value(s.rejected_deadline);
        w.key("in_flight").value(s.in_flight);
        w.key("workers").value(config_.workers);
        w.key("queue_capacity").value(static_cast<std::int64_t>(config_.max_queue));
        w.key("coalesce_window_us").value(config_.coalesce_window_us);
        w.key("coalesce_max_items").value(static_cast<std::int64_t>(config_.max_coalesce_items));
        w.key("coalesced_groups").value(s.coalesced_groups);
        w.key("coalesced_items").value(s.coalesced_items);
        w.key("coalesce_bypass_deadline").value(s.coalesce_bypass_deadline);
        w.key("latency_us");
        emit_histogram(w, latency_hist_us_.snapshot());
        w.key("group_occupancy");
        emit_histogram(w, occupancy_hist_.snapshot());
        w.key("coalesce_keys").begin_array();
        {
          std::lock_guard<std::mutex> lock(coalesce_keys_mu_);
          for (const auto& [key, ks] : coalesce_keys_) {
            w.begin_object();
            w.key("key").value(key);
            w.key("groups").value(ks.groups);
            w.key("items").value(ks.items);
            w.key("occupancy");
            emit_histogram(w, ks.occupancy.snapshot());
            w.end_object();
          }
        }
        w.end_array();
      },
      config_.test_stall};
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
      queued_.fetch_sub(1);
      executing_.fetch_add(1);
    }
    // Deadline resolution at pop time. Fast path: when the server sets
    // no deadline of its own and the line carries no "deadline_ms"
    // member, skip the peek parse entirely.
    CancelToken cancel;
    bool shed = false;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    const bool maybe_deadline = config_.default_deadline_ms > 0 ||
                                config_.max_deadline_ms > 0 ||
                                task.line.find("\"deadline_ms\"") != std::string::npos;
    if (maybe_deadline) {
      const RequestMeta meta = peek_request_meta(task.line);
      const std::int64_t ms = resolved_deadline_ms(config_, meta.deadline_ms);
      if (ms > 0) {
        deadline = task.arrival + std::chrono::milliseconds(ms);
        if (std::chrono::steady_clock::now() >= deadline) {
          // Lazy shedding: the deadline expired while the task sat in
          // the queue. The work never starts — no plan composed, no
          // cache touched — and the client learns immediately.
          rejected_deadline_.fetch_add(1);
          const std::string response =
              with_timing(error_response(meta.id, "deadline_exceeded",
                                         "deadline (" + std::to_string(ms) +
                                             " ms) expired while queued; request shed"),
                          us_between(task.arrival, std::chrono::steady_clock::now()), 0);
          write_response(*task.connection, response);
          latency_hist_us_.record(
              static_cast<std::uint64_t>(us_between(task.arrival, std::chrono::steady_clock::now())));
          shed = true;
        } else {
          has_deadline = true;
          cancel = CancelToken::with_deadline_at(deadline);
        }
      }
    }
    if (!shed && config_.coalesce_window_us > 0 &&
        try_coalesce(task, cancel, has_deadline, deadline)) {
      // The group machinery answered the member and finished the task.
      continue;
    }
    if (!shed) {
      const auto exec_start = std::chrono::steady_clock::now();
      bool ok = false;
      std::string response = handle_line(context, task.line, &ok, cancel);
      const auto done = std::chrono::steady_clock::now();
      response = with_timing(response, us_between(task.arrival, exec_start),
                             us_between(exec_start, done));
      (ok ? served_ok_ : served_error_).fetch_add(1);
      write_response(*task.connection, response);
      latency_hist_us_.record(static_cast<std::uint64_t>(us_between(task.arrival, done)));
    }
    finish_task(task);
  }
}

bool Server::try_coalesce(Task& task, const CancelToken& cancel, bool has_deadline,
                          std::chrono::steady_clock::time_point deadline) {
  // Classify once, cache on the task: queue sweeps may probe it again.
  if (task.probe == nullptr) {
    auto probe = std::make_shared<TaskProbe>();
    probe->request = parse_request(task.line);
    probe->key = coalesce_key(probe->request);
    task.probe = std::move(probe);
  }
  if (task.probe->key.empty()) return false;  // not coalescible: solo path
  const std::size_t batch = static_cast<std::size_t>(task.probe->request.params.batch);
  const std::optional<std::chrono::steady_clock::time_point> member_deadline =
      has_deadline ? std::optional<std::chrono::steady_clock::time_point>(deadline)
                   : std::nullopt;

  std::shared_ptr<OpenGroup> group;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    const auto it = open_groups_.find(task.probe->key);
    if (it != open_groups_.end()) {
      if (it->second->items + batch > config_.max_coalesce_items) {
        // The open group is full; leading a second group under the same
        // key would corrupt the registry. Run solo instead.
        return false;
      }
      // Join the open group — unless our deadline cannot survive its
      // window; missing a deadline to save a pass is a bad trade.
      if (has_deadline && deadline < it->second->close_at) {
        coalesce_bypass_deadline_.fetch_add(1);
        return false;
      }
      add_member(*it->second, std::move(task), cancel, member_deadline);
      coalesce_cv_.notify_all();  // the leader may close on "group full"
      return true;
    }
    // Lead a new group through its window.
    const auto now = std::chrono::steady_clock::now();
    const auto close_at = now + std::chrono::microseconds(config_.coalesce_window_us);
    if (has_deadline && deadline < close_at) {
      coalesce_bypass_deadline_.fetch_add(1);
      return false;
    }
    group = std::make_shared<OpenGroup>();
    group->key = task.probe->key;
    group->close_at = close_at;
    add_member(*group, std::move(task), cancel, member_deadline);
    open_groups_[group->key] = group;
    while (true) {
      sweep_queue_into(*group);
      if (group->items >= config_.max_coalesce_items || draining_ ||
          std::chrono::steady_clock::now() >= group->close_at) {
        break;
      }
      coalesce_cv_.wait_until(lock, group->close_at);
    }
    group->closed = true;
    open_groups_.erase(group->key);
  }
  execute_group(*group);
  return true;
}

void Server::sweep_queue_into(OpenGroup& group) {
  // queue_mu_ held. Pull every queued same-key task into the group —
  // they would only wait behind us anyway, and the lane engines do the
  // N-for-one work. Tasks whose deadline cannot survive the window are
  // left queued for the solo pop path (which sheds or runs them).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (group.items >= config_.max_coalesce_items) break;
    Task& candidate = *it;
    if (candidate.probe == nullptr) {
      auto probe = std::make_shared<TaskProbe>();
      probe->request = parse_request(candidate.line);
      probe->key = coalesce_key(probe->request);
      candidate.probe = std::move(probe);
    }
    const std::size_t batch =
        candidate.probe->key.empty()
            ? 0
            : static_cast<std::size_t>(candidate.probe->request.params.batch);
    if (candidate.probe->key != group.key || group.items + batch > config_.max_coalesce_items) {
      ++it;
      continue;
    }
    CancelToken cancel;
    std::optional<std::chrono::steady_clock::time_point> member_deadline;
    const bool maybe_deadline = config_.default_deadline_ms > 0 || config_.max_deadline_ms > 0 ||
                                candidate.line.find("\"deadline_ms\"") != std::string::npos;
    if (maybe_deadline) {
      const RequestMeta meta = peek_request_meta(candidate.line);
      const std::int64_t ms = resolved_deadline_ms(config_, meta.deadline_ms);
      if (ms > 0) {
        const auto deadline = candidate.arrival + std::chrono::milliseconds(ms);
        if (deadline < group.close_at) {
          // Too tight to ride this window; leave it for a solo pop.
          ++it;
          continue;
        }
        member_deadline = deadline;
        cancel = CancelToken::with_deadline_at(deadline);
      }
    }
    queued_.fetch_sub(1);
    executing_.fetch_add(1);
    add_member(group, std::move(candidate), cancel, member_deadline);
    it = queue_.erase(it);
  }
}

void Server::add_member(OpenGroup& group, Task task, const CancelToken& cancel,
                        std::optional<std::chrono::steady_clock::time_point> deadline) {
  CoalesceMember member;
  member.request = std::move(task.probe->request);
  member.cancel = cancel;
  group.items += static_cast<std::size_t>(member.request.params.batch);
  group.members.push_back(std::move(member));
  group.tasks.push_back(std::move(task));
  group.deadlines.push_back(deadline);
}

void Server::execute_group(OpenGroup& group) {
  const auto exec_start = std::chrono::steady_clock::now();
  // The group token is the LATEST member deadline: the combined run
  // aborts only when no member could use its result. Any unbounded
  // member keeps the group unbounded.
  CancelToken group_cancel;
  bool all_bounded = true;
  std::chrono::steady_clock::time_point latest{};
  for (const auto& deadline : group.deadlines) {
    if (!deadline.has_value()) {
      all_bounded = false;
      break;
    }
    latest = std::max(latest, *deadline);
  }
  if (all_bounded) group_cancel = CancelToken::with_deadline_at(latest);

  run_coalesced_group(*cache_, group.members, group_cancel);
  const auto done = std::chrono::steady_clock::now();

  if (group.members.size() >= 2) {
    coalesced_groups_.fetch_add(1);
    coalesced_items_.fetch_add(group.items);
  }
  occupancy_hist_.record(group.items);
  {
    std::lock_guard<std::mutex> lock(coalesce_keys_mu_);
    KeyStats& ks = coalesce_keys_[group.key];
    ks.groups += 1;
    ks.items += group.items;
    ks.occupancy.record(group.items);
  }

  const std::int64_t exec_us = us_between(exec_start, done);
  for (std::size_t m = 0; m < group.members.size(); ++m) {
    CoalesceMember& member = group.members[m];
    const Task& task = group.tasks[m];
    (member.ok ? served_ok_ : served_error_).fetch_add(1);
    write_response(*task.connection,
                   with_timing(member.response, us_between(task.arrival, exec_start), exec_us));
    latency_hist_us_.record(static_cast<std::uint64_t>(us_between(task.arrival, done)));
    finish_task(task);
  }
}

void Server::finish_task(const Task& task) {
  // Activity stamp BEFORE pending-- : the reaper skips pending > 0
  // connections, so by the time it can see pending == 0 the stamp is
  // already fresh — a just-answered connection is never "idle".
  task.connection->last_activity_ms.store(now_ms());
  task.connection->pending.fetch_sub(1);
  executing_.fetch_sub(1);
}

DrainReport Server::run() {
  BL_REQUIRE(listen_fd_ >= 0, "run() requires bind_and_listen()");
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers.emplace_back([this] { worker_loop(); });
  }
  accept_loop();

  // Drain: no new connections or requests; every admitted request is
  // finished and answered before the workers exit.
  ::close(listen_fd_);
  if (bound_.is_unix) ::unlink(bound_.path.c_str());
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  coalesce_cv_.notify_all();  // waiting group leaders close early and execute
  for (auto& worker : workers) worker.join();
  connections_.clear();  // EOF to every client, after all responses

  DrainReport report;
  report.stats = stats();
  report.leaked_plans = cache_->leaked_plans();
  return report;
}

}  // namespace bitlevel::serve
