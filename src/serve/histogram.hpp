// Fixed log2-bucket histograms for the serve hot path.
//
// The daemon records per-request latency and per-group lane occupancy
// on every request; a sorted-sample quantile would allocate and lock.
// A Log2Histogram is a fixed array of atomic counters — record() is
// one bit-scan and one relaxed fetch_add, no allocation, no lock, safe
// from any thread — and the stats endpoint computes p50/p95/p99 from a
// snapshot with bucket-upper-bound resolution (a factor of 2, which is
// exactly the precision a latency SLO check needs).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace bitlevel::serve {

class Log2Histogram {
 public:
  /// Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  /// 40 buckets cover every uint64 microsecond count a daemon can see
  /// (2^39 us is ~6 days); larger values clamp into the last bucket.
  static constexpr std::size_t kBuckets = 40;

  /// Point-in-time copy of the counters, for quantile math and JSON
  /// emission outside the hot path.
  struct Snapshot {
    std::uint64_t count = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// The upper bound of the bucket containing quantile q in [0, 1]:
    /// the smallest b with cumulative(b) >= q * count, reported as
    /// 2^b - 1 (bucket 0 reports 0). 0 when the histogram is empty.
    std::uint64_t quantile(double q) const {
      if (count == 0) return 0;
      auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
      if (target < 1) target = 1;
      if (target > count) target = count;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        cumulative += buckets[b];
        if (cumulative >= target) {
          return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
        }
      }
      return (std::uint64_t{1} << (kBuckets - 1)) - 1;
    }
  };

  void record(std::uint64_t value) {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
      s.count += s.buckets[b];
    }
    return s;
  }

  static std::size_t bucket_of(std::uint64_t value) {
    std::size_t b = 0;
    while (value != 0) {
      value >>= 1;
      ++b;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace bitlevel::serve
