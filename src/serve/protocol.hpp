// The design-service wire protocol: newline-delimited JSON.
//
// Each request is one JSON object on one line; each response is one
// JSON object on one line. Requests name an action ("design",
// "simulate", "batch", "fault-campaign", "stats") plus the same
// parameters the CLI takes as flags, with the same defaults and the
// same strict ranges. Responses are an envelope around the action's
// CLI document:
//
//   {"id":7,"ok":true,"action":"simulate","status":0,"result":{...}}
//   {"id":7,"ok":false,"error":{"code":"bad_request","message":"..."}}
//
// "result" is byte-identical to the one-shot CLI --json document minus
// its trailing plan_cache counters (see serve/actions.hpp). "status"
// is the exit code the CLI would have returned. Every malformed or
// failing request produces a structured error envelope — per-request
// scope for the CLI's catch-all discipline; the daemon never crashes
// on input.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/actions.hpp"

namespace bitlevel::serve {

/// Machine-readable error classes of the protocol.
///   parse_error  — the line is not a valid JSON object.
///   bad_request  — valid JSON, but an unknown action/member, a value
///                  of the wrong type, or a value out of range.
///   infeasible   — the composed design has no feasible mapping.
///   overloaded   — the bounded admission queue is full.
///   oversized    — the request line exceeds the framing bound.
///   shutting_down— the daemon is draining and accepts no new work.
///   internal     — an unexpected exception (reported, never a crash).

/// What a request handler needs from its server.
struct ServeContext {
  pipeline::PlanCache& cache;  ///< The shared process-wide plan cache.
  /// Writes the server's own counters (requests served/rejected/
  /// in-flight, connections) into an open JSON object for the stats
  /// action. May be empty (stats then reports only the cache).
  std::function<void(JsonWriter&)> emit_server_stats;
  /// Test hook: when set, the hidden "test-stall" action blocks on it
  /// before responding (lets tests hold a worker deterministically).
  /// Unset (production): "test-stall" is an unknown action.
  std::function<void()> test_stall;
};

/// Execute one request line end to end: parse, validate, dispatch,
/// serialize. Always returns a complete one-line response envelope —
/// exceptions become structured error responses. When `ok` is non-null
/// it reports whether the envelope carries "ok":true (for the server's
/// served/error counters).
std::string handle_line(const ServeContext& context, const std::string& line,
                        bool* ok = nullptr);

/// A structured error envelope (one line, no trailing newline).
std::string error_response(std::optional<std::int64_t> id, const std::string& code,
                           const std::string& message);

/// Best-effort extraction of a request id for rejection paths that
/// never execute the request (overloaded, oversized). nullopt when the
/// line is unparseable or carries no integer id.
std::optional<std::int64_t> peek_request_id(const std::string& line);

/// Serialize the request a client sends for `action` with `params` —
/// the exact inverse of the daemon's request parser, shared by the
/// CLI's --connect mode, the tests and the bench.
std::string request_line(std::int64_t id, const std::string& action,
                         const ActionParams& params);

}  // namespace bitlevel::serve
