// The design-service wire protocol: newline-delimited JSON.
//
// Each request is one JSON object on one line; each response is one
// JSON object on one line. Requests name an action ("design",
// "simulate", "batch", "fault-campaign", "stats") plus the same
// parameters the CLI takes as flags, with the same defaults and the
// same strict ranges. Responses are an envelope around the action's
// CLI document:
//
//   {"id":7,"ok":true,"action":"simulate","status":0,"result":{...}}
//   {"id":7,"ok":false,"error":{"code":"bad_request","message":"..."}}
//
// "result" is byte-identical to the one-shot CLI --json document minus
// its trailing plan_cache counters (see serve/actions.hpp). "status"
// is the exit code the CLI would have returned. Every malformed or
// failing request produces a structured error envelope — per-request
// scope for the CLI's catch-all discipline; the daemon never crashes
// on input.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/actions.hpp"
#include "support/cancel.hpp"

namespace bitlevel::serve {

/// Machine-readable error classes of the protocol. Every error
/// envelope carries "retryable": whether the SAME request can succeed
/// later without modification (transient server condition) or is fatal
/// as written (see error_retryable).
///   parse_error       — the line is not a valid JSON object. Fatal.
///   bad_request       — valid JSON, but an unknown action/member, a
///                       value of the wrong type, or out of range. Fatal.
///   infeasible        — the composed design has no feasible mapping.
///                       Fatal.
///   overloaded        — the bounded admission queue is full. Retryable.
///   oversized         — the request line exceeds the framing bound.
///                       Fatal.
///   deadline_exceeded — the request's deadline expired before (shed
///                       from the queue, work never started) or during
///                       execution (cancelled at a cooperative
///                       boundary). Retryable.
///   shutting_down     — the daemon is draining and accepts no new
///                       work. Retryable (against a live instance).
///   internal          — an unexpected exception (reported, never a
///                       crash). Fatal.

/// What a request handler needs from its server.
struct ServeContext {
  pipeline::PlanCache& cache;  ///< The shared process-wide plan cache.
  /// Writes the server's own counters (requests served/rejected/
  /// in-flight, connections) into an open JSON object for the stats
  /// action. May be empty (stats then reports only the cache).
  std::function<void(JsonWriter&)> emit_server_stats;
  /// Test hook: when set, the hidden "test-stall" action blocks on it
  /// before responding (lets tests hold a worker deterministically).
  /// Unset (production): "test-stall" is an unknown action.
  std::function<void()> test_stall;
};

/// Execute one request line end to end: parse, validate, dispatch,
/// serialize. Always returns a complete one-line response envelope —
/// exceptions become structured error responses. When `ok` is non-null
/// it reports whether the envelope carries "ok":true (for the server's
/// served/error counters). `cancel` is the server-installed
/// cancellation token (deadline anchored at request arrival); when it
/// is null and the request carries its own "deadline_ms", a token
/// anchored at parse time is installed instead, so direct callers (the
/// one-shot CLI, tests) honor deadlines too. A fired deadline yields a
/// "deadline_exceeded" error envelope, never a torn result.
std::string handle_line(const ServeContext& context, const std::string& line,
                        bool* ok = nullptr, const CancelToken& cancel = {});

/// A structured error envelope (one line, no trailing newline),
/// including the taxonomy's "retryable" verdict for `code`.
std::string error_response(std::optional<std::int64_t> id, const std::string& code,
                           const std::string& message);

/// An "ok" envelope around an action's finished result document — what
/// handle_line wraps successful runs in. Exposed for the server's lane
/// coalescer, which executes a combined group itself and must emit
/// per-member envelopes byte-identical to the solo path's.
std::string ok_envelope(std::optional<std::int64_t> id, const std::string& action, int status,
                        const std::string& result_json);

/// Splice per-request timing into a response envelope: inserts
/// "queue_us" (time spent in the admission queue) and "exec_us" (time
/// executing) right after the envelope's opening brace. Applied by the
/// server to every worker-written response; the "result" member's
/// bytes are untouched, so byte-identity checks against one-shot CLI
/// documents keep working on the extracted result.
std::string with_timing(const std::string& response, std::int64_t queue_us,
                        std::int64_t exec_us);

/// A request line parsed up front — the server's coalescer needs the
/// action and full parameters BEFORE dispatch to decide whether two
/// in-flight requests can share one lane group. `valid` is true only
/// when the line parsed strictly as a design-family action; any
/// malformed line yields valid=false (never a throw) and the worker
/// routes it through handle_line, which produces the structured error.
struct ParsedRequest {
  bool valid = false;
  std::optional<std::int64_t> id;
  std::string action;
  ActionParams params;
};

ParsedRequest parse_request(const std::string& line);

/// The taxonomy's verdict: true exactly for the transient-condition
/// codes (overloaded, deadline_exceeded, shutting_down) — retrying the
/// unmodified request can succeed. The client's bounded-retry loop and
/// every error envelope's "retryable" field use this single predicate.
bool error_retryable(const std::string& code);

/// Best-effort extraction of a request id for rejection paths that
/// never execute the request (overloaded, oversized). nullopt when the
/// line is unparseable or carries no integer id.
std::optional<std::int64_t> peek_request_id(const std::string& line);

/// What the server's shedding path needs from a queued line without
/// running it: the id (for the rejection envelope) and the request's
/// own deadline_ms (0 when absent or out of range — full validation
/// happens in parse_params if the request executes).
struct RequestMeta {
  std::optional<std::int64_t> id;
  std::int64_t deadline_ms = 0;
};

/// One parse serving both peeks, for the worker's pop-time deadline
/// resolution. Never throws; unparseable lines yield a default meta.
RequestMeta peek_request_meta(const std::string& line);

/// Serialize the request a client sends for `action` with `params` —
/// the exact inverse of the daemon's request parser, shared by the
/// CLI's --connect mode, the tests and the bench.
std::string request_line(std::int64_t id, const std::string& action,
                         const ActionParams& params);

}  // namespace bitlevel::serve
