#include "serve/actions.hpp"

#include <map>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/workload.hpp"
#include "support/rng.hpp"

namespace bitlevel::serve {

namespace {

const char* memory_name(sim::MemoryMode mode) {
  return mode == sim::MemoryMode::kStreaming ? "streaming" : "dense";
}

}  // namespace

DesignOutcome run_design(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kExplore;
  // An already-expired deadline sheds the request before the (not
  // interruptible) exploration composes anything.
  params.cancel.check("design start");
  return DesignOutcome{cache.get_or_compose(request)};
}

int emit_design_json(JsonWriter& w, const DesignOutcome& outcome) {
  const mapping::ExploreResult& result = outcome.plan->explore;
  w.key("spaces_tried").value(static_cast<std::int64_t>(result.spaces_tried));
  w.key("designs").begin_array();
  for (const auto& d : result.designs) {
    w.begin_object();
    w.key("pi").value(d.t.schedule());
    w.key("time").value(d.total_time);
    w.key("processors").value(d.processors);
    w.key("max_wire").value(d.max_wire);
    w.end_object();
  }
  w.end_array();
  return result.designs.empty() ? 1 : 0;
}

SimulateOutcome run_simulate(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;
  SimulateOutcome outcome;
  params.cancel.check("simulate start");
  outcome.plan = cache.get_or_compose(request);
  if (!outcome.plan->has_mapping()) return outcome;
  outcome.feasible = true;

  const core::Workload workload =
      core::make_safe_workload(outcome.plan->model, request.p, request.expansion, params.seed);
  const core::OperandFn xf = workload.x_fn();
  const core::OperandFn yf = workload.y_fn();
  pipeline::RunOptions run_options{request.threads, request.memory};
  run_options.cancel = params.cancel;
  outcome.run = pipeline::run_plan(*outcome.plan, xf, yf, run_options);
  const auto ref = core::evaluate_word_reference(outcome.plan->model, xf, yf);
  bool ok = !outcome.run.z.empty();
  for (const auto& [j, v] : outcome.run.z) {
    const auto it = ref.find(j);
    if (it == ref.end()) {
      ++outcome.missing_reference;
      ok = false;
      continue;
    }
    ok = ok && v == it->second;
  }
  outcome.correct = ok;
  return outcome;
}

int emit_simulate_json(JsonWriter& w, const ActionParams& params,
                       const SimulateOutcome& outcome) {
  const sim::SimulationStats& stats = outcome.run.stats;
  w.key("correct").value(outcome.correct);
  w.key("missing_reference").value(outcome.missing_reference);
  w.key("cycles").value(stats.cycles);
  w.key("processors").value(stats.pe_count);
  w.key("computations").value(stats.computations);
  w.key("utilization").value(stats.pe_utilization);
  w.key("memory").value(memory_name(params.request.memory));
  w.key("peak_live_slots").value(stats.peak_live_slots);
  w.key("pi").value(outcome.plan->t->schedule());
  return outcome.correct ? 0 : 1;
}

BatchOutcome run_batch_action(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;
  BatchOutcome outcome;
  params.cancel.check("batch start");
  outcome.plan = cache.get_or_compose(request);
  if (!outcome.plan->has_mapping()) return outcome;
  outcome.feasible = true;

  // One seeded workload per batch item (seed, seed+1, ...), loaded
  // fully before any OperandFn is taken: Workload::x_fn captures the
  // workload's table, so the vector must not reallocate afterwards.
  std::vector<core::Workload> workloads;
  workloads.reserve(static_cast<std::size_t>(params.batch));
  for (math::Int i = 0; i < params.batch; ++i) {
    if ((i & 255) == 0) params.cancel.check("workload materialization");
    workloads.push_back(core::make_safe_workload(outcome.plan->model, request.p,
                                                 request.expansion,
                                                 params.seed + static_cast<std::uint64_t>(i)));
  }
  std::vector<pipeline::BatchItem> items;
  items.reserve(workloads.size());
  for (const core::Workload& load : workloads) {
    items.push_back(pipeline::BatchItem{load.x_fn(), load.y_fn()});
  }

  pipeline::BatchOptions options;
  options.threads = request.threads;
  options.memory = request.memory;
  options.sliced = params.sliced;
  options.compiled = params.compiled;
  options.lane_width = params.lanes;
  options.cancel = params.cancel;
  outcome.batch = pipeline::run_batch(cache, request, items, options);

  bool ok = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    params.cancel.check("batch verification");
    const auto ref = core::evaluate_word_reference(outcome.plan->model, items[i].x, items[i].y);
    const pipeline::PlanRunResult& run = outcome.batch.results[i];
    bool item_ok = !run.z.empty();
    for (const auto& [j, v] : run.z) {
      const auto it = ref.find(j);
      item_ok = item_ok && it != ref.end() && v == it->second;
    }
    ok = ok && item_ok;
  }
  outcome.correct = ok;
  return outcome;
}

int emit_batch_json(JsonWriter& w, const ActionParams& params, const BatchOutcome& outcome) {
  const sim::SimulationStats& stats = outcome.batch.results.front().stats;
  w.key("action").value("batch");
  w.key("kernel").value(params.request.kernel.name);
  w.key("p").value(params.request.p);
  w.key("batch").value(params.batch);
  w.key("correct").value(outcome.correct);
  w.key("sliced").begin_object();
  w.key("mode").value(pipeline::to_string(params.sliced));
  w.key("compiled").value(pipeline::to_string(params.compiled));
  w.key("lanes").value(static_cast<std::int64_t>(params.lanes));
  w.key("compiled_groups").value(outcome.batch.compiled_groups);
  w.key("compiled_items").value(outcome.batch.compiled_items);
  w.key("groups").value(outcome.batch.sliced_groups);
  w.key("sliced_items").value(outcome.batch.sliced_items);
  w.key("scalar_items").value(outcome.batch.scalar_items);
  w.end_object();
  w.key("cycles_per_pass").value(stats.cycles);
  w.key("processors").value(stats.pe_count);
  w.key("utilization").value(stats.pe_utilization);
  w.key("memory").value(memory_name(params.request.memory));
  w.key("peak_live_slots").value(stats.peak_live_slots);
  w.key("pi").value(outcome.plan->t->schedule());
  return outcome.correct ? 0 : 1;
}

namespace {

/// Procedural instance operands for the tiled action: seeded hashes of
/// the word point respecting the matmul pipelining invariants (x a
/// function of (j1, j3), y of (j3, j2)), bounded by the capacity
/// precondition of the FULL k chain — safe for every tile, whose
/// chains are never longer, and for the monolithic reference.
core::OperandFn tiled_x(std::uint64_t seed, std::uint64_t bound) {
  return [seed, bound](const math::IntVec& j) {
    return hash_mix(hash_mix(hash_mix(seed, 1), static_cast<std::uint64_t>(j[0])),
                    static_cast<std::uint64_t>(j[2])) %
           (bound + 1);
  };
}

core::OperandFn tiled_y(std::uint64_t seed, std::uint64_t bound) {
  return [seed, bound](const math::IntVec& j) {
    return hash_mix(hash_mix(hash_mix(seed, 2), static_cast<std::uint64_t>(j[2])),
                    static_cast<std::uint64_t>(j[1])) %
           (bound + 1);
  };
}

/// Reference product element z(i, j) = sum_l x * y, O(k).
std::uint64_t tiled_reference_at(math::Int i, math::Int j, math::Int k,
                                 const core::OperandFn& x, const core::OperandFn& y) {
  std::uint64_t acc = 0;
  for (math::Int l = 1; l <= k; ++l) {
    acc += x(math::IntVec{i, j, l}) * y(math::IntVec{i, j, l});
  }
  return acc;
}

}  // namespace

TiledOutcome run_tiled_action(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;

  TiledOutcome outcome;
  params.cancel.check("tiled start");
  outcome.plan = pipeline::compose_tiled(cache, request, params.tile);
  const pipeline::TiledPlan& plan = outcome.plan;

  const std::uint64_t bound =
      core::max_safe_operand(request.p, plan.k, request.expansion);
  const core::OperandFn x = tiled_x(params.seed, bound);
  const core::OperandFn y = tiled_y(params.seed, bound);

  pipeline::TiledRunOptions options;
  options.threads = request.threads;
  options.memory = request.memory;
  options.sliced = params.sliced;
  options.compiled = params.compiled;
  options.lane_width = params.lanes;
  options.cancel = params.cancel;

  // Full verification costs m * n * k reference multiplies; beyond
  // 2^22 of those, sample the four corners and the center instead —
  // each O(k) — so arbitrarily large instances stay checkable.
  constexpr math::Int kFullCheckLimit = math::Int{1} << 22;
  outcome.full_check = plan.m * plan.n * plan.k <= kFullCheckLimit;
  if (outcome.full_check) {
    outcome.run = pipeline::run_tiled(cache, plan, x, y, options);
    bool ok = !outcome.run.z.empty();
    for (const auto& [ij, v] : outcome.run.z) {
      if ((outcome.checked_outputs & 255) == 0) params.cancel.check("tiled verification");
      ok = ok && v == tiled_reference_at(ij[0], ij[1], plan.k, x, y);
      ++outcome.checked_outputs;
    }
    outcome.correct = ok;
  } else {
    const std::vector<math::IntVec> samples = {
        {1, 1},
        {1, plan.n},
        {plan.m, 1},
        {plan.m, plan.n},
        {(plan.m + 1) / 2, (plan.n + 1) / 2}};
    std::map<math::IntVec, std::uint64_t> acc;
    for (const math::IntVec& s : samples) acc.emplace(s, 0);
    outcome.run = pipeline::run_tiled(
        cache, plan, x, y, options,
        [&acc](math::Int i, math::Int j, std::uint64_t partial) {
          const auto it = acc.find(math::IntVec{i, j});
          if (it != acc.end()) it->second += partial;
        });
    bool ok = true;
    for (const auto& [ij, v] : acc) {
      ok = ok && v == tiled_reference_at(ij[0], ij[1], plan.k, x, y);
      ++outcome.checked_outputs;
    }
    outcome.correct = ok;
  }
  return outcome;
}

int emit_tiled_json(JsonWriter& w, const ActionParams& params, const TiledOutcome& outcome) {
  const pipeline::TiledPlan& plan = outcome.plan;
  const pipeline::TiledRunResult& run = outcome.run;
  const sim::SimulationStats& stats = run.stats;
  w.key("action").value("tiled");
  w.key("kernel").value(params.request.kernel.name);
  w.key("p").value(params.request.p);
  w.key("m").value(plan.m);
  w.key("n").value(plan.n);
  w.key("k").value(plan.k);
  w.key("tile").begin_object();
  w.key("m").value(plan.tile_m);
  w.key("n").value(plan.tile_n);
  w.key("k").value(plan.tile_k);
  w.key("grid_m").value(plan.grid_m);
  w.key("grid_n").value(plan.grid_n);
  w.key("grid_k").value(plan.grid_k);
  w.key("shapes").value(static_cast<std::int64_t>(plan.shapes.size()));
  w.key("tile_pes").value(plan.tile_pes);
  w.key("max_pes").value(plan.max_pes);
  w.end_object();
  w.key("tiles_total").value(run.tiles_total);
  w.key("tiles_executed").value(run.tiles_executed);
  w.key("tile_cache_hits").value(run.tile_cache_hits);
  w.key("sliced").begin_object();
  w.key("mode").value(pipeline::to_string(params.sliced));
  w.key("compiled").value(pipeline::to_string(params.compiled));
  w.key("lanes").value(static_cast<std::int64_t>(params.lanes));
  w.key("compiled_groups").value(run.compiled_groups);
  w.key("compiled_items").value(run.compiled_items);
  w.key("groups").value(run.sliced_groups);
  w.key("sliced_items").value(run.sliced_items);
  w.key("scalar_items").value(run.scalar_items);
  w.end_object();
  w.key("check").value(outcome.full_check ? "full" : "sampled");
  w.key("checked_outputs").value(outcome.checked_outputs);
  w.key("correct").value(outcome.correct);
  w.key("cycles_per_tile").value(stats.cycles);
  w.key("processors").value(stats.pe_count);
  w.key("utilization").value(stats.pe_utilization);
  w.key("memory").value(memory_name(params.request.memory));
  w.key("peak_live_slots").value(stats.peak_live_slots);
  return outcome.correct ? 0 : 1;
}

CampaignOutcome run_fault_campaign(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;
  CampaignOutcome outcome;
  params.cancel.check("campaign start");
  outcome.plan = cache.get_or_compose(request);
  if (!outcome.plan->has_mapping()) return outcome;
  outcome.feasible = true;

  const core::Workload workload =
      core::make_safe_workload(outcome.plan->model, request.p, request.expansion, params.seed);
  pipeline::CampaignOptions options = params.campaign;
  options.seed = params.seed;
  options.cancel = params.cancel;
  outcome.result =
      pipeline::run_campaign(cache, request, workload.x_fn(), workload.y_fn(), options);
  return outcome;
}

int emit_campaign_json(JsonWriter& w, const ActionParams& params,
                       const CampaignOutcome& outcome) {
  w.key("action").value("fault-campaign");
  w.key("kernel").value(params.request.kernel.name);
  w.key("p").value(params.request.p);
  w.key("seed").value(params.seed);
  w.key("pi").value(outcome.plan->t->schedule());
  w.key("campaign");
  outcome.result.write_json(w);
  return 0;
}

}  // namespace bitlevel::serve
