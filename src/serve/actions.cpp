#include "serve/actions.hpp"

#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/workload.hpp"

namespace bitlevel::serve {

namespace {

const char* memory_name(sim::MemoryMode mode) {
  return mode == sim::MemoryMode::kStreaming ? "streaming" : "dense";
}

}  // namespace

DesignOutcome run_design(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kExplore;
  return DesignOutcome{cache.get_or_compose(request)};
}

int emit_design_json(JsonWriter& w, const DesignOutcome& outcome) {
  const mapping::ExploreResult& result = outcome.plan->explore;
  w.key("spaces_tried").value(static_cast<std::int64_t>(result.spaces_tried));
  w.key("designs").begin_array();
  for (const auto& d : result.designs) {
    w.begin_object();
    w.key("pi").value(d.t.schedule());
    w.key("time").value(d.total_time);
    w.key("processors").value(d.processors);
    w.key("max_wire").value(d.max_wire);
    w.end_object();
  }
  w.end_array();
  return result.designs.empty() ? 1 : 0;
}

SimulateOutcome run_simulate(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;
  SimulateOutcome outcome;
  outcome.plan = cache.get_or_compose(request);
  if (!outcome.plan->has_mapping()) return outcome;
  outcome.feasible = true;

  const core::Workload workload =
      core::make_safe_workload(outcome.plan->model, request.p, request.expansion, params.seed);
  const core::OperandFn xf = workload.x_fn();
  const core::OperandFn yf = workload.y_fn();
  outcome.run = pipeline::run_plan(*outcome.plan, xf, yf,
                                   pipeline::RunOptions{request.threads, request.memory});
  const auto ref = core::evaluate_word_reference(outcome.plan->model, xf, yf);
  bool ok = !outcome.run.z.empty();
  for (const auto& [j, v] : outcome.run.z) {
    const auto it = ref.find(j);
    if (it == ref.end()) {
      ++outcome.missing_reference;
      ok = false;
      continue;
    }
    ok = ok && v == it->second;
  }
  outcome.correct = ok;
  return outcome;
}

int emit_simulate_json(JsonWriter& w, const ActionParams& params,
                       const SimulateOutcome& outcome) {
  const sim::SimulationStats& stats = outcome.run.stats;
  w.key("correct").value(outcome.correct);
  w.key("missing_reference").value(outcome.missing_reference);
  w.key("cycles").value(stats.cycles);
  w.key("processors").value(stats.pe_count);
  w.key("computations").value(stats.computations);
  w.key("utilization").value(stats.pe_utilization);
  w.key("memory").value(memory_name(params.request.memory));
  w.key("peak_live_slots").value(stats.peak_live_slots);
  w.key("pi").value(outcome.plan->t->schedule());
  return outcome.correct ? 0 : 1;
}

BatchOutcome run_batch_action(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;
  BatchOutcome outcome;
  outcome.plan = cache.get_or_compose(request);
  if (!outcome.plan->has_mapping()) return outcome;
  outcome.feasible = true;

  // One seeded workload per batch item (seed, seed+1, ...), loaded
  // fully before any OperandFn is taken: Workload::x_fn captures the
  // workload's table, so the vector must not reallocate afterwards.
  std::vector<core::Workload> workloads;
  workloads.reserve(static_cast<std::size_t>(params.batch));
  for (math::Int i = 0; i < params.batch; ++i) {
    workloads.push_back(core::make_safe_workload(outcome.plan->model, request.p,
                                                 request.expansion,
                                                 params.seed + static_cast<std::uint64_t>(i)));
  }
  std::vector<pipeline::BatchItem> items;
  items.reserve(workloads.size());
  for (const core::Workload& load : workloads) {
    items.push_back(pipeline::BatchItem{load.x_fn(), load.y_fn()});
  }

  pipeline::BatchOptions options;
  options.threads = request.threads;
  options.memory = request.memory;
  options.sliced = params.sliced;
  options.compiled = params.compiled;
  options.lane_width = params.lanes;
  outcome.batch = pipeline::run_batch(cache, request, items, options);

  bool ok = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto ref = core::evaluate_word_reference(outcome.plan->model, items[i].x, items[i].y);
    const pipeline::PlanRunResult& run = outcome.batch.results[i];
    bool item_ok = !run.z.empty();
    for (const auto& [j, v] : run.z) {
      const auto it = ref.find(j);
      item_ok = item_ok && it != ref.end() && v == it->second;
    }
    ok = ok && item_ok;
  }
  outcome.correct = ok;
  return outcome;
}

int emit_batch_json(JsonWriter& w, const ActionParams& params, const BatchOutcome& outcome) {
  const sim::SimulationStats& stats = outcome.batch.results.front().stats;
  w.key("action").value("batch");
  w.key("kernel").value(params.request.kernel.name);
  w.key("p").value(params.request.p);
  w.key("batch").value(params.batch);
  w.key("correct").value(outcome.correct);
  w.key("sliced").begin_object();
  w.key("mode").value(pipeline::to_string(params.sliced));
  w.key("compiled").value(pipeline::to_string(params.compiled));
  w.key("lanes").value(static_cast<std::int64_t>(params.lanes));
  w.key("compiled_groups").value(outcome.batch.compiled_groups);
  w.key("compiled_items").value(outcome.batch.compiled_items);
  w.key("groups").value(outcome.batch.sliced_groups);
  w.key("sliced_items").value(outcome.batch.sliced_items);
  w.key("scalar_items").value(outcome.batch.scalar_items);
  w.end_object();
  w.key("cycles_per_pass").value(stats.cycles);
  w.key("processors").value(stats.pe_count);
  w.key("utilization").value(stats.pe_utilization);
  w.key("memory").value(memory_name(params.request.memory));
  w.key("peak_live_slots").value(stats.peak_live_slots);
  w.key("pi").value(outcome.plan->t->schedule());
  return outcome.correct ? 0 : 1;
}

CampaignOutcome run_fault_campaign(pipeline::PlanCache& cache, const ActionParams& params) {
  pipeline::DesignRequest request = params.request;
  request.mapping = pipeline::MappingStrategy::kAuto;
  CampaignOutcome outcome;
  outcome.plan = cache.get_or_compose(request);
  if (!outcome.plan->has_mapping()) return outcome;
  outcome.feasible = true;

  const core::Workload workload =
      core::make_safe_workload(outcome.plan->model, request.p, request.expansion, params.seed);
  pipeline::CampaignOptions options = params.campaign;
  options.seed = params.seed;
  outcome.result =
      pipeline::run_campaign(cache, request, workload.x_fn(), workload.y_fn(), options);
  return outcome;
}

int emit_campaign_json(JsonWriter& w, const ActionParams& params,
                       const CampaignOutcome& outcome) {
  w.key("action").value("fault-campaign");
  w.key("kernel").value(params.request.kernel.name);
  w.key("p").value(params.request.p);
  w.key("seed").value(params.seed);
  w.key("pi").value(outcome.plan->t->schedule());
  w.key("campaign");
  outcome.result.write_json(w);
  return 0;
}

}  // namespace bitlevel::serve
