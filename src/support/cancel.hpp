// Cooperative cancellation and deadlines.
//
// A CancelToken is a cheap, copyable handle to shared cancellation
// state: a manual flag plus an optional monotonic-clock deadline.
// Long-running executions poll it at their natural barriers only —
// wavefront-pass, lane-group, tile-shard and campaign-cell boundaries
// — so a cancelled run either completes a barrier or throws
// DeadlineExceededError there; partial state never escapes, because
// the throw unwinds before any result object is returned. The set of
// points where cancellation CAN fire is therefore deterministic even
// though wall-clock decides which one fires.
//
// A default-constructed token is null: it can never cancel and every
// check reduces to one pointer test, so the clean path stays
// bit-identical to a build without the feature.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "support/error.hpp"

namespace bitlevel {

/// A run exceeded its deadline (or was cancelled) and stopped at a
/// cooperative boundary. The serve layer maps this to the structured,
/// retryable "deadline_exceeded" protocol error.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what) : Error(what) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Null token: never cancelled, checks cost one pointer test.
  CancelToken() = default;

  /// A token cancelled only by an explicit cancel() call.
  static CancelToken manual();

  /// A token that expires `ms` milliseconds from now.
  static CancelToken with_deadline_ms(std::int64_t ms);

  /// A token that expires at an absolute monotonic-clock instant —
  /// for deadlines anchored at request ARRIVAL rather than at the
  /// start of execution.
  static CancelToken with_deadline_at(Clock::time_point at);

  /// True when this token can ever cancel (non-null).
  bool valid() const { return state_ != nullptr; }

  /// Request cancellation (thread-safe; no-op on a null token).
  void cancel() const;

  /// Poll: manually cancelled, or the deadline has passed.
  bool cancelled() const;

  /// Throw DeadlineExceededError naming `site` when cancelled. The
  /// only way executions consume the token — every check site is a
  /// safe boundary by construction.
  void check(const char* site) const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
  };

  std::shared_ptr<State> state_;
};

}  // namespace bitlevel
