// Lightweight text formatting helpers used by the pretty-printers of the
// math / ir / mapping libraries and by the benchmark harnesses that
// regenerate the paper's tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bitlevel {

/// Render a vector of integers as "[a, b, c]".
std::string format_vector(const std::vector<std::int64_t>& v);

/// Render a row-major matrix as an aligned multi-line block, e.g.
///   [  1  0  1 ]
///   [  0  1 -1 ]
/// `rows`/`cols` describe the shape of `data` (rows*cols entries).
std::string format_matrix(const std::vector<std::int64_t>& data, std::size_t rows,
                          std::size_t cols);

/// A minimal fixed-column text table used by bench binaries to print the
/// rows of the paper's evaluation (who wins, by what factor, where).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bitlevel
