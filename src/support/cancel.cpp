#include "support/cancel.hpp"

#include <string>

namespace bitlevel {

CancelToken CancelToken::manual() {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

CancelToken CancelToken::with_deadline_ms(std::int64_t ms) {
  return with_deadline_at(Clock::now() + std::chrono::milliseconds(ms));
}

CancelToken CancelToken::with_deadline_at(Clock::time_point at) {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  token.state_->has_deadline = true;
  token.state_->deadline = at;
  return token;
}

void CancelToken::cancel() const {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool CancelToken::cancelled() const {
  if (state_ == nullptr) {
    return false;
  }
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    return true;
  }
  return state_->has_deadline && Clock::now() >= state_->deadline;
}

void CancelToken::check(const char* site) const {
  if (cancelled()) {
    throw DeadlineExceededError(std::string("deadline exceeded at ") + site);
  }
}

}  // namespace bitlevel
