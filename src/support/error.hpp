// Error handling primitives shared by every bitlevel library.
//
// The library reports contract violations and domain errors through
// exceptions derived from bitlevel::Error so callers can distinguish
// "you passed a malformed index set" from a std::logic_error deep in the
// standard library.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace bitlevel {

/// Base class for all errors raised by the bitlevel libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad dimension, empty
/// index set, non-coprime mapping row, ...).
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An arithmetic operation would overflow the fixed-width integer type
/// used by the integer linear-algebra kernels.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// A requested object does not exist (no solution to a Diophantine
/// system, no feasible K matrix, ...). Most APIs return std::optional
/// instead; this is thrown by the "checked" convenience wrappers.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view cond, std::string_view file, int line,
                                     std::string_view message);
}  // namespace detail

}  // namespace bitlevel

/// Check a documented precondition; throws bitlevel::PreconditionError
/// with source location when violated. Unlike assert() this is active in
/// all build types: the library is used to *verify* architectures, so
/// silent undefined behaviour is never acceptable.
#define BL_REQUIRE(cond, message)                                                  \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      ::bitlevel::detail::throw_precondition(#cond, __FILE__, __LINE__, (message)); \
    }                                                                              \
  } while (false)
