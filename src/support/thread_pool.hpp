// Shared work-scheduling layer for the embarrassingly parallel loops.
//
// The simulator executes every event of one schedule cycle (a Π
// hyperplane) independently, and the schedule search sweeps a (2b+1)^n
// odometer of candidate Π rows whose feasibility checks never interact.
// Both fan out through this fixed worker pool.
//
// Determinism contract: parallel_for splits [begin, end) into `chunks`
// contiguous ranges whose boundaries depend only on (chunks, end-begin)
// — never on which worker runs which chunk or in what order. Callers
// that accumulate per-chunk results and merge them in chunk-index order
// therefore produce bit-identical output for any pool size, including
// the inline serial path. When a chunk body throws, every other chunk
// still runs to completion and the exception from the lowest chunk
// index is rethrown — again independent of scheduling.
//
// Nesting: a parallel_for issued from inside a chunk body (on a worker
// or on the caller thread while it participates) runs inline and
// serially, so composed layers (explore -> search_schedules ->
// Machine::run) cannot deadlock or oversubscribe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bitlevel::support {

/// Fixed pool of worker threads executing blocking parallel_for calls.
class ThreadPool {
 public:
  /// A pool serving up to `threads` concurrent lanes (the caller counts
  /// as one, so `threads - 1` workers are spawned). threads >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes available (workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Chunk body: (chunk index, chunk begin, chunk end).
  using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Split [begin, end) into `chunks` deterministic contiguous ranges
  /// and run them across the workers plus the calling thread; blocks
  /// until every chunk finished. Rethrows the exception of the lowest
  /// failing chunk after all chunks ran.
  void parallel_for(std::size_t chunks, std::size_t begin, std::size_t end, const ChunkFn& body);

  /// Resolve a thread-count knob: knob >= 1 is taken literally; knob 0
  /// means the BITLEVEL_THREADS environment variable if set (and >= 1),
  /// else std::thread::hardware_concurrency(), else 1.
  static std::size_t resolve_threads(int knob);

  /// Process-wide pool, lazily constructed with resolve_threads(0)
  /// lanes. Callers requesting more chunks than lanes still get every
  /// chunk executed (lanes loop over the remaining chunks).
  static ThreadPool& shared();

  /// True while the current thread is executing a chunk body; nested
  /// parallel_for calls detect this and run inline.
  static bool in_worker();

 private:
  struct Job {
    std::size_t chunks = 0;
    std::size_t begin = 0;
    std::size_t items = 0;
    const ChunkFn* body = nullptr;
    std::uint64_t id = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::vector<std::exception_ptr> errors;
  };

  void worker_loop();
  void run_chunks(Job& job);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers wait for a job.
  std::condition_variable done_cv_;  ///< The caller waits for completion.
  std::shared_ptr<Job> job_;         ///< Current job (one at a time).
  std::uint64_t next_job_id_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bitlevel::support
