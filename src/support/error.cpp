#include "support/error.hpp"

#include <sstream>

namespace bitlevel::detail {

void throw_precondition(std::string_view cond, std::string_view file, int line,
                        std::string_view message) {
  std::ostringstream os;
  os << "precondition violated: " << message << " [" << cond << " at " << file << ":" << line
     << "]";
  throw PreconditionError(os.str());
}

}  // namespace bitlevel::detail
