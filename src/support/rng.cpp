#include "support/rng.hpp"

// Header-only; this translation unit exists so the support library has a
// stable archive even when only rng.hpp is used.
