#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"

namespace bitlevel::support {

namespace {
thread_local bool tl_in_chunk = false;

/// RAII guard marking the current thread as executing chunk bodies.
struct ChunkScope {
  bool previous;
  ChunkScope() : previous(tl_in_chunk) { tl_in_chunk = true; }
  ~ChunkScope() { tl_in_chunk = previous; }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  BL_REQUIRE(threads >= 1, "a thread pool needs at least the calling thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker() { return tl_in_chunk; }

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_->id != seen); });
    if (stop_) return;
    // Hold a reference so the job outlives the caller's stack frame even
    // if this worker is the last to touch it.
    std::shared_ptr<Job> job = job_;
    seen = job->id;
    lock.unlock();
    run_chunks(*job);
    job.reset();
    lock.lock();
  }
}

void ThreadPool::run_chunks(Job& job) {
  ChunkScope scope;
  while (true) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    const std::size_t lo = job.begin + c * job.items / job.chunks;
    const std::size_t hi = job.begin + (c + 1) * job.items / job.chunks;
    try {
      (*job.body)(c, lo, hi);
    } catch (...) {
      job.errors[c] = std::current_exception();
    }
    // acq_rel so the caller's acquire read of the final count sees every
    // chunk's writes (each fetch_add extends the release sequence).
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
      return;  // all chunks handed out; nothing left to grab
    }
  }
}

void ThreadPool::parallel_for(std::size_t chunks, std::size_t begin, std::size_t end,
                              const ChunkFn& body) {
  if (end <= begin) return;
  const std::size_t items = end - begin;
  chunks = std::min(std::max<std::size_t>(chunks, 1), items);

  // Serial path: one chunk, no workers, or a nested call from inside a
  // chunk body (running inline keeps composed layers deadlock-free).
  if (chunks == 1 || workers_.empty() || tl_in_chunk) {
    ChunkScope scope;
    std::exception_ptr first;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * items / chunks;
      const std::size_t hi = begin + (c + 1) * items / chunks;
      try {
        body(c, lo, hi);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  auto job = std::make_shared<Job>();
  job->chunks = chunks;
  job->begin = begin;
  job->items = items;
  job->body = &body;
  job->errors.assign(chunks, nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->id = ++next_job_id_;
    job_ = job;
  }
  work_cv_.notify_all();
  run_chunks(*job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == chunks; });
    job_ = nullptr;
  }
  for (const auto& error : job->errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::resolve_threads(int knob) {
  if (knob >= 1) return static_cast<std::size_t>(knob);
  if (const char* env = std::getenv("BITLEVEL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_threads(0));
  return pool;
}

}  // namespace bitlevel::support
