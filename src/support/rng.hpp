// Deterministic pseudo-random number generation for tests and workload
// generators. All randomized experiments in this repository are seeded,
// so every table and figure regenerates bit-identically.
#pragma once

#include <cstdint>
#include <limits>

namespace bitlevel {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator.
/// Used to seed Xoshiro256** and directly wherever a few dozen draws
/// suffice. Reference: Steele, Lea, Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// SplitMix64 finalizer as a stateless hash combiner. The fault-injection
/// layer (src/faults) derives every per-site decision by folding the
/// campaign seed with the site's coordinates through this function, so a
/// decision depends only on (seed, site) — never on execution order,
/// thread count, or memory mode.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + 0x9e3779b97f4a7c15ULL + v * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Map a 64-bit hash to a double in [0, 1) using the top 53 bits, for
/// comparing against a probability threshold.
inline double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Xoshiro256**: the repository-wide deterministic generator.
/// Satisfies the UniformRandomBitGenerator concept so it composes with
/// <random> distributions when needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Uniform nonnegative value representable in `bits` bits: [0, 2^bits).
  std::uint64_t bits(int bits) {
    if (bits >= 64) return (*this)();
    return (*this)() & ((1ULL << bits) - 1);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace bitlevel
