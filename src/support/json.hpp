// The hardened JSON surface: a minimal writer for the CLI tool's
// machine-readable output, a strict syntax checker, and a strict
// parser for the design-service request protocol. Written values are
// emitted in insertion order; strings are escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace bitlevel {

/// Streaming JSON builder. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("cycles").value(19);
///   w.key("deps").begin_array(); w.value("x"); w.end_array();
///   w.end_object();
///   std::string out = w.str();
/// Nesting errors (value without key inside an object, unbalanced
/// begin/end) throw PreconditionError.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  /// Finite doubles are emitted round-trippably (shortest %g that
  /// parses back equal) with a '.' decimal separator in any locale;
  /// NaN and the infinities become null (JSON has no literal for them).
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Convenience: an array of integers in one call.
  JsonWriter& value(const std::vector<std::int64_t>& v);

  /// An explicit JSON null.
  JsonWriter& null_value();

  /// Embed a pre-serialized complete JSON document as the next value
  /// (for response envelopes wrapping an already-built payload).
  /// Requires json_valid(json); throws PreconditionError otherwise.
  JsonWriter& raw_value(const std::string& json);

  /// The finished document; all scopes must be closed.
  std::string str() const;

  /// Escape a string per JSON rules (quotes not included).
  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void before_value();
  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// Strict RFC 8259 syntax check of a complete JSON document: exactly
/// one value with nothing but whitespace around it. Used by the CLI
/// smoke tests to validate --json output; not a parser (no DOM).
bool json_valid(const std::string& text);

/// A malformed document handed to json_parse. The message names the
/// byte offset and what the parser expected, so servers can return it
/// verbatim as a structured parse error.
class JsonParseError : public Error {
 public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

/// One parsed JSON value. A deliberately small DOM for the
/// newline-delimited request protocol: requests are flat objects of a
/// few members, so a tagged struct beats a variant hierarchy.
struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  std::int64_t int_v = 0;   ///< Valid when kind == kInt.
  double double_v = 0.0;    ///< Valid when kind == kDouble.
  std::string string_v;     ///< Valid when kind == kString.
  std::vector<JsonValue> array_v;
  /// Members in document order; duplicate keys are a parse error.
  std::vector<std::pair<std::string, JsonValue>> object_v;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_int() const { return kind == Kind::kInt; }
  bool is_number() const { return kind == Kind::kInt || kind == Kind::kDouble; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Numeric value as a double (kInt widens).
  double as_double() const;

  /// Object member by key, or nullptr. Requires kind == kObject.
  const JsonValue* find(const std::string& key) const;
};

/// Strict RFC 8259 parser of one complete document: exactly one value,
/// whitespace-only padding, nesting capped, duplicate object keys
/// rejected, strings validated as well-formed UTF-8, numbers required
/// to fit std::int64_t (integral) or a finite double. Throws
/// JsonParseError naming offset and cause on any violation.
JsonValue json_parse(const std::string& text);

/// The raw text of a top-level member of a JSON object document — the
/// exact byte span of its value, no re-serialization. Empty string when
/// the document is not a valid object or the key is absent. Lets
/// clients lift a nested payload out of a response envelope with
/// byte fidelity.
std::string json_member_text(const std::string& doc, const std::string& key);

}  // namespace bitlevel
