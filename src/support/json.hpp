// A minimal JSON writer (no parsing, no DOM) for the CLI tool's
// machine-readable output. Values are emitted in insertion order;
// strings are escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bitlevel {

/// Streaming JSON builder. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("cycles").value(19);
///   w.key("deps").begin_array(); w.value("x"); w.end_array();
///   w.end_object();
///   std::string out = w.str();
/// Nesting errors (value without key inside an object, unbalanced
/// begin/end) throw PreconditionError.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  /// Finite doubles are emitted round-trippably (shortest %g that
  /// parses back equal) with a '.' decimal separator in any locale;
  /// NaN and the infinities become null (JSON has no literal for them).
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Convenience: an array of integers in one call.
  JsonWriter& value(const std::vector<std::int64_t>& v);

  /// The finished document; all scopes must be closed.
  std::string str() const;

  /// Escape a string per JSON rules (quotes not included).
  static std::string escape(const std::string& s);

 private:
  enum class Scope { Object, Array };
  void before_value();
  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// Strict RFC 8259 syntax check of a complete JSON document: exactly
/// one value with nothing but whitespace around it. Used by the CLI
/// smoke tests to validate --json output; not a parser (no DOM).
bool json_valid(const std::string& text);

}  // namespace bitlevel
