#include "support/json.hpp"

#include <cctype>
#include <cerrno>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"

namespace bitlevel {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    BL_REQUIRE(out_.empty(), "only one top-level JSON value allowed");
    return;
  }
  if (scopes_.back() == Scope::Object) {
    BL_REQUIRE(pending_key_, "object members need a key before the value");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object && !pending_key_,
             "end_object without matching begin_object");
  out_ += '}';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Array,
             "end_array without matching begin_array");
  out_ += ']';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object && !pending_key_,
             "key() is only valid directly inside an object");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  // JSON has no literal for NaN or the infinities (RFC 8259 §6).
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // Shortest representation that parses back to the same double.
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  std::string number(buf);
  // snprintf honors the C locale's decimal separator; JSON demands '.'.
  const char* dp = std::localeconv()->decimal_point;
  if (dp != nullptr && dp[0] != '\0' && std::strcmp(dp, ".") != 0) {
    const auto at = number.find(dp);
    if (at != std::string::npos) number.replace(at, std::strlen(dp), ".");
  }
  out_ += number;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<std::int64_t>& v) {
  begin_array();
  for (std::int64_t x : v) value(x);
  return end_array();
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  BL_REQUIRE(json_valid(json), "raw_value requires a complete valid JSON document");
  before_value();
  out_ += json;
  return *this;
}

std::string JsonWriter::str() const {
  BL_REQUIRE(scopes_.empty(), "unbalanced JSON scopes at str()");
  return out_;
}

namespace {

// Recursive-descent syntax checker over RFC 8259 grammar. No DOM, no
// allocation; `depth` bounds nesting so adversarial input cannot blow
// the stack.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool document() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return at_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  char peek() const { return at_ < s_.size() ? s_[at_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++at_;
    return true;
  }
  void skip_ws() {
    while (at_ < s_.size() &&
           (s_[at_] == ' ' || s_[at_] == '\t' || s_[at_] == '\n' || s_[at_] == '\r')) {
      ++at_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(at_, len, word) != 0) return false;
    at_ += len;
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (at_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[at_]);
      if (c == '"') {
        ++at_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++at_;
        const char e = peek();
        if (e == 'u') {
          ++at_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
            ++at_;
          }
        } else if (std::strchr("\"\\/bfnrt", e) != nullptr && e != '\0') {
          ++at_;
        } else {
          return false;
        }
      } else {
        ++at_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++at_;
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      ++at_;
      if (peek() == '+' || peek() == '-') ++at_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object(int depth) {
    ++at_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array(int depth) {
    ++at_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t at_ = 0;
};

// Recursive-descent parser sharing the checker's grammar but building
// the small DOM and reporting *why* a document is malformed. Hardened
// for server input: nesting capped, duplicate keys rejected, strings
// must be well-formed UTF-8 (raw and \u-escaped), numbers must fit
// int64 or a finite double.
class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  JsonValue document() {
    skip_ws();
    JsonValue v = value(0);
    skip_ws();
    if (at_ != s_.size()) fail("trailing characters after the document");
    return v;
  }

  /// Scan the top-level object for `key` and report the byte span of
  /// its raw value text. False when absent or the document is not an
  /// object (malformed documents throw).
  bool member_span(const std::string& key, std::size_t* begin, std::size_t* end) {
    skip_ws();
    if (peek() != '{') return false;
    ++at_;
    skip_ws();
    if (eat('}')) return false;
    while (true) {
      skip_ws();
      const std::string name = string();
      skip_ws();
      if (!eat(':')) fail("expected ':' after object key");
      skip_ws();
      const std::size_t value_begin = at_;
      value(1);
      if (name == key) {
        *begin = value_begin;
        *end = at_;
        return true;
      }
      skip_ws();
      if (eat('}')) return false;
      if (!eat(',')) fail("expected ',' or '}' in object");
    }
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("invalid JSON at byte " + std::to_string(at_) + ": " + what);
  }

  char peek() const { return at_ < s_.size() ? s_[at_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++at_;
    return true;
  }
  void skip_ws() {
    while (at_ < s_.size() &&
           (s_[at_] == ' ' || s_[at_] == '\t' || s_[at_] == '\n' || s_[at_] == '\r')) {
      ++at_;
    }
  }

  void literal(const char* word) {
    if (s_.compare(at_, std::strlen(word), word) != 0) {
      fail(std::string("expected '") + word + "'");
    }
    at_ += std::strlen(word);
  }

  unsigned hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      if (!std::isxdigit(static_cast<unsigned char>(c))) fail("expected 4 hex digits after \\u");
      code = code * 16 +
             static_cast<unsigned>(c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
      ++at_;
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  /// Validate and consume one raw (non-escaped) UTF-8 sequence.
  void raw_utf8(std::string& out) {
    const unsigned char lead = static_cast<unsigned char>(s_[at_]);
    int follow;
    unsigned cp, min_cp;
    if (lead < 0x80) {
      out += static_cast<char>(lead);
      ++at_;
      return;
    } else if ((lead & 0xE0) == 0xC0) {
      follow = 1, cp = lead & 0x1F, min_cp = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      follow = 2, cp = lead & 0x0F, min_cp = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      follow = 3, cp = lead & 0x07, min_cp = 0x10000;
    } else {
      fail("invalid UTF-8 lead byte in string");
    }
    const std::size_t start = at_;
    ++at_;
    for (int i = 0; i < follow; ++i, ++at_) {
      const unsigned char c =
          at_ < s_.size() ? static_cast<unsigned char>(s_[at_]) : 0;
      if ((c & 0xC0) != 0x80) fail("truncated UTF-8 sequence in string");
      cp = (cp << 6) | (c & 0x3F);
    }
    if (cp < min_cp || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
      fail("invalid UTF-8 sequence in string");
    }
    out.append(s_, start, at_ - start);
  }

  std::string string() {
    if (!eat('"')) fail("expected '\"'");
    std::string out;
    while (true) {
      if (at_ >= s_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(s_[at_]);
      if (c == '"') {
        ++at_;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        raw_utf8(out);
        continue;
      }
      ++at_;
      const char e = peek();
      ++at_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xDC00 && cp <= 0xDFFF) fail("unpaired low surrogate");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!eat('\\') || !eat('u')) fail("high surrogate must be followed by \\u low surrogate");
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = at_;
    bool integral = true;
    eat('-');
    if (!eat('0')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected a number");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++at_;
    }
    if (eat('.')) {
      integral = false;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected digits after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++at_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++at_;
      if (peek() == '+' || peek() == '-') ++at_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected exponent digits");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++at_;
    }
    const std::string token = s_.substr(start, at_ - start);
    JsonValue v;
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE) fail("integer out of int64 range");
      v.kind = JsonValue::Kind::kInt;
      v.int_v = static_cast<std::int64_t>(parsed);
    } else {
      const double parsed = std::strtod(token.c_str(), nullptr);
      if (errno == ERANGE || !std::isfinite(parsed)) fail("number out of double range");
      v.kind = JsonValue::Kind::kDouble;
      v.double_v = parsed;
    }
    return v;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 256");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        ++at_;
        v.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (eat('}')) return v;
        while (true) {
          skip_ws();
          std::string key = string();
          for (const auto& [existing, unused] : v.object_v) {
            if (existing == key) fail("duplicate object key '" + key + "'");
          }
          skip_ws();
          if (!eat(':')) fail("expected ':' after object key");
          v.object_v.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (eat('}')) return v;
          if (!eat(',')) fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++at_;
        v.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (eat(']')) return v;
        while (true) {
          v.array_v.push_back(value(depth + 1));
          skip_ws();
          if (eat(']')) return v;
          if (!eat(',')) fail("expected ',' or ']' in array");
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string_v = string();
        return v;
      case 't':
        literal("true");
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = true;
        return v;
      case 'f':
        literal("false");
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        literal("null");
        return v;
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t at_ = 0;
};

}  // namespace

bool json_valid(const std::string& text) { return JsonChecker(text).document(); }

double JsonValue::as_double() const {
  BL_REQUIRE(is_number(), "as_double on a non-numeric JSON value");
  return kind == Kind::kInt ? static_cast<double>(int_v) : double_v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  BL_REQUIRE(is_object(), "find on a non-object JSON value");
  for (const auto& [name, member] : object_v) {
    if (name == key) return &member;
  }
  return nullptr;
}

JsonValue json_parse(const std::string& text) { return JsonParser(text).document(); }

std::string json_member_text(const std::string& doc, const std::string& key) {
  try {
    std::size_t begin = 0, end = 0;
    if (JsonParser(doc).member_span(key, &begin, &end)) return doc.substr(begin, end - begin);
  } catch (const JsonParseError&) {
    // Malformed document: treated as "member absent".
  }
  return std::string();
}

}  // namespace bitlevel
