#include "support/json.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace bitlevel {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    BL_REQUIRE(out_.empty(), "only one top-level JSON value allowed");
    return;
  }
  if (scopes_.back() == Scope::Object) {
    BL_REQUIRE(pending_key_, "object members need a key before the value");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object && !pending_key_,
             "end_object without matching begin_object");
  out_ += '}';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Array,
             "end_array without matching begin_array");
  out_ += ']';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object && !pending_key_,
             "key() is only valid directly inside an object");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<std::int64_t>& v) {
  begin_array();
  for (std::int64_t x : v) value(x);
  return end_array();
}

std::string JsonWriter::str() const {
  BL_REQUIRE(scopes_.empty(), "unbalanced JSON scopes at str()");
  return out_;
}

}  // namespace bitlevel
