#include "support/json.hpp"

#include <cctype>
#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"

namespace bitlevel {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    BL_REQUIRE(out_.empty(), "only one top-level JSON value allowed");
    return;
  }
  if (scopes_.back() == Scope::Object) {
    BL_REQUIRE(pending_key_, "object members need a key before the value");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object && !pending_key_,
             "end_object without matching begin_object");
  out_ += '}';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Array,
             "end_array without matching begin_array");
  out_ += ']';
  scopes_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  BL_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::Object && !pending_key_,
             "key() is only valid directly inside an object");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  // JSON has no literal for NaN or the infinities (RFC 8259 §6).
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // Shortest representation that parses back to the same double.
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  std::string number(buf);
  // snprintf honors the C locale's decimal separator; JSON demands '.'.
  const char* dp = std::localeconv()->decimal_point;
  if (dp != nullptr && dp[0] != '\0' && std::strcmp(dp, ".") != 0) {
    const auto at = number.find(dp);
    if (at != std::string::npos) number.replace(at, std::strlen(dp), ".");
  }
  out_ += number;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<std::int64_t>& v) {
  begin_array();
  for (std::int64_t x : v) value(x);
  return end_array();
}

std::string JsonWriter::str() const {
  BL_REQUIRE(scopes_.empty(), "unbalanced JSON scopes at str()");
  return out_;
}

namespace {

// Recursive-descent syntax checker over RFC 8259 grammar. No DOM, no
// allocation; `depth` bounds nesting so adversarial input cannot blow
// the stack.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool document() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return at_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  char peek() const { return at_ < s_.size() ? s_[at_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++at_;
    return true;
  }
  void skip_ws() {
    while (at_ < s_.size() &&
           (s_[at_] == ' ' || s_[at_] == '\t' || s_[at_] == '\n' || s_[at_] == '\r')) {
      ++at_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(at_, len, word) != 0) return false;
    at_ += len;
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (at_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[at_]);
      if (c == '"') {
        ++at_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++at_;
        const char e = peek();
        if (e == 'u') {
          ++at_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
            ++at_;
          }
        } else if (std::strchr("\"\\/bfnrt", e) != nullptr && e != '\0') {
          ++at_;
        } else {
          return false;
        }
      } else {
        ++at_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++at_;
    return true;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (peek() == 'e' || peek() == 'E') {
      ++at_;
      if (peek() == '+' || peek() == '-') ++at_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object(int depth) {
    ++at_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array(int depth) {
    ++at_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t at_ = 0;
};

}  // namespace

bool json_valid(const std::string& text) { return JsonChecker(text).document(); }

}  // namespace bitlevel
