#include "support/format.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace bitlevel {

std::string format_vector(const std::vector<std::int64_t>& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << v[i];
  }
  os << ']';
  return os.str();
}

std::string format_matrix(const std::vector<std::int64_t>& data, std::size_t rows,
                          std::size_t cols) {
  BL_REQUIRE(data.size() == rows * cols, "matrix data size must equal rows*cols");
  std::vector<std::string> cells(data.size());
  std::size_t width = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cells[i] = std::to_string(data[i]);
    width = std::max(width, cells[i].size());
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows; ++r) {
    os << '[';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& s = cells[r * cols + c];
      os << ' ' << std::string(width - s.size(), ' ') << s;
    }
    os << " ]";
    if (r + 1 != rows) os << '\n';
  }
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BL_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  BL_REQUIRE(cells.size() == headers_.size(), "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  std::ostringstream os;
  emit_row(os, headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace bitlevel
