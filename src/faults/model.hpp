// Fault models for the systolic simulator.
//
// A FaultModel describes one hardware failure scenario: which physical
// misbehaviour (kind), how often it strikes (rate), and the campaign
// seed that makes every injection decision reproducible. The injector
// (faults/injector.hpp) derives each decision as a pure hash of
// (seed, site), never from execution order, so a seeded campaign is
// bit-identical across thread counts and memory modes.
//
// The kinds mirror the classic systolic-array failure taxonomy:
//   - persistent PE faults (a manufacturing or wear-out defect in one
//     processing element): stuck-at-0 / stuck-at-1 on an output
//     channel, or a completely dead PE emitting zeros;
//   - transient link faults (noise on a wire): a bit flip on one
//     transmission, or a whole bundle dropped in flight.
// Persistent faults follow the PE across retries — recovering from
// them requires remapping the computation onto a spare PE — while
// transient faults re-sample per attempt, so a simple re-execution
// usually clears them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bitlevel::faults {

/// The supported hardware failure scenarios.
enum class FaultKind {
  kStuckAt0,    ///< Persistent: one PE output channel reads 0 forever.
  kStuckAt1,    ///< Persistent: one PE output channel reads 1 forever.
  kBitFlip,     ///< Transient: one link transmission has a channel flipped.
  kDeadPe,      ///< Persistent: one PE emits an all-zero bundle.
  kDroppedHop,  ///< Transient: one link transmission arrives as all zeros.
};

/// True for faults tied to a PE (they persist across retries and need a
/// spare remap to clear); false for per-transmission transients.
bool is_persistent(FaultKind kind);

std::string to_string(FaultKind kind);

/// Parse a kind name ("stuck-at-0", "bit-flip", ...). Throws
/// NotFoundError listing the allowed names on anything else.
FaultKind parse_fault_kind(const std::string& name);

/// Every kind, in declaration order (campaign sweeps iterate this).
const std::vector<FaultKind>& all_fault_kinds();

/// One failure scenario, fully reproducible from its fields.
struct FaultModel {
  FaultKind kind = FaultKind::kBitFlip;
  /// Per-site fault probability: per PE for persistent kinds, per link
  /// transmission for transient kinds. Must lie in [0, 1].
  double rate = 0.0;
  std::uint64_t seed = 1;  ///< Campaign seed; same seed, same faults.
  /// Channel index the stuck-at / bit-flip kinds target (the compressor
  /// cell's partial-sum channel "z" by default).
  std::size_t channel = 2;
  /// Spare PEs available for remapping persistent faults during
  /// recovery. 0 = no spares: persistent faults degrade instead.
  int spares = 0;
  /// Bounded re-executions per suspect event (sim::FaultHooks contract);
  /// 0 = detect only.
  int max_retries = 2;

  /// Throws PreconditionError unless the fields are consistent.
  void validate() const;

  std::string to_string() const;
};

}  // namespace bitlevel::faults
