// Deterministic fault injection for sim::Machine.
//
// A FaultInjector turns a FaultModel into the sim::FaultHooks the
// machine calls at the produce/transmit boundaries. Every injection
// decision is a pure SplitMix64 hash of (campaign seed, site) — the
// site being the physical PE for persistent kinds and the
// (consumer point, column, attempt) transmission for transient kinds —
// so a seeded campaign replays bit-identically for every thread count
// and memory mode, and a transient fault re-samples on each recovery
// attempt while a persistent fault follows its PE until the injector
// remaps it to a spare.
//
// Detection uses an odd-parity channel convention: the executor
// appends one channel to the cell bundle and keeps the XOR of all
// channels' low bits equal to 1 (see set_parity). Any single-channel
// corruption breaks the invariant, and the all-zero bundles a dead PE
// or dropped transmission produce fail it too (even parity would pass
// them). The injector installs the matching bundle checks:
//   - persistent kinds: check_output (the wavefront monitor) — the
//     fault manifests in the produced bundle;
//   - transient kinds: check_input (the link monitor) — the consumer's
//     recomputed output parity is self-consistent, so only the arriving
//     copy betrays the corruption.
//
// Recovery protocol (driven by the machine's barrier loop):
//   attempt 0      — normal execution; faults strike.
//   attempt 1      — plain re-execution: clears transients (the hash
//                    re-samples), persistent faults strike again.
//   attempt >= 2   — the injector treats re-execution as remapped onto
//                    a spare PE when one is available (bounded by
//                    FaultModel::spares, granted once per PE in
//                    deterministic barrier order); without a spare the
//                    fault persists and the event degrades.
#pragma once

#include <memory>
#include <mutex>
#include <set>

#include "faults/model.hpp"
#include "math/int_mat.hpp"
#include "sim/machine.hpp"

namespace bitlevel::faults {

using math::Int;
using math::IntMat;
using math::IntVec;

/// Odd-parity convention over a channels-length bundle: the XOR of all
/// channels' low bits is 1. The last channel is the parity channel.
inline bool parity_ok(const Int* bundle, std::size_t channels) {
  Int acc = 0;
  for (std::size_t i = 0; i < channels; ++i) acc ^= bundle[i] & 1;
  return acc == 1;
}

/// Fill the last channel so parity_ok holds for the bundle.
inline void set_parity(Int* bundle, std::size_t channels) {
  Int par = 1;
  for (std::size_t i = 0; i + 1 < channels; ++i) par ^= bundle[i] & 1;
  bundle[channels - 1] = par;
}

/// Order-independent injection accounting (totals only; every counter
/// is the same for any execution interleaving of the same campaign).
struct InjectionStats {
  Int produce_faults = 0;    ///< Faulty-PE productions that went uncorrected.
  Int transmit_faults = 0;   ///< Link transmissions corrupted.
  Int spare_remaps = 0;      ///< Distinct faulty PEs remapped to a spare.
  Int spares_exhausted = 0;  ///< Distinct faulty PEs denied a spare.
};

/// Lives for the duration of one machine run and owns the hooks'
/// bookkeeping; keep it alive until run() returns.
class FaultInjector {
 public:
  /// `space` is the mapping's processor matrix S (index point -> PE),
  /// so persistent faults target physical PEs; `channels` is the full
  /// bundle width including the trailing parity channel. With
  /// `parity_checks` false the injector only corrupts (no detection,
  /// no recovery) — for measuring silent-corruption rates.
  FaultInjector(FaultModel model, IntMat space, std::size_t channels, bool parity_checks = true);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The hooks to install as sim::MachineConfig::faults. They reference
  /// this injector; it must outlive the run.
  const std::shared_ptr<const sim::FaultHooks>& hooks() const { return hooks_; }

  /// True when the model's hash marks this PE faulty (persistent kinds;
  /// always false for transient kinds). Pure; exposed for tests.
  bool pe_faulty(const IntVec& pe) const;

  InjectionStats stats() const;

  const FaultModel& model() const { return model_; }

 private:
  void produce(const IntVec& q, int attempt, Int* bundle);
  void transmit(const IntVec& q, std::size_t column, int attempt, Int* bundle);
  /// Grant `pe` a spare (at most once; bounded by model_.spares).
  /// Returns true when the PE is running on a spare.
  bool remapped_to_spare(const IntVec& pe);

  FaultModel model_;
  IntMat space_;
  std::size_t channels_;
  std::shared_ptr<const sim::FaultHooks> hooks_;

  mutable std::mutex mu_;
  InjectionStats stats_;
  std::set<IntVec> remapped_;  ///< PEs granted a spare.
  std::set<IntVec> denied_;    ///< PEs that asked after spares ran out.
};

}  // namespace bitlevel::faults
