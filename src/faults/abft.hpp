// Algorithm-based fault tolerance (ABFT) for the matmul arrays.
//
// Huang & Abraham's classic checksum scheme, applied at read-out: for
// Z = X * Y the row sums of Z must equal X times the column-summed Y
// and the column sums must equal the row-summed X times Y. Both
// identities are linear, so they hold exactly in the array's wraparound
// 64-bit arithmetic (sums mod 2^64), and any single corrupted read-out
// word breaks its row identity AND its column identity — the
// intersection localizes the suspect element. The checksums cost
// O(u^2) word operations on the host, nothing on the array.
//
// The check applies to matmul-shaped word-level models (the
// matmul / matmul_rect kernels: h1 = [0,1,0], h2 = [1,0,0],
// h3 = [0,0,1]); for any other model it reports supported = false and
// stays vacuously ok.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::faults {

using math::Int;
using math::IntVec;

/// Outcome of the checksum verification.
struct AbftReport {
  bool supported = false;  ///< Model is matmul-shaped; checks ran.
  bool ok = true;          ///< Every row and column identity held.
  Int rows_checked = 0;
  Int cols_checked = 0;
  std::vector<Int> row_failures;  ///< j1 values whose row identity failed.
  std::vector<Int> col_failures;  ///< j2 values whose column identity failed.
  /// Row x column intersections: the candidate corrupted Z elements
  /// ((j1, j2) pairs). A single corrupted word yields exactly one.
  std::vector<IntVec> suspects;

  std::string to_string() const;
};

/// Verify a run's accumulated read-out `z` (keyed by
/// accumulation-boundary word points, as pipeline::PlanRunResult::z)
/// against the checksummed operands. `x`/`y` are the same word operand
/// functions the run used.
AbftReport abft_check(const ir::WordLevelModel& word, const core::OperandFn& x,
                      const core::OperandFn& y, const std::map<IntVec, std::uint64_t>& z);

}  // namespace bitlevel::faults
