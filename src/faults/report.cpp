#include "faults/report.hpp"

#include <sstream>

#include "math/int_vec.hpp"

namespace bitlevel::faults {

void FaultReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("kind").value(faults::to_string(model.kind));
  w.key("rate").value(model.rate);
  w.key("seed").value(model.seed);
  w.key("channel").value(static_cast<std::int64_t>(model.channel));
  w.key("spares").value(model.spares);
  w.key("max_retries").value(model.max_retries);
  w.key("completed").value(completed);
  if (!completed) w.key("abort_reason").value(abort_reason);
  w.key("faults_detected").value(faults_detected);
  w.key("faults_recovered").value(faults_recovered);
  w.key("recovery_reexecutions").value(recovery_reexecutions);
  w.key("degraded_points").begin_array();
  for (const IntVec& q : degraded_points) w.value(q);
  w.end_array();
  w.key("injection").begin_object();
  w.key("produce_faults").value(injection.produce_faults);
  w.key("transmit_faults").value(injection.transmit_faults);
  w.key("spare_remaps").value(injection.spare_remaps);
  w.key("spares_exhausted").value(injection.spares_exhausted);
  w.end_object();
  w.key("abft").begin_object();
  w.key("supported").value(abft.supported);
  w.key("ok").value(abft.ok);
  w.key("row_failures").value(abft.row_failures);
  w.key("col_failures").value(abft.col_failures);
  w.key("suspects").begin_array();
  for (const IntVec& s : abft.suspects) w.value(s);
  w.end_array();
  w.end_object();
  w.key("corrupted_words").value(corrupted_words);
  w.key("silent_corruption").value(silent_corruption);
  w.end_object();
}

std::string FaultReport::to_string() const {
  std::ostringstream os;
  os << "fault run [" << model.to_string() << "]: ";
  if (!completed) {
    os << "ABORTED (" << abort_reason << "), ";
  }
  os << "detected " << faults_detected << ", recovered " << faults_recovered << " ("
     << recovery_reexecutions << " reexecutions), degraded " << degraded_points.size()
     << ", injected " << injection.produce_faults + injection.transmit_faults << " (remaps "
     << injection.spare_remaps << ", spares exhausted " << injection.spares_exhausted << "), "
     << abft.to_string() << ", corrupted words " << corrupted_words
     << (silent_corruption ? " [SILENT]" : "");
  return os.str();
}

}  // namespace bitlevel::faults
