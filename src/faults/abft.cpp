#include "faults/abft.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bitlevel::faults {

namespace {

bool matmul_shaped(const ir::WordLevelModel& word) {
  return word.dim() == 3 && word.h1.has_value() && word.h2.has_value() && word.h3.has_value() &&
         *word.h1 == IntVec{0, 1, 0} && *word.h2 == IntVec{1, 0, 0} && *word.h3 == IntVec{0, 0, 1};
}

}  // namespace

std::string AbftReport::to_string() const {
  if (!supported) return "abft: not applicable (model is not matmul-shaped)";
  std::ostringstream os;
  os << "abft: " << (ok ? "ok" : "FAILED") << " (" << rows_checked << " rows, " << cols_checked
     << " cols";
  if (!ok) {
    os << "; " << row_failures.size() << " row failures, " << col_failures.size()
       << " col failures, " << suspects.size() << " suspects";
  }
  os << ")";
  return os.str();
}

AbftReport abft_check(const ir::WordLevelModel& word, const core::OperandFn& x,
                      const core::OperandFn& y, const std::map<IntVec, std::uint64_t>& z) {
  AbftReport report;
  if (!matmul_shaped(word)) return report;
  report.supported = true;

  const IntVec& lo = word.domain.lower();
  const IntVec& hi = word.domain.upper();
  const Int k_last = hi[2];  // Accumulation boundary: the last j3 plane.

  // Operand words; the access pattern makes x independent of j2 and y
  // independent of j1 (h1/h2 pipelining), so evaluate at the canonical
  // representative.
  const auto xw = [&](Int j1, Int j3) { return x(IntVec{j1, lo[1], j3}); };
  const auto yw = [&](Int j2, Int j3) { return y(IntVec{lo[0], j2, j3}); };
  const auto zw = [&](Int j1, Int j2) {
    const auto it = z.find(IntVec{j1, j2, k_last});
    BL_REQUIRE(it != z.end(), "read-out is missing an accumulation-boundary word");
    return it->second;
  };

  // Column sums of Y and row sums of X over the reduction axis j3.
  // All arithmetic is uint64 wraparound: exact modulo 2^64, so the
  // identities below hold with equality on clean data.
  std::vector<std::uint64_t> cy, cx;
  for (Int j3 = lo[2]; j3 <= hi[2]; ++j3) {
    std::uint64_t sy = 0, sx = 0;
    for (Int j2 = lo[1]; j2 <= hi[1]; ++j2) sy += yw(j2, j3);
    for (Int j1 = lo[0]; j1 <= hi[0]; ++j1) sx += xw(j1, j3);
    cy.push_back(sy);
    cx.push_back(sx);
  }

  // Row identity: sum_j2 Z[j1, j2] == sum_j3 X[j1, j3] * CY[j3].
  for (Int j1 = lo[0]; j1 <= hi[0]; ++j1) {
    std::uint64_t lhs = 0, rhs = 0;
    for (Int j2 = lo[1]; j2 <= hi[1]; ++j2) lhs += zw(j1, j2);
    for (Int j3 = lo[2]; j3 <= hi[2]; ++j3) {
      rhs += xw(j1, j3) * cy[static_cast<std::size_t>(j3 - lo[2])];
    }
    ++report.rows_checked;
    if (lhs != rhs) report.row_failures.push_back(j1);
  }

  // Column identity: sum_j1 Z[j1, j2] == sum_j3 CX[j3] * Y[j2, j3].
  for (Int j2 = lo[1]; j2 <= hi[1]; ++j2) {
    std::uint64_t lhs = 0, rhs = 0;
    for (Int j1 = lo[0]; j1 <= hi[0]; ++j1) lhs += zw(j1, j2);
    for (Int j3 = lo[2]; j3 <= hi[2]; ++j3) {
      rhs += cx[static_cast<std::size_t>(j3 - lo[2])] * yw(j2, j3);
    }
    ++report.cols_checked;
    if (lhs != rhs) report.col_failures.push_back(j2);
  }

  for (const Int j1 : report.row_failures) {
    for (const Int j2 : report.col_failures) report.suspects.push_back(IntVec{j1, j2});
  }
  report.ok = report.row_failures.empty() && report.col_failures.empty();
  return report;
}

}  // namespace bitlevel::faults
