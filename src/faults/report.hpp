// Structured outcome of one faulty run — the "degrade gracefully"
// artifact: a campaign never aborts on a fault; anything the array
// could not recover lands here, machine-readable.
#pragma once

#include <string>
#include <vector>

#include "faults/abft.hpp"
#include "faults/injector.hpp"
#include "faults/model.hpp"
#include "support/json.hpp"

namespace bitlevel::faults {

/// Everything one faulty run reported: what was injected, what the
/// online monitors caught, what recovery fixed, what degraded, and what
/// the read-out checks concluded.
struct FaultReport {
  FaultModel model;

  /// False when the run threw mid-flight (a corrupted carry can violate
  /// the array's capacity precondition before any monitor sees it);
  /// the reason is recorded instead of propagating the exception.
  bool completed = true;
  std::string abort_reason;

  // Online detection / recovery (sim::SimulationStats fault counters).
  Int faults_detected = 0;
  Int faults_recovered = 0;
  Int recovery_reexecutions = 0;
  std::vector<IntVec> degraded_points;

  InjectionStats injection;  ///< What the injector actually corrupted.
  AbftReport abft;           ///< Read-out checksum verdict (matmul models).

  /// Read-out words differing from the fault-free reference run
  /// (0 when the run aborted before read-out).
  Int corrupted_words = 0;
  /// Corrupted read-out with nothing flagged: no online detection, no
  /// degraded points, and the ABFT check (if supported) passed.
  bool silent_corruption = false;

  /// Emit as one JSON object (usable after JsonWriter::key).
  void write_json(JsonWriter& w) const;

  std::string to_string() const;
};

}  // namespace bitlevel::faults
