#include "faults/model.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bitlevel::faults {

bool is_persistent(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt0:
    case FaultKind::kStuckAt1:
    case FaultKind::kDeadPe:
      return true;
    case FaultKind::kBitFlip:
    case FaultKind::kDroppedHop:
      return false;
  }
  throw PreconditionError("unknown fault kind");
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt0:
      return "stuck-at-0";
    case FaultKind::kStuckAt1:
      return "stuck-at-1";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kDeadPe:
      return "dead-pe";
    case FaultKind::kDroppedHop:
      return "dropped-hop";
  }
  throw PreconditionError("unknown fault kind");
}

FaultKind parse_fault_kind(const std::string& name) {
  for (const FaultKind kind : all_fault_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  std::ostringstream os;
  os << "unknown fault kind '" << name << "'; expected one of";
  for (const FaultKind kind : all_fault_kinds()) os << " " << to_string(kind);
  throw NotFoundError(os.str());
}

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = {FaultKind::kStuckAt0, FaultKind::kStuckAt1,
                                               FaultKind::kBitFlip, FaultKind::kDeadPe,
                                               FaultKind::kDroppedHop};
  return kinds;
}

void FaultModel::validate() const {
  BL_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate must lie in [0, 1]");
  BL_REQUIRE(spares >= 0, "spare count must be nonnegative");
  BL_REQUIRE(max_retries >= 0, "retry bound must be nonnegative");
}

std::string FaultModel::to_string() const {
  std::ostringstream os;
  os << faults::to_string(kind) << " rate " << rate << " seed " << seed << " channel " << channel
     << " spares " << spares << " retries " << max_retries;
  return os.str();
}

}  // namespace bitlevel::faults
