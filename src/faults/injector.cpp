#include "faults/injector.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel::faults {

namespace {

// Recovery attempt at which a persistent fault's re-execution is
// treated as remapped onto a spare PE (attempt 1 is a plain retry).
constexpr int kRemapAttempt = 2;

std::uint64_t fold_coords(std::uint64_t h, const IntVec& v) {
  for (const Int c : v) h = hash_mix(h, static_cast<std::uint64_t>(c));
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultModel model, IntMat space, std::size_t channels,
                             bool parity_checks)
    : model_(model), space_(std::move(space)), channels_(channels) {
  model_.validate();
  BL_REQUIRE(channels_ >= 2, "parity convention needs at least one data channel");
  BL_REQUIRE(model_.channel < channels_, "fault channel out of bundle range");

  auto hooks = std::make_shared<sim::FaultHooks>();
  hooks->max_retries = model_.max_retries;
  if (is_persistent(model_.kind)) {
    hooks->on_produce = [this](const IntVec& q, int attempt, Int* bundle) {
      produce(q, attempt, bundle);
    };
    if (parity_checks) {
      hooks->check_output = [nch = channels_](const IntVec&, const Int* bundle) {
        return parity_ok(bundle, nch);
      };
    }
  } else {
    hooks->on_transmit = [this](const IntVec& q, std::size_t column, int attempt, Int* bundle) {
      transmit(q, column, attempt, bundle);
    };
    if (parity_checks) {
      hooks->check_input = [nch = channels_](const IntVec&, const Int* bundle) {
        return parity_ok(bundle, nch);
      };
    }
  }
  hooks_ = std::move(hooks);
}

bool FaultInjector::pe_faulty(const IntVec& pe) const {
  if (!is_persistent(model_.kind)) return false;
  std::uint64_t h = hash_mix(model_.seed, static_cast<std::uint64_t>(model_.kind));
  h = fold_coords(h, pe);
  return hash_to_unit(h) < model_.rate;
}

void FaultInjector::produce(const IntVec& q, int attempt, Int* bundle) {
  const IntVec pe = space_.mul(q);
  if (!pe_faulty(pe)) return;
  if (attempt >= kRemapAttempt && remapped_to_spare(pe)) return;
  switch (model_.kind) {
    case FaultKind::kStuckAt0:
      bundle[model_.channel] = 0;
      break;
    case FaultKind::kStuckAt1:
      bundle[model_.channel] = 1;
      break;
    case FaultKind::kDeadPe:
      std::fill_n(bundle, channels_, 0);
      break;
    default:
      return;  // Transient kinds never reach the produce hook.
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.produce_faults;
}

void FaultInjector::transmit(const IntVec& q, std::size_t column, int attempt, Int* bundle) {
  // The decision hashes the full transmission site including the
  // attempt ordinal: a retry is a NEW transmission that re-samples the
  // fault, which is what makes transients recoverable.
  std::uint64_t h = hash_mix(model_.seed, static_cast<std::uint64_t>(model_.kind));
  h = fold_coords(h, q);
  h = hash_mix(h, static_cast<std::uint64_t>(column));
  h = hash_mix(h, static_cast<std::uint64_t>(attempt));
  if (hash_to_unit(h) >= model_.rate) return;
  switch (model_.kind) {
    case FaultKind::kBitFlip:
      bundle[model_.channel] ^= 1;
      break;
    case FaultKind::kDroppedHop:
      std::fill_n(bundle, channels_, 0);
      break;
    default:
      return;  // Persistent kinds never reach the transmit hook.
  }
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.transmit_faults;
}

bool FaultInjector::remapped_to_spare(const IntVec& pe) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (remapped_.find(pe) != remapped_.end()) return true;
  if (static_cast<int>(remapped_.size()) < model_.spares) {
    remapped_.insert(pe);
    ++stats_.spare_remaps;
    return true;
  }
  if (denied_.insert(pe).second) ++stats_.spares_exhausted;
  return false;
}

InjectionStats FaultInjector::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace bitlevel::faults
