#include "analysis/classify.hpp"

#include <sstream>

namespace bitlevel::analysis {

std::vector<Direction> direction_vector(const math::IntVec& d) {
  std::vector<Direction> out;
  out.reserve(d.size());
  for (math::Int v : d) {
    out.push_back(v > 0 ? Direction::kLess : v == 0 ? Direction::kEqual : Direction::kGreater);
  }
  return out;
}

std::string to_string(const std::vector<Direction>& dirs) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    if (i != 0) os << ", ";
    os << (dirs[i] == Direction::kLess ? '<' : dirs[i] == Direction::kEqual ? '=' : '>');
  }
  os << ')';
  return os.str();
}

std::size_t dependence_level(const math::IntVec& d) {
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] != 0) return i + 1;
  }
  return 0;
}

std::vector<std::size_t> parallel_loops(const ir::DependenceMatrix& deps) {
  const std::size_t n = deps.dim();
  std::vector<bool> carried(n + 1, false);
  for (const auto& col : deps.columns()) {
    carried[dependence_level(col.d)] = true;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i <= n; ++i) {
    if (!carried[i]) out.push_back(i);
  }
  return out;
}

}  // namespace bitlevel::analysis
