#include "analysis/trace.hpp"

#include <map>

#include "support/error.hpp"

namespace bitlevel::analysis {

std::vector<DependenceInstance> trace_dependences(const ir::Program& program,
                                                  const TraceOptions& options) {
  program.validate();
  // last_writer[array][subscript] = iteration that produced the element.
  std::map<std::string, std::map<math::IntVec, math::IntVec>> last_writer;
  std::vector<DependenceInstance> out;

  program.domain.for_each([&](const math::IntVec& j) {
    for (const auto& st : program.statements) {
      if (!st.guard.contains(j)) continue;
      for (const auto& read : st.reads) {
        if (!read.guard.contains(j)) continue;
        const math::IntVec cell = read.subscript.apply(j);
        auto arr = last_writer.find(read.array);
        if (arr == last_writer.end()) continue;
        auto producer = arr->second.find(cell);
        if (producer == arr->second.end()) continue;  // external input
        out.push_back({read.array, j, producer->second});
      }
      const math::IntVec cell = st.write.subscript.apply(j);
      auto [it, inserted] = last_writer[st.write.array].insert({cell, j});
      if (!inserted) {
        BL_REQUIRE(!options.require_single_assignment,
                   "program is not single-assignment: element written twice");
        it->second = j;
      }
    }
    return true;
  });
  return out;
}

FullTrace trace_all_dependences(const ir::Program& program) {
  program.validate();
  // Full access history per cell. Flow pairs each read with the cell's
  // *last* writer (value semantics); anti and output follow the
  // textbook definition — every (earlier read, later write) and
  // (earlier write, later write) pair of the same cell — with
  // zero-distance (same-iteration) pairs dropped, matching the paper's
  // cross-iteration dependence pairs (j, d != 0).
  struct CellHistory {
    std::vector<math::IntVec> readers;
    std::vector<math::IntVec> writers;
  };
  std::map<std::string, std::map<math::IntVec, CellHistory>> history;
  FullTrace out;

  program.domain.for_each([&](const math::IntVec& j) {
    for (const auto& st : program.statements) {
      if (!st.guard.contains(j)) continue;
      for (const auto& read : st.reads) {
        if (!read.guard.contains(j)) continue;
        CellHistory& h = history[read.array][read.subscript.apply(j)];
        if (!h.writers.empty() && h.writers.back() != j) {
          out.flow.push_back({read.array, j, h.writers.back()});
        }
        h.readers.push_back(j);
      }
      CellHistory& h = history[st.write.array][st.write.subscript.apply(j)];
      for (const auto& r : h.readers) {
        if (r != j) out.anti.push_back({st.write.array, j, r});
      }
      for (const auto& w : h.writers) {
        if (w != j) out.output.push_back({st.write.array, j, w});
      }
      h.writers.push_back(j);
    }
    return true;
  });
  return out;
}

}  // namespace bitlevel::analysis
