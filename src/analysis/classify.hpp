// Classical dependence classification (Banerjee [1]).
//
// Distance vectors summarize into direction vectors ('<', '=', '>')
// and dependence levels (the outermost loop carrying the dependence) —
// the vocabulary loop-restructuring compilers use to decide which loops
// may run in parallel. Provided for completeness of the analysis
// toolbox; the mapping machinery itself consumes distance vectors
// directly.
#pragma once

#include <string>
#include <vector>

#include "ir/dependence.hpp"

namespace bitlevel::analysis {

/// Per-coordinate direction of a distance vector entry.
enum class Direction {
  kLess,     ///< d_i > 0 : source iteration precedes ('<').
  kEqual,    ///< d_i = 0 ('=').
  kGreater,  ///< d_i < 0 ('>').
};

/// Direction vector of a distance vector.
std::vector<Direction> direction_vector(const math::IntVec& d);

/// "(<, =, >)" rendering.
std::string to_string(const std::vector<Direction>& dirs);

/// Dependence level: the 1-based index of the outermost loop carrying
/// the dependence (first nonzero entry), or 0 for the loop-independent
/// (zero) vector. A lexicographically valid distance vector has a
/// positive entry at its level.
std::size_t dependence_level(const math::IntVec& d);

/// Loops (1-based) that can run in parallel given a set of distance
/// vectors: loop i is parallel iff no vector is carried at level i.
std::vector<std::size_t> parallel_loops(const ir::DependenceMatrix& deps);

}  // namespace bitlevel::analysis
