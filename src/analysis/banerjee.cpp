#include "analysis/banerjee.hpp"

#include "support/error.hpp"

namespace bitlevel::analysis {

ExpressionRange expression_range(const math::IntVec& a, const math::IntVec& lo,
                                 const math::IntVec& hi) {
  BL_REQUIRE(a.size() == lo.size() && a.size() == hi.size(),
             "coefficients and bounds must have equal dimension");
  math::Int min = 0, max = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const math::Int at_lo = math::checked_mul(a[i], lo[i]);
    const math::Int at_hi = math::checked_mul(a[i], hi[i]);
    min = math::checked_add(min, a[i] >= 0 ? at_lo : at_hi);
    max = math::checked_add(max, a[i] >= 0 ? at_hi : at_lo);
  }
  return {min, max};
}

bool banerjee_test_equation(const math::IntVec& a, math::Int c, const math::IntVec& lo,
                            const math::IntVec& hi) {
  const ExpressionRange r = expression_range(a, lo, hi);
  return r.min <= c && c <= r.max;
}

bool banerjee_test(const DependenceSystem& system, const math::IntVec& lo,
                   const math::IntVec& hi) {
  for (std::size_t r = 0; r < system.a.rows(); ++r) {
    if (!banerjee_test_equation(system.a.row(r), system.b[r], lo, hi)) return false;
  }
  return true;
}

}  // namespace bitlevel::analysis
