// Exact dependence analysis — the paper's "time consuming general
// dependence analysis method".
//
// For every (write, read) reference pair on the same array, the test
// solves the linear Diophantine system [A_w | -A_r][j; j'] = b_r - b_w,
// enumerates all integer solutions inside the iteration-space box, and
// keeps the pairs consistent with sequential execution order (producer
// before consumer). The cost is exponential in the number of free
// parameters of the solution lattice — exactly the cost Theorem 3.1
// avoids by composing word-level and arithmetic-level structures.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/types.hpp"
#include "ir/program.hpp"

namespace bitlevel::analysis {

/// Statistics of an exact analysis run, for the cost-comparison bench.
struct ExactAnalysisStats {
  std::size_t systems_solved = 0;       ///< Reference pairs examined.
  std::size_t solutions_enumerated = 0; ///< Lattice points visited.
};

/// Full exact analysis of a program: all flow-dependence instances.
/// `stats` (optional) receives cost counters.
std::vector<DependenceInstance> exact_dependences(const ir::Program& program,
                                                  ExactAnalysisStats* stats = nullptr);

/// Exact test for one write/read pair: all (consumer, producer) pairs,
/// both inside `domain`, with the producer sequenced before the consumer
/// (`write_first` tells whether the writing statement precedes the
/// reading statement within an iteration, resolving the j == j' case).
/// `write_guard` / `read_guard` restrict the iterations where the
/// respective access is active.
std::vector<DependenceInstance> exact_pair_dependences(
    const ir::IndexSet& domain, const std::string& array, const ir::AffineMap& write,
    const ir::AffineMap& read, bool write_first,
    const ir::ValidityRegion& write_guard = ir::ValidityRegion::all(),
    const ir::ValidityRegion& read_guard = ir::ValidityRegion::all(),
    ExactAnalysisStats* stats = nullptr);

}  // namespace bitlevel::analysis
