#include "analysis/gcd_test.hpp"

#include "math/gcd.hpp"
#include "support/error.hpp"

namespace bitlevel::analysis {

DependenceSystem dependence_system(const ir::AffineMap& write, const ir::AffineMap& read) {
  BL_REQUIRE(write.range_dim() == read.range_dim(),
             "write and read must subscript the same array rank");
  math::IntMat neg_read(read.a.rows(), read.a.cols());
  for (std::size_t r = 0; r < read.a.rows(); ++r) {
    for (std::size_t c = 0; c < read.a.cols(); ++c) {
      neg_read.at(r, c) = math::checked_neg(read.a.at(r, c));
    }
  }
  return {write.a.hstack(neg_read), math::sub(read.b, write.b)};
}

bool gcd_test_equation(const math::IntVec& a, math::Int c) {
  const math::Int g = math::content(a);
  if (g == 0) return c == 0;
  return c % g == 0;
}

bool gcd_test(const DependenceSystem& system) {
  for (std::size_t r = 0; r < system.a.rows(); ++r) {
    if (!gcd_test_equation(system.a.row(r), system.b[r])) return false;
  }
  return true;
}

}  // namespace bitlevel::analysis
