// Trace-based dependence extraction.
//
// Ground truth for everything else: the analyzer replays a program in
// sequential (lexicographic) iteration order, remembers who last wrote
// every array element, and records one flow-dependence instance per
// read of a written element. On single-assignment programs (the paper's
// standing assumption) this recovers the complete, exact flow-dependence
// relation — used by the tests to validate both the exact Diophantine
// analyzer and the Theorem 3.1 composition.
#pragma once

#include <vector>

#include "analysis/types.hpp"
#include "ir/program.hpp"

namespace bitlevel::analysis {

/// Options for trace extraction.
struct TraceOptions {
  /// When true (the paper's model), a second write to any element
  /// raises PreconditionError instead of silently shadowing.
  bool require_single_assignment = true;
};

/// Replay `program` and return every flow-dependence instance.
/// Reads of never-written elements are external inputs and produce no
/// instance.
std::vector<DependenceInstance> trace_dependences(const ir::Program& program,
                                                  const TraceOptions& options = {});

/// All three dependence kinds of Section 2, for programs that are NOT
/// single-assignment (e.g. the raw accumulation (2.1) whose z(j1, j2)
/// is written u times). Flow = read-after-write, anti =
/// write-after-read, output = write-after-write; in each instance the
/// `consumer` is the later access.
struct FullTrace {
  std::vector<DependenceInstance> flow;
  std::vector<DependenceInstance> anti;
  std::vector<DependenceInstance> output;
};

FullTrace trace_all_dependences(const ir::Program& program);

}  // namespace bitlevel::analysis
