// Shared result types of the dependence-analysis backends.
//
// Every backend (exact Diophantine, trace replay) ultimately produces
// flow-dependence *instances* — concrete (consumer, producer) iteration
// pairs — which are then summarized into distinct distance vectors with
// their supports. The summaries are what get compared against the
// symbolically derived dependence matrices of Theorem 3.1.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/dependence.hpp"
#include "ir/index_set.hpp"

namespace bitlevel::analysis {

using ir::IndexSet;
using math::Int;
using math::IntVec;

/// One concrete flow dependence: iteration `consumer` reads a value of
/// `array` written by iteration `producer`.
struct DependenceInstance {
  std::string array;
  IntVec consumer;
  IntVec producer;

  /// Distance vector d = consumer - producer.
  IntVec distance() const { return math::sub(consumer, producer); }

  bool operator==(const DependenceInstance&) const = default;
  bool operator<(const DependenceInstance& o) const {
    if (array != o.array) return array < o.array;
    if (consumer != o.consumer) return consumer < o.consumer;
    return producer < o.producer;
  }
};

/// Distinct distance vectors with their observed supports.
struct DependenceSummary {
  struct Entry {
    IntVec d;                       ///< Distance vector.
    std::set<IntVec> consumers;     ///< Points where the vector was observed.
    std::set<std::string> arrays;   ///< Variables exhibiting this vector.
  };
  std::vector<Entry> entries;

  /// Collapse instances into distinct nonzero distance vectors.
  /// Zero-distance (intra-iteration) dependences are dropped: the
  /// paper's dependence matrices capture cross-iteration flow only.
  static DependenceSummary from_instances(const std::vector<DependenceInstance>& instances);

  /// All distinct distance vectors, sorted lexicographically.
  std::vector<IntVec> distance_vectors() const;

  std::string to_string() const;
};

/// Result of checking a symbolic dependence structure (D with validity
/// regions over index set J) against a set of traced instances.
struct MatchReport {
  bool ok = true;
  /// Edges present in the trace but not predicted by (J, D).
  std::vector<std::string> missing;
  /// Edges predicted by (J, D) but absent from the trace.
  std::vector<std::string> spurious;

  std::string to_string() const;
};

/// Exhaustively verify that the symbolic structure explains the trace:
/// the set { (q, d) : q in J, column d valid at q, q - d in J } must
/// equal the set of traced nonzero-distance edges. This is the
/// empirical proof of Theorem 3.1 used throughout the tests.
MatchReport match_structure(const ir::DependenceMatrix& deps, const IndexSet& domain,
                            const std::vector<DependenceInstance>& trace);

}  // namespace bitlevel::analysis
