// The GCD dependence test (Banerjee [1], ch. 2).
//
// For a write A_w*j + b_w and a read A_r*j' + b_r of the same array, a
// dependence requires an integer solution of
//     [A_w | -A_r] * [j; j'] = b_r - b_w.
// The GCD test checks the necessary per-row condition that gcd of the
// coefficients divides the right-hand side. It ignores loop bounds, so
// "maybe" answers must be refined by the Banerjee or exact tests.
#pragma once

#include "ir/affine.hpp"
#include "math/int_mat.hpp"

namespace bitlevel::analysis {

/// The combined dependence system [A_w | -A_r] [j; j'] = b_r - b_w.
struct DependenceSystem {
  math::IntMat a;
  math::IntVec b;
};

/// Build the combined system for a write/read reference pair on the
/// same array. Both maps must have the same range dimension.
DependenceSystem dependence_system(const ir::AffineMap& write, const ir::AffineMap& read);

/// Single-equation GCD test: does gcd(a) divide c? (gcd(0) = 0 divides
/// only 0.) True means a dependence is *possible*.
bool gcd_test_equation(const math::IntVec& a, math::Int c);

/// Row-wise GCD test of a full system; false proves independence.
bool gcd_test(const DependenceSystem& system);

}  // namespace bitlevel::analysis
