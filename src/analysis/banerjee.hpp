// Banerjee bounds test (Banerjee [1], ch. 3).
//
// For one equation sum_i a_i * t_i = c with box bounds lo <= t <= hi,
// a real solution exists iff  min <= c <= max  where min/max are
// attained by pushing each variable to the bound matching the sign of
// its coefficient. Like the GCD test this is a necessary condition for
// integer dependence; together (GCD + Banerjee) they form the classical
// inexact pipeline whose "maybe" answers the exact test resolves.
#pragma once

#include "analysis/gcd_test.hpp"
#include "math/int_vec.hpp"

namespace bitlevel::analysis {

/// Inclusive range of an affine expression over a box.
struct ExpressionRange {
  math::Int min;
  math::Int max;
};

/// Range of sum_i a[i] * t[i] over lo <= t <= hi.
ExpressionRange expression_range(const math::IntVec& a, const math::IntVec& lo,
                                 const math::IntVec& hi);

/// Banerjee test for one equation: can sum a_i t_i = c hold inside the
/// box? False proves independence.
bool banerjee_test_equation(const math::IntVec& a, math::Int c, const math::IntVec& lo,
                            const math::IntVec& hi);

/// Row-wise Banerjee test of a combined dependence system, with the box
/// bounds of the stacked [j; j'] variable vector.
bool banerjee_test(const DependenceSystem& system, const math::IntVec& lo, const math::IntVec& hi);

}  // namespace bitlevel::analysis
