#include "analysis/exact.hpp"

#include "analysis/gcd_test.hpp"
#include "math/diophantine.hpp"

namespace bitlevel::analysis {

std::vector<DependenceInstance> exact_pair_dependences(const ir::IndexSet& domain,
                                                       const std::string& array,
                                                       const ir::AffineMap& write,
                                                       const ir::AffineMap& read, bool write_first,
                                                       const ir::ValidityRegion& write_guard,
                                                       const ir::ValidityRegion& read_guard,
                                                       ExactAnalysisStats* stats) {
  const std::size_t n = domain.dim();
  const DependenceSystem sys = dependence_system(write, read);
  if (stats != nullptr) ++stats->systems_solved;

  // Stacked box: the writer iteration j occupies coordinates [0, n),
  // the reader iteration j' occupies [n, 2n).
  const math::IntVec lo = math::concat(domain.lower(), domain.lower());
  const math::IntVec hi = math::concat(domain.upper(), domain.upper());
  const std::vector<math::IntVec> solutions =
      math::enumerate_solutions_in_box(sys.a, sys.b, lo, hi);
  if (stats != nullptr) stats->solutions_enumerated += solutions.size();

  std::vector<DependenceInstance> out;
  for (const auto& sol : solutions) {
    const math::IntVec writer(sol.begin(), sol.begin() + static_cast<std::ptrdiff_t>(n));
    const math::IntVec reader(sol.begin() + static_cast<std::ptrdiff_t>(n), sol.end());
    const int order = math::lex_compare(writer, reader);
    const bool flows = order < 0 || (order == 0 && write_first);
    if (!flows) continue;
    if (!write_guard.contains(writer) || !read_guard.contains(reader)) continue;
    out.push_back({array, reader, writer});
  }
  return out;
}

std::vector<DependenceInstance> exact_dependences(const ir::Program& program,
                                                  ExactAnalysisStats* stats) {
  program.validate();
  std::vector<DependenceInstance> out;
  const auto& stmts = program.statements;
  for (std::size_t sw = 0; sw < stmts.size(); ++sw) {
    for (std::size_t sr = 0; sr < stmts.size(); ++sr) {
      for (const auto& read : stmts[sr].reads) {
        if (read.array != stmts[sw].write.array) continue;
        // Within an iteration the writer precedes the reader when its
        // statement index is strictly smaller; equal indices mean the
        // read happens before the write of the same statement (RHS
        // evaluates first), so no intra-iteration flow.
        auto pair = exact_pair_dependences(program.domain, read.array, stmts[sw].write.subscript,
                                           read.subscript, sw < sr, stmts[sw].guard,
                                           stmts[sr].guard && read.guard, stats);
        out.insert(out.end(), pair.begin(), pair.end());
      }
    }
  }
  return out;
}

}  // namespace bitlevel::analysis
