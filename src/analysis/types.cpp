#include "analysis/types.hpp"

#include <algorithm>
#include <sstream>

namespace bitlevel::analysis {

DependenceSummary DependenceSummary::from_instances(
    const std::vector<DependenceInstance>& instances) {
  std::map<IntVec, Entry> by_distance;
  for (const auto& inst : instances) {
    IntVec d = inst.distance();
    if (math::is_zero(d)) continue;
    Entry& e = by_distance[d];
    e.d = d;
    e.consumers.insert(inst.consumer);
    e.arrays.insert(inst.array);
  }
  DependenceSummary out;
  out.entries.reserve(by_distance.size());
  for (auto& [d, e] : by_distance) out.entries.push_back(std::move(e));
  return out;
}

std::vector<IntVec> DependenceSummary::distance_vectors() const {
  std::vector<IntVec> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.d);
  std::sort(out.begin(), out.end());
  return out;
}

std::string DependenceSummary::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries) {
    os << math::to_string(e.d) << "  (" << e.consumers.size() << " sites";
    for (const auto& a : e.arrays) os << ", " << a;
    os << ")\n";
  }
  return os.str();
}

std::string MatchReport::to_string() const {
  std::ostringstream os;
  os << (ok ? "MATCH" : "MISMATCH") << ": " << missing.size() << " missing, " << spurious.size()
     << " spurious\n";
  for (const auto& m : missing) os << "  missing:  " << m << '\n';
  for (const auto& s : spurious) os << "  spurious: " << s << '\n';
  return os.str();
}

namespace {

std::string edge_string(const IntVec& consumer, const IntVec& d) {
  return "at " + math::to_string(consumer) + " dist " + math::to_string(d);
}

}  // namespace

MatchReport match_structure(const ir::DependenceMatrix& deps, const IndexSet& domain,
                            const std::vector<DependenceInstance>& trace) {
  // Traced edges as (consumer, distance) pairs, dropping intra-iteration
  // (zero-distance) dependences.
  std::set<std::pair<IntVec, IntVec>> traced;
  for (const auto& inst : trace) {
    IntVec d = inst.distance();
    if (math::is_zero(d)) continue;
    traced.insert({inst.consumer, std::move(d)});
  }

  // Predicted edges: every column valid at q with producer inside J.
  std::set<std::pair<IntVec, IntVec>> predicted;
  domain.for_each([&](const IntVec& q) {
    for (const auto& col : deps.columns()) {
      if (!col.valid.contains(q)) continue;
      if (!domain.contains(math::sub(q, col.d))) continue;
      predicted.insert({q, col.d});
    }
    return true;
  });

  MatchReport report;
  for (const auto& e : traced) {
    if (!predicted.count(e)) report.missing.push_back(edge_string(e.first, e.second));
  }
  for (const auto& e : predicted) {
    if (!traced.count(e)) report.spurious.push_back(edge_string(e.first, e.second));
  }
  report.ok = report.missing.empty() && report.spurious.empty();
  return report;
}

}  // namespace bitlevel::analysis
