#include "ir/triplet.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bitlevel::ir {

std::string AlgorithmTriplet::to_string() const {
  std::ostringstream os;
  os << "J = " << domain.to_string() << "\nD:\n"
     << deps.to_string(coord_names) << "E:\n";
  for (const auto& c : computations) os << "  " << c << '\n';
  return os.str();
}

void WordLevelModel::validate() const {
  auto check = [&](const std::optional<IntVec>& h, const char* which) {
    if (!h) return;
    BL_REQUIRE(h->size() == domain.dim(), std::string(which) + " must have the loop-nest dimension");
    BL_REQUIRE(!math::is_zero(*h), std::string(which) + " must be a nonzero vector");
  };
  check(h1, "h1");
  check(h2, "h2");
  check(h3, "h3");
}

AlgorithmTriplet WordLevelModel::triplet() const {
  validate();
  AlgorithmTriplet t{domain, {}, {}, coord_names};
  if (h1) t.deps.add({*h1, "x", ValidityRegion::all()});
  if (h2) t.deps.add({*h2, "y", ValidityRegion::all()});
  if (h3) t.deps.add({*h3, "z", ValidityRegion::all()});
  t.computations = {
      h1 ? "x(j) = x(j - h1)" : "x(j) = <external input>",
      h2 ? "y(j) = y(j - h2)" : "y(j) = <external input>",
      h3 ? "z(j) = z(j - h3) + x(j) * y(j)" : "z(j) = x(j) * y(j)",
  };
  return t;
}

Program WordLevelModel::access_program() const {
  validate();
  const std::size_t n = domain.dim();
  const AffineMap id = AffineMap::identity(n);
  Program prog{domain, {}};
  if (h1) {
    prog.statements.push_back(
        {{"x", id}, {{"x", AffineMap::translate(math::neg(*h1))}}, "x(j) = x(j - h1)"});
  }
  if (h2) {
    prog.statements.push_back(
        {{"y", id}, {{"y", AffineMap::translate(math::neg(*h2))}}, "y(j) = y(j - h2)"});
  }
  Statement acc{{"z", id}, {}, "z(j) = z(j - h3) + x(j) * y(j)"};
  if (h3) acc.reads.push_back({"z", AffineMap::translate(math::neg(*h3))});
  acc.reads.push_back({"x", id});
  acc.reads.push_back({"y", id});
  prog.statements.push_back(std::move(acc));
  prog.validate();
  return prog;
}

}  // namespace bitlevel::ir
