// Executable access-pattern programs.
//
// For brute-force (trace-based) dependence extraction we only need the
// memory access pattern of a loop nest, not its arithmetic semantics: a
// Program is an index set plus an ordered list of statements, each
// writing one array element and reading a list of array elements, all
// through affine maps of the index vector. The TraceAnalyzer in
// src/analysis replays the program in lexicographic iteration order and
// records producer/consumer pairs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/affine.hpp"
#include "ir/index_set.hpp"
#include "ir/validity.hpp"

namespace bitlevel::ir {

/// One array reference: array `array` subscripted by `subscript(j)`,
/// active only where `guard` holds (bit-level programs read different
/// producers on interior vs boundary points).
struct ArrayRef {
  std::string array;    ///< Array name, e.g. "x", "z", "c".
  AffineMap subscript;  ///< Subscript as a function of the index vector.
  ValidityRegion guard = ValidityRegion::all();  ///< Where this access happens.
};

/// One assignment statement: write <- f(reads...). The function f itself
/// is irrelevant to dependence analysis and is carried as a label only.
/// The whole statement executes only where `guard` holds; individual
/// reads additionally carry their own guards.
struct Statement {
  ArrayRef write;
  std::vector<ArrayRef> reads;
  std::string label;  ///< e.g. "z(j) = z(j-h3) + x(j)*y(j)".
  ValidityRegion guard = ValidityRegion::all();
};

/// A perfectly nested loop over `domain` executing `statements` in order
/// within each iteration.
struct Program {
  IndexSet domain;
  std::vector<Statement> statements;

  /// Validates internal consistency (every subscript map's domain
  /// dimension equals the loop-nest dimension).
  void validate() const;
};

}  // namespace bitlevel::ir
