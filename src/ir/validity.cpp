#include "ir/validity.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace bitlevel::ir {

struct ValidityRegion::Node {
  enum class Kind { All, Eq, Ne, In, Ge, Le, AffGe, And, Or, Not };
  Kind kind = Kind::All;
  std::size_t coord = 0;
  Int value = 0;
  std::vector<Int> values;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

namespace {

using Node = ValidityRegion::Node;

bool eval(const Node& n, const IntVec& point);

bool eval_child(const std::shared_ptr<const Node>& n, const IntVec& point) {
  return eval(*n, point);
}

bool eval(const Node& n, const IntVec& point) {
  switch (n.kind) {
    case Node::Kind::All:
      return true;
    case Node::Kind::Eq:
      BL_REQUIRE(n.coord < point.size(), "validity predicate coordinate out of range");
      return point[n.coord] == n.value;
    case Node::Kind::Ne:
      BL_REQUIRE(n.coord < point.size(), "validity predicate coordinate out of range");
      return point[n.coord] != n.value;
    case Node::Kind::In:
      BL_REQUIRE(n.coord < point.size(), "validity predicate coordinate out of range");
      return std::find(n.values.begin(), n.values.end(), point[n.coord]) != n.values.end();
    case Node::Kind::Ge:
      BL_REQUIRE(n.coord < point.size(), "validity predicate coordinate out of range");
      return point[n.coord] >= n.value;
    case Node::Kind::Le:
      BL_REQUIRE(n.coord < point.size(), "validity predicate coordinate out of range");
      return point[n.coord] <= n.value;
    case Node::Kind::AffGe:
      return math::dot(n.values, point) >= n.value;
    case Node::Kind::And:
      return eval_child(n.lhs, point) && eval_child(n.rhs, point);
    case Node::Kind::Or:
      return eval_child(n.lhs, point) || eval_child(n.rhs, point);
    case Node::Kind::Not:
      return !eval_child(n.lhs, point);
  }
  return false;  // unreachable
}

std::string coord_name(std::size_t coord, const std::vector<std::string>& names) {
  if (coord < names.size() && !names[coord].empty()) return names[coord];
  return "j[" + std::to_string(coord) + "]";
}

std::string render(const Node& n, const std::vector<std::string>& names) {
  switch (n.kind) {
    case Node::Kind::All:
      return "true";
    case Node::Kind::Eq:
      return coord_name(n.coord, names) + " == " + std::to_string(n.value);
    case Node::Kind::Ne:
      return coord_name(n.coord, names) + " != " + std::to_string(n.value);
    case Node::Kind::In: {
      std::ostringstream os;
      os << coord_name(n.coord, names) << " in {";
      for (std::size_t i = 0; i < n.values.size(); ++i) {
        if (i != 0) os << ", ";
        os << n.values[i];
      }
      os << '}';
      return os.str();
    }
    case Node::Kind::Ge:
      return coord_name(n.coord, names) + " >= " + std::to_string(n.value);
    case Node::Kind::Le:
      return coord_name(n.coord, names) + " <= " + std::to_string(n.value);
    case Node::Kind::AffGe: {
      std::ostringstream os;
      bool first = true;
      for (std::size_t i = 0; i < n.values.size(); ++i) {
        if (n.values[i] == 0) continue;
        if (!first) os << " + ";
        if (n.values[i] != 1) os << n.values[i] << "*";
        os << coord_name(i, names);
        first = false;
      }
      if (first) os << "0";
      os << " >= " << n.value;
      return os.str();
    }
    case Node::Kind::And:
      return "(" + render(*n.lhs, names) + " && " + render(*n.rhs, names) + ")";
    case Node::Kind::Or:
      return "(" + render(*n.lhs, names) + " || " + render(*n.rhs, names) + ")";
    case Node::Kind::Not:
      return "!(" + render(*n.lhs, names) + ")";
  }
  return "?";  // unreachable
}

std::shared_ptr<const Node> make_node(Node n) { return std::make_shared<const Node>(std::move(n)); }

}  // namespace

ValidityRegion ValidityRegion::all() {
  static const auto node = make_node(Node{});
  return ValidityRegion(node);
}

ValidityRegion ValidityRegion::coord_eq(std::size_t coord, Int value) {
  Node n;
  n.kind = Node::Kind::Eq;
  n.coord = coord;
  n.value = value;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::coord_ne(std::size_t coord, Int value) {
  Node n;
  n.kind = Node::Kind::Ne;
  n.coord = coord;
  n.value = value;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::coord_in(std::size_t coord, std::vector<Int> values) {
  Node n;
  n.kind = Node::Kind::In;
  n.coord = coord;
  n.values = std::move(values);
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::coord_ge(std::size_t coord, Int value) {
  Node n;
  n.kind = Node::Kind::Ge;
  n.coord = coord;
  n.value = value;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::coord_le(std::size_t coord, Int value) {
  Node n;
  n.kind = Node::Kind::Le;
  n.coord = coord;
  n.value = value;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::affine_ge(IntVec coeffs, Int value) {
  Node n;
  n.kind = Node::Kind::AffGe;
  n.values = std::move(coeffs);
  n.value = value;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::operator&&(const ValidityRegion& other) const {
  if (is_all()) return other;
  if (other.is_all()) return *this;
  Node n;
  n.kind = Node::Kind::And;
  n.lhs = node_;
  n.rhs = other.node_;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::operator||(const ValidityRegion& other) const {
  if (is_all() || other.is_all()) return all();
  Node n;
  n.kind = Node::Kind::Or;
  n.lhs = node_;
  n.rhs = other.node_;
  return ValidityRegion(make_node(std::move(n)));
}

ValidityRegion ValidityRegion::operator!() const {
  Node n;
  n.kind = Node::Kind::Not;
  n.lhs = node_;
  return ValidityRegion(make_node(std::move(n)));
}

bool ValidityRegion::contains(const IntVec& point) const { return eval(*node_, point); }

bool ValidityRegion::is_all() const { return node_->kind == Node::Kind::All; }

std::string ValidityRegion::to_string(const std::vector<std::string>& coord_names) const {
  return render(*node_, coord_names);
}

}  // namespace bitlevel::ir
