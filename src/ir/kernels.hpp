// Word-level kernel builders.
//
// Every application the paper's model (3.5) covers — matrix
// multiplication, convolution, matrix-vector multiplication, and the
// DCT/DFT-style transforms that reduce to matrix-vector form — gets a
// builder returning its WordLevelModel, plus (for matrix multiplication)
// the pre-pipelining broadcast program (2.2) used to demonstrate
// Fortes-Moldovan broadcast elimination.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::ir::kernels {

/// Matrix multiplication Z = X * Y with u x u operands, program (2.3):
/// x pipelined along j2 (h1 = [0,1,0]), y along j1 (h2 = [1,0,0]),
/// z accumulated along j3 (h3 = [0,0,1]). Dependence matrix (2.4).
WordLevelModel matmul(Int u);

/// Rectangular matrix multiplication Z = X * Y with X m x k and Y
/// k x n: same pipelining as matmul() over the box [1,m]x[1,n]x[1,k].
WordLevelModel matmul_rect(Int m, Int n, Int k);

/// Matrix multiplication program (2.2), *before* broadcast elimination:
/// x(j1, j3) and y(j3, j2) are read by u iterations each. Input to the
/// pipelining pass that derives (2.3).
Program matmul_broadcast_program(Int u);

/// The raw matrix multiplication of Example 2.1 (program 2.1):
/// z(j1, j2) = z(j1, j2) + x(j1, j3) * y(j3, j2), with z written u
/// times per element — NOT single-assignment, exhibiting output and
/// anti dependences. Input to expand_accumulation(), which derives
/// (2.2).
Program matmul_raw_program(Int u);

/// 1-D convolution z(t) = sum_k w(k) * x(t + k - 1) with n outputs and k
/// taps. x pipelined along the anti-diagonal (h1 = [1,-1]), weights
/// pipelined along j1 (h2 = [1,0]), accumulation along j2 (h3 = [0,1]).
WordLevelModel convolution1d(Int n, Int k);

/// Matrix-vector multiplication z = A * x with an m x n matrix. The
/// coefficient a(j1, j2) is used exactly once, so it enters each index
/// point from outside the array (absent h2); x is pipelined along j1
/// and z accumulated along j2.
WordLevelModel matvec(Int m, Int n);

/// N-point discrete cosine / Fourier style transform X = C * x: the
/// dependence structure of a transform with a dense N x N coefficient
/// matrix, which is exactly matvec(N, N).
WordLevelModel transform(Int n);

/// The generic 1-D instance (3.7) used throughout Section 3's
/// exposition: DO (j = l, u) with scalar strides h1 = h2 = h3 = h.
WordLevelModel scalar_chain(Int l, Int u, Int h);

// ---------------------------------------------------------------------
// Data-driven kernel registry.
//
// Every kernel the design pipeline (and the CLI) can instantiate by
// name, with enough metadata to canonicalize requests, validate
// arguments, and print the allowed set on errors. Factories take the
// uniform (u, v, w) extent triple; `arity` says how many of those the
// kernel consumes (unused extents are ignored and canonicalized away).

/// Registry metadata for one named kernel.
struct KernelInfo {
  std::string name;          ///< CLI-facing name, e.g. "conv".
  int arity = 1;             ///< Extent parameters consumed: 1 = u, 2 = u,v, 3 = u,v,w.
  const char* params = "";   ///< Human-readable parameter meanings.
  const char* summary = "";  ///< One-line description.
  WordLevelModel (*make)(Int u, Int v, Int w) = nullptr;
  /// True when the kernel's expanded cell body is pure-boolean (the
  /// compressor of Theorem 3.1), so the bit-sliced lane executor can
  /// carry 64 batch items through one machine pass. A kernel whose cell
  /// did word-level arithmetic would have to stay scalar.
  bool sliceable = false;
  /// Non-null when instances of this kernel decompose onto a bounded
  /// virtual array (pipeline/tiling.hpp): names the registry kernel a
  /// single tile instantiates. Both square and rectangular matmul tile
  /// as matmul_rect sub-products whose partial sums add exactly; null
  /// means the kernel has no tiling decomposition registered.
  const char* tile_kernel = nullptr;
};

/// All registered kernels, in presentation order.
const std::vector<KernelInfo>& registry();

/// Lookup by name; nullptr when unknown.
const KernelInfo* find_kernel(const std::string& name);

/// Comma-separated list of registered names, for error messages.
std::string registered_names();

/// Comma-separated list of tileable kernel names (tile_kernel set),
/// for the tiling layer's error messages.
std::string tileable_names();

/// Instantiate a registered kernel; throws NotFoundError naming the
/// allowed set when `name` is unknown.
WordLevelModel make_registered(const std::string& name, Int u, Int v, Int w);

}  // namespace bitlevel::ir::kernels
