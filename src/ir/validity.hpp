// Validity regions of conditional (non-uniform) dependence vectors.
//
// Bit-level expansion produces dependence vectors that hold only on
// sub-regions of the index set — "valid at i1 = 1", "valid when j_n =
// u_n and (i1 != 1 or i2 not in {1,2})" (the annotations under the
// columns of D_I / D_II in eqs. 3.8-3.9 and Theorem 3.1). A
// ValidityRegion is a small boolean expression over per-coordinate
// equality tests, evaluated pointwise.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "math/int_vec.hpp"

namespace bitlevel::ir {

using math::Int;
using math::IntVec;

/// Predicate over index points, closed under conjunction, disjunction
/// and negation. Immutable and cheaply copyable (shared expression
/// tree).
class ValidityRegion {
 public:
  /// Valid everywhere (a uniform dependence).
  static ValidityRegion all();

  /// point[coord] == value.
  static ValidityRegion coord_eq(std::size_t coord, Int value);

  /// point[coord] != value.
  static ValidityRegion coord_ne(std::size_t coord, Int value);

  /// point[coord] is one of the listed values.
  static ValidityRegion coord_in(std::size_t coord, std::vector<Int> values);

  /// point[coord] >= value.
  static ValidityRegion coord_ge(std::size_t coord, Int value);

  /// point[coord] <= value.
  static ValidityRegion coord_le(std::size_t coord, Int value);

  /// coeffs . point >= value — a half-space. Needed by structures whose
  /// regions relate coordinates (e.g. the carry-save multiplier's
  /// partial-product band i1 <= i2 <= i1 + p - 1).
  static ValidityRegion affine_ge(IntVec coeffs, Int value);

  ValidityRegion operator&&(const ValidityRegion& other) const;
  ValidityRegion operator||(const ValidityRegion& other) const;
  ValidityRegion operator!() const;

  /// Evaluate at a concrete index point.
  bool contains(const IntVec& point) const;

  /// True when the region is the trivial "everywhere" predicate.
  bool is_all() const;

  /// Human-readable rendering, e.g. "(i[3] == 1 || i[4] != 2)".
  /// Coordinates are printed with the supplied names when provided.
  std::string to_string(const std::vector<std::string>& coord_names = {}) const;

  /// Implementation detail, public only so the expression-tree walker in
  /// the .cpp file can name it; not part of the supported API.
  struct Node;

 private:
  explicit ValidityRegion(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace bitlevel::ir
