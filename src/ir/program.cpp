#include "ir/program.hpp"

#include "support/error.hpp"

namespace bitlevel::ir {

void Program::validate() const {
  for (const auto& st : statements) {
    BL_REQUIRE(st.write.subscript.domain_dim() == domain.dim(),
               "write subscript dimension must equal the loop-nest dimension");
    for (const auto& r : st.reads) {
      BL_REQUIRE(r.subscript.domain_dim() == domain.dim(),
                 "read subscript dimension must equal the loop-nest dimension");
    }
  }
}

}  // namespace bitlevel::ir
