#include "ir/index_set.hpp"

#include <sstream>

#include "math/checked.hpp"
#include "support/error.hpp"

namespace bitlevel::ir {

IndexSet::IndexSet(IntVec lo, IntVec hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  BL_REQUIRE(lo_.size() == hi_.size(), "index-set bounds must have equal dimension");
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    BL_REQUIRE(lo_[i] <= hi_[i], "index-set lower bound must not exceed upper bound");
  }
}

IndexSet IndexSet::cube(std::size_t n, Int u) {
  BL_REQUIRE(u >= 1, "cube upper bound must be >= 1");
  return IndexSet(IntVec(n, 1), IntVec(n, u));
}

IndexSet IndexSet::product(const IndexSet& other) const {
  return IndexSet(math::concat(lo_, other.lo_), math::concat(hi_, other.hi_));
}

bool IndexSet::contains(const IntVec& point) const {
  if (point.size() != lo_.size()) return false;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  }
  return true;
}

Int IndexSet::size() const {
  Int total = 1;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    total = math::checked_mul(total, math::checked_add(math::checked_sub(hi_[i], lo_[i]), 1));
  }
  return total;
}

bool IndexSet::for_each(const std::function<bool(const IntVec&)>& visit) const {
  IntVec point = lo_;
  while (true) {
    if (!visit(point)) return false;
    if (!next(point)) return true;
  }
}

bool IndexSet::next(IntVec& point) const {
  for (std::size_t i = point.size(); i-- > 0;) {
    if (point[i] < hi_[i]) {
      ++point[i];
      return true;
    }
    point[i] = lo_[i];
  }
  return false;
}

std::string IndexSet::to_string() const {
  std::ostringstream os;
  os << "{ " << math::to_string(lo_) << " <= j <= " << math::to_string(hi_) << " }";
  return os.str();
}

}  // namespace bitlevel::ir
