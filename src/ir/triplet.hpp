// Algorithm triplets (J, D, E) and the restricted word-level model (3.5).
//
// The paper characterizes an algorithm by its index set J, dependence
// matrix D and computation set E. The bit-level expansion of Section 3
// additionally requires the word-level algorithm to have the restricted
// form (3.5):
//
//   DO (j in J_w)
//     x(j) = x(j - h1)
//     y(j) = y(j - h2)
//     z(j) = z(j - h3) + x(j) * y(j)
//   END
//
// WordLevelModel captures exactly that shape. Operands supplied directly
// from outside the array at every index point (no reuse, hence no
// dependence) are modelled with an absent h vector; matrix-vector
// multiplication uses this for its coefficient operand.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/dependence.hpp"
#include "ir/index_set.hpp"
#include "ir/program.hpp"

namespace bitlevel::ir {

/// The paper's characterization (J, D, E) of an algorithm.
struct AlgorithmTriplet {
  IndexSet domain;                         ///< J
  DependenceMatrix deps;                   ///< D
  std::vector<std::string> computations;   ///< E (as source-level text)
  std::vector<std::string> coord_names;    ///< For pretty-printing (j1, i1, ...)

  std::string to_string() const;
};

/// Restricted word-level algorithm model (3.5).
struct WordLevelModel {
  IndexSet domain;              ///< J_w
  std::optional<IntVec> h1;     ///< x pipelining vector (absent: external input)
  std::optional<IntVec> h2;     ///< y pipelining vector (absent: external input)
  std::optional<IntVec> h3;     ///< z accumulation vector (absent: external input)
  std::string name;             ///< Kernel name for reporting.
  std::vector<std::string> coord_names;

  std::size_t dim() const { return domain.dim(); }

  /// Validates that every present h vector has the loop-nest dimension
  /// and is nonzero (a zero dependence vector cannot be scheduled).
  void validate() const;

  /// The word-level triplet (J_w, D_w, E_w); D_w has one column per
  /// present h vector, in x, y, z order with causes "x", "y", "z".
  AlgorithmTriplet triplet() const;

  /// The executable access-pattern program of (3.5), for trace-based
  /// dependence extraction. Variables are named "x", "y", "z" and are
  /// subscripted by the full index vector (single-assignment form).
  Program access_program() const;
};

}  // namespace bitlevel::ir
