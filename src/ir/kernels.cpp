#include "ir/kernels.hpp"

#include "support/error.hpp"

namespace bitlevel::ir::kernels {

WordLevelModel matmul(Int u) {
  BL_REQUIRE(u >= 1, "matmul requires u >= 1");
  WordLevelModel m{IndexSet::cube(3, u),
                   IntVec{0, 1, 0},
                   IntVec{1, 0, 0},
                   IntVec{0, 0, 1},
                   "matmul",
                   {"j1", "j2", "j3"}};
  m.validate();
  return m;
}

WordLevelModel matmul_rect(Int m, Int n, Int k) {
  BL_REQUIRE(m >= 1 && n >= 1 && k >= 1, "matmul_rect requires positive extents");
  WordLevelModel w{IndexSet(IntVec{1, 1, 1}, IntVec{m, n, k}),
                   IntVec{0, 1, 0},
                   IntVec{1, 0, 0},
                   IntVec{0, 0, 1},
                   "matmul_rect",
                   {"j1", "j2", "j3"}};
  w.validate();
  return w;
}

Program matmul_broadcast_program(Int u) {
  BL_REQUIRE(u >= 1, "matmul requires u >= 1");
  const IndexSet j = IndexSet::cube(3, u);
  // z(j1, j2, j3) = z(j1, j2, j3 - 1) + x(j1, j3) * y(j3, j2)
  const AffineMap z_write = AffineMap::identity(3);
  const AffineMap z_read = AffineMap::translate(IntVec{0, 0, -1});
  const AffineMap x_read = AffineMap::select(3, {0, 2});
  const AffineMap y_read = AffineMap::select(3, {2, 1});
  Program prog{j,
               {{{"z", z_write},
                 {{"z", z_read}, {"x", x_read}, {"y", y_read}},
                 "z(j1,j2,j3) = z(j1,j2,j3-1) + x(j1,j3) * y(j3,j2)"}}};
  prog.validate();
  return prog;
}

Program matmul_raw_program(Int u) {
  BL_REQUIRE(u >= 1, "matmul requires u >= 1");
  const AffineMap z_ref = AffineMap::select(3, {0, 1});
  const AffineMap x_read = AffineMap::select(3, {0, 2});
  const AffineMap y_read = AffineMap::select(3, {2, 1});
  Program prog{IndexSet::cube(3, u),
               {{{"z", z_ref},
                 {{"z", z_ref}, {"x", x_read}, {"y", y_read}},
                 "z(j1,j2) = z(j1,j2) + x(j1,j3) * y(j3,j2)"}}};
  prog.validate();
  return prog;
}

WordLevelModel convolution1d(Int n, Int k) {
  BL_REQUIRE(n >= 1 && k >= 1, "convolution requires n, k >= 1");
  WordLevelModel m{IndexSet(IntVec{1, 1}, IntVec{n, k}),
                   IntVec{1, -1},
                   IntVec{1, 0},
                   IntVec{0, 1},
                   "convolution1d",
                   {"j1", "j2"}};
  m.validate();
  return m;
}

WordLevelModel matvec(Int rows, Int cols) {
  BL_REQUIRE(rows >= 1 && cols >= 1, "matvec requires rows, cols >= 1");
  WordLevelModel m{IndexSet(IntVec{1, 1}, IntVec{rows, cols}),
                   IntVec{1, 0},
                   std::nullopt,  // a(j1, j2) is an external input
                   IntVec{0, 1},
                   "matvec",
                   {"j1", "j2"}};
  m.validate();
  return m;
}

WordLevelModel transform(Int n) {
  WordLevelModel m = matvec(n, n);
  m.name = "transform";
  return m;
}

WordLevelModel scalar_chain(Int l, Int u, Int h) {
  BL_REQUIRE(l <= u, "scalar chain requires l <= u");
  BL_REQUIRE(h != 0, "scalar chain stride must be nonzero");
  WordLevelModel m{IndexSet(IntVec{l}, IntVec{u}),
                   IntVec{h},
                   IntVec{h},
                   IntVec{h},
                   "scalar_chain",
                   {"j"}};
  m.validate();
  return m;
}

const std::vector<KernelInfo>& registry() {
  static const std::vector<KernelInfo> kRegistry = {
      // Every current kernel expands through Theorem 3.1 to the
      // pure-boolean compressor cell, so all are sliceable.
      {"matmul", 1, "u (matrix extent)", "square matrix multiplication Z = X * Y, program (2.3)",
       [](Int u, Int, Int) { return matmul(u); }, true, "matmul_rect"},
      {"matmul_rect", 3, "u (rows of X), v (cols of Y), w (inner extent)",
       "rectangular matrix multiplication over [1,u]x[1,v]x[1,w]",
       [](Int u, Int v, Int w) { return matmul_rect(u, v, w); }, true, "matmul_rect"},
      {"conv", 2, "u (outputs), v (taps)", "1-D convolution with anti-diagonal input pipelining",
       [](Int u, Int v, Int) { return convolution1d(u, v); }, true},
      {"matvec", 2, "u (rows), v (cols)",
       "matrix-vector multiplication; coefficients enter externally",
       [](Int u, Int v, Int) { return matvec(u, v); }, true},
      {"transform", 1, "u (points)", "dense N-point DCT/DFT-style transform (matvec shape)",
       [](Int u, Int, Int) { return transform(u); }, true},
      {"scalar", 1, "u (chain length)", "the 1-D scalar chain (3.7) of Section 3's exposition",
       [](Int u, Int, Int) { return scalar_chain(1, u, 1); }, true},
  };
  return kRegistry;
}

const KernelInfo* find_kernel(const std::string& name) {
  for (const auto& info : registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::string registered_names() {
  std::string names;
  for (const auto& info : registry()) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

std::string tileable_names() {
  std::string names;
  for (const auto& info : registry()) {
    if (info.tile_kernel == nullptr) continue;
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

WordLevelModel make_registered(const std::string& name, Int u, Int v, Int w) {
  const KernelInfo* info = find_kernel(name);
  if (info == nullptr) {
    throw NotFoundError("unknown kernel '" + name + "' (known: " + registered_names() + ")");
  }
  return info->make(u, v, w);
}

}  // namespace bitlevel::ir::kernels
