// Rectangular index sets (iteration spaces).
//
// The paper's algorithm model (2.1)/(3.5) uses constant loop bounds, so
// an index set is an integer box { j : lo <= j <= hi }. Bit-level
// expansion forms the product J = J_w x J_as (Theorem 3.1 eq. 3.11a),
// which is again a box.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "math/int_vec.hpp"

namespace bitlevel::ir {

using math::Int;
using math::IntVec;

/// An n-dimensional integer box { j : lo <= j <= hi componentwise }.
/// All bounds are inclusive, matching the paper's DO (j = l, u) loops.
class IndexSet {
 public:
  /// Box with explicit per-dimension bounds; requires lo[i] <= hi[i].
  IndexSet(IntVec lo, IntVec hi);

  /// Cube [1, u]^n — the common case in the paper's examples.
  static IndexSet cube(std::size_t n, Int u);

  /// Cartesian product [this x other] with coordinates concatenated;
  /// used to build J = J_w x J_as.
  IndexSet product(const IndexSet& other) const;

  std::size_t dim() const { return lo_.size(); }
  const IntVec& lower() const { return lo_; }
  const IntVec& upper() const { return hi_; }

  /// True when the point lies inside the box (dimension must match).
  bool contains(const IntVec& point) const;

  /// Number of integer points; throws OverflowError if it exceeds Int.
  Int size() const;

  /// Visit every point in lexicographic order. The callback may return
  /// false to stop early; for_each returns false in that case.
  bool for_each(const std::function<bool(const IntVec&)>& visit) const;

  /// First point in lexicographic order (== lower()).
  const IntVec& first() const { return lo_; }

  /// Advance `point` to its lexicographic successor inside the box.
  /// Returns false (leaving `point` unspecified) when `point` was last.
  bool next(IntVec& point) const;

  bool operator==(const IndexSet& other) const = default;

  /// "{ lo <= j <= hi }" rendering.
  std::string to_string() const;

 private:
  IntVec lo_;
  IntVec hi_;
};

}  // namespace bitlevel::ir
