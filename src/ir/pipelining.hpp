// Broadcast detection and elimination (Fortes & Moldovan [2]).
//
// In program (2.2) the datum x(j1, j3) is read by all u iterations
// [j1, *, j3]; executing them in parallel would require a broadcast,
// which VLSI arrays avoid. A read is a broadcast exactly when its
// subscript matrix has a nontrivial integer null space: moving along a
// null-space direction does not change the element read, so the datum
// can instead be *pipelined* along that direction, replacing the
// broadcast by the uniform dependence of (2.3) / (3.3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "ir/triplet.hpp"

namespace bitlevel::ir {

/// One broadcast read discovered in a program.
struct BroadcastInfo {
  std::string array;             ///< The broadcast variable.
  std::size_t statement;         ///< Statement index containing the read.
  std::size_t read;              ///< Read index within the statement.
  math::IntMat null_basis;       ///< Basis of the subscript's null space.
  math::IntVec pipelining_dir;   ///< Primitive lexicographically-positive
                                 ///< direction (when the null space is 1-D;
                                 ///< empty otherwise).
};

/// Find every read whose subscript matrix is rank-deficient.
std::vector<BroadcastInfo> find_broadcasts(const Program& program);

/// Normalize a nonzero direction: divide by the gcd of its entries and
/// flip sign so the vector is lexicographically positive.
math::IntVec primitive_direction(const math::IntVec& v);

/// Eliminate broadcasts from a program of the shape (2.2) — a single
/// accumulation statement z(j) = z(j - h3) + x(g1(j)) * y(g2(j)) — and
/// return the pipelined model (3.5) with h1, h2 the pipelining
/// directions and h3 the accumulation vector (exactly the
/// transformation (2.2) -> (2.3) in the paper). Returns std::nullopt if
/// the program does not have the expected shape or a broadcast read has
/// a null space of dimension other than one.
std::optional<WordLevelModel> pipeline_accumulation_program(const Program& program);

/// The paper's (2.1) -> (2.2) transformation: convert a multi-assignment
/// accumulation — a statement writing z(g(j)) and reading z(g(j)) with
/// the same rank-deficient subscript, so each element is written once
/// per point of g's null direction — into single-assignment form by
/// widening z's subscript to the full index vector and turning the
/// accumulation read into z(j - d), d the primitive lexicographically-
/// positive null direction of g. All other reads are untouched. Returns
/// std::nullopt when the program is not a 1-D accumulation of this
/// shape (statement count != 1, null-space dimension != 1, or the write
/// and accumulation read disagree).
std::optional<Program> expand_accumulation(const Program& program);

}  // namespace bitlevel::ir
