#include "ir/pipelining.hpp"

#include "math/gcd.hpp"
#include "math/hnf.hpp"
#include "support/error.hpp"

namespace bitlevel::ir {

namespace {

using math::null_space_basis;

}  // namespace

math::IntVec primitive_direction(const math::IntVec& v) {
  BL_REQUIRE(!math::is_zero(v), "pipelining direction must be nonzero");
  const math::Int g = math::content(v);
  math::IntVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] / g;
  if (!math::lex_positive(out)) out = math::neg(out);
  return out;
}

std::vector<BroadcastInfo> find_broadcasts(const Program& program) {
  std::vector<BroadcastInfo> out;
  for (std::size_t s = 0; s < program.statements.size(); ++s) {
    const Statement& st = program.statements[s];
    for (std::size_t r = 0; r < st.reads.size(); ++r) {
      math::IntMat basis = null_space_basis(st.reads[r].subscript.a);
      if (basis.cols() == 0) continue;
      BroadcastInfo info{st.reads[r].array, s, r, basis, {}};
      if (basis.cols() == 1) info.pipelining_dir = primitive_direction(basis.col(0));
      out.push_back(std::move(info));
    }
  }
  return out;
}

std::optional<WordLevelModel> pipeline_accumulation_program(const Program& program) {
  // Expected shape: one statement, writing z(j) (identity subscript),
  // reading z(j - h3) plus two rank-deficient operand reads.
  if (program.statements.size() != 1) return std::nullopt;
  const Statement& st = program.statements.front();
  const std::size_t n = program.domain.dim();
  if (st.write.subscript.a != math::IntMat::identity(n)) return std::nullopt;
  if (!math::is_zero(st.write.subscript.b)) return std::nullopt;

  std::optional<IntVec> h1, h2, h3;
  int operand = 0;
  for (const auto& read : st.reads) {
    if (read.array == st.write.array) {
      // The accumulation read z(j - h3): subscript must be a translation.
      if (read.subscript.a != math::IntMat::identity(n)) return std::nullopt;
      h3 = math::neg(read.subscript.b);
      continue;
    }
    const math::IntMat basis = null_space_basis(read.subscript.a);
    if (basis.cols() != 1) return std::nullopt;  // not a 1-D broadcast
    IntVec dir = primitive_direction(basis.col(0));
    if (operand == 0) {
      h1 = std::move(dir);
    } else if (operand == 1) {
      h2 = std::move(dir);
    } else {
      return std::nullopt;  // more than two operands
    }
    ++operand;
  }
  if (!h3 || operand != 2) return std::nullopt;

  WordLevelModel m{program.domain, std::move(h1), std::move(h2), std::move(h3), "pipelined", {}};
  m.validate();
  return m;
}

std::optional<Program> expand_accumulation(const Program& program) {
  if (program.statements.size() != 1) return std::nullopt;
  const Statement& st = program.statements.front();
  const std::size_t n = program.domain.dim();

  // The write must be rank-deficient with a 1-D null space (one
  // accumulation direction).
  const math::IntMat basis = null_space_basis(st.write.subscript.a);
  if (basis.cols() != 1) return std::nullopt;
  const IntVec d = primitive_direction(basis.col(0));

  // Rebuild the statement: z subscripted by the full index vector, the
  // accumulation read stepping back along d, everything else verbatim.
  Statement out{{st.write.array, AffineMap::identity(n)}, {}, st.label, st.guard};
  bool found_accumulation_read = false;
  for (const auto& read : st.reads) {
    if (read.array == st.write.array) {
      // Must be the accumulation read z(g(j)) with the same subscript.
      if (read.subscript != st.write.subscript) return std::nullopt;
      out.reads.push_back({st.write.array, AffineMap::translate(math::neg(d)), read.guard});
      found_accumulation_read = true;
    } else {
      out.reads.push_back(read);
    }
  }
  if (!found_accumulation_read) return std::nullopt;

  Program result{program.domain, {std::move(out)}};
  result.validate();
  return result;
}

}  // namespace bitlevel::ir
