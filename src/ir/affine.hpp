// Affine index maps g(j) = A*j + b.
//
// Array subscripts in the paper's algorithm model are linear functions
// of the index vector; AffineMap is that function, used both by the
// executable access-pattern programs (trace analysis) and the exact
// Diophantine dependence test.
#pragma once

#include <string>

#include "math/int_mat.hpp"

namespace bitlevel::ir {

/// g(j) = A*j + b, mapping an n-dimensional index point to an
/// m-dimensional array subscript.
struct AffineMap {
  math::IntMat a;   ///< m x n coefficient matrix.
  math::IntVec b;   ///< m-dimensional offset.

  AffineMap(math::IntMat a_, math::IntVec b_);

  /// Identity map on n coordinates.
  static AffineMap identity(std::size_t n);

  /// Selection map: keeps the listed coordinates, in order.
  /// E.g. select(3, {0, 2}) maps (j1,j2,j3) -> (j1,j3), the access
  /// x(j1, j3) in matrix multiplication.
  static AffineMap select(std::size_t n, const std::vector<std::size_t>& coords);

  /// Translation by `offset` on n coordinates: j -> j + offset.
  static AffineMap translate(const math::IntVec& offset);

  std::size_t domain_dim() const { return a.cols(); }
  std::size_t range_dim() const { return a.rows(); }

  math::IntVec apply(const math::IntVec& j) const;

  bool operator==(const AffineMap& other) const = default;

  std::string to_string() const;
};

}  // namespace bitlevel::ir
