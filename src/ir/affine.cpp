#include "ir/affine.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bitlevel::ir {

AffineMap::AffineMap(math::IntMat a_, math::IntVec b_) : a(std::move(a_)), b(std::move(b_)) {
  BL_REQUIRE(a.rows() == b.size(), "affine offset dimension must equal the matrix row count");
}

AffineMap AffineMap::identity(std::size_t n) {
  return AffineMap(math::IntMat::identity(n), math::IntVec(n, 0));
}

AffineMap AffineMap::select(std::size_t n, const std::vector<std::size_t>& coords) {
  math::IntMat m(coords.size(), n);
  for (std::size_t r = 0; r < coords.size(); ++r) {
    BL_REQUIRE(coords[r] < n, "selected coordinate out of range");
    m.at(r, coords[r]) = 1;
  }
  return AffineMap(std::move(m), math::IntVec(coords.size(), 0));
}

AffineMap AffineMap::translate(const math::IntVec& offset) {
  return AffineMap(math::IntMat::identity(offset.size()), offset);
}

math::IntVec AffineMap::apply(const math::IntVec& j) const { return math::add(a.mul(j), b); }

std::string AffineMap::to_string() const {
  std::ostringstream os;
  os << "A =\n" << a.to_string() << "\nb = " << math::to_string(b);
  return os.str();
}

}  // namespace bitlevel::ir
