#include "ir/dependence.hpp"

#include <sstream>

#include "support/error.hpp"

namespace bitlevel::ir {

DependenceMatrix::DependenceMatrix(std::vector<DependenceVector> columns)
    : columns_(std::move(columns)) {
  for (const auto& c : columns_) {
    BL_REQUIRE(c.d.size() == columns_.front().d.size(),
               "all dependence vectors must have equal dimension");
  }
}

void DependenceMatrix::add(DependenceVector v) {
  if (!columns_.empty()) {
    BL_REQUIRE(v.d.size() == columns_.front().d.size(),
               "all dependence vectors must have equal dimension");
  }
  columns_.push_back(std::move(v));
}

bool DependenceMatrix::all_uniform() const {
  for (const auto& c : columns_) {
    if (!c.is_uniform()) return false;
  }
  return true;
}

math::IntMat DependenceMatrix::as_matrix() const {
  std::vector<IntVec> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(c.d);
  return math::IntMat::from_columns(cols);
}

std::vector<DependenceVector> DependenceMatrix::valid_at(const IntVec& point) const {
  std::vector<DependenceVector> out;
  for (const auto& c : columns_) {
    if (c.valid.contains(point)) out.push_back(c);
  }
  return out;
}

std::string DependenceMatrix::to_string(const std::vector<std::string>& coord_names) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const auto& c = columns_[i];
    os << "d" << (i + 1) << " = " << math::to_string(c.d);
    if (!c.cause.empty()) os << "  cause: " << c.cause;
    if (!c.is_uniform()) os << "  valid at: " << c.valid.to_string(coord_names);
    os << '\n';
  }
  return os.str();
}

}  // namespace bitlevel::ir
