// Dependence vectors and dependence matrices.
//
// A dependence pair (j, d) in the paper says iteration j depends on
// iteration j - d. A DependenceVector here is a distance vector d plus
// (a) the variable that causes it, and (b) the region of the index set
// where it is valid. Uniform dependences have the trivial region. A
// DependenceMatrix is the paper's D: all distinct dependence vectors as
// columns, with per-column validity annotations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/index_set.hpp"
#include "ir/validity.hpp"
#include "math/int_mat.hpp"

namespace bitlevel::ir {

/// One (possibly conditional) dependence vector.
struct DependenceVector {
  IntVec d;                ///< Distance vector (consumer minus producer).
  std::string cause;       ///< Variable responsible, e.g. "x", "y,c", "c'".
  ValidityRegion valid = ValidityRegion::all();  ///< Where the vector applies.

  /// Uniform means valid at every index point.
  bool is_uniform() const { return valid.is_all(); }
};

/// The paper's dependence matrix D: columns are dependence vectors.
class DependenceMatrix {
 public:
  DependenceMatrix() = default;
  explicit DependenceMatrix(std::vector<DependenceVector> columns);

  std::size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const DependenceVector& operator[](std::size_t i) const { return columns_[i]; }
  const std::vector<DependenceVector>& columns() const { return columns_; }

  void add(DependenceVector v);

  /// Dimension of the vectors (0 when empty).
  std::size_t dim() const { return columns_.empty() ? 0 : columns_.front().d.size(); }

  /// True when every dependence vector is uniform (the algorithm is a
  /// uniform dependence algorithm).
  bool all_uniform() const;

  /// The plain integer matrix whose columns are the distance vectors,
  /// dropping cause/validity; this is the D that feasibility conditions
  /// (Pi * D > 0, S * D = P * K) operate on.
  math::IntMat as_matrix() const;

  /// The dependence vectors valid at a specific index point.
  std::vector<DependenceVector> valid_at(const IntVec& point) const;

  /// Rendering with per-column cause and validity annotations, mirroring
  /// the paper's presentation of D_I / D_II.
  std::string to_string(const std::vector<std::string>& coord_names = {}) const;

 private:
  std::vector<DependenceVector> columns_;
};

}  // namespace bitlevel::ir
