#include "sim/lane_block.hpp"

#include <cstdlib>
#include <cstring>

namespace bitlevel::sim {

std::string to_string(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kGeneric:
      return "generic";
    case SimdBackend::kAvx2:
      return "avx2";
  }
  return "?";
}

bool cpu_has_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdBackend simd_backend() {
  const char* env = std::getenv("BITLEVEL_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "generic") == 0) {
      return SimdBackend::kGeneric;
    }
    if (std::strcmp(env, "avx2") == 0) {
      return cpu_has_avx2() ? SimdBackend::kAvx2 : SimdBackend::kGeneric;
    }
    // "auto" and anything unrecognized fall through to detection: a
    // typo must not silently change results (it cannot — both
    // backends are bit-identical), only possibly the speed.
  }
  return cpu_has_avx2() ? SimdBackend::kAvx2 : SimdBackend::kGeneric;
}

}  // namespace bitlevel::sim
