// Cycle-accurate simulation of a mapped algorithm on a systolic array.
//
// A Machine is built from an algorithm (J, D with validity regions), a
// feasible mapping T = [S; Pi], the target's interconnection primitives
// P and the routing matrix K (from the feasibility check). It executes
// the computations in schedule order — computation q runs on PE S*q at
// cycle Pi*q — moving each produced value along its dependence column's
// dedicated wire track, one primitive hop per cycle, and buffering it at
// the consumer until its consumption cycle.
//
// The run verifies the physical invariants the mapping conditions
// promise and reports them as hard errors if violated:
//   - at most one computation per (PE, cycle)        [condition 3],
//   - every operand arrives no later than it is used [condition 2/(4.1)],
// and aggregates the statistics the paper's evaluation talks about:
// total cycles, PE count, PE utilization, link transmissions, total
// wire length traversed, and per-column buffer depths (the paper notes
// d4 needs one buffer register on the [1,0] link of Fig. 4).
//
// Functional semantics are supplied by a ComputeFn: given the index
// point and, per dependence column, a view of the producer's output
// bundle (or the resolved boundary bundle), it returns this
// computation's output bundle. Bundles are fixed-length integer slices
// aligned to a channel-name registry (e.g. {"x","y","z","c","cp"} for
// the bit-level compressor cell).
//
// Two memory modes back the run:
//   - kDense (default): one linearized slot per index point for the
//     whole run, so every point's outputs stay readable via
//     outputs_at() — cache-friendly, but peak memory is
//     O(|J| * channels).
//   - kStreaming: events are generated lazily per Pi-hyperplane (no
//     global event list) and outputs live in a recycling SlotArena; a
//     point's slot is retired once the sliding cycle window of width
//     W = max_i(Pi * d_i) passes it (condition 2 orders every
//     dependence strictly forward, so no later consumer can exist).
//     Peak memory is O(points-in-window * channels). Only points
//     matching MachineConfig::observe stay readable after the run;
//     MachineConfig::on_output sees every point either way. Outputs
//     and statistics are bit-identical to dense mode.
//
// Because every operand comes from a strictly earlier cycle, the events
// within one cycle are independent — embarrassingly parallel, and run()
// fans them out across a worker pool (MachineConfig::threads) with
// deterministic chunking and a chunk-order merge of the statistics, so
// outputs and stats are bit-identical to the serial threads = 1 path.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/dependence.hpp"
#include "ir/index_set.hpp"
#include "mapping/kmatrix.hpp"
#include "mapping/transform.hpp"
#include "sim/lane_block.hpp"
#include "support/cancel.hpp"

namespace bitlevel::sim {

using math::Int;
using math::IntMat;
using math::IntVec;

/// One computation's outputs, aligned to MachineConfig::channels.
/// Entries are full-width integers so word-level PEs (whose values are
/// whole words, not bits) use the same machinery.
using Outputs = std::vector<Int>;

/// What a dependence column delivers to a consumer. `producer` points
/// at a channels-length bundle (the producing computation's outputs, or
/// the resolved boundary bundle when `external`); null when the column
/// is not valid at this point.
struct ColumnInput {
  bool valid = false;     ///< Column valid at this index point.
  bool external = false;  ///< Producer lies outside J (boundary input).
  const Int* producer = nullptr;  ///< Channels-length bundle view.
};

/// Functional cell semantics; `inputs` is indexed like the dependence
/// columns.
using ComputeFn =
    std::function<Outputs(const IntVec& q, const std::vector<ColumnInput>& inputs)>;

/// Boundary values: the output bundle a column would have delivered had
/// its producer existed (e.g. fresh operand bits, zero carries).
using ExternalFn = std::function<Outputs(const IntVec& q, std::size_t column)>;

/// Allocation-free cell semantics: fill the channels-length bundle
/// `out` in place. `out` arrives zero-filled and IS the destination
/// slot, so the hot path constructs no per-event vector. ComputeFn /
/// ExternalFn are adapted onto this form at construction; performance-
/// critical cells (the pipeline compressor) implement it directly.
using ComputeIntoFn = std::function<void(const IntVec& q,
                                         const std::vector<ColumnInput>& inputs, Int* out)>;
using ExternalIntoFn = std::function<void(const IntVec& q, std::size_t column, Int* out)>;

// --- Bit-sliced lane execution (SWAR) ------------------------------
//
// A bit-level cell consumes and produces single bits, yet each bundle
// entry is a full 64-bit slot. Lane execution exploits the spare width:
// bit position b of every channel word carries batch item b's value, so
// ONE event evaluation, ONE routing hop and ONE slot write serve up to
// 64 independent problem instances. Storage, routing, the wavefront
// thread pool, both memory modes and the condition-2/3 invariant checks
// never interpret channel values — they are lane-blind — so the lane
// path reuses the whole machine unchanged. Lanes beyond the batch's
// ragged tail are masked by packing zero operand bits into them: a
// pure-boolean cell then keeps them zero everywhere, which is exactly
// the behaviour of a scalar run over zero operands.
//
// LaneWord and kLaneWidth live in sim/lane_block.hpp, which also
// defines the multi-word LaneBlock<W> groups (128/256/512 lanes) the
// COMPILED executor widens batches with; the interpreted machine path
// here stays single-word (one bundle slot is one Int).

static_assert(sizeof(LaneWord) == sizeof(Int),
              "lane words must occupy exactly one bundle slot");

/// View a stored bundle as packed lane words. Int slots and lane words
/// share size and representation (two's complement), and signed /
/// unsigned variants of the same type may alias.
inline const LaneWord* lane_view(const Int* bundle) {
  return reinterpret_cast<const LaneWord*>(bundle);
}

/// Lane-parallel cell semantics: like ComputeIntoFn, but every channel
/// is a packed LaneWord and the body must be a pure boolean (bitwise)
/// function so all 64 lanes advance with word-parallel operations.
/// `inputs` still exposes Int views; use lane_view() on the bundles.
using LaneComputeFn = std::function<void(const IntVec& q,
                                         const std::vector<ColumnInput>& inputs, LaneWord* out)>;
using LaneExternalFn =
    std::function<void(const IntVec& q, std::size_t column, LaneWord* out)>;

/// How the run stores per-point outputs (see the file comment).
enum class MemoryMode { kDense, kStreaming };

/// Streaming retention predicate: points it accepts survive slot
/// retirement and stay readable via outputs_at() after the run.
using ObservePredicate = std::function<bool(const IntVec& q)>;

/// Per-point output sink, called at the producing cycle's barrier in
/// deterministic (lexicographic-within-cycle) order for every memory
/// mode and thread count. `outputs` is a channels-length view valid
/// only for the duration of the call.
using OutputSink = std::function<void(const IntVec& q, const Int* outputs)>;

/// Fault-injection and recovery hooks, installed by the faults layer
/// (src/faults/injector.hpp). A null MachineConfig::faults is the clean
/// path: every hook site reduces to one pointer test and outputs/stats
/// are bit-identical to a machine without the feature.
///
/// Determinism contract: the mutation hooks may keep bookkeeping state
/// (guarded internally) but the VALUES they write must be pure
/// functions of their arguments — the same (q, column, attempt) always
/// yields the same corruption — so seeded campaigns are bit-identical
/// across thread counts and memory modes. `attempt` is 0 for the first
/// execution of an event and increments with each recovery
/// re-execution; injectors use it as the backoff ordinal (transients
/// re-sample, persistent faults escalate to spare PEs).
struct FaultHooks {
  /// Mutate the bundle q's PE just produced (stuck-at, dead PE).
  using ProduceHook = std::function<void(const IntVec& q, int attempt, Int* bundle)>;
  /// Mutate the bundle consumer q receives over dependence column
  /// `column` (link bit-flip, dropped hop). The machine hands the hook a
  /// private per-transmission copy; the producer's stored bundle is
  /// never altered.
  using TransmitHook =
      std::function<void(const IntVec& q, std::size_t column, int attempt, Int* bundle)>;
  /// Invariant check of a channels-length bundle; false = corrupted.
  using BundleCheck = std::function<bool(const IntVec& q, const Int* bundle)>;

  ProduceHook on_produce;
  TransmitHook on_transmit;
  BundleCheck check_output;  ///< Wavefront monitor over produced bundles.
  BundleCheck check_input;   ///< Link-level monitor over arriving bundles.
  /// Bounded re-executions of a suspect event at the cycle barrier
  /// (0 = detect only). Re-execution reads the still-resident producer
  /// slots, so it works in both memory modes.
  int max_retries = 0;
};

/// Static description of the machine.
struct MachineConfig {
  ir::IndexSet domain;
  ir::DependenceMatrix deps;
  mapping::MappingMatrix t;
  mapping::InterconnectionPrimitives prims;
  IntMat k;                            ///< Routing matrix (prims x deps).
  std::vector<std::string> channels;   ///< Output bundle layout.
  /// Worker threads fanning out each cycle's events. 0 = the
  /// BITLEVEL_THREADS environment variable, else hardware concurrency;
  /// 1 = the exact serial code path. With threads > 1 the compute and
  /// external functions must be thread-safe (pure functions of their
  /// arguments) — every cell body in this repository is.
  int threads = 0;
  /// Output storage policy. kStreaming bounds peak memory by the
  /// dependence window instead of the domain size.
  MemoryMode memory = MemoryMode::kDense;
  /// Streaming only: points to retain for outputs_at() after the run
  /// (null retains nothing). Ignored in dense mode, where every point
  /// is retained.
  ObservePredicate observe = nullptr;
  /// Optional per-point sink; see OutputSink. Works in both modes.
  OutputSink on_output = nullptr;
  /// Fault-injection & recovery hooks; null = clean run (see FaultHooks).
  std::shared_ptr<const FaultHooks> faults = nullptr;
  /// Cooperative cancellation, polled once per wavefront pass (before
  /// each cycle's events run). A fired check throws
  /// DeadlineExceededError between passes, so the run either completes
  /// a full cycle barrier or stops clean — never mid-cycle. A null
  /// token (the default) costs one pointer test per pass.
  CancelToken cancel;
};

/// Aggregate results of a run.
struct SimulationStats {
  Int first_cycle = 0;
  Int last_cycle = 0;
  Int cycles = 0;            ///< last - first + 1 (the paper's total time).
  Int pe_count = 0;
  Int computations = 0;
  double pe_utilization = 0.0;     ///< computations / (pe_count * cycles).
  Int link_transmissions = 0;      ///< Total primitive hops taken.
  Int wire_length = 0;             ///< Sum of L1 lengths of those hops.
  Int buffered_value_cycles = 0;   ///< Total cycles values waited in buffers.
  std::vector<Int> buffer_depth;   ///< Per column: slack = Pi*d - hops.
  Int peak_parallelism = 0;        ///< Max computations in one cycle.
  int threads_used = 1;            ///< Lanes the run fanned events over.
  /// High-water mark of simultaneously resident output slots: |J| in
  /// dense mode, the dependence-window occupancy in streaming mode.
  /// The only stats (with observed_points) that legitimately differ
  /// between memory modes.
  Int peak_live_slots = 0;
  Int observed_points = 0;   ///< Points readable via outputs_at() after the run.

  // Fault-tolerance accounting, populated only when FaultHooks with
  // checks are installed (all zero / empty on clean runs, which keeps
  // every pre-existing field and to_string() bit-identical to a machine
  // without the feature).
  Int faults_detected = 0;         ///< Events flagged by the wavefront monitor.
  Int faults_recovered = 0;        ///< Flagged events clean after re-execution.
  Int recovery_reexecutions = 0;   ///< Total recovery re-runs performed.
  /// Points still corrupted after retries exhausted (cycle order,
  /// lexicographic within a cycle — deterministic).
  std::vector<IntVec> degraded_points;

  std::string to_string() const;
};

/// The simulator.
class Machine {
 public:
  Machine(MachineConfig config, ComputeFn compute, ExternalFn external);

  /// Allocation-free form: the cell writes straight into the
  /// destination slot (see ComputeIntoFn).
  Machine(MachineConfig config, ComputeIntoFn compute, ExternalIntoFn external);

  /// Bit-sliced lane form: one run carries up to kLaneWidth independent
  /// problem instances, one per bit position of every channel word.
  Machine(MachineConfig config, LaneComputeFn compute, LaneExternalFn external);

  /// Execute all computations in schedule order. Throws Error on any
  /// physical-invariant violation. Single-shot per instance.
  SimulationStats run();

  /// Channels-length view of the outputs at q (valid after run()). In
  /// streaming mode only points accepted by MachineConfig::observe are
  /// available; anything else throws.
  const Int* outputs_at(const IntVec& q) const;

  /// True when q was computed and retained (valid after run()).
  bool has_outputs(const IntVec& q) const;

  const MachineConfig& config() const { return config_; }

 private:
  std::size_t linear_index(const IntVec& q) const;
  void init();  ///< Shared constructor tail: validation + strides.

  MachineConfig config_;
  ComputeIntoFn compute_;    ///< Every constructor form adapts onto this.
  ExternalIntoFn external_;
  std::vector<Int> strides_;      ///< Row-major strides of the domain box.
  std::vector<Int> outputs_;      ///< Dense: flat, point-linear * channels.
  std::vector<char> computed_;    ///< Dense: per point, outputs valid.
  /// Streaming: observed points, point-linear -> slot into observed_data_.
  std::unordered_map<std::size_t, std::size_t> observed_slot_;
  std::vector<Int> observed_data_;
  bool ran_ = false;
};

}  // namespace bitlevel::sim
