#include "sim/machine.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "sim/slot_arena.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace bitlevel::sim {

namespace {

// Lazy wavefront generation: enumerate, in lexicographic order, the
// points of a box lying on the hyperplane Pi . q == cycle. Suffix
// bounds of the remaining coordinates prune the scan, so a sweep over
// all cycles costs O(|J| * n) total instead of materializing a global
// event list. Lexicographic order within a cycle matches the dense
// executor's stable sort exactly.
class WavefrontEnumerator {
 public:
  WavefrontEnumerator(const ir::IndexSet& domain, const IntVec& pi)
      : lo_(domain.lower()), hi_(domain.upper()), pi_(pi) {
    const std::size_t n = lo_.size();
    sufmin_.assign(n + 1, 0);
    sufmax_.assign(n + 1, 0);
    for (std::size_t i = n; i-- > 0;) {
      const Int a = math::checked_mul(pi_[i], lo_[i]);
      const Int b = math::checked_mul(pi_[i], hi_[i]);
      sufmin_[i] = math::checked_add(sufmin_[i + 1], std::min(a, b));
      sufmax_[i] = math::checked_add(sufmax_[i + 1], std::max(a, b));
    }
  }

  /// Min / max of Pi . q over the box (both attained at corners).
  Int first_cycle() const { return sufmin_[0]; }
  Int last_cycle() const { return sufmax_[0]; }

  /// Append every q with Pi . q == cycle to `out`, lexicographically.
  void collect(Int cycle, std::vector<IntVec>& out) const {
    IntVec q(lo_.size(), 0);
    descend(0, cycle, q, out);
  }

 private:
  void descend(std::size_t k, Int rem, IntVec& q, std::vector<IntVec>& out) const {
    const std::size_t n = lo_.size();
    if (k == n - 1) {
      // Solve pi_k * q_k == rem directly instead of scanning.
      if (pi_[k] == 0) {
        if (rem != 0) return;
        for (Int v = lo_[k]; v <= hi_[k]; ++v) {
          q[k] = v;
          out.push_back(q);
        }
      } else if (rem % pi_[k] == 0) {
        const Int v = rem / pi_[k];
        if (v >= lo_[k] && v <= hi_[k]) {
          q[k] = v;
          out.push_back(q);
        }
      }
      return;
    }
    for (Int v = lo_[k]; v <= hi_[k]; ++v) {
      const Int rest = rem - pi_[k] * v;
      if (rest < sufmin_[k + 1] || rest > sufmax_[k + 1]) continue;
      q[k] = v;
      descend(k + 1, rest, q, out);
    }
  }

  IntVec lo_, hi_, pi_;
  IntVec sufmin_, sufmax_;  ///< Bounds of sum_{i >= k} pi_i * q_i.
};

}  // namespace

std::string SimulationStats::to_string() const {
  std::ostringstream os;
  os << "cycles " << cycles << " (t = " << first_cycle << ".." << last_cycle << "), PEs "
     << pe_count << ", computations " << computations << ", utilization " << pe_utilization
     << ", hops " << link_transmissions << ", wire length " << wire_length
     << ", buffered value-cycles " << buffered_value_cycles << ", peak parallelism "
     << peak_parallelism << ", threads " << threads_used << ", peak live slots "
     << peak_live_slots << ", observed points " << observed_points;
  if (faults_detected != 0 || recovery_reexecutions != 0 || !degraded_points.empty()) {
    os << ", faults detected " << faults_detected << " (recovered " << faults_recovered
       << ", reexecutions " << recovery_reexecutions << ", degraded " << degraded_points.size()
       << ")";
  }
  return os.str();
}

Machine::Machine(MachineConfig config, ComputeIntoFn compute, ExternalIntoFn external)
    : config_(std::move(config)), compute_(std::move(compute)), external_(std::move(external)) {
  init();
}

Machine::Machine(MachineConfig config, ComputeFn compute, ExternalFn external)
    : config_(std::move(config)) {
  BL_REQUIRE(static_cast<bool>(compute), "compute function required");
  BL_REQUIRE(static_cast<bool>(external), "external-input function required");
  // Adapt the by-value form: the returned bundle is copied into the
  // destination slot, preserving the historical fill-every-channel
  // check. Cells on the hot path should use the Into forms instead.
  const std::size_t nch = config_.channels.size();
  compute_ = [fn = std::move(compute), nch](const IntVec& q,
                                            const std::vector<ColumnInput>& inputs, Int* out) {
    const Outputs produced = fn(q, inputs);
    BL_REQUIRE(produced.size() == nch, "compute function must fill every channel");
    std::copy(produced.begin(), produced.end(), out);
  };
  external_ = [fn = std::move(external), nch](const IntVec& q, std::size_t column, Int* out) {
    const Outputs produced = fn(q, column);
    BL_REQUIRE(produced.size() == nch, "external function must fill every channel");
    std::copy(produced.begin(), produced.end(), out);
  };
  init();
}

Machine::Machine(MachineConfig config, LaneComputeFn compute, LaneExternalFn external)
    : config_(std::move(config)) {
  BL_REQUIRE(static_cast<bool>(compute), "compute function required");
  BL_REQUIRE(static_cast<bool>(external), "external-input function required");
  // Lane bundles live in the same Int slots (see lane_view); only the
  // destination pointer changes type.
  compute_ = [fn = std::move(compute)](const IntVec& q, const std::vector<ColumnInput>& inputs,
                                       Int* out) {
    fn(q, inputs, reinterpret_cast<LaneWord*>(out));
  };
  external_ = [fn = std::move(external)](const IntVec& q, std::size_t column, Int* out) {
    fn(q, column, reinterpret_cast<LaneWord*>(out));
  };
  init();
}

void Machine::init() {
  BL_REQUIRE(config_.domain.dim() >= 1, "domain must have at least one dimension");
  BL_REQUIRE(config_.deps.empty() || config_.deps.dim() == config_.domain.dim(),
             "dependence dimension must match the domain");
  BL_REQUIRE(config_.t.n() == config_.domain.dim(), "mapping dimension must match the domain");
  BL_REQUIRE(config_.k.rows() == config_.prims.count() && config_.k.cols() == config_.deps.size(),
             "routing matrix shape must be (primitives x dependences)");
  BL_REQUIRE(static_cast<bool>(compute_), "compute function required");
  BL_REQUIRE(static_cast<bool>(external_), "external-input function required");
  BL_REQUIRE(!config_.channels.empty(), "at least one output channel required");

  // Row-major strides over the domain box for flat indexing.
  const std::size_t n = config_.domain.dim();
  strides_.assign(n, 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    const Int extent =
        config_.domain.upper()[i + 1] - config_.domain.lower()[i + 1] + 1;
    strides_[i] = math::checked_mul(strides_[i + 1], extent);
  }
}

std::size_t Machine::linear_index(const IntVec& q) const {
  Int at = 0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    at += strides_[i] * (q[i] - config_.domain.lower()[i]);
  }
  return static_cast<std::size_t>(at);
}

SimulationStats Machine::run() {
  BL_REQUIRE(!ran_, "Machine::run is single-shot; construct a new machine to rerun");
  ran_ = true;

  // Fail degenerate domains before any statistics work.
  const std::size_t npoints = static_cast<std::size_t>(config_.domain.size());
  BL_REQUIRE(npoints > 0, "empty domain");

  const IntVec pi = config_.t.schedule();
  const IntMat space = config_.t.space();
  const std::size_t ncols = config_.deps.size();
  const std::size_t nch = config_.channels.size();
  const bool streaming = config_.memory == MemoryMode::kStreaming;

  // Per-column hop count and slack, from K (static routes); the widest
  // forward distance is the streaming retirement window.
  IntVec hops(ncols, 0);
  IntVec wire(ncols, 0);
  Int window = 0;
  SimulationStats stats;
  stats.buffer_depth.assign(ncols, 0);
  for (std::size_t i = 0; i < ncols; ++i) {
    for (std::size_t j = 0; j < config_.prims.count(); ++j) {
      const Int uses = config_.k.at(j, i);
      BL_REQUIRE(uses >= 0, "routing counts must be nonnegative");
      hops[i] = math::checked_add(hops[i], uses);
      wire[i] = math::checked_add(
          wire[i], math::checked_mul(uses, math::l1_norm(config_.prims.p.col(j))));
    }
    const Int forward = math::dot(pi, config_.deps[i].d);
    // Condition 2: every operand comes from a strictly earlier cycle.
    // This is also what makes the intra-cycle fan-out race-free.
    BL_REQUIRE(forward >= 1,
               "schedule must order every dependence strictly forward (condition 2)");
    const Int slack = math::checked_sub(forward, hops[i]);
    BL_REQUIRE(slack >= 0, "routing uses more hops than the schedule allows (4.1)");
    stats.buffer_depth[static_cast<std::size_t>(i)] = slack;
    window = std::max(window, forward);
  }

  const WavefrontEnumerator wavefronts(config_.domain, pi);
  stats.first_cycle = wavefronts.first_cycle();
  stats.last_cycle = wavefronts.last_cycle();
  stats.cycles = stats.last_cycle - stats.first_cycle + 1;

  SlotArena arena(nch);
  // Fault runs re-read producer slots during recovery; retirement
  // tracking turns any window-logic slip into a specific fast failure.
  if (streaming && config_.faults != nullptr) arena.track_retired(true);
  if (!streaming) {
    outputs_.assign(npoints * nch, 0);
    computed_.assign(npoints, 0);
  }

  const std::size_t nthreads = support::ThreadPool::resolve_threads(config_.threads);
  stats.threads_used = static_cast<int>(nthreads);
  auto& pool = support::ThreadPool::shared();

  // Per-chunk accounting, merged into `stats` in chunk order at each
  // cycle barrier; integer addition is associative, so the totals are
  // bit-identical to the serial order.
  struct Accum {
    Int link = 0;
    Int wire_len = 0;
    Int buffered = 0;
    Int computations = 0;
  };

  // Fault hooks: null on clean runs, where every hook site below is a
  // single pointer test.
  const FaultHooks* fh = config_.faults.get();
  const bool fault_checks = fh != nullptr && (fh->check_output || fh->check_input);

  // One event: resolve operands, verify timing, compute, store. The
  // scratch buffers are per-thread so the fan-out shares nothing but
  // the (disjoint) destination slots and earlier cycles' results.
  // `scratch` holds one private nch-wide staging slot per column
  // (externals land there; fault runs copy resident bundles there so
  // monitors and injectors never touch the producer's stored value).
  // `attempt` is 0 on the first execution and counts recovery re-runs.
  // Returns false when the link-level fault check flagged an arriving
  // bundle as corrupted.
  const auto execute_event = [&](const IntVec& q, Int cycle, std::size_t linear, Int* dest,
                                 Accum& acc, std::vector<ColumnInput>& inputs, Int* scratch,
                                 int attempt) {
    bool inputs_ok = true;
    for (std::size_t i = 0; i < ncols; ++i) {
      inputs[i] = ColumnInput{};
      const auto& col = config_.deps[i];
      if (!col.valid.contains(q)) continue;
      inputs[i].valid = true;
      const IntVec producer = math::sub(q, col.d);
      Int* const view = scratch + i * nch;
      const Int* bundle;
      if (!config_.domain.contains(producer)) {
        inputs[i].external = true;
        std::fill(view, view + nch, 0);
        external_(q, i, view);
        bundle = view;
      } else {
        const std::size_t slot = linear_index(producer);
        // Condition 2 keeps producers strictly earlier than consumers and
        // the window retains them through their last consumption cycle,
        // so a miss in either store is a schedule violation.
        if (streaming) {
          bundle = arena.find(slot);
        } else {
          bundle = computed_[slot] != 0 ? outputs_.data() + slot * nch : nullptr;
        }
        BL_REQUIRE(bundle != nullptr,
                   "operand not yet produced — schedule violates a dependence");
        // Timing: the value left the producer at Pi*producer, took
        // hops[i] link cycles, and must have arrived by now.
        const Int produced = math::dot(pi, producer);
        BL_REQUIRE(produced + hops[i] <= cycle,
                   "operand arrives after its consumption cycle — (4.1) violated");
        // Accounting: hops and the buffer wait at the consumer.
        acc.link = math::checked_add(acc.link, hops[i]);
        acc.wire_len = math::checked_add(acc.wire_len, wire[i]);
        acc.buffered = math::checked_add(acc.buffered, cycle - produced - hops[i]);
      }
      // Transmission boundary: the consumer receives a private copy the
      // injector may corrupt and the link-level monitor inspects.
      // External bundles are already staged in the column's view;
      // resident slots are copied there so the producer's stored value
      // stays pristine for other consumers.
      if (fh != nullptr && (fh->on_transmit || fh->check_input)) {
        if (!inputs[i].external) {
          std::copy(bundle, bundle + nch, view);
          bundle = view;
        }
        if (fh->on_transmit) fh->on_transmit(q, i, attempt, view);
        if (fh->check_input && !fh->check_input(q, view)) inputs_ok = false;
      }
      inputs[i].producer = bundle;
    }

    std::fill(dest, dest + nch, 0);
    if (fault_checks) {
      // A corrupted operand can trip the cell's capacity precondition
      // before any monitor sees the bundle. Under fault checks that is
      // a detection, not an abort: emit an all-zero (parity-failing)
      // bundle and report the event bad so barrier recovery retries it.
      try {
        compute_(q, inputs, dest);
      } catch (const OverflowError&) {
        std::fill(dest, dest + nch, 0);
        inputs_ok = false;
      }
    } else {
      compute_(q, inputs, dest);
    }
    // Produce boundary: the PE's output register may be faulty.
    if (fh != nullptr && fh->on_produce) fh->on_produce(q, attempt, dest);
    if (!streaming) computed_[linear] = 1;
    ++acc.computations;
    return inputs_ok;
  };

  const auto merge = [&](const Accum& acc) {
    stats.link_transmissions = math::checked_add(stats.link_transmissions, acc.link);
    stats.wire_length = math::checked_add(stats.wire_length, acc.wire_len);
    stats.buffered_value_cycles = math::checked_add(stats.buffered_value_cycles, acc.buffered);
    stats.computations = math::checked_add(stats.computations, acc.computations);
  };

  std::set<IntVec> pes;
  // Per-thread scratch reused across all cycles: operand descriptors
  // plus one nch-wide staging slot per column. Fan-out chunk c owns
  // thread_inputs[c]/thread_scratch[c]; the serial and recovery paths
  // use slot 0. Reuse removes the per-event vector constructions that
  // previously dominated the dense 16x16x16 profile.
  std::vector<std::vector<ColumnInput>> thread_inputs(nthreads,
                                                      std::vector<ColumnInput>(ncols));
  std::vector<std::vector<Int>> thread_scratch(nthreads, std::vector<Int>(ncols * nch, 0));
  std::vector<IntVec> cycle_pes;  // conflict check within one cycle
  std::vector<Accum> accums(nthreads);
  std::vector<std::size_t> linears;
  std::vector<Int*> dests;
  std::vector<char> event_input_ok;  // per-event link-check verdicts (fault runs)
  // Streaming: cycles still inside the retirement window, oldest first.
  std::deque<std::pair<Int, std::vector<std::size_t>>> resident;

  // One schedule hyperplane: conflict-check the PEs, resolve every
  // event's destination slot, fan the events out, then do the barrier
  // work (stats merge, sinks, observation, retirement). `qat(i)` yields
  // the cycle's i-th event point in lexicographic order.
  const auto process_cycle = [&](Int cycle, std::size_t count, auto&& qat) {
    stats.peak_parallelism = std::max(stats.peak_parallelism, static_cast<Int>(count));
    // Fan out only when the wavefront is wide enough to amortize the
    // barrier; the threshold never changes results (chunk merges are
    // associative), only where the serial/parallel line sits.
    constexpr std::size_t kMinFanOut = 16;
    const bool fan_out = nthreads > 1 && count >= kMinFanOut;

    // Physical invariant: one computation per (PE, cycle). Events from
    // earlier cycles cannot collide with this cycle, so checking within
    // the cycle suffices. The PE coordinates are computed in parallel
    // (disjoint slots), the check itself runs at the barrier.
    cycle_pes.assign(count, IntVec{});
    if (fan_out) {
      pool.parallel_for(nthreads, 0, count, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) cycle_pes[i] = space.mul(qat(i));
      });
    } else {
      for (std::size_t i = 0; i < count; ++i) cycle_pes[i] = space.mul(qat(i));
    }
    std::sort(cycle_pes.begin(), cycle_pes.end());
    for (std::size_t e = 1; e < cycle_pes.size(); ++e) {
      BL_REQUIRE(cycle_pes[e] != cycle_pes[e - 1],
                 "computational conflict at a (PE, cycle) pair — mapping is infeasible");
    }
    for (auto& pe : cycle_pes) pes.insert(std::move(pe));

    // Resolve destination slots up front: arena mutation happens only
    // here at the barrier, so the fan-out below reads a frozen arena
    // (and the returned pointers stay valid through the cycle).
    linears.assign(count, 0);
    dests.assign(count, nullptr);
    for (std::size_t i = 0; i < count; ++i) linears[i] = linear_index(qat(i));
    if (streaming) {
      for (std::size_t i = 0; i < count; ++i) arena.acquire(linears[i]);
      for (std::size_t i = 0; i < count; ++i) dests[i] = arena.slot_data(linears[i]);
    } else {
      for (std::size_t i = 0; i < count; ++i) dests[i] = outputs_.data() + linears[i] * nch;
    }

    // All operands of this cycle's events come from strictly earlier
    // cycles, so the events are mutually independent: fan them out.
    // Exceptions surface from the lowest chunk — the same event the
    // serial order would have failed on first.
    if (fault_checks) event_input_ok.assign(count, 1);
    if (fan_out) {
      std::fill(accums.begin(), accums.end(), Accum{});
      pool.parallel_for(nthreads, 0, count, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        std::vector<ColumnInput>& local_inputs = thread_inputs[chunk];
        Int* const local_scratch = thread_scratch[chunk].data();
        for (std::size_t i = lo; i < hi; ++i) {
          const bool ok = execute_event(qat(i), cycle, linears[i], dests[i], accums[chunk],
                                        local_inputs, local_scratch, 0);
          if (fault_checks) event_input_ok[i] = ok ? 1 : 0;
        }
      });
      for (const Accum& acc : accums) merge(acc);
    } else {
      Accum acc;
      for (std::size_t i = 0; i < count; ++i) {
        const bool ok = execute_event(qat(i), cycle, linears[i], dests[i], acc, thread_inputs[0],
                                      thread_scratch[0].data(), 0);
        if (fault_checks) event_input_ok[i] = ok ? 1 : 0;
      }
      merge(acc);
    }

    // Fault recovery: the wavefront monitor inspects every produced
    // bundle at the barrier (plus the link-check verdicts gathered
    // during the fan-out) and re-executes suspect events serially with
    // an escalating attempt ordinal — their operands are still resident
    // in both memory modes, and retirement only happens below. Replay
    // statistics go to a scratch accumulator so hops and computations
    // are counted exactly once per event. Survivors of max_retries are
    // recorded as degraded instead of aborting the run.
    if (fault_checks) {
      std::vector<std::size_t> suspects;
      for (std::size_t i = 0; i < count; ++i) {
        const bool out_ok = !fh->check_output || fh->check_output(qat(i), dests[i]);
        if (event_input_ok[i] == 0 || !out_ok) suspects.push_back(i);
      }
      const std::size_t flagged = suspects.size();
      for (int attempt = 1; attempt <= fh->max_retries && !suspects.empty(); ++attempt) {
        std::vector<std::size_t> still_bad;
        for (const std::size_t i : suspects) {
          Accum replay;
          const bool in_ok = execute_event(qat(i), cycle, linears[i], dests[i], replay,
                                           thread_inputs[0], thread_scratch[0].data(), attempt);
          stats.recovery_reexecutions = math::checked_add(stats.recovery_reexecutions, 1);
          const bool out_ok = !fh->check_output || fh->check_output(qat(i), dests[i]);
          if (!in_ok || !out_ok) still_bad.push_back(i);
        }
        suspects.swap(still_bad);
      }
      stats.faults_detected = math::checked_add(stats.faults_detected, static_cast<Int>(flagged));
      stats.faults_recovered = math::checked_add(
          stats.faults_recovered, static_cast<Int>(flagged - suspects.size()));
      for (const std::size_t i : suspects) stats.degraded_points.push_back(qat(i));
    }

    // Barrier work: sinks and observation see finished, ordered events.
    if (config_.on_output) {
      for (std::size_t i = 0; i < count; ++i) config_.on_output(qat(i), dests[i]);
    }
    if (streaming) {
      if (config_.observe) {
        for (std::size_t i = 0; i < count; ++i) {
          if (!config_.observe(qat(i))) continue;
          observed_slot_.emplace(linears[i], observed_data_.size() / nch);
          observed_data_.insert(observed_data_.end(), dests[i], dests[i] + nch);
        }
      }
      // Retire every cycle the window has passed: a value produced at
      // cycle t is last consumed at t + window.
      resident.emplace_back(cycle, std::vector<std::size_t>(linears.begin(),
                                                            linears.begin() + count));
      while (!resident.empty() && resident.front().first + window <= cycle) {
        for (const std::size_t key : resident.front().second) arena.release(key);
        resident.pop_front();
      }
    }
  };

  if (!streaming) {
    // Dense: one pre-sorted event list (stable within a cycle:
    // lexicographic domain order). Every point appears exactly once.
    struct Event {
      Int cycle;
      IntVec q;
    };
    std::vector<Event> events;
    events.reserve(npoints);
    config_.domain.for_each([&](const IntVec& q) {
      events.push_back({math::dot(pi, q), q});
      return true;
    });
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.cycle < b.cycle; });
    std::size_t at = 0;
    while (at < events.size()) {
      config_.cancel.check("wavefront pass");
      // The half-open range of events sharing this cycle.
      const Int cycle = events[at].cycle;
      std::size_t end = at;
      while (end < events.size() && events[end].cycle == cycle) ++end;
      process_cycle(cycle, end - at,
                    [&](std::size_t i) -> const IntVec& { return events[at + i].q; });
      at = end;
    }
    stats.peak_live_slots = static_cast<Int>(npoints);
    stats.observed_points = static_cast<Int>(npoints);
  } else {
    // Streaming: walk the schedule hyperplanes in cycle order, never
    // materializing more than one wavefront of events.
    std::vector<IntVec> wavefront;
    std::size_t executed = 0;
    for (Int cycle = stats.first_cycle; cycle <= stats.last_cycle; ++cycle) {
      wavefront.clear();
      wavefronts.collect(cycle, wavefront);
      if (wavefront.empty()) continue;
      config_.cancel.check("wavefront pass");
      process_cycle(cycle, wavefront.size(),
                    [&](std::size_t i) -> const IntVec& { return wavefront[i]; });
      executed += wavefront.size();
    }
    BL_REQUIRE(executed == npoints, "wavefront enumeration missed index points");
    stats.peak_live_slots = static_cast<Int>(arena.peak_live());
    stats.observed_points = static_cast<Int>(observed_slot_.size());
  }

  stats.pe_count = static_cast<Int>(pes.size());
  // Degenerate runs (no PEs or no cycles) define utilization as 0
  // instead of dividing by zero.
  stats.pe_utilization = stats.pe_count > 0 && stats.cycles > 0
                             ? static_cast<double>(stats.computations) /
                                   (static_cast<double>(stats.pe_count) *
                                    static_cast<double>(stats.cycles))
                             : 0.0;
  return stats;
}

const Int* Machine::outputs_at(const IntVec& q) const {
  BL_REQUIRE(config_.domain.contains(q), "index point outside the domain");
  const std::size_t slot = linear_index(q);
  if (config_.memory == MemoryMode::kDense) {
    BL_REQUIRE(!computed_.empty() && computed_[slot] != 0,
               "no outputs recorded at the requested index point");
    return outputs_.data() + slot * config_.channels.size();
  }
  const auto it = observed_slot_.find(slot);
  BL_REQUIRE(it != observed_slot_.end(),
             "no outputs recorded at the requested index point "
             "(streaming mode retains only observed points)");
  return observed_data_.data() + it->second * config_.channels.size();
}

bool Machine::has_outputs(const IntVec& q) const {
  if (!config_.domain.contains(q)) return false;
  const std::size_t slot = linear_index(q);
  if (config_.memory == MemoryMode::kDense) {
    return !computed_.empty() && computed_[slot] != 0;
  }
  return observed_slot_.find(slot) != observed_slot_.end();
}

}  // namespace bitlevel::sim
