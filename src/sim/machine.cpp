#include "sim/machine.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace bitlevel::sim {

std::string SimulationStats::to_string() const {
  std::ostringstream os;
  os << "cycles " << cycles << " (t = " << first_cycle << ".." << last_cycle << "), PEs "
     << pe_count << ", computations " << computations << ", utilization " << pe_utilization
     << ", hops " << link_transmissions << ", wire length " << wire_length
     << ", buffered value-cycles " << buffered_value_cycles << ", peak parallelism "
     << peak_parallelism << ", threads " << threads_used;
  return os.str();
}

Machine::Machine(MachineConfig config, ComputeFn compute, ExternalFn external)
    : config_(std::move(config)), compute_(std::move(compute)), external_(std::move(external)) {
  BL_REQUIRE(config_.domain.dim() >= 1, "domain must have at least one dimension");
  BL_REQUIRE(config_.deps.empty() || config_.deps.dim() == config_.domain.dim(),
             "dependence dimension must match the domain");
  BL_REQUIRE(config_.t.n() == config_.domain.dim(), "mapping dimension must match the domain");
  BL_REQUIRE(config_.k.rows() == config_.prims.count() && config_.k.cols() == config_.deps.size(),
             "routing matrix shape must be (primitives x dependences)");
  BL_REQUIRE(static_cast<bool>(compute_), "compute function required");
  BL_REQUIRE(static_cast<bool>(external_), "external-input function required");
  BL_REQUIRE(!config_.channels.empty(), "at least one output channel required");

  // Row-major strides over the domain box for flat indexing.
  const std::size_t n = config_.domain.dim();
  strides_.assign(n, 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    const Int extent =
        config_.domain.upper()[i + 1] - config_.domain.lower()[i + 1] + 1;
    strides_[i] = math::checked_mul(strides_[i + 1], extent);
  }
}

std::size_t Machine::linear_index(const IntVec& q) const {
  Int at = 0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    at += strides_[i] * (q[i] - config_.domain.lower()[i]);
  }
  return static_cast<std::size_t>(at);
}

SimulationStats Machine::run() {
  BL_REQUIRE(!ran_, "Machine::run is single-shot; construct a new machine to rerun");
  ran_ = true;

  // Fail degenerate domains before any statistics work.
  const std::size_t npoints = static_cast<std::size_t>(config_.domain.size());
  BL_REQUIRE(npoints > 0, "empty domain");

  const IntVec pi = config_.t.schedule();
  const IntMat space = config_.t.space();
  const std::size_t ncols = config_.deps.size();
  const std::size_t nch = config_.channels.size();

  // Per-column hop count and slack, from K (static routes).
  IntVec hops(ncols, 0);
  IntVec wire(ncols, 0);
  SimulationStats stats;
  stats.buffer_depth.assign(ncols, 0);
  for (std::size_t i = 0; i < ncols; ++i) {
    for (std::size_t j = 0; j < config_.prims.count(); ++j) {
      const Int uses = config_.k.at(j, i);
      BL_REQUIRE(uses >= 0, "routing counts must be nonnegative");
      hops[i] = math::checked_add(hops[i], uses);
      wire[i] = math::checked_add(
          wire[i], math::checked_mul(uses, math::l1_norm(config_.prims.p.col(j))));
    }
    const Int forward = math::dot(pi, config_.deps[i].d);
    // Condition 2: every operand comes from a strictly earlier cycle.
    // This is also what makes the intra-cycle fan-out race-free.
    BL_REQUIRE(forward >= 1,
               "schedule must order every dependence strictly forward (condition 2)");
    const Int slack = math::checked_sub(forward, hops[i]);
    BL_REQUIRE(slack >= 0, "routing uses more hops than the schedule allows (4.1)");
    stats.buffer_depth[static_cast<std::size_t>(i)] = slack;
  }

  // Event list sorted by cycle (stable within a cycle: lexicographic
  // domain order). Every point appears exactly once.
  struct Event {
    Int cycle;
    IntVec q;
  };
  std::vector<Event> events;
  events.reserve(npoints);
  config_.domain.for_each([&](const IntVec& q) {
    events.push_back({math::dot(pi, q), q});
    return true;
  });
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.cycle < b.cycle; });
  stats.first_cycle = events.front().cycle;
  stats.last_cycle = events.back().cycle;
  stats.cycles = stats.last_cycle - stats.first_cycle + 1;

  outputs_.assign(npoints * nch, 0);
  computed_.assign(npoints, 0);

  const std::size_t nthreads = support::ThreadPool::resolve_threads(config_.threads);
  stats.threads_used = static_cast<int>(nthreads);
  auto& pool = support::ThreadPool::shared();

  // Per-chunk accounting, merged into `stats` in chunk order at each
  // cycle barrier; integer addition is associative, so the totals are
  // bit-identical to the serial order.
  struct Accum {
    Int link = 0;
    Int wire_len = 0;
    Int buffered = 0;
    Int computations = 0;
  };

  // One event: resolve operands, verify timing, compute, store. The
  // scratch vectors are per-thread so the fan-out shares nothing but
  // the (disjoint) output slots and earlier cycles' results.
  const auto execute_event = [&](const Event& ev, Accum& acc, std::vector<ColumnInput>& inputs,
                                 std::vector<Outputs>& resolved_externals) {
    const IntVec& q = ev.q;
    const Int cycle = ev.cycle;
    resolved_externals.clear();
    resolved_externals.reserve(ncols);
    for (std::size_t i = 0; i < ncols; ++i) {
      inputs[i] = ColumnInput{};
      const auto& col = config_.deps[i];
      if (!col.valid.contains(q)) continue;
      inputs[i].valid = true;
      const IntVec producer = math::sub(q, col.d);
      if (!config_.domain.contains(producer)) {
        inputs[i].external = true;
        resolved_externals.push_back(external_(q, i));
        BL_REQUIRE(resolved_externals.back().size() == nch,
                   "external function must fill every channel");
        inputs[i].producer = resolved_externals.back().data();
        continue;
      }
      const std::size_t slot = linear_index(producer);
      BL_REQUIRE(computed_[slot] != 0,
                 "operand not yet produced — schedule violates a dependence");
      // Timing: the value left the producer at Pi*producer, took
      // hops[i] link cycles, and must have arrived by now.
      const Int produced = math::dot(pi, producer);
      BL_REQUIRE(produced + hops[i] <= cycle,
                 "operand arrives after its consumption cycle — (4.1) violated");
      inputs[i].producer = outputs_.data() + slot * nch;
      // Accounting: hops and the buffer wait at the consumer.
      acc.link = math::checked_add(acc.link, hops[i]);
      acc.wire_len = math::checked_add(acc.wire_len, wire[i]);
      acc.buffered = math::checked_add(acc.buffered, cycle - produced - hops[i]);
    }

    const Outputs out = compute_(q, inputs);
    BL_REQUIRE(out.size() == nch, "compute function must fill every channel");
    const std::size_t slot = linear_index(q);
    std::copy(out.begin(), out.end(), outputs_.begin() + static_cast<std::ptrdiff_t>(slot * nch));
    computed_[slot] = 1;
    ++acc.computations;
  };

  const auto merge = [&](const Accum& acc) {
    stats.link_transmissions = math::checked_add(stats.link_transmissions, acc.link);
    stats.wire_length = math::checked_add(stats.wire_length, acc.wire_len);
    stats.buffered_value_cycles = math::checked_add(stats.buffered_value_cycles, acc.buffered);
    stats.computations = math::checked_add(stats.computations, acc.computations);
  };

  std::set<IntVec> pes;
  std::vector<ColumnInput> inputs(ncols);
  std::vector<Outputs> resolved_externals;
  std::vector<IntVec> cycle_pes;  // conflict check within one cycle
  std::vector<Accum> accums(nthreads);

  std::size_t at = 0;
  while (at < events.size()) {
    // The half-open range of events sharing this cycle.
    const Int cycle = events[at].cycle;
    std::size_t end = at;
    while (end < events.size() && events[end].cycle == cycle) ++end;
    const std::size_t count = end - at;
    stats.peak_parallelism = std::max(stats.peak_parallelism, static_cast<Int>(count));
    // Fan out only when the wavefront is wide enough to amortize the
    // barrier; the threshold never changes results (chunk merges are
    // associative), only where the serial/parallel line sits.
    constexpr std::size_t kMinFanOut = 16;
    const bool fan_out = nthreads > 1 && count >= kMinFanOut;

    // Physical invariant: one computation per (PE, cycle). Events from
    // earlier cycles cannot collide with this cycle, so checking within
    // the cycle suffices. The PE coordinates are computed in parallel
    // (disjoint slots), the check itself runs at the barrier.
    cycle_pes.assign(count, IntVec{});
    if (fan_out) {
      pool.parallel_for(nthreads, 0, count, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) cycle_pes[i] = space.mul(events[at + i].q);
      });
    } else {
      for (std::size_t i = 0; i < count; ++i) cycle_pes[i] = space.mul(events[at + i].q);
    }
    std::sort(cycle_pes.begin(), cycle_pes.end());
    for (std::size_t e = 1; e < cycle_pes.size(); ++e) {
      BL_REQUIRE(cycle_pes[e] != cycle_pes[e - 1],
                 "computational conflict at a (PE, cycle) pair — mapping is infeasible");
    }
    for (auto& pe : cycle_pes) pes.insert(std::move(pe));

    // All operands of this cycle's events come from strictly earlier
    // cycles, so the events are mutually independent: fan them out.
    // Exceptions surface from the lowest chunk — the same event the
    // serial order would have failed on first.
    if (fan_out) {
      std::fill(accums.begin(), accums.end(), Accum{});
      pool.parallel_for(nthreads, 0, count, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        std::vector<ColumnInput> local_inputs(ncols);
        std::vector<Outputs> local_externals;
        for (std::size_t i = lo; i < hi; ++i) {
          execute_event(events[at + i], accums[chunk], local_inputs, local_externals);
        }
      });
      for (const Accum& acc : accums) merge(acc);
    } else {
      Accum acc;
      for (std::size_t e = at; e < end; ++e) {
        execute_event(events[e], acc, inputs, resolved_externals);
      }
      merge(acc);
    }
    at = end;
  }

  stats.pe_count = static_cast<Int>(pes.size());
  // Degenerate runs (no PEs or no cycles) define utilization as 0
  // instead of dividing by zero.
  stats.pe_utilization = stats.pe_count > 0 && stats.cycles > 0
                             ? static_cast<double>(stats.computations) /
                                   (static_cast<double>(stats.pe_count) *
                                    static_cast<double>(stats.cycles))
                             : 0.0;
  return stats;
}

const Int* Machine::outputs_at(const IntVec& q) const {
  BL_REQUIRE(config_.domain.contains(q), "index point outside the domain");
  const std::size_t slot = linear_index(q);
  BL_REQUIRE(!computed_.empty() && computed_[slot] != 0,
             "no outputs recorded at the requested index point");
  return outputs_.data() + slot * config_.channels.size();
}

bool Machine::has_outputs(const IntVec& q) const {
  if (!config_.domain.contains(q)) return false;
  return !computed_.empty() && computed_[linear_index(q)] != 0;
}

}  // namespace bitlevel::sim
