#include "sim/slot_arena.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bitlevel::sim {

namespace {
// Recognizable garbage written over released bundles when retirement
// tracking is on, so stale pointers held past release() read noise, not
// a plausible value.
constexpr Int kRetiredPoison = static_cast<Int>(0x6B6B6B6B6B6B6B6BULL);
}  // namespace

SlotArena::SlotArena(std::size_t channels) : channels_(channels) {
  BL_REQUIRE(channels >= 1, "slots must hold at least one channel");
}

Int* SlotArena::acquire(std::size_t key) {
  BL_REQUIRE(slot_of_.find(key) == slot_of_.end(), "slot already resident for this key");
  BL_REQUIRE(!track_retired_ || retired_.find(key) == retired_.end(),
             "acquiring a key that was already retired (use-after-retire)");
  std::size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = data_.size() / channels_;
    data_.resize(data_.size() + channels_);
  }
  slot_of_.emplace(key, slot);
  peak_ = std::max(peak_, slot_of_.size());
  return data_.data() + slot * channels_;
}

const Int* SlotArena::find(std::size_t key) const {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    BL_REQUIRE(!track_retired_ || retired_.find(key) == retired_.end(),
               "reading a retired slot (use-after-retire)");
    return nullptr;
  }
  return data_.data() + it->second * channels_;
}

Int* SlotArena::slot_data(std::size_t key) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    BL_REQUIRE(!track_retired_ || retired_.find(key) == retired_.end(),
               "reading a retired slot (use-after-retire)");
    return nullptr;
  }
  return data_.data() + it->second * channels_;
}

void SlotArena::release(std::size_t key) {
  const auto it = slot_of_.find(key);
  if (track_retired_) {
    BL_REQUIRE(retired_.find(key) == retired_.end(),
               "releasing a key that was already retired (double retire)");
  }
  BL_REQUIRE(it != slot_of_.end(), "releasing a key that is not resident");
  if (track_retired_) {
    retired_.insert(key);
    std::fill_n(data_.begin() + static_cast<std::ptrdiff_t>(it->second * channels_), channels_,
                kRetiredPoison);
  }
  free_.push_back(it->second);
  slot_of_.erase(it);
}

void SlotArena::track_retired(bool on) {
  track_retired_ = on;
  if (!on) retired_.clear();
}

}  // namespace bitlevel::sim
