#include "sim/slot_arena.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace bitlevel::sim {

SlotArena::SlotArena(std::size_t channels) : channels_(channels) {
  BL_REQUIRE(channels >= 1, "slots must hold at least one channel");
}

Int* SlotArena::acquire(std::size_t key) {
  BL_REQUIRE(slot_of_.find(key) == slot_of_.end(), "slot already resident for this key");
  std::size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = data_.size() / channels_;
    data_.resize(data_.size() + channels_);
  }
  slot_of_.emplace(key, slot);
  peak_ = std::max(peak_, slot_of_.size());
  return data_.data() + slot * channels_;
}

const Int* SlotArena::find(std::size_t key) const {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) return nullptr;
  return data_.data() + it->second * channels_;
}

Int* SlotArena::slot_data(std::size_t key) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) return nullptr;
  return data_.data() + it->second * channels_;
}

void SlotArena::release(std::size_t key) {
  const auto it = slot_of_.find(key);
  BL_REQUIRE(it != slot_of_.end(), "releasing a key that is not resident");
  free_.push_back(it->second);
  slot_of_.erase(it);
}

}  // namespace bitlevel::sim
