#include "sim/timeline.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace bitlevel::sim {

std::string activity_chart(const ir::IndexSet& domain, const mapping::MappingMatrix& t,
                           const TimelineOptions& options) {
  BL_REQUIRE(t.n() == domain.dim(), "mapping dimension must match the domain");
  const math::IntMat space = t.space();
  const math::IntVec pi = t.schedule();

  // PE -> set of active cycles.
  std::map<math::IntVec, std::set<math::Int>> activity;
  math::Int t_min = 0, t_max = 0;
  bool first = true;
  domain.for_each([&](const math::IntVec& q) {
    const math::Int when = math::dot(pi, q);
    activity[space.mul(q)].insert(when);
    t_min = first ? when : std::min(t_min, when);
    t_max = first ? when : std::max(t_max, when);
    first = false;
    return true;
  });

  const math::Int cycles = std::min(t_max - t_min + 1, options.max_cycles);
  std::ostringstream os;
  os << "PE activity, cycles " << t_min << ".." << t_min + cycles - 1;
  if (t_min + cycles - 1 < t_max) os << " (of " << t_max << ", truncated)";
  os << '\n';
  math::Int rows = 0;
  for (const auto& [pe, when] : activity) {
    if (rows++ >= options.max_pes) {
      os << "... (" << activity.size() - static_cast<std::size_t>(options.max_pes)
         << " more PEs)\n";
      break;
    }
    std::string label = math::to_string(pe);
    label.resize(14, ' ');
    os << label << ' ';
    for (math::Int c = t_min; c < t_min + cycles; ++c) os << (when.count(c) ? '#' : '.');
    os << '\n';
  }
  return os.str();
}

std::string cycle_snapshots(const ir::IndexSet& domain, const mapping::MappingMatrix& t,
                            const TimelineOptions& options) {
  BL_REQUIRE(t.k() == 3, "cycle snapshots need a 2-D space mapping");
  const math::IntMat space = t.space();
  const math::IntVec pi = t.schedule();

  // cycle -> set of active PE coordinates; track array bounds.
  std::map<math::Int, std::set<math::IntVec>> frames;
  math::Int r_lo = 0, r_hi = 0, c_lo = 0, c_hi = 0;
  bool first = true;
  domain.for_each([&](const math::IntVec& q) {
    math::IntVec pe = space.mul(q);
    if (first) {
      r_lo = r_hi = pe[0];
      c_lo = c_hi = pe[1];
      first = false;
    } else {
      r_lo = std::min(r_lo, pe[0]);
      r_hi = std::max(r_hi, pe[0]);
      c_lo = std::min(c_lo, pe[1]);
      c_hi = std::max(c_hi, pe[1]);
    }
    frames[math::dot(pi, q)].insert(std::move(pe));
    return true;
  });
  BL_REQUIRE(r_hi - r_lo < options.max_extent && c_hi - c_lo < options.max_extent,
             "array too large to snapshot; raise TimelineOptions::max_extent");

  std::ostringstream os;
  math::Int shown = 0;
  for (const auto& [cycle, active] : frames) {
    if (shown++ >= options.max_cycles) {
      os << "... (" << frames.size() - static_cast<std::size_t>(options.max_cycles)
         << " more cycles)\n";
      break;
    }
    os << "cycle " << cycle << " (" << active.size() << " PEs busy)\n";
    for (math::Int r = r_lo; r <= r_hi; ++r) {
      os << "  ";
      for (math::Int c = c_lo; c <= c_hi; ++c) {
        os << (active.count(math::IntVec{r, c}) ? '#' : '.');
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace bitlevel::sim
