// Multi-word lane groups — the width axis of the bit-sliced engine.
//
// PR 5's lane engine packs one batch item per bit of a single
// sim::LaneWord, so a machine pass carries at most 64 items. A
// LaneBlock<W> widens every channel to W consecutive LaneWords
// (W in {1, 2, 4, 8} -> 64/128/256/512 lanes): lane l lives in word
// l / 64, bit l % 64. The interpreted machine path stays single-word
// (a bundle slot is one Int); multi-word blocks ride the COMPILED
// straight-line executor (pipeline/compiled.hpp), whose per-pass loops
// are plain word arrays a vector unit can chew through.
//
// Runtime SIMD dispatch: the compiled executor picks an AVX2 kernel
// when the CPU has it, and a portable plain-array kernel otherwise.
// Both produce bit-identical results (the cell is pure boolean); the
// BITLEVEL_SIMD environment variable ("off"/"generic" forces the
// portable kernel, "auto"/unset detects) exists so tests and CI can
// exercise both branches on any machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bitlevel::sim {

/// One packed channel word; bit b = lane b's value of that channel.
using LaneWord = std::uint64_t;

/// Lanes per LaneWord (the packed word width).
inline constexpr std::size_t kLaneWidth = 64;

/// Largest supported lane block: 8 words = 512 lanes.
inline constexpr std::size_t kMaxLaneWords = 8;

/// True when `words` is a lane-block width this build supports.
constexpr bool lane_words_supported(std::size_t words) {
  return words == 1 || words == 2 || words == 4 || words == 8;
}

/// Mask of the low `lanes` bits of ONE lane word, for lanes in
/// [0, 64]. The exact-fill case must not shift by the full word width
/// (LaneWord{1} << 64 is undefined behaviour) — this helper is the one
/// place that guard lives.
constexpr LaneWord lane_word_mask(std::size_t lanes) {
  return lanes >= kLaneWidth ? ~LaneWord{0} : ((LaneWord{1} << lanes) - LaneWord{1});
}

/// Per-word active-lane masks of a W-word block holding `lanes` items
/// (1 <= lanes <= words * kLaneWidth): full words, then the ragged
/// tail word, then zeros. A tail that exactly fills a word (lanes a
/// multiple of 64 — e.g. 64 or 128 lanes of a 4-word block) takes the
/// all-ones branch of lane_word_mask, never a 64-bit shift.
inline void lane_block_masks(std::size_t words, std::size_t lanes, LaneWord* out) {
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t below = w * kLaneWidth;
    out[w] = lanes > below ? lane_word_mask(lanes - below) : LaneWord{0};
  }
}

/// A W-word lane block: channels of the compiled executor are arrays
/// of these. Plain aggregate — the portable kernels loop over w (and
/// auto-vectorize), the SIMD kernels overlay vector loads on the same
/// layout.
template <std::size_t W>
struct LaneBlock {
  LaneWord w[W];
};

/// Which kernel family the compiled executor dispatches to.
enum class SimdBackend {
  kGeneric,  ///< Portable plain-array loops (every platform).
  kAvx2,     ///< 256-bit vector kernels (x86-64 with AVX2).
};

std::string to_string(SimdBackend backend);

/// Resolve the backend for this process: BITLEVEL_SIMD=off|generic
/// forces kGeneric, =avx2 requests kAvx2 (falling back to kGeneric
/// when the CPU lacks it), =auto or unset detects. Reads the
/// environment on every call so tests can flip the variable between
/// runs; the check is two string compares, far off any hot path
/// (dispatch happens once per lane group, not per event).
SimdBackend simd_backend();

/// True when this build carries AVX2 kernels and the CPU executes
/// them (independent of the environment override).
bool cpu_has_avx2();

}  // namespace bitlevel::sim
