// A recycling arena of fixed-width output slots keyed by linearized
// index points.
//
// The streaming executor (sim::Machine with MemoryMode::kStreaming)
// keeps one slot per index point only while the point's value can still
// be consumed — a sliding cycle window of width W = max_i(Pi * d_i),
// the forward distance of the slowest dependence. Slots released when
// the window passes a point go on a free list and are handed out again,
// so peak memory is O(points-in-window * channels) instead of
// O(|J| * channels).
//
// Thread-safety contract: acquire() and release() mutate the arena and
// must run on one thread (the cycle barrier). find() and slot_data()
// are safe to call concurrently with each other as long as no
// acquire()/release() is in flight — the executor acquires every slot
// of a cycle before fanning the cycle's events out. Pointers returned
// by find()/slot_data() are invalidated by the next acquire() (the
// backing store may grow).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "math/int_vec.hpp"

namespace bitlevel::sim {

using math::Int;

/// Recycling storage for channels-length output bundles.
class SlotArena {
 public:
  /// Every slot holds `channels` integers; channels must be >= 1.
  explicit SlotArena(std::size_t channels);

  /// Reserve a slot for `key` (a linearized index point not currently
  /// resident) and return a pointer to its (uninitialized) data. The
  /// pointer stays valid until the next acquire().
  Int* acquire(std::size_t key);

  /// Channels-length bundle of a resident key, or nullptr. Safe for
  /// concurrent readers between mutations.
  const Int* find(std::size_t key) const;

  /// Mutable view of a resident key's bundle, or nullptr (same
  /// pointer-validity contract as find()).
  Int* slot_data(std::size_t key);

  /// Return `key`'s slot to the free list; the key must be resident.
  void release(std::size_t key);

  /// Opt-in retirement tracking: remember every released key so a
  /// double release, a read of a retired key, or a re-acquire of a
  /// retired key fails fast with a specific message (instead of the
  /// generic not-resident error, or worse, silently reading recycled
  /// data). Released bundles are also poisoned. Costs O(retired keys)
  /// extra memory — breaking the O(window) bound — so the streaming
  /// executor enables it only for fault-injection runs, where recovery
  /// re-execution makes these paths reachable.
  void track_retired(bool on);

  /// Slots currently resident.
  std::size_t live() const { return slot_of_.size(); }

  /// High-water mark of simultaneously resident slots.
  std::size_t peak_live() const { return peak_; }

  /// Slots ever allocated (resident + free-listed).
  std::size_t capacity() const { return data_.size() / channels_; }

 private:
  std::size_t channels_;
  std::vector<Int> data_;                              ///< capacity * channels.
  std::vector<std::size_t> free_;                      ///< Recyclable slot ids.
  std::unordered_map<std::size_t, std::size_t> slot_of_;  ///< key -> slot id.
  std::size_t peak_ = 0;
  bool track_retired_ = false;
  std::unordered_set<std::size_t> retired_;  ///< Released keys (tracking only).
};

}  // namespace bitlevel::sim
