// Space-time visualization of mapped algorithms.
//
// The paper's Figs. 4 and 5 are static wiring diagrams; these renderers
// show the same architectures *running*: which PE computes at which
// cycle under a linear schedule. Two views:
//   - activity_chart: one row per PE, one column per cycle ('#' active,
//     '.' idle) — the wavefront is the diagonal band of '#'s;
//   - cycle_snapshots: for 2-D arrays, a small grid per cycle with
//     active PEs marked — an ASCII animation of the array.
// Both are pure functions of (J, T); they need no simulation run.
#pragma once

#include <string>

#include "ir/index_set.hpp"
#include "mapping/transform.hpp"

namespace bitlevel::sim {

/// Options bounding the rendering size.
struct TimelineOptions {
  math::Int max_pes = 64;      ///< Rows of the activity chart.
  math::Int max_cycles = 120;  ///< Columns of the activity chart.
  math::Int max_extent = 24;   ///< Per-dimension cap for snapshots.
};

/// PE-by-cycle activity chart. Works for any array dimensionality (PEs
/// are labelled by their coordinates and sorted lexicographically).
/// Truncates (with a note) beyond the option bounds.
std::string activity_chart(const ir::IndexSet& domain, const mapping::MappingMatrix& t,
                           const TimelineOptions& options = {});

/// Per-cycle 2-D grid snapshots ('#' = PE computing this cycle,
/// '.' = idle). Requires a 2-D space mapping.
std::string cycle_snapshots(const ir::IndexSet& domain, const mapping::MappingMatrix& t,
                            const TimelineOptions& options = {});

}  // namespace bitlevel::sim
