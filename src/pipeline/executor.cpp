#include "pipeline/executor.hpp"

#include <algorithm>
#include <optional>

#include "arith/bits.hpp"
#include "core/expansion.hpp"
#include "faults/injector.hpp"
#include "ir/kernels.hpp"
#include "pipeline/compiled.hpp"
#include "pipeline/compressor_layout.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {

namespace {

// Channel layout of the compressor cell's output bundle. Fault-aware
// runs append a sixth odd-parity channel "par" (faults::set_parity) so
// the bundle monitors can flag single-channel corruption; clean runs
// keep the five-channel layout bit-identical to a build without the
// fault feature.
constexpr std::size_t kX = 0, kY = 1, kZ = 2, kC = 3, kCp = 4;

std::vector<std::string> cell_channels(bool with_parity) {
  std::vector<std::string> ch = {"x", "y", "z", "c", "cp"};
  if (with_parity) ch.push_back("par");
  return ch;
}

// CompressorLayout — the role map of a structure's dependence columns —
// moved to pipeline/compressor_layout.hpp, shared with the plan
// compiler (pipeline/compiled.cpp) so all executors interpret one
// structure identically.

// One bit-sliced machine pass over `lanes` (1..64) consecutive batch
// items starting at `first`: every cell channel is a sim::LaneWord
// whose bit l belongs to item first+l, the cell body is the branch-free
// full-adder form of the compressor, and the read-out de-slices each
// lane into its own PlanRunResult. Clean path only — fault injection
// corrupts whole slots and would couple the lanes, so fault runs stay
// on the scalar reference path.
void run_sliced_group(const core::BitLevelStructure& structure, const mapping::MappingMatrix& t,
                      const mapping::InterconnectionPrimitives& prims, const math::IntMat& k,
                      const std::vector<BatchItem>& items, std::size_t first, std::size_t lanes,
                      const BatchOptions& options, std::vector<PlanRunResult>& results) {
  using math::Int;
  using math::IntVec;
  using sim::LaneWord;
  BL_REQUIRE(lanes >= 1 && lanes <= sim::kLaneWidth, "lane group must hold 1..64 items");
  const CompressorLayout L(structure);
  const Int p = L.p;
  const auto& deps = structure.deps;
  // Ragged tails: lanes beyond the group's item count. Their operand
  // bits are never packed, so — the cell being pure-boolean with zero
  // an absorbing input — every channel stays zero there; `active`
  // additionally masks them out of the capacity-honesty checks.
  // sim::lane_word_mask is the shift-safe form (a full group must not
  // shift a LaneWord by its own width).
  const LaneWord active = sim::lane_word_mask(lanes);

  // Bit-transpose the operands once per group: for each word point j,
  // packed x element b holds bit b of every lane's x word, so the
  // per-event lane fetch is a single load instead of 64 OperandFn
  // calls.
  struct PackedOperands {
    std::vector<LaneWord> x, y;
  };
  std::map<IntVec, PackedOperands> packed;
  structure.word.domain.for_each([&](const IntVec& j) {
    PackedOperands& slot = packed[j];
    slot.x.assign(static_cast<std::size_t>(p), 0);
    slot.y.assign(static_cast<std::size_t>(p), 0);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::uint64_t xw = items[first + l].x(j);
      const std::uint64_t yw = items[first + l].y(j);
      for (std::size_t b = 0; b < static_cast<std::size_t>(p); ++b) {
        slot.x[b] |= ((xw >> b) & 1U) << l;
        slot.y[b] |= ((yw >> b) & 1U) << l;
      }
    }
    return true;
  });

  const auto x_lanes = [&](const IntVec& q) {
    return packed.at(L.word_part(q)).x[static_cast<std::size_t>(q[L.i2c] - 1)];
  };
  const auto y_lanes = [&](const IntVec& q) {
    return packed.at(L.word_part(q)).y[static_cast<std::size_t>(q[L.i1c] - 1)];
  };

  sim::LaneExternalFn external = [&](const IntVec& q, std::size_t column, LaneWord* out) {
    // The destination is zero-filled by the machine; only operand
    // channels need writing (the initial sums and carries of programs
    // (3.1)/(3.5) are zero).
    if (column == L.col_d1 || column == L.col_d4) out[kX] = x_lanes(q);
    if (column == L.col_d2 || column == L.col_d5) out[kY] = y_lanes(q);
  };

  sim::LaneComputeFn compute = [&](const IntVec& q, const std::vector<sim::ColumnInput>& in,
                                   LaneWord* out) {
    auto bundle = [&](std::size_t column) -> const LaneWord* {
      if (column >= in.size() || !in[column].valid) return nullptr;
      return sim::lane_view(in[column].producer);
    };
    const LaneWord* bx = bundle(L.col_d4);
    if (bx == nullptr && L.col_d1 < in.size()) bx = bundle(L.col_d1);
    const LaneWord xv = bx != nullptr ? bx[kX] : x_lanes(q);
    const LaneWord* by = bundle(L.col_d5);
    if (by == nullptr && L.col_d2 < in.size()) by = bundle(L.col_d2);
    const LaneWord yv = by != nullptr ? by[kY] : y_lanes(q);

    const LaneWord pp = xv & yv;
    const LaneWord* z3p = bundle(L.col_d3);
    const LaneWord* z6p = bundle(L.col_d6);
    const LaneWord* c5p = bundle(L.col_d5);
    const LaneWord* c7p = bundle(L.col_d7);
    const LaneWord z3 = z3p != nullptr ? z3p[kZ] : 0;
    const LaneWord z6 = z6p != nullptr ? z6p[kZ] : 0;
    const LaneWord c5 = c5p != nullptr ? c5p[kC] : 0;
    const LaneWord c7 = c7p != nullptr ? c7p[kCp] : 0;

    // The scalar cell forms total = pp + z3 + z6 + c5 + c7 (at most 5)
    // and emits its three bits. Branch-free across 64 lanes: compress
    // the five addends with two full adders — s = a ^ b ^ c,
    // carry = (a & b) | (c & (a ^ b)) — leaving
    // total = s2 + 2 * (c1 + c2), so z = s2, c = c1 ^ c2, c' = c1 & c2.
    const LaneWord t1 = pp ^ z3;
    const LaneWord s1 = t1 ^ z6;
    const LaneWord c1 = (pp & z3) | (z6 & t1);
    const LaneWord t2 = s1 ^ c5;
    const LaneWord s2 = t2 ^ c7;
    const LaneWord c2 = (s1 & c5) | (c7 & t2);

    out[kX] = xv;
    out[kY] = yv;
    out[kZ] = s2;
    out[kC] = c1 ^ c2;
    out[kCp] = c1 & c2;

    // Capacity honesty, lane-wide: a nonzero carry in ANY active lane
    // must have somewhere to go. The predicate is per-point (lane
    // independent), so this is exactly the scalar check applied to the
    // whole group at once.
    auto consumed = [&](std::size_t column) {
      const IntVec consumer = math::add(q, deps[column].d);
      return structure.domain.contains(consumer) && deps[column].valid.contains(consumer);
    };
    if ((out[kC] & active) != 0 && !consumed(L.col_d5)) {
      const bool top_output = q[L.i1c] == p && q[L.i2c] == p && L.boundary.contains(q);
      if (!top_output) {
        throw OverflowError("array dropped a carry at " + math::to_string(q) +
                            ": capacity precondition violated");
      }
    }
    if ((out[kCp] & active) != 0 && !consumed(L.col_d7)) {
      throw OverflowError("array dropped a second carry at " + math::to_string(q) +
                          ": capacity precondition violated");
    }
  };

  sim::MachineConfig cfg{structure.domain, deps,
                         t,                prims,
                         k,                cell_channels(/*with_parity=*/false),
                         options.threads};
  cfg.memory = options.memory;
  cfg.cancel = options.cancel;
  if (options.memory == sim::MemoryMode::kStreaming && options.want_z) {
    const std::size_t i1c = L.i1c, i2c = L.i2c;
    cfg.observe = [i1c, i2c, p](const IntVec& q) { return q[i1c] == p || q[i2c] == 1; };
  }
  sim::Machine machine(std::move(cfg), std::move(compute), std::move(external));

  // Statistics are value-independent — they are functions of the
  // domain, mapping and routing only — so the group's stats ARE each
  // item's stats, bit-identical to a scalar per-item run.
  const sim::SimulationStats stats = machine.run();
  const auto masked = [&](std::size_t l) {
    return options.mask_item && options.mask_item(first + l);
  };
  for (std::size_t l = 0; l < lanes; ++l) {
    if (!masked(l)) results[first + l].stats = stats;
  }
  if (!options.want_z) return;

  // De-slice the read-out: gather each boundary word point's 2p output
  // bits as lane words once, then peel bit l out of each for item
  // first+l (LSB-first, matching arith::from_bits in the scalar path).
  std::vector<LaneWord> bits;
  structure.word.domain.for_each([&](const IntVec& j) {
    if (!L.boundary.contains(math::concat(j, IntVec{1, 1}))) return true;
    bits.clear();
    bits.reserve(static_cast<std::size_t>(2 * p));
    for (Int i = 1; i <= p; ++i) {
      bits.push_back(sim::lane_view(machine.outputs_at(math::concat(j, IntVec{i, 1})))[kZ]);
    }
    for (Int i2 = 2; i2 <= p; ++i2) {
      bits.push_back(sim::lane_view(machine.outputs_at(math::concat(j, IntVec{p, i2})))[kZ]);
    }
    bits.push_back(sim::lane_view(machine.outputs_at(math::concat(j, IntVec{p, p})))[kC]);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (masked(l)) continue;  // cancelled lane: drop from the scatter
      std::uint64_t word = 0;
      for (std::size_t b = 0; b < bits.size(); ++b) {
        word |= ((bits[b] >> l) & 1U) << b;
      }
      results[first + l].z.emplace(j, word);
    }
    return true;
  });
}

}  // namespace

int auto_compiled_lane_width(std::size_t items) {
  // Narrowest block that still runs the whole batch as one straight-
  // line pass: a 3-item group on 512 lanes pays the full 8-word sweep
  // for 0.6% occupancy, while 64 lanes does the same work in 1 word.
  for (const int width : {64, 128, 256, 512}) {
    if (items <= static_cast<std::size_t>(width)) return width;
  }
  return 512;
}

std::string to_string(SlicedMode mode) {
  switch (mode) {
    case SlicedMode::kAuto:
      return "auto";
    case SlicedMode::kOff:
      return "off";
    case SlicedMode::kOn:
      return "on";
  }
  return "?";
}

PlanRunResult run_mapped_structure(const core::BitLevelStructure& structure,
                                   const mapping::MappingMatrix& t,
                                   const mapping::InterconnectionPrimitives& prims,
                                   const math::IntMat& k, const core::OperandFn& x,
                                   const core::OperandFn& y, const RunOptions& options) {
  using math::Int;
  using math::IntVec;
  const bool faulty = options.faults != nullptr;
  const std::size_t nbundle = faulty ? 6 : 5;
  const CompressorLayout L(structure);
  const Int p = L.p;
  const auto& deps = structure.deps;
  const std::size_t col_d1 = L.col_d1, col_d2 = L.col_d2, col_d3 = L.col_d3, col_d4 = L.col_d4,
                    col_d5 = L.col_d5, col_d6 = L.col_d6, col_d7 = L.col_d7;
  const std::size_t i1c = L.i1c, i2c = L.i2c;
  const ir::ValidityRegion& boundary = L.boundary;

  // Fresh operand bits entering the array.
  auto x_bit = [&](const IntVec& q) {
    return static_cast<Int>((x(L.word_part(q)) >> (q[i2c] - 1)) & 1U);
  };
  auto y_bit = [&](const IntVec& q) {
    return static_cast<Int>((y(L.word_part(q)) >> (q[i1c] - 1)) & 1U);
  };

  sim::ExternalFn external = [&](const IntVec& q, std::size_t column) -> sim::Outputs {
    sim::Outputs out(nbundle, 0);
    // A column's external bundle plays the producer's role: fresh
    // operand bits for the pipelines, zeros for sums and carries
    // (the initial values of programs (3.1)/(3.5)).
    if (column == col_d1 || column == col_d4) out[kX] = x_bit(q);
    if (column == col_d2 || column == col_d5) out[kY] = y_bit(q);
    // Boundary bundles carry parity too: link faults can strike them.
    if (faulty) faults::set_parity(out.data(), nbundle);
    return out;
  };

  sim::ComputeFn compute = [&](const IntVec& q,
                               const std::vector<sim::ColumnInput>& in) -> sim::Outputs {
    auto bundle = [&](std::size_t column) -> const Int* {
      if (column >= in.size() || !in[column].valid) return nullptr;
      return in[column].producer;
    };
    // Operand bits: from the word-level pipeline at the grid face, from
    // the grid pipeline elsewhere, or directly from outside when the
    // word-level model supplies them externally (absent h1/h2).
    const Int* bx = bundle(col_d4);
    if (bx == nullptr && col_d1 < in.size()) bx = bundle(col_d1);
    const Int xv = bx != nullptr ? bx[kX] : x_bit(q);
    const Int* by = bundle(col_d5);
    if (by == nullptr && col_d2 < in.size()) by = bundle(col_d2);
    const Int yv = by != nullptr ? by[kY] : y_bit(q);

    const Int pp = xv & yv;
    const Int* z3 = bundle(col_d3);
    const Int* z6 = bundle(col_d6);
    const Int* c5 = bundle(col_d5);
    const Int* c7 = bundle(col_d7);
    const Int total = pp + (z3 != nullptr ? z3[kZ] : 0) + (z6 != nullptr ? z6[kZ] : 0) +
                      (c5 != nullptr ? c5[kC] : 0) + (c7 != nullptr ? c7[kCp] : 0);

    sim::Outputs out(nbundle, 0);
    out[kX] = xv;
    out[kY] = yv;
    out[kZ] = total & 1;
    out[kC] = (total >> 1) & 1;
    out[kCp] = (total >> 2) & 1;
    if (faulty) faults::set_parity(out.data(), nbundle);

    // Capacity honesty: a nonzero carry must have somewhere to go.
    auto consumed = [&](std::size_t column) {
      const IntVec consumer = math::add(q, deps[column].d);
      return structure.domain.contains(consumer) && deps[column].valid.contains(consumer);
    };
    if (out[kC] != 0 && !consumed(col_d5)) {
      // The carry out of cell (p, p) on an accumulation-boundary point
      // is the legitimate output bit 2p; everything else is a loss.
      const bool top_output = q[i1c] == p && q[i2c] == p && boundary.contains(q);
      if (!top_output) {
        throw OverflowError("array dropped a carry at " + math::to_string(q) +
                            ": capacity precondition violated");
      }
    }
    if (out[kCp] != 0 && !consumed(col_d7)) {
      throw OverflowError("array dropped a second carry at " + math::to_string(q) +
                          ": capacity precondition violated");
    }
    return out;
  };

  sim::MachineConfig cfg{structure.domain, deps,
                         t,                prims,
                         k,                cell_channels(faulty),
                         options.threads};
  cfg.memory = options.memory;
  cfg.cancel = options.cancel;
  std::optional<faults::FaultInjector> injector;
  if (faulty) {
    injector.emplace(*options.faults, t.space(), nbundle, options.fault_checks);
    cfg.faults = injector->hooks();
  }
  if (options.memory == sim::MemoryMode::kStreaming && options.want_z) {
    // The read-out below touches only the bit-grid edge cells (i2 = 1
    // and i1 = p); observing that superset of the accumulation-boundary
    // cells keeps retention at O(|J_w| * p) instead of |J|.
    cfg.observe = [i1c, i2c, p](const IntVec& q) { return q[i1c] == p || q[i2c] == 1; };
  }
  sim::Machine machine(std::move(cfg), compute, external);
  PlanRunResult result;

  // Read the final z words off the accumulation-boundary grids: bit i at
  // cell (i, 1) for i <= p, bit p+i2-1 at (p, i2), bit 2p from c(p, p).
  // Skipped entirely under want_z = false.
  const auto read_out = [&] {
    if (!options.want_z) return;
    structure.word.domain.for_each([&](const IntVec& j) {
      if (!boundary.contains(math::concat(j, IntVec{1, 1}))) return true;
      std::vector<int> bits;
      bits.reserve(static_cast<std::size_t>(2 * p));
      for (Int i = 1; i <= p; ++i) {
        bits.push_back(static_cast<int>(machine.outputs_at(math::concat(j, IntVec{i, 1}))[kZ]));
      }
      for (Int i2 = 2; i2 <= p; ++i2) {
        bits.push_back(static_cast<int>(machine.outputs_at(math::concat(j, IntVec{p, i2}))[kZ]));
      }
      bits.push_back(static_cast<int>(machine.outputs_at(math::concat(j, IntVec{p, p}))[kC]));
      result.z.emplace(j, arith::from_bits(bits));
      return true;
    });
  };

  if (!faulty) {
    result.stats = machine.run();
    read_out();
    return result;
  }

  // Fault runs never abort: an injected carry can violate the array's
  // capacity precondition (the compute fn's "dropped a carry" honesty
  // check) before any monitor sees it — record that as an incomplete
  // run in the report instead of propagating. Genuine contract
  // violations (PreconditionError etc.) still throw.
  faults::FaultReport& report = result.fault_report.emplace();
  report.model = injector->model();
  try {
    result.stats = machine.run();
    read_out();
  } catch (const OverflowError& e) {
    report.completed = false;
    report.abort_reason = e.what();
    result.z.clear();
  }
  report.faults_detected = result.stats.faults_detected;
  report.faults_recovered = result.stats.faults_recovered;
  report.recovery_reexecutions = result.stats.recovery_reexecutions;
  report.degraded_points = result.stats.degraded_points;
  report.injection = injector->stats();
  if (report.completed && options.fault_checks && options.want_z) {
    report.abft = faults::abft_check(structure.word, x, y, result.z);
  }
  return result;
}

PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y, const RunOptions& options) {
  BL_REQUIRE(plan.has_mapping(), "plan has no mapping to run (strategy " +
                                     to_string(plan.request.mapping) + ", origin " +
                                     to_string(plan.origin) + ")");
  return run_mapped_structure(*plan.structure, *plan.t, *plan.prims, *plan.k, x, y, options);
}

PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y) {
  return run_plan(plan, x, y, RunOptions{plan.request.threads, plan.request.memory});
}

BatchResult run_batch(PlanCache& cache, const DesignRequest& request,
                      const std::vector<BatchItem>& items, const BatchOptions& options) {
  BatchResult batch;
  // An already-expired deadline sheds the batch before composing: no
  // plan is built or pinned for work that cannot complete.
  options.cancel.check("batch start");
  const std::string key = canonical_key(request);
  batch.plan_was_cached = cache.peek(key) != nullptr;
  batch.plan = cache.get_or_compose(request);
  const DesignPlan& plan = *batch.plan;
  BL_REQUIRE(plan.has_mapping(), "plan has no mapping to run (strategy " +
                                     to_string(plan.request.mapping) + ", origin " +
                                     to_string(plan.origin) + ")");
  batch.results.resize(items.size());

  const ir::kernels::KernelInfo* info = ir::kernels::find_kernel(request.kernel.name);
  const bool sliceable = info != nullptr && info->sliceable;
  bool sliced = false;
  switch (options.sliced) {
    case SlicedMode::kOff:
      break;
    case SlicedMode::kOn:
      BL_REQUIRE(sliceable,
                 "kernel '" + request.kernel.name + "' has no sliceable cell body");
      sliced = true;
      break;
    case SlicedMode::kAuto:
      // One item gains nothing from packing; two or more amortize the
      // machine pass 2..64-fold.
      sliced = sliceable && items.size() >= 2;
      break;
  }

  // Compiled-path decision, on top of the sliced one: the plan must
  // carry a flattened schedule (sliceable kernels get one at compose
  // time unless the instance exceeded the compiler's index bounds).
  const CompiledSchedule* compiled_schedule = plan.compiled.get();
  bool compiled = false;
  switch (options.compiled) {
    case SlicedMode::kOff:
      break;
    case SlicedMode::kOn:
      BL_REQUIRE(sliced, "compiled=on requires the sliced path (sliceable kernel, batch >= 2, "
                         "sliced != off)");
      BL_REQUIRE(compiled_schedule != nullptr,
                 "plan carries no compiled schedule for compiled=on");
      compiled = true;
      break;
    case SlicedMode::kAuto:
      compiled = sliced && compiled_schedule != nullptr;
      break;
  }

  // Lane-width policy: the interpreted engine is pinned at one machine
  // word (64 lanes); the multi-word blocks exist only in the compiled
  // executor.
  const int lane_width = options.lane_width;
  BL_REQUIRE(lane_width == 0 || lane_width == 64 || lane_width == 128 || lane_width == 256 ||
                 lane_width == 512,
             "lane width must be 0 (auto), 64, 128, 256 or 512");
  BL_REQUIRE(lane_width <= 64 || compiled,
             "lane widths beyond 64 require the compiled path");

  // Per-item attribution: the path and the lane-group (or scalar-run)
  // ordinal that carried each item, so a caller holding a contiguous
  // sub-range of a combined batch can reconstruct that range's exact
  // ledger by counting its distinct ordinals per path.
  batch.item_paths.assign(items.size(), ItemPath::kScalar);
  batch.item_groups.assign(items.size(), 0);
  std::uint32_t ordinal = 0;
  const auto attribute = [&](std::size_t at, std::size_t lanes, ItemPath path) {
    for (std::size_t l = 0; l < lanes; ++l) {
      batch.item_paths[at + l] = path;
      batch.item_groups[at + l] = ordinal;
    }
    ++ordinal;
  };

  if (sliced) {
    // The compiled path may decline a group (test hook today; real
    // decline reasons would land here too). The fallback is sticky and
    // the declined chunk is retried — not counted, not advanced — so
    // every item lands in exactly one accounting bucket.
    const std::size_t compiled_width = static_cast<std::size_t>(
        lane_width == 0 ? auto_compiled_lane_width(items.size()) : lane_width);
    const std::size_t lane_words = compiled_width / sim::kLaneWidth;
    bool use_compiled = compiled;
    std::size_t group_index = 0;
    std::size_t at = 0;
    while (at < items.size()) {
      options.cancel.check("lane-group boundary");
      if (use_compiled) {
        if (options.test_compiled_reject && options.test_compiled_reject(group_index)) {
          ++group_index;
          use_compiled = false;
          continue;
        }
        const std::size_t lanes = std::min(compiled_width, items.size() - at);
        run_compiled_group(*compiled_schedule, items, at, lanes, lane_words, options,
                           batch.results);
        batch.compiled_groups += 1;
        batch.compiled_items += static_cast<math::Int>(lanes);
        batch.compiled_lane_width = static_cast<int>(compiled_width);
        attribute(at, lanes, ItemPath::kCompiled);
        at += lanes;
        ++group_index;
      } else {
        const std::size_t lanes = std::min(sim::kLaneWidth, items.size() - at);
        run_sliced_group(*plan.structure, *plan.t, *plan.prims, *plan.k, items, at, lanes,
                         options, batch.results);
        batch.sliced_groups += 1;
        batch.sliced_items += static_cast<math::Int>(lanes);
        attribute(at, lanes, ItemPath::kSliced);
        at += lanes;
      }
    }
  } else {
    RunOptions run_options;
    run_options.threads = options.threads;
    run_options.memory = options.memory;
    run_options.want_z = options.want_z;
    run_options.cancel = options.cancel;
    for (std::size_t i = 0; i < items.size(); ++i) {
      options.cancel.check("batch-item boundary");
      attribute(i, 1, ItemPath::kScalar);
      if (options.mask_item && options.mask_item(i)) continue;
      batch.results[i] = run_plan(plan, items[i].x, items[i].y, run_options);
    }
    batch.scalar_items = static_cast<math::Int>(items.size());
  }
  return batch;
}

BatchResult run_batch(PlanCache& cache, const DesignRequest& request,
                      const std::vector<BatchItem>& items) {
  BatchOptions options;
  options.threads = request.threads;
  options.memory = request.memory;
  return run_batch(cache, request, items, options);
}

}  // namespace bitlevel::pipeline
