#include "pipeline/executor.hpp"

#include <optional>

#include "arith/bits.hpp"
#include "core/expansion.hpp"
#include "faults/injector.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {

namespace {

// Channel layout of the compressor cell's output bundle. Fault-aware
// runs append a sixth odd-parity channel "par" (faults::set_parity) so
// the bundle monitors can flag single-channel corruption; clean runs
// keep the five-channel layout bit-identical to a build without the
// fault feature.
constexpr std::size_t kX = 0, kY = 1, kZ = 2, kC = 3, kCp = 4;

std::vector<std::string> cell_channels(bool with_parity) {
  std::vector<std::string> ch = {"x", "y", "z", "c", "cp"};
  if (with_parity) ch.push_back("par");
  return ch;
}

}  // namespace

PlanRunResult run_mapped_structure(const core::BitLevelStructure& structure,
                                   const mapping::MappingMatrix& t,
                                   const mapping::InterconnectionPrimitives& prims,
                                   const math::IntMat& k, const core::OperandFn& x,
                                   const core::OperandFn& y, const RunOptions& options) {
  using math::Int;
  using math::IntVec;
  const bool faulty = options.faults != nullptr;
  const std::size_t nbundle = faulty ? 6 : 5;
  const Int p = structure.p;
  const std::size_t n = structure.word_dims();
  const std::size_t i1c = structure.i1_coord();
  const std::size_t i2c = structure.i2_coord();
  const auto& deps = structure.deps;
  const ir::ValidityRegion boundary =
      core::accumulation_boundary(structure.word, structure.dim());

  // Locate the columns by their role (cause labels set by expand()).
  // d1/d2 may be absent when the operand is an external input.
  std::size_t col_d1 = deps.size(), col_d2 = deps.size(), col_d3 = deps.size();
  std::size_t col_d4 = deps.size(), col_d5 = deps.size(), col_d6 = deps.size(),
              col_d7 = deps.size();
  for (std::size_t i = 0; i < deps.size(); ++i) {
    const auto& col = deps[i];
    const bool word_level = !math::is_zero(
        IntVec(col.d.begin(), col.d.begin() + static_cast<std::ptrdiff_t>(n)));
    if (col.cause == "x") {
      (word_level ? col_d1 : col_d4) = i;
    } else if (col.cause == "y") {
      col_d2 = i;
    } else if (col.cause == "y,c") {
      col_d5 = i;
    } else if (col.cause == "z") {
      (word_level ? col_d3 : col_d6) = i;
    } else if (col.cause == "c'") {
      col_d7 = i;
    }
  }
  BL_REQUIRE(col_d3 < deps.size() && col_d4 < deps.size() && col_d5 < deps.size() &&
                 col_d6 < deps.size() && col_d7 < deps.size(),
             "structure is missing expected expansion columns");

  auto word_part = [n](const IntVec& q) {
    return IntVec(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
  };

  // Fresh operand bits entering the array.
  auto x_bit = [&](const IntVec& q) {
    return static_cast<Int>((x(word_part(q)) >> (q[i2c] - 1)) & 1U);
  };
  auto y_bit = [&](const IntVec& q) {
    return static_cast<Int>((y(word_part(q)) >> (q[i1c] - 1)) & 1U);
  };

  sim::ExternalFn external = [&](const IntVec& q, std::size_t column) -> sim::Outputs {
    sim::Outputs out(nbundle, 0);
    // A column's external bundle plays the producer's role: fresh
    // operand bits for the pipelines, zeros for sums and carries
    // (the initial values of programs (3.1)/(3.5)).
    if (column == col_d1 || column == col_d4) out[kX] = x_bit(q);
    if (column == col_d2 || column == col_d5) out[kY] = y_bit(q);
    // Boundary bundles carry parity too: link faults can strike them.
    if (faulty) faults::set_parity(out.data(), nbundle);
    return out;
  };

  sim::ComputeFn compute = [&](const IntVec& q,
                               const std::vector<sim::ColumnInput>& in) -> sim::Outputs {
    auto bundle = [&](std::size_t column) -> const Int* {
      if (column >= in.size() || !in[column].valid) return nullptr;
      return in[column].producer;
    };
    // Operand bits: from the word-level pipeline at the grid face, from
    // the grid pipeline elsewhere, or directly from outside when the
    // word-level model supplies them externally (absent h1/h2).
    const Int* bx = bundle(col_d4);
    if (bx == nullptr && col_d1 < in.size()) bx = bundle(col_d1);
    const Int xv = bx != nullptr ? bx[kX] : x_bit(q);
    const Int* by = bundle(col_d5);
    if (by == nullptr && col_d2 < in.size()) by = bundle(col_d2);
    const Int yv = by != nullptr ? by[kY] : y_bit(q);

    const Int pp = xv & yv;
    const Int* z3 = bundle(col_d3);
    const Int* z6 = bundle(col_d6);
    const Int* c5 = bundle(col_d5);
    const Int* c7 = bundle(col_d7);
    const Int total = pp + (z3 != nullptr ? z3[kZ] : 0) + (z6 != nullptr ? z6[kZ] : 0) +
                      (c5 != nullptr ? c5[kC] : 0) + (c7 != nullptr ? c7[kCp] : 0);

    sim::Outputs out(nbundle, 0);
    out[kX] = xv;
    out[kY] = yv;
    out[kZ] = total & 1;
    out[kC] = (total >> 1) & 1;
    out[kCp] = (total >> 2) & 1;
    if (faulty) faults::set_parity(out.data(), nbundle);

    // Capacity honesty: a nonzero carry must have somewhere to go.
    auto consumed = [&](std::size_t column) {
      const IntVec consumer = math::add(q, deps[column].d);
      return structure.domain.contains(consumer) && deps[column].valid.contains(consumer);
    };
    if (out[kC] != 0 && !consumed(col_d5)) {
      // The carry out of cell (p, p) on an accumulation-boundary point
      // is the legitimate output bit 2p; everything else is a loss.
      const bool top_output = q[i1c] == p && q[i2c] == p && boundary.contains(q);
      if (!top_output) {
        throw OverflowError("array dropped a carry at " + math::to_string(q) +
                            ": capacity precondition violated");
      }
    }
    if (out[kCp] != 0 && !consumed(col_d7)) {
      throw OverflowError("array dropped a second carry at " + math::to_string(q) +
                          ": capacity precondition violated");
    }
    return out;
  };

  sim::MachineConfig cfg{structure.domain, deps,
                         t,                prims,
                         k,                cell_channels(faulty),
                         options.threads};
  cfg.memory = options.memory;
  std::optional<faults::FaultInjector> injector;
  if (faulty) {
    injector.emplace(*options.faults, t.space(), nbundle, options.fault_checks);
    cfg.faults = injector->hooks();
  }
  if (options.memory == sim::MemoryMode::kStreaming) {
    // The read-out below touches only the bit-grid edge cells (i2 = 1
    // and i1 = p); observing that superset of the accumulation-boundary
    // cells keeps retention at O(|J_w| * p) instead of |J|.
    cfg.observe = [i1c, i2c, p](const IntVec& q) { return q[i1c] == p || q[i2c] == 1; };
  }
  sim::Machine machine(std::move(cfg), compute, external);
  PlanRunResult result;

  // Read the final z words off the accumulation-boundary grids: bit i at
  // cell (i, 1) for i <= p, bit p+i2-1 at (p, i2), bit 2p from c(p, p).
  const auto read_out = [&] {
    structure.word.domain.for_each([&](const IntVec& j) {
      if (!boundary.contains(math::concat(j, IntVec{1, 1}))) return true;
      std::vector<int> bits;
      bits.reserve(static_cast<std::size_t>(2 * p));
      for (Int i = 1; i <= p; ++i) {
        bits.push_back(static_cast<int>(machine.outputs_at(math::concat(j, IntVec{i, 1}))[kZ]));
      }
      for (Int i2 = 2; i2 <= p; ++i2) {
        bits.push_back(static_cast<int>(machine.outputs_at(math::concat(j, IntVec{p, i2}))[kZ]));
      }
      bits.push_back(static_cast<int>(machine.outputs_at(math::concat(j, IntVec{p, p}))[kC]));
      result.z.emplace(j, arith::from_bits(bits));
      return true;
    });
  };

  if (!faulty) {
    result.stats = machine.run();
    read_out();
    return result;
  }

  // Fault runs never abort: an injected carry can violate the array's
  // capacity precondition (the compute fn's "dropped a carry" honesty
  // check) before any monitor sees it — record that as an incomplete
  // run in the report instead of propagating. Genuine contract
  // violations (PreconditionError etc.) still throw.
  faults::FaultReport& report = result.fault_report.emplace();
  report.model = injector->model();
  try {
    result.stats = machine.run();
    read_out();
  } catch (const OverflowError& e) {
    report.completed = false;
    report.abort_reason = e.what();
    result.z.clear();
  }
  report.faults_detected = result.stats.faults_detected;
  report.faults_recovered = result.stats.faults_recovered;
  report.recovery_reexecutions = result.stats.recovery_reexecutions;
  report.degraded_points = result.stats.degraded_points;
  report.injection = injector->stats();
  if (report.completed && options.fault_checks) {
    report.abft = faults::abft_check(structure.word, x, y, result.z);
  }
  return result;
}

PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y, const RunOptions& options) {
  BL_REQUIRE(plan.has_mapping(), "plan has no mapping to run (strategy " +
                                     to_string(plan.request.mapping) + ", origin " +
                                     to_string(plan.origin) + ")");
  return run_mapped_structure(*plan.structure, *plan.t, *plan.prims, *plan.k, x, y, options);
}

PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y) {
  return run_plan(plan, x, y, RunOptions{plan.request.threads, plan.request.memory});
}

BatchResult run_batch(PlanCache& cache, const DesignRequest& request,
                      const std::vector<BatchItem>& items) {
  BatchResult batch;
  const std::string key = canonical_key(request);
  batch.plan_was_cached = cache.peek(key) != nullptr;
  batch.plan = cache.get_or_compose(request);
  batch.results.reserve(items.size());
  for (const auto& item : items) {
    batch.results.push_back(run_plan(*batch.plan, item.x, item.y));
  }
  return batch;
}

}  // namespace bitlevel::pipeline
