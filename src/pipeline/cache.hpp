// Content-addressed, LRU-bounded, thread-safe plan cache.
//
// The cache guarantees the acceptance property of the pipeline layer:
// exactly ONE Theorem 3.1 expansion and ONE mapping search per distinct
// canonical request key per process. Concurrent requests for the same
// key rendezvous on a shared future — the first caller composes, every
// other caller (and every later one) shares the same immutable plan.
// Capacity is bounded with least-recently-used eviction; hit/miss/
// eviction counters feed the CLI's --json output and the reuse tests.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipeline/compose.hpp"

namespace bitlevel::pipeline {

/// Counter snapshot; all counts are since construction or clear().
struct PlanCacheStats {
  std::uint64_t hits = 0;       ///< Lookups served by an existing plan.
  std::uint64_t misses = 0;     ///< Lookups that composed a new plan.
  std::uint64_t evictions = 0;  ///< Plans dropped by the LRU bound.
  std::size_t size = 0;         ///< Plans currently resident.
  std::size_t capacity = 0;     ///< LRU bound.
  /// Approximate heap bytes of the resident plans (sum of
  /// approximate_plan_bytes over ready entries) — capacity reasoning
  /// for tiled workloads that park many shape plans, not an allocator
  /// audit. In-flight compositions contribute 0 until they finish.
  std::uint64_t resident_bytes = 0;
};

/// Per-entry snapshot for the serve `stats` endpoint.
struct PlanCacheEntryStats {
  std::string key;
  std::size_t bytes = 0;  ///< 0 while the composition is in flight.
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// The shared plan for the request's canonical key, composing it on
  /// first use. Blocks concurrent callers of the same key until the
  /// single composition finishes; a composition failure propagates its
  /// exception to every waiter and leaves the key absent (a later call
  /// retries). Waiting on an in-flight composition counts as a hit.
  PlanPtr get_or_compose(const DesignRequest& request);

  /// The resident plan for a key, or nullptr. Does not compose and does
  /// not touch the counters or the LRU order.
  PlanPtr peek(const std::string& key) const;

  PlanCacheStats stats() const;

  /// Per-entry (key, approximate bytes) snapshots in most-recently-used
  /// order.
  std::vector<PlanCacheEntryStats> entry_stats() const;

  /// Resident plans still referenced outside the cache: an in-flight
  /// composition, or a ready plan whose PlanPtr has copies beyond the
  /// cache's own. The design-service daemon asserts this is 0 after a
  /// graceful drain — every request released its plan.
  std::size_t leaked_plans() const;

  /// Drop every plan and reset the counters.
  void clear();

  /// Change the LRU bound (evicting as needed). capacity >= 1.
  void set_capacity(std::size_t capacity);

  static constexpr std::size_t kDefaultCapacity = 64;

 private:
  struct Entry {
    std::string key;
    std::shared_future<PlanPtr> plan;
    std::uint64_t tag = 0;  ///< Identifies the inserting call (failure cleanup).
    std::size_t bytes = 0;  ///< approximate_plan_bytes, stamped on success.
  };
  using EntryList = std::list<Entry>;

  void evict_excess_locked();

  mutable std::mutex mu_;
  EntryList lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, EntryList::iterator> index_;
  std::size_t capacity_;
  std::uint64_t tag_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The process-wide cache every pipeline consumer shares (arch
/// wrappers, the CLI, run_batch). Never destroyed before exit.
PlanCache& global_plan_cache();

}  // namespace bitlevel::pipeline
