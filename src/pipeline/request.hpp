// Declarative design requests — the input of the design pipeline.
//
// A DesignRequest names everything Theorem 3.1's composition needs —
// the word-level kernel (by registry name), the operand width p, the
// algorithm expansion, and how to obtain a space/time mapping — plus
// the execution knobs (memory mode, worker threads) a plan is run
// with. Requests are canonicalized to a content-addressed key: two
// requests with the same key compose to the same plan, so the key is
// what the PlanCache deduplicates on. Execution knobs are deliberately
// NOT part of the key — simulator outputs and explorer rankings are
// bit-identical across thread counts and memory modes, so one plan
// serves every combination.
#pragma once

#include <cstdint>
#include <string>

#include "core/structure.hpp"
#include "mapping/explore.hpp"
#include "sim/machine.hpp"

namespace bitlevel::pipeline {

using math::Int;

/// A registry kernel instantiation. Extents beyond the kernel's arity
/// are ignored and canonicalized away (matmul with any v, w composes
/// to the same plan). batch = 0 is the plain kernel; batch >= 1
/// composes a leading batch axis of that extent into the model
/// (core::batch_model) for problem pipelining — a 1-problem batch is a
/// DIFFERENT structure (extra extent-1 axis) than the unbatched kernel.
struct KernelSpec {
  std::string name = "matmul";
  Int u = 3;
  Int v = 3;
  Int w = 3;
  Int batch = 0;
};

/// How the mapping stage obtains T = [S; Pi].
enum class MappingStrategy {
  kStructureOnly,  ///< Stop after expansion (structure / verify actions).
  kExplore,        ///< Design-space exploration only.
  kAuto,           ///< Explore, falling back to the published Fig. 4
                   ///< design for 3-D word-level kernels.
  kPublishedFig4,  ///< The paper's (4.2) mapping, p-scaled.
  kPublishedFig5,  ///< The paper's (4.6) nearest-neighbour mapping.
};

std::string to_string(MappingStrategy s);

/// One declarative request for a composed design.
struct DesignRequest {
  KernelSpec kernel;
  Int p = 4;
  core::Expansion expansion = core::Expansion::kII;
  MappingStrategy mapping = MappingStrategy::kAuto;
  mapping::DesignObjective objective = mapping::DesignObjective::kTime;

  // Execution knobs (not part of the canonical key; see file comment).
  sim::MemoryMode memory = sim::MemoryMode::kDense;
  int threads = 0;  ///< 0 = BITLEVEL_THREADS / hardware, 1 = serial.
};

/// The content-addressed cache key of the plan-determining fields.
/// Requires the kernel name to be registered (throws NotFoundError
/// naming the allowed set otherwise).
std::string canonical_key(const DesignRequest& request);

}  // namespace bitlevel::pipeline
