// Role map of a structure's dependence columns plus the coordinates
// and accumulation boundary the compressor cell and read-out need.
// Shared by the scalar executor, the 64-lane interpreted executor
// (pipeline/executor.cpp) and the plan compiler (pipeline/compiled.cpp)
// so all three interpret one structure identically: the columns are
// located by their cause labels (set by expand()) and by whether the
// dependence moves in the word-level coordinates. d1/d2 may be absent
// when the operand enters externally.
#pragma once

#include "core/expansion.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {

struct CompressorLayout {
  math::Int p;
  std::size_t n;         ///< Word-level dimensions.
  std::size_t i1c, i2c;  ///< Bit-grid coordinate positions.
  std::size_t col_d1, col_d2, col_d3, col_d4, col_d5, col_d6, col_d7;
  ir::ValidityRegion boundary;

  explicit CompressorLayout(const core::BitLevelStructure& structure)
      : p(structure.p),
        n(structure.word_dims()),
        i1c(structure.i1_coord()),
        i2c(structure.i2_coord()),
        boundary(core::accumulation_boundary(structure.word, structure.dim())) {
    const auto& deps = structure.deps;
    col_d1 = col_d2 = col_d3 = col_d4 = col_d5 = col_d6 = col_d7 = deps.size();
    for (std::size_t i = 0; i < deps.size(); ++i) {
      const auto& col = deps[i];
      const bool word_level = !math::is_zero(
          math::IntVec(col.d.begin(), col.d.begin() + static_cast<std::ptrdiff_t>(n)));
      if (col.cause == "x") {
        (word_level ? col_d1 : col_d4) = i;
      } else if (col.cause == "y") {
        col_d2 = i;
      } else if (col.cause == "y,c") {
        col_d5 = i;
      } else if (col.cause == "z") {
        (word_level ? col_d3 : col_d6) = i;
      } else if (col.cause == "c'") {
        col_d7 = i;
      }
    }
    BL_REQUIRE(col_d3 < deps.size() && col_d4 < deps.size() && col_d5 < deps.size() &&
                   col_d6 < deps.size() && col_d7 < deps.size(),
               "structure is missing expected expansion columns");
  }

  math::IntVec word_part(const math::IntVec& q) const {
    return math::IntVec(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
  }
};

}  // namespace bitlevel::pipeline
