#include "pipeline/compiled.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <utility>

#include "pipeline/compressor_layout.hpp"
#include "sim/lane_block.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define BITLEVEL_AVX2_KERNELS 1
#endif

namespace bitlevel::pipeline {

namespace {

using math::Int;
using math::IntMat;
using math::IntVec;
using sim::LaneWord;

// Compiled slots hold the three dependence-carried channels only: x/y
// forwarding was resolved to packed-operand reads at compile time.
constexpr std::size_t kSlotZ = 0, kSlotC = 1, kSlotCp = 2;
constexpr std::size_t kSlotChannels = 3;

// Same fan-out threshold as Machine::run — the barrier cost per pass is
// comparable, and keeping the constant aligned keeps the serial /
// parallel line in the same place for both executors.
constexpr std::size_t kMinFanOut = 16;

/// Row-major strides over an index-set box; lexicographic enumeration
/// order equals this linear order, so the linear index doubles as the
/// enumeration ordinal (the same layout Machine::linear_index uses).
IntVec box_strides(const ir::IndexSet& box) {
  const std::size_t n = box.dim();
  IntVec strides(n, 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    const Int extent = box.upper()[i + 1] - box.lower()[i + 1] + 1;
    strides[i] = math::checked_mul(strides[i + 1], extent);
  }
  return strides;
}

std::size_t box_linear(const ir::IndexSet& box, const IntVec& strides, const IntVec& q) {
  Int at = 0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    at += strides[i] * (q[i] - box.lower()[i]);
  }
  return static_cast<std::size_t>(at);
}

}  // namespace

std::shared_ptr<const CompiledSchedule> compile_schedule(
    const core::BitLevelStructure& structure, const mapping::MappingMatrix& t,
    const mapping::InterconnectionPrimitives& prims, const math::IntMat& k) {
  const CompressorLayout L(structure);
  const Int p = L.p;
  const auto& deps = structure.deps;
  const Int npoints_i = structure.domain.size();
  BL_REQUIRE(npoints_i > 0, "empty domain");
  const Int nwords_i = structure.word.domain.size();

  // Index bounds of the flattened representation: event ordinals are
  // int32 slots, packed-operand elements are uint32 word_linear * p +
  // bit. Instances beyond them fall back to the interpreted path.
  constexpr Int kMaxIndex = std::numeric_limits<std::int32_t>::max();
  if (npoints_i > kMaxIndex) return nullptr;
  if (math::checked_mul(nwords_i, p) > kMaxIndex) return nullptr;
  const std::size_t npoints = static_cast<std::size_t>(npoints_i);

  auto schedule = std::make_shared<CompiledSchedule>();
  CompiledSchedule& s = *schedule;
  s.p = p;

  // Word-level points: the packed-operand arrays are laid out by the
  // lexicographic ordinal, which for a dense box equals the row-major
  // linear index.
  const ir::IndexSet& wdom = structure.word.domain;
  const IntVec wstrides = box_strides(wdom);
  s.word_points.reserve(static_cast<std::size_t>(nwords_i));
  wdom.for_each([&](const IntVec& j) {
    s.word_points.push_back(j);
    return true;
  });
  const auto word_index = [&](const IntVec& j) { return box_linear(wdom, wstrides, j); };

  // Events in the machine's dense order: lexicographic domain
  // enumeration, stable-sorted by cycle. The resulting ordinal IS the
  // event's slot id.
  const IntVec pi = t.schedule();
  const IntMat space = t.space();
  struct Ev {
    Int cycle;
    IntVec q;
  };
  std::vector<Ev> evs;
  evs.reserve(npoints);
  structure.domain.for_each([&](const IntVec& q) {
    evs.push_back({math::dot(pi, q), q});
    return true;
  });
  std::stable_sort(evs.begin(), evs.end(),
                   [](const Ev& a, const Ev& b) { return a.cycle < b.cycle; });

  const IntVec strides = box_strides(structure.domain);
  std::vector<std::int32_t> slot_of(npoints, CompiledEvent::kNoSource);
  for (std::size_t e = 0; e < npoints; ++e) {
    slot_of[box_linear(structure.domain, strides, evs[e].q)] = static_cast<std::int32_t>(e);
  }

  // Per-column hop counts and slack from the static routes, with the
  // same condition-2 / (4.1) contract checks a machine run performs.
  const std::size_t ncols = deps.size();
  IntVec hops(ncols, 0);
  IntVec wire(ncols, 0);
  Int window = 0;
  sim::SimulationStats stats;
  stats.buffer_depth.assign(ncols, 0);
  for (std::size_t i = 0; i < ncols; ++i) {
    for (std::size_t j = 0; j < prims.count(); ++j) {
      const Int uses = k.at(j, i);
      BL_REQUIRE(uses >= 0, "routing counts must be nonnegative");
      hops[i] = math::checked_add(hops[i], uses);
      wire[i] = math::checked_add(wire[i], math::checked_mul(uses, math::l1_norm(prims.p.col(j))));
    }
    const Int forward = math::dot(pi, deps[i].d);
    BL_REQUIRE(forward >= 1,
               "schedule must order every dependence strictly forward (condition 2)");
    const Int slack = math::checked_sub(forward, hops[i]);
    BL_REQUIRE(slack >= 0, "routing uses more hops than the schedule allows (4.1)");
    stats.buffer_depth[i] = slack;
    window = std::max(window, forward);
  }

  stats.first_cycle = evs.front().cycle;
  stats.last_cycle = evs.back().cycle;
  stats.cycles = stats.last_cycle - stats.first_cycle + 1;
  stats.computations = npoints_i;

  // Operand chains resolve to their origin: the interpreted cell copies
  // x/y verbatim along the pipeline (preferring the grid column over
  // the word-level one at every hop), so the consumer's value IS the
  // packed bit at the first point whose preferred producer is absent or
  // external. Condition 2 (checked above) makes every chain finite.
  const auto operand_bit = [&](const IntVec& at, std::size_t grid_col, std::size_t word_col,
                               std::size_t bit_coord) -> std::uint32_t {
    IntVec q = at;
    for (;;) {
      std::size_t col = ncols;
      if (grid_col < ncols && deps[grid_col].valid.contains(q)) {
        col = grid_col;
      } else if (word_col < ncols && deps[word_col].valid.contains(q)) {
        col = word_col;
      }
      if (col == ncols) break;
      IntVec producer = math::sub(q, deps[col].d);
      if (!structure.domain.contains(producer)) break;  // external feeds q's own bit
      q = std::move(producer);
    }
    const std::size_t element = word_index(L.word_part(q)) * static_cast<std::size_t>(p) +
                                static_cast<std::size_t>(q[bit_coord] - 1);
    return static_cast<std::uint32_t>(element);
  };

  // A summand's producer slot; kNoSource when the column is invalid or
  // the producer is external (externals carry zero sums and carries).
  const auto producer_slot = [&](const IntVec& q, std::size_t col) -> std::int32_t {
    if (col >= ncols || !deps[col].valid.contains(q)) return CompiledEvent::kNoSource;
    const IntVec producer = math::sub(q, deps[col].d);
    if (!structure.domain.contains(producer)) return CompiledEvent::kNoSource;
    return slot_of[box_linear(structure.domain, strides, producer)];
  };

  const auto consumed = [&](const IntVec& q, std::size_t col) {
    const IntVec consumer = math::add(q, deps[col].d);
    return structure.domain.contains(consumer) && deps[col].valid.contains(consumer);
  };

  s.events.resize(npoints);
  s.points.resize(npoints);
  for (std::size_t e = 0; e < npoints; ++e) {
    const IntVec& q = evs[e].q;
    const Int cycle = evs[e].cycle;
    CompiledEvent& ev = s.events[e];
    ev.x_bit = operand_bit(q, L.col_d4, L.col_d1, L.i2c);
    ev.y_bit = operand_bit(q, L.col_d5, L.col_d2, L.i1c);
    ev.z3 = producer_slot(q, L.col_d3);
    ev.z6 = producer_slot(q, L.col_d6);
    ev.c5 = producer_slot(q, L.col_d5);
    ev.c7 = producer_slot(q, L.col_d7);
    if (!consumed(q, L.col_d5)) {
      // The carry out of cell (p, p) on an accumulation-boundary point
      // is the legitimate output bit 2p; everything else is a loss.
      const bool top_output = q[L.i1c] == p && q[L.i2c] == p && L.boundary.contains(q);
      if (!top_output) ev.checks |= CompiledEvent::kCheckCarry;
    }
    if (!consumed(q, L.col_d7)) ev.checks |= CompiledEvent::kCheckSecondCarry;
    s.points[e] = q;

    // Analytic accounting, exactly the machine's execute_event terms:
    // every valid column with an in-domain producer contributes its
    // hops, wire and the consumer-side buffer wait. (Statistics are
    // value-independent, so they compile like everything else.)
    for (std::size_t i = 0; i < ncols; ++i) {
      if (!deps[i].valid.contains(q)) continue;
      const IntVec producer = math::sub(q, deps[i].d);
      if (!structure.domain.contains(producer)) continue;
      const Int produced = math::dot(pi, producer);
      BL_REQUIRE(produced + hops[i] <= cycle,
                 "operand arrives after its consumption cycle — (4.1) violated");
      stats.link_transmissions = math::checked_add(stats.link_transmissions, hops[i]);
      stats.wire_length = math::checked_add(stats.wire_length, wire[i]);
      stats.buffered_value_cycles =
          math::checked_add(stats.buffered_value_cycles, cycle - produced - hops[i]);
    }
  }

  // Pass boundaries, PE accounting (with the machine's per-cycle
  // conflict check) and the streaming-arena replay: the arena acquires
  // a whole cycle before retiring anything, so its high-water mark is
  // live-before + pass size at each cycle, then cycles older than the
  // dependence window retire.
  std::set<IntVec> pes;
  std::vector<IntVec> cycle_pes;
  std::deque<std::pair<Int, Int>> resident;  // (cycle, pass size)
  Int live = 0;
  Int peak_live = 0;
  std::size_t at = 0;
  while (at < npoints) {
    const Int cycle = evs[at].cycle;
    std::size_t end = at;
    while (end < npoints && evs[end].cycle == cycle) ++end;
    const Int count = static_cast<Int>(end - at);
    s.pass_first.push_back(static_cast<std::uint32_t>(at));
    stats.peak_parallelism = std::max(stats.peak_parallelism, count);

    cycle_pes.clear();
    for (std::size_t e = at; e < end; ++e) cycle_pes.push_back(space.mul(evs[e].q));
    std::sort(cycle_pes.begin(), cycle_pes.end());
    for (std::size_t e = 1; e < cycle_pes.size(); ++e) {
      BL_REQUIRE(cycle_pes[e] != cycle_pes[e - 1],
                 "computational conflict at a (PE, cycle) pair — mapping is infeasible");
    }
    for (auto& pe : cycle_pes) pes.insert(std::move(pe));

    live += count;
    peak_live = std::max(peak_live, live);
    resident.emplace_back(cycle, count);
    while (!resident.empty() && resident.front().first + window <= cycle) {
      live -= resident.front().second;
      resident.pop_front();
    }
    at = end;
  }
  s.pass_first.push_back(static_cast<std::uint32_t>(npoints));

  stats.pe_count = static_cast<Int>(pes.size());
  stats.pe_utilization = stats.pe_count > 0 && stats.cycles > 0
                             ? static_cast<double>(stats.computations) /
                                   (static_cast<double>(stats.pe_count) *
                                    static_cast<double>(stats.cycles))
                             : 0.0;

  // Streaming observe predicate (the bit-grid edge superset the
  // read-out touches): count its matches once here.
  for (const Ev& ev : evs) {
    if (ev.q[L.i1c] == p || ev.q[L.i2c] == 1) s.observed_streaming += 1;
  }

  s.stats_dense = stats;
  s.stats_dense.peak_live_slots = npoints_i;
  s.stats_dense.observed_points = npoints_i;
  s.stats_streaming = stats;
  s.stats_streaming.peak_live_slots = peak_live;
  s.stats_streaming.observed_points = s.observed_streaming;  // want_z runs; re-stamped otherwise

  // Read-out map: per boundary word point, the 2p output bits LSB-first
  // (bit i at cell (i, 1), bit p + i2 - 1 at (p, i2), bit 2p from
  // c(p, p)) — the same walk the scalar read-out performs.
  const auto slot_at = [&](const IntVec& j, Int i1, Int i2) {
    const std::int32_t slot =
        slot_of[box_linear(structure.domain, strides, math::concat(j, IntVec{i1, i2}))];
    return static_cast<std::uint32_t>(slot);
  };
  wdom.for_each([&](const IntVec& j) {
    if (!L.boundary.contains(math::concat(j, IntVec{1, 1}))) return true;
    s.boundary_words.push_back(static_cast<std::uint32_t>(word_index(j)));
    for (Int i = 1; i <= p; ++i) {
      s.readout_bits.push_back({slot_at(j, i, 1), static_cast<std::uint8_t>(kSlotZ)});
    }
    for (Int i2 = 2; i2 <= p; ++i2) {
      s.readout_bits.push_back({slot_at(j, p, i2), static_cast<std::uint8_t>(kSlotZ)});
    }
    s.readout_bits.push_back({slot_at(j, p, p), static_cast<std::uint8_t>(kSlotC)});
    return true;
  });

  return schedule;
}

namespace {

// --- Straight-line pass execution ----------------------------------

/// Everything a pass kernel touches, W lane words per channel: packed
/// operands (element stride W), slots (stride kSlotChannels * W, plus
/// one trailing always-zero slot that kNoSource summands read), and the
/// active-lane masks gating the capacity checks.
struct PassCtx {
  const CompiledSchedule* schedule = nullptr;
  const LaneWord* xops = nullptr;
  const LaneWord* yops = nullptr;
  LaneWord* slots = nullptr;
  const LaneWord* active = nullptr;
  std::size_t zero_slot = 0;  ///< Ordinal of the trailing zero slot.
};

[[noreturn]] void throw_dropped_carry(const CompiledSchedule& s, std::size_t e, bool second) {
  const std::string what = second ? "second carry" : "carry";
  throw OverflowError("array dropped a " + what + " at " + math::to_string(s.points[e]) +
                      ": capacity precondition violated");
}

inline std::size_t source_slot(std::int32_t slot, std::size_t zero_slot) {
  return slot >= 0 ? static_cast<std::size_t>(slot) : zero_slot;
}

/// Portable kernel: the branch-free two-full-adder compress of the
/// interpreted lane cell, widened to W words per channel. The per-word
/// loops have a compile-time trip count, so -O2 unrolls (and usually
/// vectorizes) them; the AVX2 kernels below are the hand-scheduled
/// forms runtime dispatch prefers on capable x86-64.
template <std::size_t W>
void run_events_generic(const PassCtx& ctx, std::size_t e0, std::size_t e1) {
  constexpr std::size_t stride = kSlotChannels * W;
  const CompiledEvent* const events = ctx.schedule->events.data();
  for (std::size_t e = e0; e < e1; ++e) {
    const CompiledEvent& ev = events[e];
    const LaneWord* const xw = ctx.xops + std::size_t{ev.x_bit} * W;
    const LaneWord* const yw = ctx.yops + std::size_t{ev.y_bit} * W;
    const LaneWord* const z3 = ctx.slots + source_slot(ev.z3, ctx.zero_slot) * stride;
    const LaneWord* const z6 = ctx.slots + source_slot(ev.z6, ctx.zero_slot) * stride;
    const LaneWord* const c5 = ctx.slots + source_slot(ev.c5, ctx.zero_slot) * stride;
    const LaneWord* const c7 = ctx.slots + source_slot(ev.c7, ctx.zero_slot) * stride;
    LaneWord* const dst = ctx.slots + e * stride;
    LaneWord carry_any = 0;
    LaneWord second_any = 0;
    for (std::size_t w = 0; w < W; ++w) {
      const LaneWord pp = xw[w] & yw[w];
      const LaneWord z3v = z3[kSlotZ * W + w];
      const LaneWord z6v = z6[kSlotZ * W + w];
      const LaneWord c5v = c5[kSlotC * W + w];
      const LaneWord c7v = c7[kSlotCp * W + w];
      const LaneWord t1 = pp ^ z3v;
      const LaneWord s1 = t1 ^ z6v;
      const LaneWord c1 = (pp & z3v) | (z6v & t1);
      const LaneWord t2 = s1 ^ c5v;
      const LaneWord s2 = t2 ^ c7v;
      const LaneWord c2 = (s1 & c5v) | (c7v & t2);
      dst[kSlotZ * W + w] = s2;
      dst[kSlotC * W + w] = c1 ^ c2;
      dst[kSlotCp * W + w] = c1 & c2;
      carry_any |= dst[kSlotC * W + w] & ctx.active[w];
      second_any |= dst[kSlotCp * W + w] & ctx.active[w];
    }
    if ((ev.checks & CompiledEvent::kCheckCarry) != 0 && carry_any != 0) {
      throw_dropped_carry(*ctx.schedule, e, /*second=*/false);
    }
    if ((ev.checks & CompiledEvent::kCheckSecondCarry) != 0 && second_any != 0) {
      throw_dropped_carry(*ctx.schedule, e, /*second=*/true);
    }
  }
}

#if defined(BITLEVEL_AVX2_KERNELS)

// Lambdas don't inherit the enclosing function's target attribute, so
// the load helper is a targeted free function.
__attribute__((target("avx2"))) inline __m256i avx2_load(const LaneWord* at) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(at));
}

// 256-lane groups: one __m256i per channel. Compiled with the avx2
// target attribute so the rest of the TU stays baseline; only reached
// when sim::simd_backend() confirmed CPU support.
__attribute__((target("avx2"))) void run_events_avx2_w4(const PassCtx& ctx, std::size_t e0,
                                                        std::size_t e1) {
  constexpr std::size_t W = 4;
  constexpr std::size_t stride = kSlotChannels * W;
  const CompiledEvent* const events = ctx.schedule->events.data();
  const __m256i act = avx2_load(ctx.active);
  for (std::size_t e = e0; e < e1; ++e) {
    const CompiledEvent& ev = events[e];
    const __m256i x = avx2_load(ctx.xops + std::size_t{ev.x_bit} * W);
    const __m256i y = avx2_load(ctx.yops + std::size_t{ev.y_bit} * W);
    const __m256i z3 =
        avx2_load(ctx.slots + source_slot(ev.z3, ctx.zero_slot) * stride + kSlotZ * W);
    const __m256i z6 =
        avx2_load(ctx.slots + source_slot(ev.z6, ctx.zero_slot) * stride + kSlotZ * W);
    const __m256i c5 =
        avx2_load(ctx.slots + source_slot(ev.c5, ctx.zero_slot) * stride + kSlotC * W);
    const __m256i c7 =
        avx2_load(ctx.slots + source_slot(ev.c7, ctx.zero_slot) * stride + kSlotCp * W);
    const __m256i pp = _mm256_and_si256(x, y);
    const __m256i t1 = _mm256_xor_si256(pp, z3);
    const __m256i s1 = _mm256_xor_si256(t1, z6);
    const __m256i c1 =
        _mm256_or_si256(_mm256_and_si256(pp, z3), _mm256_and_si256(z6, t1));
    const __m256i t2 = _mm256_xor_si256(s1, c5);
    const __m256i s2 = _mm256_xor_si256(t2, c7);
    const __m256i c2 =
        _mm256_or_si256(_mm256_and_si256(s1, c5), _mm256_and_si256(c7, t2));
    const __m256i carry = _mm256_xor_si256(c1, c2);
    const __m256i second = _mm256_and_si256(c1, c2);
    LaneWord* const dst = ctx.slots + e * stride;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kSlotZ * W), s2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kSlotC * W), carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kSlotCp * W), second);
    if (ev.checks != 0) {
      if ((ev.checks & CompiledEvent::kCheckCarry) != 0 && _mm256_testz_si256(carry, act) == 0) {
        throw_dropped_carry(*ctx.schedule, e, /*second=*/false);
      }
      if ((ev.checks & CompiledEvent::kCheckSecondCarry) != 0 &&
          _mm256_testz_si256(second, act) == 0) {
        throw_dropped_carry(*ctx.schedule, e, /*second=*/true);
      }
    }
  }
}

// 512-lane groups: two __m256i per channel.
__attribute__((target("avx2"))) void run_events_avx2_w8(const PassCtx& ctx, std::size_t e0,
                                                        std::size_t e1) {
  constexpr std::size_t W = 8;
  constexpr std::size_t stride = kSlotChannels * W;
  const CompiledEvent* const events = ctx.schedule->events.data();
  const __m256i act0 = avx2_load(ctx.active);
  const __m256i act1 = avx2_load(ctx.active + 4);
  for (std::size_t e = e0; e < e1; ++e) {
    const CompiledEvent& ev = events[e];
    const LaneWord* const xw = ctx.xops + std::size_t{ev.x_bit} * W;
    const LaneWord* const yw = ctx.yops + std::size_t{ev.y_bit} * W;
    const LaneWord* const z3p = ctx.slots + source_slot(ev.z3, ctx.zero_slot) * stride;
    const LaneWord* const z6p = ctx.slots + source_slot(ev.z6, ctx.zero_slot) * stride;
    const LaneWord* const c5p = ctx.slots + source_slot(ev.c5, ctx.zero_slot) * stride;
    const LaneWord* const c7p = ctx.slots + source_slot(ev.c7, ctx.zero_slot) * stride;
    LaneWord* const dst = ctx.slots + e * stride;
    __m256i carry_hit = _mm256_setzero_si256();
    __m256i second_hit = _mm256_setzero_si256();
    for (std::size_t h = 0; h < 2; ++h) {
      const std::size_t off = h * 4;
      const __m256i act = h == 0 ? act0 : act1;
      const __m256i x = avx2_load(xw + off);
      const __m256i y = avx2_load(yw + off);
      const __m256i z3 = avx2_load(z3p + kSlotZ * W + off);
      const __m256i z6 = avx2_load(z6p + kSlotZ * W + off);
      const __m256i c5 = avx2_load(c5p + kSlotC * W + off);
      const __m256i c7 = avx2_load(c7p + kSlotCp * W + off);
      const __m256i pp = _mm256_and_si256(x, y);
      const __m256i t1 = _mm256_xor_si256(pp, z3);
      const __m256i s1 = _mm256_xor_si256(t1, z6);
      const __m256i c1 =
          _mm256_or_si256(_mm256_and_si256(pp, z3), _mm256_and_si256(z6, t1));
      const __m256i t2 = _mm256_xor_si256(s1, c5);
      const __m256i s2 = _mm256_xor_si256(t2, c7);
      const __m256i c2 =
          _mm256_or_si256(_mm256_and_si256(s1, c5), _mm256_and_si256(c7, t2));
      const __m256i carry = _mm256_xor_si256(c1, c2);
      const __m256i second = _mm256_and_si256(c1, c2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kSlotZ * W + off), s2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kSlotC * W + off), carry);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + kSlotCp * W + off), second);
      carry_hit = _mm256_or_si256(carry_hit, _mm256_and_si256(carry, act));
      second_hit = _mm256_or_si256(second_hit, _mm256_and_si256(second, act));
    }
    if (ev.checks != 0) {
      if ((ev.checks & CompiledEvent::kCheckCarry) != 0 &&
          _mm256_testz_si256(carry_hit, carry_hit) == 0) {
        throw_dropped_carry(*ctx.schedule, e, /*second=*/false);
      }
      if ((ev.checks & CompiledEvent::kCheckSecondCarry) != 0 &&
          _mm256_testz_si256(second_hit, second_hit) == 0) {
        throw_dropped_carry(*ctx.schedule, e, /*second=*/true);
      }
    }
  }
}

#endif  // BITLEVEL_AVX2_KERNELS

using EventRunner = void (*)(const PassCtx&, std::size_t, std::size_t);

template <std::size_t W>
EventRunner pick_runner(sim::SimdBackend backend) {
#if defined(BITLEVEL_AVX2_KERNELS)
  if (backend == sim::SimdBackend::kAvx2) {
    if constexpr (W == 4) return run_events_avx2_w4;
    if constexpr (W == 8) return run_events_avx2_w8;
  }
#else
  (void)backend;
#endif
  return run_events_generic<W>;
}

}  // namespace

void run_compiled_group(const CompiledSchedule& schedule, const std::vector<BatchItem>& items,
                        std::size_t first, std::size_t lanes, std::size_t lane_words,
                        const BatchOptions& options, std::vector<PlanRunResult>& results) {
  const std::size_t W = lane_words;
  BL_REQUIRE(sim::lane_words_supported(W), "unsupported lane-block width");
  BL_REQUIRE(lanes >= 1 && lanes <= W * sim::kLaneWidth,
             "lane group must hold 1..width items");
  const std::size_t p = static_cast<std::size_t>(schedule.p);
  const std::size_t nevents = schedule.events.size();

  // Bit-transpose the operands once per group, exactly the interpreted
  // path's packing widened to W words: element (word_linear * p + b)
  // holds bit b of every lane's operand word at that word point.
  std::vector<LaneWord> xops(schedule.word_points.size() * p * W, 0);
  std::vector<LaneWord> yops(schedule.word_points.size() * p * W, 0);
  for (std::size_t wi = 0; wi < schedule.word_points.size(); ++wi) {
    const IntVec& j = schedule.word_points[wi];
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::uint64_t xw = items[first + l].x(j);
      const std::uint64_t yw = items[first + l].y(j);
      const std::size_t word = l / sim::kLaneWidth;
      const std::size_t bit = l % sim::kLaneWidth;
      for (std::size_t b = 0; b < p; ++b) {
        xops[(wi * p + b) * W + word] |= ((xw >> b) & 1U) << bit;
        yops[(wi * p + b) * W + word] |= ((yw >> b) & 1U) << bit;
      }
    }
  }

  // Ragged tails: inactive lanes never receive operand bits, so — the
  // cell being pure-boolean with zero an absorbing input — they stay
  // zero in every slot; the masks additionally exclude them from the
  // capacity-honesty checks (sim::lane_block_masks is the shift-safe
  // form: a tail exactly filling a word gets a full mask, never a
  // 64-bit shift).
  LaneWord active[sim::kMaxLaneWords] = {};
  sim::lane_block_masks(W, lanes, active);

  // One trailing always-zero slot serves every kNoSource summand, so
  // the kernels stay branch-free on operand sourcing.
  std::vector<LaneWord> slots((nevents + 1) * kSlotChannels * W, 0);

  PassCtx ctx;
  ctx.schedule = &schedule;
  ctx.xops = xops.data();
  ctx.yops = yops.data();
  ctx.slots = slots.data();
  ctx.active = active;
  ctx.zero_slot = nevents;

  EventRunner runner = nullptr;
  const sim::SimdBackend backend = sim::simd_backend();
  switch (W) {
    case 1:
      runner = pick_runner<1>(backend);
      break;
    case 2:
      runner = pick_runner<2>(backend);
      break;
    case 4:
      runner = pick_runner<4>(backend);
      break;
    case 8:
      runner = pick_runner<8>(backend);
      break;
    default:
      BL_REQUIRE(false, "unsupported lane-block width");
  }

  // Passes run in schedule order; events within a pass read only
  // earlier passes' slots (condition 2) and write disjoint slots, so
  // wide passes fan out with the machine's threshold and determinism
  // (contiguous chunks, lowest-chunk exception — the same event the
  // serial order would fail on first).
  const std::size_t nthreads = support::ThreadPool::resolve_threads(options.threads);
  auto& pool = support::ThreadPool::shared();
  for (std::size_t pass = 0; pass + 1 < schedule.pass_first.size(); ++pass) {
    const std::size_t e0 = schedule.pass_first[pass];
    const std::size_t e1 = schedule.pass_first[pass + 1];
    if (nthreads > 1 && e1 - e0 >= kMinFanOut) {
      pool.parallel_for(nthreads, e0, e1,
                        [&](std::size_t, std::size_t lo, std::size_t hi) { runner(ctx, lo, hi); });
    } else {
      runner(ctx, e0, e1);
    }
  }

  // Statistics are value-independent, so the compiled templates ARE
  // each item's stats; only the run-option-dependent fields are
  // stamped here (matching what a machine run would have reported).
  sim::SimulationStats stats = options.memory == sim::MemoryMode::kStreaming
                                   ? schedule.stats_streaming
                                   : schedule.stats_dense;
  stats.threads_used = static_cast<int>(nthreads);
  if (options.memory == sim::MemoryMode::kStreaming && !options.want_z) {
    stats.observed_points = 0;  // no observe predicate installed without a read-out
  }
  const auto masked = [&](std::size_t l) {
    return options.mask_item && options.mask_item(first + l);
  };
  for (std::size_t l = 0; l < lanes; ++l) {
    if (!masked(l)) results[first + l].stats = stats;
  }
  if (!options.want_z) return;

  // De-slice the read-out: the compiled ReadBit map replaces the
  // interpreted path's outputs_at() walk, same bits in the same order.
  const std::size_t nbits = 2 * p;
  constexpr std::size_t stride = kSlotChannels;
  for (std::size_t bw = 0; bw < schedule.boundary_words.size(); ++bw) {
    const IntVec& j = schedule.word_points[schedule.boundary_words[bw]];
    const CompiledSchedule::ReadBit* rb = schedule.readout_bits.data() + bw * nbits;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (masked(l)) continue;  // cancelled lane: drop from the scatter
      const std::size_t word = l / sim::kLaneWidth;
      const std::size_t bit = l % sim::kLaneWidth;
      std::uint64_t value = 0;
      for (std::size_t b = 0; b < nbits; ++b) {
        const LaneWord lw =
            slots[(std::size_t{rb[b].slot} * stride + rb[b].channel) * W + word];
        value |= ((lw >> bit) & 1U) << b;
      }
      results[first + l].z.emplace(j, value);
    }
  }
}

}  // namespace bitlevel::pipeline
