// The staged compose pipeline: DesignRequest -> DesignPlan.
//
// Theorem 3.1 presents the bit-level design as a composition of three
// components; compose() makes that composition an explicit sequence of
// passes, each a separately reusable level (in the multilevel spirit of
// D'Amore et al.):
//
//   1. resolve  — kernel registry name -> word-level model (3.5), with
//                 the batch axis composed for problem pipelining;
//   2. expand   — Theorem 3.1: word structure x arithmetic structure x
//                 expansion -> bit-level (J, D);
//   3. map      — a space/time mapping per the request's strategy
//                 (design-space exploration, the published Fig. 4/5
//                 matrices, or exploration with published fallback);
//   4. machine  — Definition 4.1 feasibility + the routing matrix K,
//                 i.e. everything the cycle-accurate machine needs.
//
// compose() is the cold path; callers wanting reuse go through
// PlanCache::get_or_compose(), which guarantees one composition per
// canonical key per process.
#pragma once

#include "pipeline/plan.hpp"

namespace bitlevel::pipeline {

/// Stage 1 alone: resolve a kernel spec to its word-level model.
/// Throws NotFoundError (naming the allowed set) for unknown names.
ir::WordLevelModel resolve_kernel(const KernelSpec& spec);

/// Run all stages. The returned plan has a mapping unless the strategy
/// was kStructureOnly or exploration (without a usable fallback) found
/// no feasible design; published strategies throw PreconditionError
/// when the published mapping is infeasible for the structure.
PlanPtr compose(const DesignRequest& request);

}  // namespace bitlevel::pipeline
