// Executing composed plans — single runs and batched runs.
//
// The cell body is the paper's compressor: it ANDs the two operand bits
// arriving on the x/y pipelines and sums every dependence-carried
// summand its expansion delivers (z flows, carry, second carry),
// emitting the new partial-sum bit and carries. One implementation
// serves Expansion I and II because the structure's validity regions
// gate which inputs exist at each point; it lives here (not in arch) so
// arch::BitLevelArray, the CLI and run_batch() all execute the same
// code over shared plans.
//
// run_batch() is the serving primitive: many operand sets over ONE
// cached plan — the expansion and mapping search are amortized across
// the whole batch, and each item's results are deterministic and
// independent of the others.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/evaluator.hpp"
#include "pipeline/cache.hpp"

namespace bitlevel::pipeline {

/// Execution knobs for one run, overriding the request's.
struct RunOptions {
  int threads = 0;
  sim::MemoryMode memory = sim::MemoryMode::kDense;
};

/// Result of one cycle-accurate run.
struct PlanRunResult {
  sim::SimulationStats stats;
  /// Final accumulated z word per accumulation-boundary word point.
  std::map<math::IntVec, std::uint64_t> z;
};

/// Cycle-accurate run of a composed structure under mapping t/prims
/// with precomputed routing k (the machine stage's output). Throws
/// OverflowError when the fixed grid would drop a carry (capacity
/// preconditions in core/evaluator.hpp).
PlanRunResult run_mapped_structure(const core::BitLevelStructure& s,
                                   const mapping::MappingMatrix& t,
                                   const mapping::InterconnectionPrimitives& prims,
                                   const math::IntMat& k, const core::OperandFn& x,
                                   const core::OperandFn& y, const RunOptions& options = {});

/// Run a plan (which must have a mapping) with explicit options.
PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y, const RunOptions& options);

/// Run a plan with the execution knobs of its request.
PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y);

/// One batch item: the operand words of one independent problem.
struct BatchItem {
  core::OperandFn x;
  core::OperandFn y;
};

/// Result of a batched execution.
struct BatchResult {
  PlanPtr plan;                        ///< The shared plan every item ran on.
  bool plan_was_cached = false;        ///< True when the cache already held it.
  std::vector<PlanRunResult> results;  ///< One per item, in order.
};

/// Execute every item over ONE plan for `request`, composed at most
/// once via `cache`. Per-item results are bit-identical to running each
/// item through a freshly composed plan.
BatchResult run_batch(PlanCache& cache, const DesignRequest& request,
                      const std::vector<BatchItem>& items);

}  // namespace bitlevel::pipeline
