// Executing composed plans — single runs and batched runs.
//
// The cell body is the paper's compressor: it ANDs the two operand bits
// arriving on the x/y pipelines and sums every dependence-carried
// summand its expansion delivers (z flows, carry, second carry),
// emitting the new partial-sum bit and carries. One implementation
// serves Expansion I and II because the structure's validity regions
// gate which inputs exist at each point; it lives here (not in arch) so
// arch::BitLevelArray, the CLI and run_batch() all execute the same
// code over shared plans.
//
// run_batch() is the serving primitive: many operand sets over ONE
// cached plan — the expansion and mapping search are amortized across
// the whole batch, and each item's results are deterministic and
// independent of the others.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/evaluator.hpp"
#include "faults/report.hpp"
#include "pipeline/cache.hpp"
#include "support/cancel.hpp"

namespace bitlevel::pipeline {

/// Execution knobs for one run, overriding the request's.
struct RunOptions {
  int threads = 0;
  sim::MemoryMode memory = sim::MemoryMode::kDense;
  /// Optional fault scenario. Non-null switches the run fault-aware:
  /// the cell bundle grows a parity channel, a faults::FaultInjector
  /// corrupts the produce/transmit boundaries, the machine detects and
  /// recovers at each cycle barrier, and the ABFT read-out check runs.
  /// Null is the clean path — bit-identical to a build without the
  /// feature. The pointee is only read for the duration of the call.
  const faults::FaultModel* faults = nullptr;
  /// Fault runs only: turn the parity/ABFT detection and recovery off
  /// (injection still happens) to measure silent-corruption rates.
  bool fault_checks = true;
  /// Off: skip the accumulation-boundary read-out entirely —
  /// PlanRunResult::z stays empty and streaming runs install no observe
  /// predicate (stats.observed_points is 0 there). For callers that only
  /// read stats or fault reports, e.g. campaign sweeps with corruption
  /// scoring disabled.
  bool want_z = true;
  /// Cooperative cancellation, forwarded to the machine (checked once
  /// per wavefront pass). A fired deadline throws DeadlineExceededError
  /// before any result is returned. Null (the default) is free.
  CancelToken cancel;
};

/// Whether run_batch packs items into bit-sliced lane groups.
enum class SlicedMode {
  kAuto,  ///< Sliced when the plan's cell is sliceable and batch >= 2.
  kOff,   ///< Always the scalar reference path.
  kOn,    ///< Always sliced (throws if the plan's cell is not sliceable).
};

std::string to_string(SlicedMode mode);

/// Execution knobs for one batched run.
struct BatchOptions {
  int threads = 0;
  sim::MemoryMode memory = sim::MemoryMode::kDense;
  SlicedMode sliced = SlicedMode::kAuto;
  bool want_z = true;  ///< See RunOptions::want_z.
  /// Whether sliced groups ride the plan's CompiledSchedule (the
  /// straight-line wide-lane executor of pipeline/compiled.hpp)
  /// instead of the 64-lane interpreted machine path. kAuto takes the
  /// compiled path whenever the plan carries a schedule and the batch
  /// is sliced; kOn requires one (throws otherwise); kOff pins the
  /// interpreted path. Results are bit-identical either way.
  SlicedMode compiled = SlicedMode::kAuto;
  /// Lanes per compiled group: 64, 128, 256 or 512 (multi-word lane
  /// blocks, see sim/lane_block.hpp). 0 = auto: the narrowest
  /// compiled width that still holds the whole batch in one group
  /// (auto_compiled_lane_width), so small batches stop paying
  /// 512-lane pass overhead. Widths beyond 64 require the compiled
  /// path; the interpreted path always runs 64-wide groups.
  int lane_width = 0;
  /// Result-scatter mask: return true to drop item `index` from the
  /// read-out. A masked item's lanes still ride its group (dropping a
  /// lane mid-flight would tear groupmates) but its z words are never
  /// de-sliced and its stats never stamped — its PlanRunResult stays
  /// default-constructed; the scalar path skips the run outright. The
  /// item still lands in its group's ledger bucket (the lane was
  /// occupied). Consulted at scatter time, so a predicate backed by a
  /// CancelToken reflects cancellations that fired mid-run. Null (the
  /// default) scatters every item.
  std::function<bool(std::size_t index)> mask_item;
  /// Test-only hook (never set in production, same discipline as
  /// serve::ServerConfig::test_stall): return true to make the
  /// compiled path decline the group with this index, forcing the
  /// mid-batch fallback to the interpreted path that the counter
  /// accounting must survive without double-counting.
  std::function<bool(std::size_t group_index)> test_compiled_reject;
  /// Cooperative cancellation, checked before composing, at every
  /// lane-group boundary, per scalar item, and once per wavefront pass
  /// inside each machine run. Null (the default) is free.
  CancelToken cancel;
};

/// Result of one cycle-accurate run.
struct PlanRunResult {
  sim::SimulationStats stats;
  /// Final accumulated z word per accumulation-boundary word point.
  /// Empty when a fault run aborted (see FaultReport::completed).
  std::map<math::IntVec, std::uint64_t> z;
  /// Present exactly when the run had a fault model installed.
  /// corrupted_words / silent_corruption are filled by callers that
  /// hold a fault-free reference (pipeline::run_campaign does).
  std::optional<faults::FaultReport> fault_report;
};

/// Cycle-accurate run of a composed structure under mapping t/prims
/// with precomputed routing k (the machine stage's output). Throws
/// OverflowError when the fixed grid would drop a carry (capacity
/// preconditions in core/evaluator.hpp).
PlanRunResult run_mapped_structure(const core::BitLevelStructure& s,
                                   const mapping::MappingMatrix& t,
                                   const mapping::InterconnectionPrimitives& prims,
                                   const math::IntMat& k, const core::OperandFn& x,
                                   const core::OperandFn& y, const RunOptions& options = {});

/// Run a plan (which must have a mapping) with explicit options.
PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y, const RunOptions& options);

/// Run a plan with the execution knobs of its request.
PlanRunResult run_plan(const DesignPlan& plan, const core::OperandFn& x,
                       const core::OperandFn& y);

/// One batch item: the operand words of one independent problem.
struct BatchItem {
  core::OperandFn x;
  core::OperandFn y;
};

/// Which execution path carried one batch item (BatchResult::item_paths).
enum class ItemPath : std::uint8_t {
  kScalar = 0,    ///< Per-item reference machine run.
  kSliced = 1,    ///< Interpreted 64-lane bit-sliced pass.
  kCompiled = 2,  ///< Compiled straight-line wide-lane pass.
};

/// Result of a batched execution.
struct BatchResult {
  PlanPtr plan;                        ///< The shared plan every item ran on.
  bool plan_was_cached = false;        ///< True when the cache already held it.
  std::vector<PlanRunResult> results;  ///< One per item, in order.
  // Execution accounting: every item lands in exactly one bucket, so
  // compiled_items + sliced_items + scalar_items == items.size() —
  // including when the compiled path falls back mid-batch (a declined
  // group is retried interpreted and counted there, never twice).
  math::Int compiled_groups = 0;  ///< Lane groups run by the compiled path.
  math::Int compiled_items = 0;   ///< Items carried as compiled wide lanes.
  math::Int sliced_groups = 0;    ///< Machine passes taken by the interpreted sliced path.
  math::Int sliced_items = 0;     ///< Items carried as interpreted bit lanes.
  math::Int scalar_items = 0;     ///< Items run through the scalar path.
  /// Effective compiled lane width (64/128/256/512) when any group ran
  /// the compiled path, 0 otherwise. Reports the auto pick; not part
  /// of any JSON document (serving byte-identity must not depend on
  /// whether a request rode a coalesced group at a different width).
  int compiled_lane_width = 0;
  // Per-item attribution, for callers that slice one combined batch
  // back into per-client views (the serve coalescer): the path each
  // item took, and the ordinal of the lane group (or scalar run) that
  // carried it. Counting distinct ordinals over any contiguous item
  // range reconstructs that range's exact group ledger.
  std::vector<ItemPath> item_paths;       ///< One per item, in order.
  std::vector<std::uint32_t> item_groups; ///< Group/run ordinal per item.
};

/// The auto lane-width policy for `BatchOptions::lane_width == 0` on
/// the compiled path: the narrowest supported block width (64, 128,
/// 256, 512) that holds `items` in one group, saturating at 512.
int auto_compiled_lane_width(std::size_t items);

/// Execute every item over ONE plan for `request`, composed at most
/// once via `cache`. Per-item results are bit-identical to running each
/// item through a freshly composed plan: the sliced fast path packs up
/// to 64 items into the bit lanes of one machine pass (see DESIGN.md
/// §8), and the scalar path is the per-item reference.
BatchResult run_batch(PlanCache& cache, const DesignRequest& request,
                      const std::vector<BatchItem>& items, const BatchOptions& options);

/// Batched execution with the execution knobs of the request and
/// SlicedMode::kAuto.
BatchResult run_batch(PlanCache& cache, const DesignRequest& request,
                      const std::vector<BatchItem>& items);

}  // namespace bitlevel::pipeline
