#include "pipeline/campaign.hpp"

#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace bitlevel::pipeline {

std::string CampaignResult::to_table() const {
  std::ostringstream os;
  os << std::left << std::setw(13) << "kind" << std::right << std::setw(8) << "rate"
     << std::setw(10) << "injected" << std::setw(10) << "detected" << std::setw(10) << "recovered"
     << std::setw(10) << "degraded" << std::setw(10) << "corrupted" << std::setw(7) << "abft"
     << std::setw(8) << "silent" << std::setw(10) << "status" << "\n";
  for (const faults::FaultReport& r : reports) {
    os << std::left << std::setw(13) << to_string(r.model.kind) << std::right << std::setw(8)
       << r.model.rate << std::setw(10) << r.injection.produce_faults + r.injection.transmit_faults
       << std::setw(10) << r.faults_detected << std::setw(10) << r.faults_recovered
       << std::setw(10) << r.degraded_points.size() << std::setw(10) << r.corrupted_words
       << std::setw(7) << (!r.abft.supported ? "n/a" : (r.abft.ok ? "ok" : "FAIL")) << std::setw(8)
       << (r.silent_corruption ? "YES" : "no") << std::setw(10)
       << (r.completed ? "complete" : "aborted") << "\n";
  }
  return os.str();
}

void CampaignResult::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("reference_words").value(reference_words);
  w.key("reports").begin_array();
  for (const faults::FaultReport& r : reports) r.write_json(w);
  w.end_array();
  w.end_object();
}

CampaignResult run_campaign(PlanCache& cache, const DesignRequest& request,
                            const core::OperandFn& x, const core::OperandFn& y,
                            const CampaignOptions& options) {
  BL_REQUIRE(!options.kinds.empty(), "campaign needs at least one fault kind");
  BL_REQUIRE(!options.rates.empty(), "campaign needs at least one fault rate");

  CampaignResult campaign;
  // An already-expired deadline sheds the sweep before composing.
  options.cancel.check("campaign start");
  const std::string key = canonical_key(request);
  campaign.plan_was_cached = cache.peek(key) != nullptr;
  campaign.plan = cache.get_or_compose(request);

  // The fault-free reference: scoring baseline for corrupted_words.
  // Skipped entirely when corruption scoring is off — no reference z
  // map is held and the faulty runs below skip their read-outs too.
  PlanRunResult reference;
  if (options.score_corruption) {
    RunOptions reference_options;
    reference_options.threads = request.threads;
    reference_options.memory = request.memory;
    reference_options.cancel = options.cancel;
    reference = run_plan(*campaign.plan, x, y, reference_options);
    campaign.reference_words = static_cast<Int>(reference.z.size());
  }

  campaign.reports.reserve(options.kinds.size() * options.rates.size());
  for (const faults::FaultKind kind : options.kinds) {
    for (const double rate : options.rates) {
      options.cancel.check("campaign-cell boundary");
      faults::FaultModel model;
      model.kind = kind;
      model.rate = rate;
      model.seed = options.seed;
      model.channel = options.channel;
      model.spares = options.spares;
      model.max_retries = options.max_retries;

      RunOptions run_options;
      run_options.threads = request.threads;
      run_options.memory = request.memory;
      run_options.faults = &model;
      run_options.fault_checks = options.fault_checks;
      run_options.want_z = options.score_corruption;
      run_options.cancel = options.cancel;
      PlanRunResult run = run_plan(*campaign.plan, x, y, run_options);

      faults::FaultReport report = std::move(*run.fault_report);
      if (report.completed && options.score_corruption) {
        for (const auto& [point, word] : reference.z) {
          const auto it = run.z.find(point);
          if (it == run.z.end() || it->second != word) ++report.corrupted_words;
        }
        report.silent_corruption = report.corrupted_words > 0 && report.faults_detected == 0 &&
                                   report.degraded_points.empty() &&
                                   (!report.abft.supported || report.abft.ok);
      }
      campaign.reports.push_back(std::move(report));
    }
  }
  return campaign;
}

}  // namespace bitlevel::pipeline
