// Tiled array partitioning: shard one huge kernel instance onto a
// bounded virtual array.
//
// The paper sizes a bit-level matmul array at u^2 p^2 PEs — one
// monolithic machine per instance — which caps the instance at
// whatever a single sim::Machine (or CompiledSchedule) fits in memory.
// This layer decomposes a tileable kernel instance into a deterministic
// grid of TILE-level DesignRequests: each tile is a matmul_rect
// sub-product small enough for a fixed PE budget, composed through the
// ordinary pipeline (Theorem 3.1 expansion + published/explored
// mapping + compiled schedule) and executed through run_batch so the
// bit-sliced and compiled wide-lane fast paths carry up to hundreds of
// tiles per machine pass. Inter-tile accumulation along the k axis is
// plain word addition outside the array, which is exact: tile partial
// sums are sums of disjoint subsets of the same non-negative addends
// the monolithic chain accumulates, so their total is bit-identical to
// the monolithic read-out.
//
// Caching is by tile SHAPE, not by tile: a ragged grid has at most
// eight distinct (m, n, k) tile shapes (interior / edge / corner), and
// each shape's DesignRequest rendezvouses in the shared PlanCache —
// one Theorem 3.1 composition per distinct shape per process, however
// many tiles the grid holds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "pipeline/executor.hpp"

namespace bitlevel::pipeline {

/// Tile-grid knobs. 0 means "unset": unset tile_k defaults to the full
/// k extent (no inter-tile accumulation); unset tile_m/tile_n are
/// derived from max_pes (the largest square tile whose array fits the
/// budget). Setting nothing is an error — tiling must be asked for.
struct TileOptions {
  math::Int tile_m = 0;
  math::Int tile_n = 0;
  math::Int tile_k = 0;
  /// PE budget for one tile's virtual array: tile_m * tile_n * p^2 must
  /// not exceed it. 0 = unbounded (explicit tile dims required).
  math::Int max_pes = 0;
};

/// True when any TileOptions field is set — the caller asked to tile.
bool tiling_requested(const TileOptions& options);

/// Resolved tile dimensions (every field >= 1 after resolution).
struct TileDims {
  math::Int m = 0;
  math::Int n = 0;
  math::Int k = 0;
};

/// One distinct tile shape of the grid with its shared child plan.
struct TileShapePlan {
  TileDims shape;
  PlanPtr plan;            ///< Composed matmul_rect plan for this shape.
  bool was_cached = false; ///< Plan was resident before compose_tiled looked.
  math::Int tiles = 0;     ///< Grid tiles of this shape.
};

/// A composed tiled plan: the deterministic tile grid plus one child
/// plan per distinct tile shape. Immutable after compose_tiled.
struct TiledPlan {
  DesignRequest base;       ///< The validated instance-level request.
  std::string tile_kernel;  ///< Registry kernel each tile instantiates.
  math::Int m = 0, n = 0, k = 0;                ///< Instance extents.
  math::Int tile_m = 0, tile_n = 0, tile_k = 0; ///< Resolved tile dims.
  math::Int grid_m = 0, grid_n = 0, grid_k = 0; ///< ceil(extent / tile).
  /// Distinct shapes in descending lexicographic (m, n, k) order — the
  /// full interior tile first, corner last.
  std::vector<TileShapePlan> shapes;
  math::Int tiles_total = 0;
  /// Shape-plan lookups served by an already-resident plan during
  /// compose_tiled (0..shapes.size(); equals shapes.size() when a
  /// previous composition of the same grid warmed the cache).
  math::Int tile_cache_hits = 0;
  math::Int tile_pes = 0;  ///< PE count of one interior tile's array.
  math::Int max_pes = 0;   ///< The requested budget (0 = none).
};

/// Validate the options against the request and resolve the tile
/// dimensions. Throws PreconditionError on: a kernel without a tiling
/// decomposition (ir::kernels::KernelInfo::tile_kernel), a tile
/// dimension exceeding its instance extent, a budget too small for a
/// single 1x1 tile, explicit dims that overrun the budget, or tiling
/// that was never requested.
TileDims resolve_tile_dims(const DesignRequest& base, const TileOptions& options);

/// Compose the tiled plan: resolve the grid, then compose (or fetch)
/// one child plan per distinct tile shape through `cache` — the
/// one-composition-per-shape guarantee is the cache's
/// one-composition-per-key guarantee applied to shape-level requests.
/// Child plans inherit the base request's p, expansion, mapping
/// strategy and objective. Throws PreconditionError when a shape has
/// no feasible mapping.
TiledPlan compose_tiled(PlanCache& cache, const DesignRequest& base,
                        const TileOptions& options);

/// Execution knobs for a tiled run (per-tile BatchOptions plus the
/// shard size).
struct TiledRunOptions {
  int threads = 0;
  sim::MemoryMode memory = sim::MemoryMode::kDense;
  SlicedMode sliced = SlicedMode::kAuto;
  SlicedMode compiled = SlicedMode::kAuto;
  int lane_width = 0;
  /// Tiles materialized as BatchItems per run_batch call. Bounds the
  /// transient per-chunk memory (items + per-tile read-out maps) for
  /// grids of millions of tiles; counters are unaffected.
  math::Int max_tiles_in_flight = 4096;
  /// Cooperative cancellation, checked at every tile-shard boundary
  /// and forwarded into each shard's run_batch (which checks at lane
  /// groups and wavefront passes). Null (the default) is free.
  CancelToken cancel;
};

/// Optional output sink: called once per tile per output word with the
/// tile's PARTIAL sum for global element (i, j) — the caller
/// accumulates (+=). Lets huge instances stream into flat storage
/// instead of the result map. Calls arrive in deterministic order:
/// shapes in grid order, tiles lexicographic within a shape, k tiles
/// in ascending order.
using TileSink = std::function<void(math::Int i, math::Int j, std::uint64_t partial)>;

/// Result of one tiled execution.
struct TiledRunResult {
  /// Final accumulated output word per (i, j), keyed {i, j}. Left empty
  /// when a sink is supplied.
  std::map<math::IntVec, std::uint64_t> z;
  /// Statistics of one interior-tile pass (value-independent, identical
  /// for every tile of the leading shape).
  sim::SimulationStats stats;
  math::Int tiles_total = 0;
  math::Int tiles_executed = 0;
  math::Int tile_cache_hits = 0;
  // run_batch accounting summed over every shard:
  // compiled_items + sliced_items + scalar_items == tiles_executed.
  math::Int compiled_groups = 0;
  math::Int compiled_items = 0;
  math::Int sliced_groups = 0;
  math::Int sliced_items = 0;
  math::Int scalar_items = 0;
};

/// Execute every tile of the grid over the shape plans, sharded through
/// run_batch (ThreadPool + sliced/compiled fast paths reused
/// unchanged), and accumulate the partial sums. `x` and `y` are the
/// INSTANCE-level operand functions over global word points — tiles
/// read them through offset views. Bit-identical to a monolithic run
/// of the instance wherever one fits (see the file comment).
TiledRunResult run_tiled(PlanCache& cache, const TiledPlan& tiled, const core::OperandFn& x,
                         const core::OperandFn& y, const TiledRunOptions& options = {},
                         const TileSink& sink = {});

}  // namespace bitlevel::pipeline
