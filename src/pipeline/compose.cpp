#include "pipeline/compose.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "core/expansion.hpp"
#include "core/workload.hpp"
#include "ir/kernels.hpp"
#include "mapping/published.hpp"
#include "pipeline/compiled.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// The exploration knobs every consumer previously hand-rolled (the
/// CLI's explore() helper): a bounded direction-set pool and schedule
/// coefficients large enough to stay injective on the multiplexed
/// coordinates of >= 2-D word-level kernels.
mapping::ExploreOptions explore_options(const core::BitLevelStructure& s, int threads) {
  mapping::ExploreOptions options;
  options.max_direction_sets = 32;
  options.schedule_bound = s.word_dims() >= 2 ? 3 : 2;
  options.threads = threads;
  return options;
}

/// The published Fig. 4 design as a fallback for 3-D word-level
/// kernels (matmul-shaped) where the generic explorer's candidate pool
/// cannot express the p-scaled projections of (4.2). Returns false when
/// the structure is not matmul-shaped or the mapping is infeasible.
bool try_published(DesignPlan& plan, mapping::PublishedMapping which) {
  const core::BitLevelStructure& s = *plan.structure;
  const Int batch = plan.request.kernel.batch;
  const std::size_t base_word_dims = s.word_dims() - (batch >= 1 ? 1 : 0);
  if (base_word_dims != 3) return false;
  const mapping::MappingMatrix t =
      batch >= 1
          ? mapping::published_matmul_batched_mapping(which, s.p, plan.request.kernel.u)
          : mapping::published_matmul_mapping(which, s.p);
  const auto prims = mapping::published_matmul_primitives(which, s.p);
  const auto report = mapping::check_feasible(s.domain, s.deps, t, prims);
  if (!report.ok) return false;
  plan.origin = MappingOrigin::kPublished;
  plan.t = t;
  plan.prims = prims;
  plan.k = *report.k;
  return true;
}

}  // namespace

ir::WordLevelModel resolve_kernel(const KernelSpec& spec) {
  ir::WordLevelModel model = ir::kernels::make_registered(spec.name, spec.u, spec.v, spec.w);
  BL_REQUIRE(spec.batch >= 0, "batch count must be >= 0 (0 = unbatched)");
  if (spec.batch >= 1) model = core::batch_model(model, spec.batch);
  return model;
}

PlanPtr compose(const DesignRequest& request) {
  // Stage 1: resolve the kernel.
  auto start = Clock::now();
  ir::WordLevelModel model = resolve_kernel(request.kernel);
  const double resolve_ms = ms_since(start);

  auto plan = std::make_shared<DesignPlan>(DesignPlan{request, canonical_key(request),
                                                      std::move(model), nullptr,
                                                      MappingOrigin::kNone, std::nullopt,
                                                      std::nullopt, std::nullopt, {}, nullptr,
                                                      {}});
  plan->timings.resolve_ms = resolve_ms;

  // Stage 2: expand (Theorem 3.1).
  start = Clock::now();
  plan->structure = std::make_shared<const core::BitLevelStructure>(
      core::expand(plan->model, request.p, request.expansion));
  plan->timings.expand_ms = ms_since(start);

  // Stage 3: map.
  start = Clock::now();
  const core::BitLevelStructure& s = *plan->structure;
  switch (request.mapping) {
    case MappingStrategy::kStructureOnly:
      break;
    case MappingStrategy::kExplore:
    case MappingStrategy::kAuto: {
      plan->explore =
          mapping::explore_designs(s.domain, s.deps,
                                   mapping::InterconnectionPrimitives::mesh2d_diag(),
                                   request.objective, explore_options(s, request.threads));
      if (!plan->explore.designs.empty()) {
        plan->origin = MappingOrigin::kExplored;
        plan->t = plan->explore.designs.front().t;
        plan->prims = mapping::InterconnectionPrimitives::mesh2d_diag();
      } else if (request.mapping == MappingStrategy::kAuto) {
        try_published(*plan, mapping::PublishedMapping::kFig4);
      }
      break;
    }
    case MappingStrategy::kPublishedFig4:
      BL_REQUIRE(try_published(*plan, mapping::PublishedMapping::kFig4),
                 "published Fig. 4 mapping is infeasible for this structure");
      break;
    case MappingStrategy::kPublishedFig5:
      BL_REQUIRE(try_published(*plan, mapping::PublishedMapping::kFig5),
                 "published Fig. 5 mapping is infeasible for this structure");
      break;
  }
  plan->timings.map_ms = ms_since(start);

  // Stage 4: plan the machine — re-verify Definition 4.1 for explored
  // mappings and freeze the routing matrix K. (Published mappings
  // computed K during selection.)
  start = Clock::now();
  if (plan->t.has_value() && !plan->k.has_value()) {
    const auto report = mapping::check_feasible(s.domain, s.deps, *plan->t, *plan->prims);
    BL_REQUIRE(report.ok, "composed mapping is infeasible: " + report.to_string());
    plan->k = *report.k;
  }
  plan->timings.machine_ms = ms_since(start);

  // Stage 5: compile. Sliceable mapped plans get their schedule
  // flattened to the straight-line SIMD pass arrays once, here, so
  // every batch and served request reuses the compiled form for free
  // (compile_schedule returns null for instances beyond its index
  // bounds — run_batch then falls back to the interpreted path).
  start = Clock::now();
  const ir::kernels::KernelInfo* info = ir::kernels::find_kernel(request.kernel.name);
  if (plan->t.has_value() && info != nullptr && info->sliceable) {
    plan->compiled = compile_schedule(*plan->structure, *plan->t, *plan->prims, *plan->k);
  }
  plan->timings.compile_ms = ms_since(start);

  return plan;
}

std::string to_string(MappingOrigin origin) {
  switch (origin) {
    case MappingOrigin::kNone:
      return "none";
    case MappingOrigin::kExplored:
      return "explored";
    case MappingOrigin::kPublished:
      return "published";
  }
  return "?";
}

std::size_t approximate_plan_bytes(const DesignPlan& plan) {
  const auto vec_bytes = [](const math::IntVec& v) {
    return sizeof(math::IntVec) + v.size() * sizeof(math::Int);
  };
  std::size_t bytes = sizeof(DesignPlan) + plan.key.size() + plan.request.kernel.name.size();
  if (plan.structure != nullptr) {
    bytes += sizeof(core::BitLevelStructure);
    for (const ir::DependenceVector& col : plan.structure->deps.columns()) {
      bytes += sizeof(ir::DependenceVector) + col.d.size() * sizeof(math::Int) +
               col.cause.size();
    }
  }
  for (const mapping::DesignCandidate& d : plan.explore.designs) {
    bytes += sizeof(mapping::DesignCandidate) +
             (d.projections.rows() * d.projections.cols() + d.t.matrix().rows() * d.t.matrix().cols()) *
                 sizeof(math::Int);
  }
  if (plan.compiled != nullptr) {
    const CompiledSchedule& c = *plan.compiled;
    bytes += sizeof(CompiledSchedule);
    for (const math::IntVec& w : c.word_points) bytes += vec_bytes(w);
    for (const math::IntVec& pt : c.points) bytes += vec_bytes(pt);
    bytes += c.events.size() * sizeof(CompiledEvent);
    bytes += (c.pass_first.size() + c.boundary_words.size()) * sizeof(std::uint32_t);
    bytes += c.readout_bits.size() * sizeof(CompiledSchedule::ReadBit);
  }
  return bytes;
}

std::string DesignPlan::to_string() const {
  std::ostringstream os;
  os << "plan " << key << "\n";
  os << "  domain " << structure->domain.to_string() << " (" << structure->domain.size()
     << " points)\n";
  os << "  mapping: " << pipeline::to_string(origin);
  if (t.has_value()) os << "\n" << t->to_string();
  os << "\n";
  return os.str();
}

}  // namespace bitlevel::pipeline
