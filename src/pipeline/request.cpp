#include "pipeline/request.hpp"

#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {

std::string to_string(MappingStrategy s) {
  switch (s) {
    case MappingStrategy::kStructureOnly:
      return "structure-only";
    case MappingStrategy::kExplore:
      return "explore";
    case MappingStrategy::kAuto:
      return "auto";
    case MappingStrategy::kPublishedFig4:
      return "published-fig4";
    case MappingStrategy::kPublishedFig5:
      return "published-fig5";
  }
  return "?";
}

std::string canonical_key(const DesignRequest& request) {
  const ir::kernels::KernelInfo* info = ir::kernels::find_kernel(request.kernel.name);
  if (info == nullptr) {
    throw NotFoundError("unknown kernel '" + request.kernel.name +
                        "' (known: " + ir::kernels::registered_names() + ")");
  }
  // Unused extents are canonicalized to 0 so e.g. matmul(u=2, v=5) and
  // matmul(u=2, v=7) address the same plan.
  const Int v = info->arity >= 2 ? request.kernel.v : 0;
  const Int w = info->arity >= 3 ? request.kernel.w : 0;
  std::string key = "kernel=" + request.kernel.name;
  key += ";u=" + std::to_string(request.kernel.u);
  key += ";v=" + std::to_string(v);
  key += ";w=" + std::to_string(w);
  key += ";batch=" + std::to_string(request.kernel.batch);
  key += ";p=" + std::to_string(request.p);
  key += ";expansion=" + core::to_string(request.expansion);
  key += ";mapping=" + to_string(request.mapping);
  const char* objective = request.objective == mapping::DesignObjective::kTime ? "time"
                          : request.objective == mapping::DesignObjective::kProcessors
                              ? "processors"
                              : "wire";
  key += ";objective=";
  key += objective;
  return key;
}

}  // namespace bitlevel::pipeline
