// Fault-injection campaigns over cached design plans.
//
// A campaign sweeps fault kind x fault rate over ONE composed plan
// (the expansion and mapping machinery run once, via the PlanCache),
// executing a seeded faulty run per cell and scoring it against the
// fault-free reference run: what the injector corrupted, what the
// online monitors detected, what bounded-retry recovery fixed, what
// degraded, what the ABFT read-out check concluded, and whether any
// corruption slipped through every net (silent).
//
// Determinism: every report in the table is a pure function of
// (request, operands, campaign options) — thread counts and memory
// modes change nothing, so the JSON document is byte-comparable
// across execution configurations (it deliberately contains no
// execution-knob fields).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/report.hpp"
#include "pipeline/executor.hpp"

namespace bitlevel::pipeline {

/// What to sweep and how to inject. Execution knobs (threads, memory)
/// come from the request, as everywhere in the pipeline.
struct CampaignOptions {
  /// Fault kinds to sweep (default: every kind).
  std::vector<faults::FaultKind> kinds = faults::all_fault_kinds();
  /// Per-site fault rates to sweep, each in [0, 1].
  std::vector<double> rates = {0.001, 0.01, 0.05};
  std::uint64_t seed = 1;    ///< Campaign seed (FaultModel::seed).
  std::size_t channel = 2;   ///< Stuck-at / bit-flip target channel ("z").
  int spares = 2;            ///< Spare PEs per run (FaultModel::spares).
  int max_retries = 2;       ///< Recovery retry bound per suspect event.
  bool fault_checks = true;  ///< Off: injection only (silent-rate study).
  /// Off: skip the clean reference run and every read-out
  /// (RunOptions::want_z = false), so no per-run z map is ever held —
  /// corrupted_words / silent_corruption / ABFT stay unscored and
  /// reference_words is 0. For detection/recovery-only sweeps whose
  /// memory is dominated by the word maps.
  bool score_corruption = true;
  /// Cooperative cancellation, checked before composing, at every
  /// (kind, rate) campaign-cell boundary, and once per wavefront pass
  /// inside each run. Null (the default) is free.
  CancelToken cancel;
};

/// The campaign's detection / recovery / degradation table.
struct CampaignResult {
  PlanPtr plan;                  ///< The shared plan every run used.
  bool plan_was_cached = false;  ///< True when the cache already held it.
  Int reference_words = 0;       ///< Read-out size of the clean run.
  /// One report per (kind, rate) cell, kinds-major in option order.
  std::vector<faults::FaultReport> reports;

  /// Human-readable table (one row per cell).
  std::string to_table() const;

  /// One JSON object; deterministic and execution-mode invariant.
  void write_json(JsonWriter& w) const;
};

/// Run the sweep: compose (or fetch) the plan for `request` from
/// `cache`, execute one clean reference run plus one faulty run per
/// (kind, rate) cell over the same operands, and score each faulty run
/// against the reference. Fault runs degrade into their report rather
/// than throwing (see RunOptions::faults).
CampaignResult run_campaign(PlanCache& cache, const DesignRequest& request,
                            const core::OperandFn& x, const core::OperandFn& y,
                            const CampaignOptions& options = {});

}  // namespace bitlevel::pipeline
