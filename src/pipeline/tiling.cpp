#include "pipeline/tiling.hpp"

#include <array>
#include <cmath>
#include <string>
#include <utility>

#include "ir/kernels.hpp"
#include "pipeline/compiled.hpp"
#include "support/error.hpp"

namespace bitlevel::pipeline {

namespace {

using math::Int;
using math::IntVec;

/// The instance extents (m, n, k) of a tileable kernel: matmul is the
/// cube (u, u, u), matmul_rect the box (u, v, w). Tileable kernels are
/// exactly the 3-D matmul family (KernelInfo::tile_kernel), so arity
/// distinguishes the two spellings.
std::array<Int, 3> instance_extents(const ir::kernels::KernelInfo& info,
                                    const KernelSpec& kernel) {
  if (info.arity == 1) return {kernel.u, kernel.u, kernel.u};
  return {kernel.u, kernel.v, kernel.w};
}

const ir::kernels::KernelInfo& tileable_info(const DesignRequest& base) {
  const ir::kernels::KernelInfo* info = ir::kernels::find_kernel(base.kernel.name);
  if (info == nullptr) {
    throw NotFoundError("unknown kernel '" + base.kernel.name +
                        "' (known: " + ir::kernels::registered_names() + ")");
  }
  BL_REQUIRE(info->tile_kernel != nullptr,
             "kernel '" + base.kernel.name + "' is not tileable (tileable kernels: " +
                 ir::kernels::tileable_names() + ")");
  BL_REQUIRE(base.kernel.batch == 0, "tiling a batched kernel is not supported");
  BL_REQUIRE(base.mapping != MappingStrategy::kStructureOnly,
             "tiling requires a runnable mapping strategy");
  return *info;
}

Int isqrt_floor(Int v) {
  Int t = static_cast<Int>(std::sqrt(static_cast<double>(v)));
  while (t > 0 && t * t > v) --t;
  while ((t + 1) * (t + 1) <= v) ++t;
  return t;
}

void check_dim(const char* name, char extent_name, Int dim, Int extent) {
  if (dim == 0) return;
  BL_REQUIRE(dim >= 1, std::string(name) + " must be >= 1");
  BL_REQUIRE(dim <= extent, std::string(name) + " (" + std::to_string(dim) +
                                ") exceeds the instance extent " + extent_name + " (" +
                                std::to_string(extent) + ")");
}

/// The shape-level request a tile composes and runs under: the base
/// request with the kernel swapped for the tile kernel at the shape's
/// extents. p, expansion, mapping strategy and objective carry over, so
/// a tile plan is an ordinary pipeline plan keyed like any other.
DesignRequest tile_request(const DesignRequest& base, const std::string& tile_kernel,
                           const TileDims& shape) {
  DesignRequest request = base;
  request.kernel = KernelSpec{tile_kernel, shape.m, shape.n, shape.k, 0};
  return request;
}

/// One dimension of the tile grid: the distinct tile sizes along it
/// with the inclusive grid-coordinate range each covers. At most two
/// blocks — the full tiles, then the ragged remainder.
struct DimBlock {
  Int size = 0;
  Int lo = 0;  ///< First grid coordinate with this size (1-based).
  Int hi = 0;  ///< Last grid coordinate with this size.
};

std::vector<DimBlock> dim_blocks(Int extent, Int tile) {
  const Int grid = (extent + tile - 1) / tile;
  const Int rem = extent % tile;
  std::vector<DimBlock> blocks;
  const Int full = rem == 0 ? grid : grid - 1;
  if (full >= 1) blocks.push_back({tile, 1, full});
  if (rem != 0) blocks.push_back({rem, grid, grid});
  return blocks;
}

}  // namespace

bool tiling_requested(const TileOptions& options) {
  return options.tile_m != 0 || options.tile_n != 0 || options.tile_k != 0 ||
         options.max_pes != 0;
}

TileDims resolve_tile_dims(const DesignRequest& base, const TileOptions& options) {
  const ir::kernels::KernelInfo& info = tileable_info(base);
  BL_REQUIRE(tiling_requested(options),
             "tiling requires tile dimensions or a max_pes budget");
  const auto [m, n, k] = instance_extents(info, base.kernel);
  check_dim("tile_m", 'm', options.tile_m, m);
  check_dim("tile_n", 'n', options.tile_n, n);
  check_dim("tile_k", 'k', options.tile_k, k);
  BL_REQUIRE(options.max_pes >= 0, "max_pes must be >= 1 (0 = unbounded)");

  const Int per_cell = base.p * base.p;  // PEs per word cell: the p x p grid.
  TileDims dims;
  dims.k = options.tile_k != 0 ? options.tile_k : k;
  if (options.tile_m != 0 || options.tile_n != 0) {
    // Explicit dims; an unset partner copies the set one (clamped).
    dims.m = options.tile_m != 0 ? options.tile_m : std::min(options.tile_n, m);
    dims.n = options.tile_n != 0 ? options.tile_n : std::min(options.tile_m, n);
  } else {
    // Derive the largest square tile the budget fits.
    BL_REQUIRE(options.max_pes != 0, "tiling requires tile dimensions or a max_pes budget");
    const Int budget_cells = options.max_pes / per_cell;
    BL_REQUIRE(budget_cells >= 1, "max_pes (" + std::to_string(options.max_pes) +
                                      ") cannot fit a 1x1 tile (p^2 = " +
                                      std::to_string(per_cell) + " PEs)");
    const Int t = isqrt_floor(budget_cells);
    dims.m = std::min(t, m);
    dims.n = std::min(t, n);
  }
  if (options.max_pes != 0) {
    const Int need = dims.m * dims.n * per_cell;
    BL_REQUIRE(need <= options.max_pes,
               "tile " + std::to_string(dims.m) + "x" + std::to_string(dims.n) + " needs " +
                   std::to_string(need) + " PEs, exceeding max_pes (" +
                   std::to_string(options.max_pes) + ")");
  }
  return dims;
}

TiledPlan compose_tiled(PlanCache& cache, const DesignRequest& base,
                        const TileOptions& options) {
  const ir::kernels::KernelInfo& info = tileable_info(base);
  const TileDims dims = resolve_tile_dims(base, options);
  const auto [m, n, k] = instance_extents(info, base.kernel);

  TiledPlan tiled;
  tiled.base = base;
  tiled.tile_kernel = info.tile_kernel;
  tiled.m = m;
  tiled.n = n;
  tiled.k = k;
  tiled.tile_m = dims.m;
  tiled.tile_n = dims.n;
  tiled.tile_k = dims.k;
  tiled.grid_m = (m + dims.m - 1) / dims.m;
  tiled.grid_n = (n + dims.n - 1) / dims.n;
  tiled.grid_k = (k + dims.k - 1) / dims.k;
  tiled.max_pes = options.max_pes;

  // Cross the per-dimension blocks: at most 2 x 2 x 2 distinct shapes,
  // interior first (full sizes precede remainders in every dimension).
  for (const DimBlock& bm : dim_blocks(m, dims.m)) {
    for (const DimBlock& bn : dim_blocks(n, dims.n)) {
      for (const DimBlock& bk : dim_blocks(k, dims.k)) {
        TileShapePlan shape;
        shape.shape = TileDims{bm.size, bn.size, bk.size};
        shape.tiles = (bm.hi - bm.lo + 1) * (bn.hi - bn.lo + 1) * (bk.hi - bk.lo + 1);
        const DesignRequest request = tile_request(base, tiled.tile_kernel, shape.shape);
        shape.was_cached = cache.peek(canonical_key(request)) != nullptr;
        if (shape.was_cached) ++tiled.tile_cache_hits;
        shape.plan = cache.get_or_compose(request);
        BL_REQUIRE(shape.plan->has_mapping(),
                   "no feasible design for tile shape " + std::to_string(bm.size) + "x" +
                       std::to_string(bn.size) + "x" + std::to_string(bk.size) + " (kernel " +
                       tiled.tile_kernel + ")");
        tiled.tiles_total += shape.tiles;
        tiled.shapes.push_back(std::move(shape));
      }
    }
  }

  // PE count of one interior tile's array: the compiled schedule's
  // analytic stats when the plan carries one, else the matmul closed
  // form m * n * p^2 (k stretches the schedule, not the array).
  const TileShapePlan& interior = tiled.shapes.front();
  if (interior.plan->compiled != nullptr) {
    tiled.tile_pes = interior.plan->compiled->stats_dense.pe_count;
  } else {
    tiled.tile_pes = interior.shape.m * interior.shape.n * base.p * base.p;
  }
  return tiled;
}

TiledRunResult run_tiled(PlanCache& cache, const TiledPlan& tiled, const core::OperandFn& x,
                         const core::OperandFn& y, const TiledRunOptions& options,
                         const TileSink& sink) {
  BL_REQUIRE(!tiled.shapes.empty(), "tiled plan has no shapes (not composed?)");
  BL_REQUIRE(options.max_tiles_in_flight >= 1, "max_tiles_in_flight must be >= 1");

  TiledRunResult result;
  result.tiles_total = tiled.tiles_total;
  result.tile_cache_hits = tiled.tile_cache_hits;

  BatchOptions batch_options;
  batch_options.threads = options.threads;
  batch_options.memory = options.memory;
  batch_options.sliced = options.sliced;
  batch_options.compiled = options.compiled;
  batch_options.lane_width = options.lane_width;
  batch_options.cancel = options.cancel;

  const std::vector<DimBlock> rows = dim_blocks(tiled.m, tiled.tile_m);
  const std::vector<DimBlock> cols = dim_blocks(tiled.n, tiled.tile_n);
  const std::vector<DimBlock> deps = dim_blocks(tiled.k, tiled.tile_k);

  bool have_stats = false;
  std::size_t shape_index = 0;
  for (const DimBlock& bm : rows) {
    for (const DimBlock& bn : cols) {
      for (const DimBlock& bk : deps) {
        const TileShapePlan& shape = tiled.shapes[shape_index++];
        const DesignRequest request = tile_request(tiled.base, tiled.tile_kernel, shape.shape);

        // Stream this shape's tiles through run_batch in bounded
        // shards: each tile becomes one BatchItem whose operand
        // functions are offset views of the instance operands.
        std::vector<std::array<Int, 3>> offsets;  // (oi, oj, ok) per tile
        std::vector<BatchItem> items;
        const auto flush = [&] {
          if (items.empty()) return;
          options.cancel.check("tile-shard boundary");
          const BatchResult batch = run_batch(cache, request, items, batch_options);
          result.tiles_executed += static_cast<Int>(items.size());
          result.compiled_groups += batch.compiled_groups;
          result.compiled_items += batch.compiled_items;
          result.sliced_groups += batch.sliced_groups;
          result.sliced_items += batch.sliced_items;
          result.scalar_items += batch.scalar_items;
          if (!have_stats) {
            result.stats = batch.results.front().stats;
            have_stats = true;
          }
          for (std::size_t t = 0; t < items.size(); ++t) {
            const auto [oi, oj, ok] = offsets[t];
            for (const auto& [j, v] : batch.results[t].z) {
              // Tile read-out keys carry the tile-local word point; its
              // leading two coordinates are the output element.
              if (sink) {
                sink(oi + j[0], oj + j[1], v);
              } else {
                result.z[IntVec{oi + j[0], oj + j[1]}] += v;
              }
            }
          }
          items.clear();
          offsets.clear();
        };

        for (Int a = bm.lo; a <= bm.hi; ++a) {
          for (Int b = bn.lo; b <= bn.hi; ++b) {
            for (Int c = bk.lo; c <= bk.hi; ++c) {
              const Int oi = (a - 1) * tiled.tile_m;
              const Int oj = (b - 1) * tiled.tile_n;
              const Int ok = (c - 1) * tiled.tile_k;
              offsets.push_back({oi, oj, ok});
              items.push_back(BatchItem{
                  [&x, oi, oj, ok](const IntVec& j) {
                    return x(IntVec{oi + j[0], oj + j[1], ok + j[2]});
                  },
                  [&y, oi, oj, ok](const IntVec& j) {
                    return y(IntVec{oi + j[0], oj + j[1], ok + j[2]});
                  }});
              if (static_cast<Int>(items.size()) >= options.max_tiles_in_flight) flush();
            }
          }
        }
        flush();
      }
    }
  }
  return result;
}

}  // namespace bitlevel::pipeline
