#include "pipeline/cache.hpp"

#include <chrono>
#include <utility>

#include "support/error.hpp"

namespace bitlevel::pipeline {

namespace {

bool ready(const std::shared_future<PlanPtr>& f) {
  return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  BL_REQUIRE(capacity >= 1, "plan cache capacity must be >= 1");
}

void PlanCache::evict_excess_locked() {
  // Walk from least-recently-used, skipping in-flight compositions:
  // evicting one would let a concurrent caller start a second
  // composition of the same key, breaking the one-compose-per-key
  // guarantee. (Waiters hold their own shared_future copies, so an
  // evicted READY entry never invalidates anyone.)
  auto it = lru_.end();
  while (index_.size() > capacity_ && it != lru_.begin()) {
    --it;
    if (!ready(it->plan)) continue;
    index_.erase(it->key);
    it = lru_.erase(it);
    ++evictions_;
  }
}

PlanPtr PlanCache::get_or_compose(const DesignRequest& request) {
  const std::string key = canonical_key(request);
  std::promise<PlanPtr> promise;
  std::shared_future<PlanPtr> fut;
  std::uint64_t my_tag = 0;
  bool compose_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      fut = it->second->plan;
    } else {
      ++misses_;
      compose_here = true;
      fut = promise.get_future().share();
      my_tag = ++tag_;
      lru_.push_front(Entry{key, fut, my_tag});
      index_.emplace(key, lru_.begin());
      evict_excess_locked();
    }
  }
  if (!compose_here) return fut.get();

  try {
    PlanPtr plan = compose(request);
    promise.set_value(plan);
    {
      // Stamp the entry's byte estimate (if the entry is still ours —
      // it may have been evicted or cleared while we composed).
      const std::size_t bytes = approximate_plan_bytes(*plan);
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = index_.find(key);
      if (it != index_.end() && it->second->tag == my_tag) it->second->bytes = bytes;
    }
    return plan;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Remove the failed entry (if still ours) so a later call retries
      // instead of resurfacing a stale failure forever.
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = index_.find(key);
      if (it != index_.end() && it->second->tag == my_tag) {
        lru_.erase(it->second);
        index_.erase(it);
      }
    }
    throw;
  }
}

PlanPtr PlanCache::peek(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end() || !ready(it->second->plan)) return nullptr;
  return it->second->plan.get();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t resident_bytes = 0;
  for (const Entry& entry : lru_) resident_bytes += entry.bytes;
  return PlanCacheStats{hits_, misses_, evictions_, index_.size(), capacity_, resident_bytes};
}

std::vector<PlanCacheEntryStats> PlanCache::entry_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanCacheEntryStats> entries;
  entries.reserve(lru_.size());
  for (const Entry& entry : lru_) entries.push_back({entry.key, entry.bytes});
  return entries;
}

std::size_t PlanCache::leaked_plans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t leaked = 0;
  for (const Entry& entry : lru_) {
    // An in-flight composition counts: its caller is still running. A
    // ready plan is leaked when any PlanPtr copy lives outside the
    // future's shared state (use_count 1 = only the future holds it).
    if (!ready(entry.plan) || entry.plan.get().use_count() > 1) ++leaked;
  }
  return leaked;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = misses_ = evictions_ = 0;
}

void PlanCache::set_capacity(std::size_t capacity) {
  BL_REQUIRE(capacity >= 1, "plan cache capacity must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  evict_excess_locked();
}

PlanCache& global_plan_cache() {
  // Leaked intentionally: arch wrappers may run during static
  // destruction of other translation units.
  static PlanCache* cache = new PlanCache();
  return *cache;
}

}  // namespace bitlevel::pipeline
