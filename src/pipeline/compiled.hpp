// Plan compilation: the wavefront schedule flattened to straight-line
// SIMD lane passes.
//
// The interpreted lane engine (pipeline/executor.cpp) re-derives, for
// every event of every batch, what is static per plan: which validity
// regions hold at each point, where each operand comes from, which
// slot the producer lives in, and whether the capacity-honesty checks
// can fire. AutoSA treats SIMD vectorization as an explicit compilation
// stage, and the paper's eq. 4.5/4.8 cost model assumes the per-pass
// work IS the schedule — so compile_schedule() does all of that
// resolution ONCE at compose time and stores the result on the
// immutable plan:
//
//   - events[]   in cycle-major order (lexicographic within a cycle,
//     exactly the machine's determinism contract), each carrying the
//     packed-operand indices of its x/y bits and the producer slot of
//     each summand (or kNoSource for absent/external zeros);
//   - passes[]   the half-open event ranges of each schedule cycle;
//   - readout    the (slot, channel) source of every output bit;
//   - analytic SimulationStats templates for both memory modes,
//     bit-identical to what a machine run would have measured (stats
//     are value-independent functions of domain/mapping/routing).
//
// run_compiled_group() then executes a lane group with no per-cell
// virtual dispatch and no per-event map lookups: three word arrays
// (packed operands, slots, masks) and a branch-free full-adder body
// over LaneBlock<W> words — 64/128/256/512 items per pass, with
// runtime AVX2 dispatch and a portable fallback (sim/lane_block.hpp).
// Operand pipelining is resolved transitively at compile time: a
// forwarded x/y bit reads its chain origin's packed element directly,
// which is exactly the value the interpreted cell would have passed
// hop by hop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pipeline/executor.hpp"

namespace bitlevel::pipeline {

/// One flattened event: everything the straight-line body needs,
/// resolved to array indices.
struct CompiledEvent {
  /// No producer slot: the summand is zero (column invalid at this
  /// point, or the producer lies outside the domain — externals carry
  /// zero sums and carries).
  static constexpr std::int32_t kNoSource = -1;

  // Capacity-honesty flags, precomputed from the validity regions: the
  // check fires only when the carry has nowhere to go.
  static constexpr std::uint8_t kCheckCarry = 1;        ///< c must be 0.
  static constexpr std::uint8_t kCheckSecondCarry = 2;  ///< c' must be 0.

  std::uint32_t x_bit = 0;  ///< Packed-operand element: word_linear * p + bit.
  std::uint32_t y_bit = 0;
  std::int32_t z3 = kNoSource;  ///< Producer slot of each summand, or kNoSource.
  std::int32_t z6 = kNoSource;
  std::int32_t c5 = kNoSource;
  std::int32_t c7 = kNoSource;
  std::uint8_t checks = 0;
};

/// A cached plan's schedule, flattened (see the file comment). Built by
/// compile_schedule(), owned by DesignPlan, immutable and shared.
struct CompiledSchedule {
  math::Int p = 0;

  /// Word-level points in lexicographic domain order; index = the
  /// word-linear id the packed-operand arrays are laid out by.
  std::vector<math::IntVec> word_points;

  /// Events in cycle-major order; the event's ordinal is its slot id
  /// (slots store the z/c/c' channels only — x/y forwarding was
  /// resolved away at compile time).
  std::vector<CompiledEvent> events;

  /// Event ordinal -> index point, for error messages only (the hot
  /// path never touches it).
  std::vector<math::IntVec> points;

  /// Pass boundaries: pass i covers events [pass_first[i],
  /// pass_first[i + 1]). Only nonempty cycles appear.
  std::vector<std::uint32_t> pass_first;

  /// Read-out: for each accumulation-boundary word point (an index
  /// into word_points), 2p consecutive ReadBit entries in readout_bits
  /// give the LSB-first output bits.
  struct ReadBit {
    std::uint32_t slot = 0;
    std::uint8_t channel = 0;  ///< 0 = z, 1 = c.
  };
  std::vector<std::uint32_t> boundary_words;
  std::vector<ReadBit> readout_bits;

  /// Analytic statistics templates, bit-identical to a machine run's
  /// (threads_used and streaming observed_points are stamped at run
  /// time — they depend on run options, not the plan).
  sim::SimulationStats stats_dense;
  sim::SimulationStats stats_streaming;
  /// Streaming observe-predicate matches (observed_points when the
  /// run wants the read-out; 0 otherwise).
  math::Int observed_streaming = 0;
};

/// Flatten a mapped, sliceable structure's schedule. Returns null when
/// the instance exceeds the compiler's 32-bit index bounds (the caller
/// falls back to the interpreted path); throws on contract violations
/// a machine run would also have rejected.
std::shared_ptr<const CompiledSchedule> compile_schedule(
    const core::BitLevelStructure& structure, const mapping::MappingMatrix& t,
    const mapping::InterconnectionPrimitives& prims, const math::IntMat& k);

/// Execute `lanes` (1..lane_words*64) consecutive batch items starting
/// at `first` through the compiled schedule, de-slicing each lane into
/// its own PlanRunResult — bit-identical to the scalar reference path,
/// including statistics. lane_words must satisfy
/// sim::lane_words_supported(). Throws OverflowError when an active
/// lane violates a capacity precondition.
void run_compiled_group(const CompiledSchedule& schedule, const std::vector<BatchItem>& items,
                        std::size_t first, std::size_t lanes, std::size_t lane_words,
                        const BatchOptions& options, std::vector<PlanRunResult>& results);

}  // namespace bitlevel::pipeline
