// Immutable design plans — the output of the staged compose pipeline.
//
// A DesignPlan is the reusable product of Theorem 3.1's composition:
// the resolved word-level model, the expanded bit-level structure, the
// chosen space/time mapping (explored or published), and the routing
// matrix K of the feasibility machinery — everything a cycle-accurate
// run needs except the operands. Plans are built once by compose(),
// never mutated, and shared as shared_ptr<const DesignPlan> across
// actions, batches and threads (see PlanCache).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "mapping/feasibility.hpp"
#include "pipeline/request.hpp"

namespace bitlevel::pipeline {

struct CompiledSchedule;  // pipeline/compiled.hpp

/// Where the plan's mapping came from.
enum class MappingOrigin {
  kNone,      ///< No mapping stage ran (or it found nothing feasible).
  kExplored,  ///< Best design of the design-space exploration.
  kPublished, ///< The paper's published matmul mapping.
};

std::string to_string(MappingOrigin origin);

/// Wall-clock cost of each compose stage, for the cache's cold/warm
/// accounting and the BM_PlanCache bench.
struct StageTimings {
  double resolve_ms = 0.0;  ///< Kernel registry lookup + batch composition.
  double expand_ms = 0.0;   ///< Theorem 3.1 composition.
  double map_ms = 0.0;      ///< Mapping search / published selection.
  double machine_ms = 0.0;  ///< Feasibility re-check + routing (K matrix).
  double compile_ms = 0.0;  ///< Schedule flattening (CompiledSchedule).

  double total_ms() const {
    return resolve_ms + expand_ms + map_ms + machine_ms + compile_ms;
  }
};

/// One immutable, shareable composed design.
struct DesignPlan {
  DesignRequest request;  ///< The request the plan was composed for.
  std::string key;        ///< canonical_key(request).

  ir::WordLevelModel model;  ///< Resolved kernel (batch axis composed).
  std::shared_ptr<const core::BitLevelStructure> structure;  ///< Thm 3.1 output.

  MappingOrigin origin = MappingOrigin::kNone;
  std::optional<mapping::MappingMatrix> t;                   ///< [S; Pi].
  std::optional<mapping::InterconnectionPrimitives> prims;   ///< Link set.
  std::optional<math::IntMat> k;                             ///< Routing (S*D = P*K).
  mapping::ExploreResult explore;  ///< Full exploration record (explore/auto).

  /// The wavefront schedule flattened to straight-line per-pass event
  /// arrays (pipeline/compiled.hpp), built once at compose time for
  /// sliceable mapped plans and reused by every batch and served
  /// request. Null when the kernel's cell is not sliceable, the plan
  /// has no mapping, or the instance exceeds the compiler's index
  /// bounds — run_batch then falls back to the interpreted path.
  std::shared_ptr<const CompiledSchedule> compiled;

  StageTimings timings;

  bool has_mapping() const { return t.has_value(); }

  std::string to_string() const;
};

using PlanPtr = std::shared_ptr<const DesignPlan>;

/// Approximate resident heap bytes of a composed plan: the compiled
/// schedule's flattened arrays (the dominant term for sliceable plans),
/// the bit-level structure's dependence columns, and the exploration
/// record. An estimate for capacity reasoning — tiled workloads park
/// many small shape plans in the cache — not an allocator audit.
std::size_t approximate_plan_bytes(const DesignPlan& plan);

}  // namespace bitlevel::pipeline
