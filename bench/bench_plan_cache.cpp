// BM_PlanCache — cold vs warm design-plan composition.
//
// The design pipeline's economics: composing a plan (resolve → expand
// via Theorem 3.1 → mapping search → machine feasibility) costs
// milliseconds, while fetching the same immutable plan from the
// content-addressed PlanCache costs a mutex acquisition and a hash
// lookup. The reproduction table measures both paths per request key
// and their ratio — the acceptance bar for the pipeline layer is a
// >= 10x warm speedup, and in practice it is orders of magnitude.
#include "bench/bench_util.hpp"

#include <chrono>

#include "pipeline/cache.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

pipeline::DesignRequest request_for(const std::string& kernel, math::Int u, math::Int v,
                                    math::Int p) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{kernel, u, v, 0, 0};
  request.p = p;
  request.expansion = core::Expansion::kII;
  request.mapping = pipeline::MappingStrategy::kAuto;
  return request;
}

void print_tables() {
  bench::print_header(
      "BM_PlanCache", "cold compose vs warm cache hit",
      "A DesignPlan is composed once per canonical key (expand + mapping search + "
      "feasibility) and shared immutably; warm requests cost a cache lookup. The ratio "
      "is the amortization every repeated CLI action, arch wrapper and batch run gets.");

  TextTable table(
      {"request", "cold compose (ms)", "warm hit (ms)", "speedup", ">= 10x"});
  for (const auto& request : {request_for("matmul", 3, 0, 4), request_for("conv", 4, 3, 4),
                              request_for("scalar", 6, 0, 5)}) {
    pipeline::PlanCache cache(8);

    const auto cold_start = Clock::now();
    const pipeline::PlanPtr cold = cache.get_or_compose(request);
    const double cold_ms = ms_since(cold_start);

    // Average the warm path over many hits; a single lookup is near the
    // clock resolution.
    constexpr int kWarmIterations = 1000;
    const auto warm_start = Clock::now();
    for (int i = 0; i < kWarmIterations; ++i) {
      benchmark::DoNotOptimize(cache.get_or_compose(request));
    }
    const double warm_ms = ms_since(warm_start) / kWarmIterations;

    const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    char c1[32], c2[32], c3[32];
    std::snprintf(c1, sizeof c1, "%.3f", cold_ms);
    std::snprintf(c2, sizeof c2, "%.6f", warm_ms);
    std::snprintf(c3, sizeof c3, "%.0fx", speedup);
    table.add_row({cold->key.substr(0, 40), c1, c2, c3, speedup >= 10.0 ? "yes" : "NO"});
  }
  bench::print_table(table);
}

void BM_PlanCache_ColdCompose(benchmark::State& state) {
  const pipeline::DesignRequest request = request_for("matmul", 3, 0, 4);
  for (auto _ : state) {
    // A fresh cache per iteration: every composition is cold.
    pipeline::PlanCache cache(2);
    benchmark::DoNotOptimize(cache.get_or_compose(request));
  }
}
BENCHMARK(BM_PlanCache_ColdCompose)->Unit(benchmark::kMillisecond);

void BM_PlanCache_WarmHit(benchmark::State& state) {
  const pipeline::DesignRequest request = request_for("matmul", 3, 0, 4);
  pipeline::PlanCache cache(2);
  cache.get_or_compose(request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_compose(request));
  }
}
BENCHMARK(BM_PlanCache_WarmHit);

void BM_PlanCache_CanonicalKey(benchmark::State& state) {
  const pipeline::DesignRequest request = request_for("matmul", 3, 0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::canonical_key(request));
  }
}
BENCHMARK(BM_PlanCache_CanonicalKey);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
