// E8 — Definition 4.1 / Theorem 4.5: feasibility verification and
// exhaustive schedule-space search.
//
// Regenerates: (a) the feasibility verdicts of the published designs
// (T, P, K of 4.2/4.3 and T', P', K' of 4.6/4.7) under all five
// conditions of Definition 4.1; (b) an exhaustive search over integer
// schedules with bounded coefficients confirming no feasible schedule
// beats Pi = [1,1,1,2,1] for the fixed S of (4.2) — the empirical form
// of Theorem 4.5's time-optimality claim.
#include "bench/bench_util.hpp"

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "mapping/optimality.hpp"
#include "mapping/schedule.hpp"
#include "mapping/search.hpp"

namespace {

using namespace bitlevel;
using mapping::InterconnectionPrimitives;
using mapping::MappingMatrix;

void print_tables() {
  bench::print_header(
      "E8", "Definition 4.1 / Theorem 4.5 — feasibility and optimal schedules",
      "Both published mappings pass all five conditions; exhaustive search finds no "
      "schedule faster than Pi = [1,1,1,2,1] over S of (4.2).");

  TextTable feas({"design", "u", "p", "feasible", "total time", "PEs"});
  for (math::Int u : {3, 4}) {
    for (math::Int p : {3, 4}) {
      const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
      const struct {
        const char* name;
        MappingMatrix t;
        InterconnectionPrimitives prims;
      } designs[] = {
          {"Fig4 (4.2/4.3)",
           MappingMatrix(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {1, 1, 1, 2, 1}}),
           InterconnectionPrimitives::fig4(p)},
          {"Fig5 (4.6/4.7)",
           MappingMatrix(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {p, p, 1, 2, 1}}),
           InterconnectionPrimitives::mesh2d_diag()},
      };
      for (const auto& d : designs) {
        const auto report = mapping::check_feasible(s.domain, s.deps, d.t, d.prims);
        feas.add_row({d.name, std::to_string(u), std::to_string(p),
                      report.ok ? "yes (all 5 conditions)" : "NO",
                      std::to_string(mapping::execution_time(d.t.schedule(), s.domain)),
                      std::to_string(mapping::processor_count(d.t.space(), s.domain))});
      }
    }
  }
  bench::print_table(feas);

  std::printf("Exhaustive schedule search over S of (4.2), coefficients in [-2, 2]:\n");
  TextTable search({"u", "p", "schedules examined", "feasible", "best time",
                    "(4.5) prediction", "paper Pi optimal"});
  for (math::Int u : {2, 3}) {
    for (math::Int p : {2, 3}) {
      const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
      const math::IntMat space{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}};
      mapping::ScheduleSearchOptions options;
      options.coefficient_bound = 2;
      const auto result = mapping::search_schedules(s.domain, s.deps, space,
                                                    InterconnectionPrimitives::fig4(p), options);
      const math::IntVec paper_pi{1, 1, 1, 2, 1};
      bool paper_optimal = false;
      for (const auto& cand : result.feasible) {
        if (cand.pi == paper_pi) {
          paper_optimal = cand.total_time == result.feasible.front().total_time;
        }
      }
      search.add_row({std::to_string(u), std::to_string(p), std::to_string(result.examined),
                      std::to_string(result.feasible.size()),
                      result.feasible.empty()
                          ? std::string("-")
                          : std::to_string(result.feasible.front().total_time),
                      std::to_string(3 * (u - 1) + 3 * (p - 1) + 1),
                      paper_optimal ? "yes" : "NO"});
    }
  }
  bench::print_table(search);

  std::printf(
      "LP certification (exact rational simplex): the lower bound over ALL linear\n"
      "schedules satisfying condition 1 — no coefficient bound, no search horizon:\n");
  TextTable cert_table({"u", "p", "LP span bound", "lower bound", "Pi=[1,1,1,2,1] time",
                        "certified optimal"});
  for (math::Int u : {2, 4, 8, 16}) {
    for (math::Int p : {4, 8, 16}) {
      const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
      const auto cert =
          mapping::certify_time_optimal(s.domain, s.deps, math::IntVec{1, 1, 1, 2, 1});
      cert_table.add_row({std::to_string(u), std::to_string(p), cert.lp_bound.to_string(),
                          std::to_string(cert.lower_bound), std::to_string(cert.achieved),
                          cert.certified ? "yes" : "NO"});
    }
  }
  bench::print_table(cert_table);
}

void BM_Feasibility(benchmark::State& state) {
  const math::Int p = state.range(0);
  const auto s = core::expand(ir::kernels::matmul(3), p, core::Expansion::kII);
  const MappingMatrix t(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {1, 1, 1, 2, 1}});
  const auto prims = InterconnectionPrimitives::fig4(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::check_feasible(s.domain, s.deps, t, prims).ok);
  }
}
BENCHMARK(BM_Feasibility)->Arg(3)->Arg(6);

void BM_ScheduleSearch(benchmark::State& state) {
  const auto s = core::expand(ir::kernels::matmul(2), 2, core::Expansion::kII);
  const math::IntMat space{{2, 0, 0, 1, 0}, {0, 2, 0, 0, 1}};
  mapping::ScheduleSearchOptions options;
  options.coefficient_bound = static_cast<math::Int>(state.range(0));
  const auto prims = InterconnectionPrimitives::fig4(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapping::search_schedules(s.domain, s.deps, space, prims, options).feasible.size());
  }
}
BENCHMARK(BM_ScheduleSearch)->Arg(1)->Arg(2);

// Serial-vs-parallel sweep of the (2b+1)^5 Π-odometer. The second
// argument is the worker count partitioning the odometer; the ranked
// result is byte-identical across rows, only the wall clock moves.
void BM_ScheduleSearchThreads(benchmark::State& state) {
  const auto s = core::expand(ir::kernels::matmul(3), 2, core::Expansion::kII);
  const math::IntMat space{{2, 0, 0, 1, 0}, {0, 2, 0, 0, 1}};
  mapping::ScheduleSearchOptions options;
  options.coefficient_bound = static_cast<math::Int>(state.range(0));
  options.threads = static_cast<int>(state.range(1));
  const auto prims = InterconnectionPrimitives::fig4(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapping::search_schedules(s.domain, s.deps, space, prims, options).feasible.size());
  }
  state.counters["threads"] = options.threads;
}
BENCHMARK(BM_ScheduleSearchThreads)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->UseRealTime();

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
