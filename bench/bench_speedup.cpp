// E7 — Section 4.2's comparison: bit-level vs word-level architectures.
//
// Regenerates the paper's closing claim with measured cycle counts from
// both simulators: against the best word-level array ((3(u-1)+1) * t_b),
// the Fig. 4 bit-level array is O(p^2) faster when the word PE uses a
// sequential add-shift multiplier (t_b = p^2) and O(p) faster with a
// carry-save multiplier (t_b = 2p). The shape check: speedup/p (carry-
// save) and speedup/p^2 (add-shift) approach constants as p grows.
#include "bench/bench_util.hpp"

#include "arch/matmul_arrays.hpp"
#include "arch/word_array.hpp"
#include "core/evaluator.hpp"
#include "support/error.hpp"

namespace {

using namespace bitlevel;
using arch::BitLevelMatmulArray;
using arch::MatmulMapping;
using arch::WordLevelMatmulArray;
using arch::WordMatrix;

void print_tables() {
  bench::print_header(
      "E7", "Section 4.2 — bit-level vs word-level speedup",
      "speedup = word cycles / bit cycles, measured from both simulators. "
      "Carry-save word PE: speedup ~ O(p); add-shift word PE: ~ O(p^2). "
      "The bit-level array wins everywhere; the factor grows with p.");

  // The O(p) claim assumes u > p (Section 4.2): keep u = p + 2 as p
  // grows. Rows up to p = 8 are measured end-to-end on both simulators;
  // larger rows use the closed forms the simulated rows validate.
  TextTable table({"p", "u", "bit cycles (Fig4)", "word cycles (carry-save)",
                   "word cycles (add-shift)", "speedup vs carry-save", "speedup/p",
                   "speedup vs add-shift", "speedup/p^2", "source"});
  for (math::Int p : {2, 4, 8, 16, 32, 64}) {
    const math::Int u = p + 2;
    const bool simulate = p <= 8;
    math::Int bit_cycles_i = 3 * (u - 1) + 3 * (p - 1) + 1;
    if (simulate) {
      const BitLevelMatmulArray bit(MatmulMapping::kFig4, u, p);
      const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
      const WordMatrix x = WordMatrix::random(u, bound, 11 + p);
      const WordMatrix y = WordMatrix::random(u, bound, 13 + p);
      const auto bit_run = bit.multiply(x, y);
      const WordLevelMatmulArray word_cs(u, arith::WordMultiplier::kCarrySave, p);
      const auto word_run = word_cs.multiply(x, y);
      BL_REQUIRE(bit_run.z == word_run.z, "architectures disagree on the product");
      BL_REQUIRE(bit_run.stats.cycles == bit_cycles_i,
                 "simulation deviates from the closed form");
      bit_cycles_i = bit_run.stats.cycles;
    }
    const double bit_cycles = static_cast<double>(bit_cycles_i);
    const double cs = static_cast<double>((3 * (u - 1) + 1) * 2 * p);
    const double as = static_cast<double>((3 * (u - 1) + 1) * p * p);
    char s_cs[32], s_csn[32], s_as[32], s_asn[32];
    std::snprintf(s_cs, sizeof s_cs, "%.2f", cs / bit_cycles);
    std::snprintf(s_csn, sizeof s_csn, "%.3f", cs / bit_cycles / static_cast<double>(p));
    std::snprintf(s_as, sizeof s_as, "%.2f", as / bit_cycles);
    std::snprintf(s_asn, sizeof s_asn, "%.3f",
                  as / bit_cycles / static_cast<double>(p * p));
    table.add_row({std::to_string(p), std::to_string(u), std::to_string(bit_cycles_i),
                   std::to_string(static_cast<math::Int>(cs)),
                   std::to_string(static_cast<math::Int>(as)), s_cs, s_csn, s_as, s_asn,
                   simulate ? "simulated" : "formula"});
  }
  bench::print_table(table);

  std::printf("Sweep over u at p = 8 (the factor is stable in u once u > p/3):\n");
  TextTable by_u({"u", "bit cycles", "word cycles (carry-save)", "speedup"});
  const math::Int p = 8;
  for (math::Int u2 : {2, 4, 8, 12}) {
    const math::Int bit = 3 * (u2 - 1) + 3 * (p - 1) + 1;
    const math::Int word = (3 * (u2 - 1) + 1) * 2 * p;
    char s[32];
    std::snprintf(s, sizeof s, "%.2f", static_cast<double>(word) / static_cast<double>(bit));
    by_u.add_row({std::to_string(u2), std::to_string(bit), std::to_string(word), s});
  }
  bench::print_table(by_u);
}

void BM_BitLevelArray(benchmark::State& state) {
  const math::Int u = 4, p = state.range(0);
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const WordMatrix x = WordMatrix::random(u, bound, 1);
  const WordMatrix y = WordMatrix::random(u, bound, 2);
  for (auto _ : state) benchmark::DoNotOptimize(array.multiply(x, y).stats.cycles);
}
BENCHMARK(BM_BitLevelArray)->Arg(4)->Arg(8);

void BM_WordLevelArray(benchmark::State& state) {
  const math::Int u = 4, p = state.range(0);
  const WordLevelMatmulArray array(u, arith::WordMultiplier::kCarrySave, p);
  const WordMatrix x = WordMatrix::random(u, (1ULL << p) - 1, 1);
  const WordMatrix y = WordMatrix::random(u, (1ULL << p) - 1, 2);
  for (auto _ : state) benchmark::DoNotOptimize(array.multiply(x, y).total_cycles);
}
BENCHMARK(BM_WordLevelArray)->Arg(4)->Arg(8);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
