// E4 — Theorem 3.1 / eqs. (3.12)-(3.13): composing bit-level dependence
// structures vs running general dependence analysis.
//
// The paper's headline: the bit-level structure is a *function of three
// components* and can be written down without analysing the expanded
// |J_w| * p^2-point program. This bench measures that gap directly —
// composition time (constant w.r.t. problem size) against the exact
// Diophantine analysis and trace replay of the expanded matmul program,
// which grow with u^3 p^2 — while asserting all three produce the same
// dependence relation.
#include "bench/bench_util.hpp"

#include <chrono>

#include "analysis/exact.hpp"
#include "analysis/trace.hpp"
#include "core/bitlevel_program.hpp"
#include "core/expansion.hpp"
#include "ir/kernels.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void print_tables() {
  bench::print_header(
      "E4", "Theorem 3.1 — composed analysis vs general dependence analysis",
      "Composition writes the 7-column bit-level D in O(1); exact Diophantine analysis "
      "and trace replay of the expanded program scale with |J| = u^3 p^2. All three "
      "agree on the dependence relation.");

  TextTable table({"u", "p", "|J|", "compose (ms)", "trace replay (ms)",
                   "exact Diophantine (ms)", "lattice points", "agree"});
  for (math::Int u : {2, 3, 4}) {
    for (math::Int p : {2, 4}) {
      const auto model = ir::kernels::matmul(u);

      auto start = Clock::now();
      const auto s = core::expand(model, p, core::Expansion::kII);
      const double compose_ms = ms_since(start);

      const auto program = core::make_bitlevel_program(model, p, core::Expansion::kII);

      start = Clock::now();
      const auto traced = analysis::trace_dependences(program);
      const double trace_ms = ms_since(start);

      start = Clock::now();
      analysis::ExactAnalysisStats stats;
      const auto exact = analysis::exact_dependences(program, &stats);
      const double exact_ms = ms_since(start);

      // Agreement: composed structure explains the trace, and the exact
      // analyzer reproduces the same distance-vector set.
      const auto match = analysis::match_structure(s.deps, s.domain, traced);
      const auto sum_t = analysis::DependenceSummary::from_instances(traced);
      const auto sum_e = analysis::DependenceSummary::from_instances(exact);
      const bool agree =
          match.ok && sum_t.distance_vectors() == sum_e.distance_vectors();

      char c1[32], c2[32], c3[32];
      std::snprintf(c1, sizeof c1, "%.4f", compose_ms);
      std::snprintf(c2, sizeof c2, "%.2f", trace_ms);
      std::snprintf(c3, sizeof c3, "%.2f", exact_ms);
      table.add_row({std::to_string(u), std::to_string(p), std::to_string(s.domain.size()),
                     c1, c2, c3, std::to_string(stats.solutions_enumerated),
                     agree ? "yes" : "NO"});
    }
  }
  bench::print_table(table);
  std::printf(
      "Composed matmul structure (eq. 3.12/3.13 at u = 3, p = 3):\n%s\n",
      core::expand(ir::kernels::matmul(3), 3, core::Expansion::kII).to_string().c_str());
}

void BM_Compose(benchmark::State& state) {
  const auto model = ir::kernels::matmul(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::expand(model, state.range(1), core::Expansion::kII).deps.size());
  }
}
BENCHMARK(BM_Compose)->Args({4, 4})->Args({16, 16})->Args({64, 32});

void BM_ExactAnalysis(benchmark::State& state) {
  const auto program = core::make_bitlevel_program(ir::kernels::matmul(state.range(0)),
                                                   state.range(1), core::Expansion::kII);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::exact_dependences(program).size());
  }
}
BENCHMARK(BM_ExactAnalysis)->Args({2, 2})->Args({3, 3})->Args({4, 4});

void BM_TraceAnalysis(benchmark::State& state) {
  const auto program = core::make_bitlevel_program(ir::kernels::matmul(state.range(0)),
                                                   state.range(1), core::Expansion::kII);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::trace_dependences(program).size());
  }
}
BENCHMARK(BM_TraceAnalysis)->Args({2, 2})->Args({3, 3})->Args({4, 4});

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
