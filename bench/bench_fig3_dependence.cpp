// E3 — Fig. 3 / eqs. (3.8)-(3.9): bit-level dependence structures of the
// 1-dimensional algorithm (3.7).
//
// Prints the composed D_I and D_II with their validity annotations
// (the content of Fig. 3b/3c) and verifies each against the trace of
// the independently generated bit-level program — edge for edge.
#include "bench/bench_util.hpp"

#include "analysis/trace.hpp"
#include "core/bitlevel_program.hpp"
#include "core/verify.hpp"
#include "ir/kernels.hpp"

namespace {

using namespace bitlevel;
using core::Expansion;

void print_tables() {
  bench::print_header(
      "E3", "Fig. 3 — 1-D algorithm (3.7), matrices D_I (3.8) and D_II (3.9)",
      "Seven dependence vectors with region annotations; d3 uniform under Expansion I, "
      "d6 uniform under Expansion II. Composed structure == trace ground truth.");

  const math::Int u = 5, p = 3;
  const auto model = ir::kernels::scalar_chain(1, u, 1);
  TextTable summary({"expansion", "|J|", "traced flow edges", "match vs trace"});
  for (Expansion e : {Expansion::kI, Expansion::kII}) {
    const auto report = core::verify_expansion(model, p, e);
    std::printf("%s (u = %lld, p = %lld):\n%s\n", core::to_string(e).c_str(),
                static_cast<long long>(u), static_cast<long long>(p),
                report.structure.deps.to_string(report.structure.coord_names).c_str());
    summary.add_row({e == Expansion::kI ? "I" : "II",
                     std::to_string(report.structure.domain.size()),
                     std::to_string(report.traced_edges),
                     report.ok() ? "EXACT" : "MISMATCH"});
  }
  bench::print_table(summary);
}

void BM_VerifyExpansion(benchmark::State& state) {
  const auto model = ir::kernels::scalar_chain(1, state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verify_expansion(model, 4, Expansion::kI).ok());
  }
}
BENCHMARK(BM_VerifyExpansion)->Arg(4)->Arg(8);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
