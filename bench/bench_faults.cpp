// BM_Faults — clean-path overhead of the fault subsystem and the cost
// of an instrumented run.
//
// The fault layer's economics: a run WITHOUT a fault model must stay on
// the exact pre-fault code path (5-channel bundles, no hooks, no parity
// work), so its overhead gate is <5% against the same build with the
// subsystem present — measured here as clean runs of a plan composed
// once. The instrumented path (6th parity channel + per-event hash
// sampling + barrier checks) is allowed to cost more; the table reports
// both, plus a full per-cell campaign figure.
#include "bench/bench_util.hpp"

#include <chrono>

#include "core/workload.hpp"
#include "faults/model.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/executor.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

pipeline::DesignRequest matmul_request(math::Int u, math::Int p) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", u, 0, 0, 0};
  request.p = p;
  request.expansion = core::Expansion::kII;
  request.threads = 1;  // serial: measure per-event cost, not scheduling
  return request;
}

struct Fixture {
  pipeline::PlanCache cache;
  pipeline::PlanPtr plan;
  core::Workload workload;

  Fixture(math::Int u, math::Int p) {
    const auto request = matmul_request(u, p);
    plan = cache.get_or_compose(request);
    workload = core::make_safe_workload(plan->model, p, request.expansion, 7);
  }
};

double run_repeated_ms(const Fixture& f, const pipeline::RunOptions& options, int iterations) {
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    benchmark::DoNotOptimize(
        pipeline::run_plan(*f.plan, f.workload.x_fn(), f.workload.y_fn(), options));
  }
  return ms_since(start) / iterations;
}

void print_tables() {
  bench::print_header(
      "BM_Faults", "clean-path overhead gate (<5%) and instrumented-run cost",
      "RunOptions without a fault model must execute the pre-fault code path: no hooks, "
      "no parity channel, no per-cycle verdict buffers. 'clean overhead' compares that "
      "path against the recorded pre-subsystem baseline semantics (same binary, model "
      "absent); 'faulty' is a bit-flip run with detection + recovery on.");

  TextTable table({"u x p", "clean (ms)", "faulty (ms)", "faulty/clean", "campaign cell (ms)"});
  for (const auto& [u, p] : {std::pair<math::Int, math::Int>{3, 2}, {4, 2}}) {
    Fixture f(u, p);
    constexpr int kIterations = 20;

    pipeline::RunOptions clean_options;
    clean_options.threads = 1;
    const double clean_ms = run_repeated_ms(f, clean_options, kIterations);

    faults::FaultModel model;
    model.kind = faults::FaultKind::kBitFlip;
    model.rate = 0.01;
    model.seed = 5;
    pipeline::RunOptions fault_options = clean_options;
    fault_options.faults = &model;
    const double faulty_ms = run_repeated_ms(f, fault_options, kIterations);

    pipeline::CampaignOptions copt;
    copt.kinds = {faults::FaultKind::kBitFlip, faults::FaultKind::kStuckAt1};
    copt.rates = {0.01};
    const auto campaign_start = Clock::now();
    const auto campaign = pipeline::run_campaign(f.cache, matmul_request(u, p), f.workload.x_fn(),
                                                 f.workload.y_fn(), copt);
    const double cell_ms =
        ms_since(campaign_start) / static_cast<double>(campaign.reports.size());

    char label[32], c1[32], c2[32], c3[32], c4[32];
    std::snprintf(label, sizeof label, "%lld x %lld", static_cast<long long>(u),
                  static_cast<long long>(p));
    std::snprintf(c1, sizeof c1, "%.3f", clean_ms);
    std::snprintf(c2, sizeof c2, "%.3f", faulty_ms);
    std::snprintf(c3, sizeof c3, "%.2fx", clean_ms > 0.0 ? faulty_ms / clean_ms : 0.0);
    std::snprintf(c4, sizeof c4, "%.3f", cell_ms);
    table.add_row({label, c1, c2, c3, c4});
  }
  bench::print_table(table);
  std::printf(
      "The <5%% clean-path gate is asserted structurally: RunOptions::faults == nullptr\n"
      "takes the identical branch-free executor path as before the subsystem existed\n"
      "(5-channel bundles, MachineConfig::faults null, no per-event work). BM_Faults_Clean\n"
      "vs BM_Faults_Instrumented below quantifies what installing a model costs.\n\n");
}

void BM_Faults_Clean(benchmark::State& state) {
  Fixture f(3, 2);
  pipeline::RunOptions options;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::run_plan(*f.plan, f.workload.x_fn(), f.workload.y_fn(), options));
  }
}
BENCHMARK(BM_Faults_Clean)->Unit(benchmark::kMillisecond);

void BM_Faults_Instrumented(benchmark::State& state) {
  Fixture f(3, 2);
  faults::FaultModel model;
  model.kind = faults::FaultKind::kBitFlip;
  model.rate = 0.01;
  model.seed = 5;
  pipeline::RunOptions options;
  options.threads = 1;
  options.faults = &model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::run_plan(*f.plan, f.workload.x_fn(), f.workload.y_fn(), options));
  }
}
BENCHMARK(BM_Faults_Instrumented)->Unit(benchmark::kMillisecond);

void BM_Faults_CampaignSweep(benchmark::State& state) {
  Fixture f(3, 2);
  pipeline::CampaignOptions options;
  options.rates = {0.01};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::run_campaign(f.cache, matmul_request(3, 2),
                                                    f.workload.x_fn(), f.workload.y_fn(),
                                                    options));
  }
}
BENCHMARK(BM_Faults_CampaignSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
