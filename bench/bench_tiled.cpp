// BM_Tiled — tiled array partitioning vs the monolithic array.
//
// The tiling layer (pipeline/tiling.hpp) shards Z = X * Y onto a
// bounded virtual array: one tile-shaped plan per DISTINCT shape in
// the grid, every tile streamed through the batch engine, partial
// products accumulated in plain integer adds. Two claims are measured:
//
//   1. Gate (CI): where both fit, the tiled path costs at most 2x the
//      monolithic sliced batch run (tiled >= 0.5x monolithic
//      throughput) — the shard bookkeeping must not dominate.
//   2. Envelope: a 4096 x 4096 matmul completes under a 1024-PE
//      budget (a 16x16-word tile at p = 2). The monolithic array for
//      that instance needs 4096^2 * p^2 = 67,108,864 PEs — beyond any
//      budget the simulator can allocate — so the table reports its
//      analytic size next to the measured tiled run.
//
// The binary exits nonzero when the gate is missed, failing the CI
// bench step. Set BITLEVEL_BENCH_JSON to also write the gate figures
// as a JSON document (published as a CI artifact).
#include "bench/bench_util.hpp"

#include <chrono>
#include <cstdlib>

#include "arch/matmul_arrays.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/tiling.hpp"
#include "serve/actions.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int env_int(const char* name, int fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  const int v = std::atoi(text);
  return v > 0 ? v : fallback;
}

struct GateReport {
  double monolithic_sec = 0.0;
  double tiled_sec = 0.0;
  double tiled_ratio = 0.0;  // monolithic/tiled time; bar: >= 0.5
  bool identical = false;
  bool gate = false;
  // Envelope run (tiled-only; no gate, published for the record).
  math::Int large_m = 0;
  math::Int large_tiles = 0;
  math::Int large_tile_pes = 0;
  math::Int large_monolithic_pes = 0;
  double large_sec = 0.0;
  bool large_correct = false;
};

void write_json_artifact(const GateReport& report) {
  const char* path = std::getenv("BITLEVEL_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_tiled");
  w.key("instance").value("matmul-u16-p3-tile8");
  w.key("monolithic_sec").value(report.monolithic_sec);
  w.key("tiled_sec").value(report.tiled_sec);
  w.key("tiled_ratio_vs_monolithic").value(report.tiled_ratio);
  w.key("bit_identical").value(report.identical);
  w.key("tiled_gate_half_speed").value(report.gate);
  w.key("large_m").value(report.large_m);
  w.key("large_tiles").value(report.large_tiles);
  w.key("large_tile_pes").value(report.large_tile_pes);
  w.key("large_monolithic_pes").value(report.large_monolithic_pes);
  w.key("large_sec").value(report.large_sec);
  w.key("large_correct").value(report.large_correct);
  w.end_object();
  FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::printf("warning: cannot write BITLEVEL_BENCH_JSON artifact to %s\n", path);
    return;
  }
  const std::string doc = w.str();
  std::fwrite(doc.data(), 1, doc.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

/// Gate: u = 16, p = 3, tiled 8x8x8 (one interior shape, 8 tiles)
/// against the monolithic sliced single-item run of the same product.
/// Both paths execute through run_batch, so the ratio isolates the
/// shard bookkeeping: grid enumeration, offset operand views, and the
/// partial-sum accumulation.
void run_gate(GateReport& report) {
  const math::Int u = 16, p = 3;
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const arch::WordMatrix x = arch::WordMatrix::random(u, bound, 11);
  const arch::WordMatrix y = arch::WordMatrix::random(u, bound, 12);

  // Warm the plan cache on both sides so composition time (one-time,
  // already measured by bench_thm31_composition) stays out of the gate.
  const arch::BitLevelMatmulArray array(arch::MatmulMapping::kFig4, u, p);
  arch::MatmulRunResult mono = array.multiply(x, y);
  pipeline::TileOptions tile;
  tile.tile_m = tile.tile_n = tile.tile_k = 8;
  arch::TiledMatmulResult tiled =
      arch::multiply_tiled(arch::MatmulMapping::kFig4, p, x, y, tile);
  report.identical = mono.z == tiled.z;

  constexpr int kReps = 3;
  auto start = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    mono = array.multiply(x, y);
    benchmark::DoNotOptimize(&mono);
  }
  report.monolithic_sec = seconds_since(start) / kReps;

  start = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    tiled = arch::multiply_tiled(arch::MatmulMapping::kFig4, p, x, y, tile);
    benchmark::DoNotOptimize(&tiled);
  }
  report.tiled_sec = seconds_since(start) / kReps;

  report.tiled_ratio =
      report.tiled_sec > 0.0 ? report.monolithic_sec / report.tiled_sec : 0.0;
  report.gate = report.identical && report.tiled_ratio >= 0.5;
}

/// Envelope: stream a huge matmul through a fixed 1024-PE virtual
/// array. Operands are procedural and the check is sampled (serve's
/// tiled action), so memory stays bounded no matter the instance.
/// BITLEVEL_TILED_BENCH_M shrinks the instance for slow machines.
void run_envelope(GateReport& report) {
  const math::Int m = env_int("BITLEVEL_TILED_BENCH_M", 4096);
  const math::Int p = 2;
  serve::ActionParams params;
  params.request.kernel = pipeline::KernelSpec{"matmul_rect", m, m, 2, 0};
  params.request.p = p;
  params.tile.max_pes = 1024;

  pipeline::PlanCache cache(8);
  const auto start = Clock::now();
  const serve::TiledOutcome outcome = serve::run_tiled_action(cache, params);
  report.large_sec = seconds_since(start);
  report.large_m = m;
  report.large_tiles = outcome.run.tiles_executed;
  report.large_tile_pes = outcome.plan.tile_pes;
  report.large_monolithic_pes = m * m * p * p;
  report.large_correct = outcome.correct;
}

void print_tables() {
  bench::print_header(
      "BM_Tiled", "tiled partitioning overhead + bounded-array envelope",
      "Sharding Z = X * Y onto a fixed virtual array must (1) stay within 2x of the "
      "monolithic run where both fit (CI gate: tiled >= 0.5x monolithic, bit-identical "
      "product) and (2) complete instances whose monolithic array is unbuildable: "
      "4096 x 4096 at p = 2 wants 67,108,864 PEs; the tiled run streams it through "
      "1024.");

  GateReport report;
  run_gate(report);
  run_envelope(report);

  char c1[32], c2[32], c3[48];
  TextTable table({"path", "instance", "PEs", "sec/run", "vs monolithic"});
  std::snprintf(c1, sizeof c1, "%.4f", report.monolithic_sec);
  table.add_row({"monolithic", "16x16x16 p3", "2304", c1, "1x"});
  std::snprintf(c1, sizeof c1, "%.4f", report.tiled_sec);
  std::snprintf(c2, sizeof c2, "%.2fx", report.tiled_ratio);
  table.add_row({"tiled 8^3", "16x16x16 p3", "576", c1, c2});
  std::snprintf(c1, sizeof c1, "%.2f", report.large_sec);
  std::snprintf(c2, sizeof c2, "%lld", (long long)report.large_tile_pes);
  std::snprintf(c3, sizeof c3, "%lldx%lldx2 p2 (%lld tiles)", (long long)report.large_m,
                (long long)report.large_m, (long long)report.large_tiles);
  table.add_row({"tiled envelope", c3, c2, c1,
                 report.large_correct ? "monolithic unbuildable" : "WRONG RESULT"});
  bench::print_table(table);
  write_json_artifact(report);

  if (!report.identical) {
    std::printf("GATE FAILED: tiled product differs from the monolithic product\n");
    std::exit(1);
  }
  if (!report.gate) {
    std::printf("GATE FAILED: tiled run is %.2fx monolithic speed (< 0.5x)\n",
                report.tiled_ratio);
    std::exit(1);
  }
  if (!report.large_correct) {
    std::printf("GATE FAILED: envelope run failed its sampled verification\n");
    std::exit(1);
  }
  std::printf(
      "gates passed: tiled %.2fx monolithic (>= 0.5x, bit-identical); "
      "%lldx%lld envelope verified through %lld PEs in %.2fs\n\n",
      report.tiled_ratio, (long long)report.large_m, (long long)report.large_m,
      (long long)report.large_tile_pes, report.large_sec);
}

// Timing section: tiled run cost across tile sizes on a fixed 16^3
// instance — the grid shrinks as tiles grow, trading per-tile passes
// for per-pass width.
void BM_TiledMultiply(benchmark::State& state) {
  const math::Int u = 16, p = 3;
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const arch::WordMatrix x = arch::WordMatrix::random(u, bound, 21);
  const arch::WordMatrix y = arch::WordMatrix::random(u, bound, 22);
  pipeline::TileOptions tile;
  tile.tile_m = tile.tile_n = tile.tile_k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::multiply_tiled(arch::MatmulMapping::kFig4, p, x, y, tile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TiledMultiply)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
