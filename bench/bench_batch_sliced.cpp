// BM_BatchSliced — scalar vs bit-sliced vs compiled batch execution.
//
// The lane engine packs up to 64 independent problems into the bit
// lanes of one uint64_t per channel, so one event evaluation, one
// routing hop and one slot write serve 64 multiplications; the
// compiled path flattens the wavefront schedule into straight-line
// passes over 256-lane blocks on top of that. The reproduction table
// measures items/sec on the paper's Fig. 4 16x16 instance (u = 16,
// p = 16) and enforces the acceptance bars: the interpreted sliced
// path must deliver >= 8x the scalar throughput at batch 64, and the
// compiled 256-lane path >= 2x the interpreted 64-lane throughput.
// The table doubles as the CI gate — the binary exits nonzero when a
// bar is missed, failing the bench step. Set BITLEVEL_BENCH_JSON to a
// path to also write the gate figures as a JSON document (published as
// a CI artifact).
#include "bench/bench_util.hpp"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "core/workload.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/executor.hpp"
#include "support/json.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

pipeline::DesignRequest matmul_request(math::Int u, math::Int p) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", u, 0, 0, 0};
  request.p = p;
  request.expansion = core::Expansion::kII;
  request.mapping = pipeline::MappingStrategy::kPublishedFig4;
  return request;
}

/// Seeded batch items over one plan. The workload table is loaded
/// fully before any OperandFn is taken (x_fn captures the table, so
/// the vector must not reallocate afterwards).
struct ItemSet {
  std::vector<core::Workload> workloads;
  std::vector<pipeline::BatchItem> items;
};

ItemSet make_items(const pipeline::PlanPtr& plan, math::Int p, std::size_t count) {
  ItemSet set;
  set.workloads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    set.workloads.push_back(core::make_safe_workload(plan->model, p, core::Expansion::kII,
                                                     1000 + static_cast<std::uint64_t>(i)));
  }
  set.items.reserve(count);
  for (const core::Workload& load : set.workloads) {
    set.items.push_back(pipeline::BatchItem{load.x_fn(), load.y_fn()});
  }
  return set;
}

double run_items_per_sec(const pipeline::DesignRequest& request,
                         const std::vector<pipeline::BatchItem>& items,
                         pipeline::SlicedMode mode,
                         pipeline::SlicedMode compiled = pipeline::SlicedMode::kOff,
                         int lane_width = 0, int* chosen_width = nullptr) {
  pipeline::BatchOptions options;
  options.sliced = mode;
  options.compiled = compiled;
  options.lane_width = lane_width;
  const auto start = Clock::now();
  const pipeline::BatchResult result =
      pipeline::run_batch(pipeline::global_plan_cache(), request, items, options);
  const double elapsed = seconds_since(start);
  benchmark::DoNotOptimize(&result);
  if (chosen_width != nullptr) *chosen_width = result.compiled_lane_width;
  return static_cast<double>(items.size()) / elapsed;
}

/// The gate figures, also written as the BITLEVEL_BENCH_JSON artifact.
struct GateReport {
  double scalar_ips = 0.0;
  double sliced_ips = 0.0;
  double compiled_ips = 0.0;
  double sliced_speedup = 0.0;    // vs scalar; bar: >= 8x
  double compiled_speedup = 0.0;  // vs interpreted sliced; bar: >= 2x
  bool sliced_gate = false;
  bool compiled_gate = false;
  // Auto lane-width datapoint (informational, no gate): a small batch
  // on lane_width 0 picks the narrowest compiled width that fits,
  // versus the same batch forced onto the widest 512-lane pass.
  double auto_small_ips = 0.0;
  double wide_small_ips = 0.0;
  int auto_width = 0;
};

void write_json_artifact(const GateReport& report) {
  const char* path = std::getenv("BITLEVEL_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_batch_sliced");
  w.key("instance").value("fig4-16x16");
  w.key("scalar_items_per_sec").value(report.scalar_ips);
  w.key("sliced_items_per_sec").value(report.sliced_ips);
  w.key("compiled_items_per_sec").value(report.compiled_ips);
  w.key("sliced_speedup_vs_scalar").value(report.sliced_speedup);
  w.key("compiled_speedup_vs_sliced").value(report.compiled_speedup);
  w.key("sliced_gate_8x").value(report.sliced_gate);
  w.key("compiled_gate_2x").value(report.compiled_gate);
  w.key("auto_width_batch8_items_per_sec").value(report.auto_small_ips);
  w.key("forced_512_batch8_items_per_sec").value(report.wide_small_ips);
  w.key("auto_width_batch8_lanes").value(static_cast<std::int64_t>(report.auto_width));
  w.end_object();
  FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::printf("warning: cannot write BITLEVEL_BENCH_JSON artifact to %s\n", path);
    return;
  }
  const std::string doc = w.str();
  std::fwrite(doc.data(), 1, doc.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

void print_tables() {
  bench::print_header(
      "BM_BatchSliced", "scalar vs bit-sliced vs compiled batch throughput",
      "One sliced machine pass carries up to 64 batch items in the bit lanes of a "
      "uint64_t per channel; the compiled path runs the flattened schedule over "
      "256-lane blocks. Acceptance bars (CI gates): interpreted sliced >= 8x scalar "
      "items/sec at batch 64, compiled 256-lane >= 2x interpreted 64-lane items/sec, "
      "both on the Fig. 4 16x16 instance.");

  const math::Int u = 16, p = 16;
  const pipeline::DesignRequest request = matmul_request(u, p);
  const pipeline::PlanPtr plan = pipeline::global_plan_cache().get_or_compose(request);
  if (!plan->has_mapping()) {
    std::printf("no feasible Fig. 4 plan at u=%lld p=%lld\n", (long long)u, (long long)p);
    std::exit(1);
  }

  // The scalar side re-walks the full wavefront once per item, so its
  // per-item cost is measured over a small probe batch; the sliced
  // side runs one real 64-item group, and the compiled side one real
  // 256-item lane block (the same item count as four interpreted
  // passes, executed in one straight-line sweep).
  constexpr std::size_t kScalarProbe = 4;
  constexpr std::size_t kGroup = 64;
  constexpr std::size_t kBlock = 256;
  const ItemSet probe = make_items(plan, p, kScalarProbe);
  const ItemSet group = make_items(plan, p, kGroup);
  const ItemSet block = make_items(plan, p, kBlock);

  GateReport report;
  report.scalar_ips = run_items_per_sec(request, probe.items, pipeline::SlicedMode::kOff);
  report.sliced_ips = run_items_per_sec(request, group.items, pipeline::SlicedMode::kOn,
                                        pipeline::SlicedMode::kOff);
  report.compiled_ips = run_items_per_sec(request, block.items, pipeline::SlicedMode::kOn,
                                          pipeline::SlicedMode::kOn, 256);
  report.sliced_speedup =
      report.scalar_ips > 0.0 ? report.sliced_ips / report.scalar_ips : 0.0;
  report.compiled_speedup =
      report.sliced_ips > 0.0 ? report.compiled_ips / report.sliced_ips : 0.0;
  report.sliced_gate = report.sliced_speedup >= 8.0;
  report.compiled_gate = report.compiled_speedup >= 2.0;

  // Auto lane-width datapoint: 8 items on lane_width 0 (the planner
  // picks the narrowest compiled width >= batch, here 64) versus the
  // same 8 items forced onto a 512-lane pass that runs 98% empty.
  constexpr std::size_t kSmall = 8;
  const ItemSet small = make_items(plan, p, kSmall);
  report.auto_small_ips =
      run_items_per_sec(request, small.items, pipeline::SlicedMode::kOn,
                        pipeline::SlicedMode::kOn, 0, &report.auto_width);
  report.wide_small_ips = run_items_per_sec(request, small.items, pipeline::SlicedMode::kOn,
                                            pipeline::SlicedMode::kOn, 512);

  TextTable table({"path", "items", "items/sec", "speedup", "gate"});
  char c1[32], c2[32];
  std::snprintf(c1, sizeof c1, "%.2f", report.scalar_ips);
  table.add_row({"scalar", std::to_string(kScalarProbe), c1, "1x", "-"});
  std::snprintf(c1, sizeof c1, "%.2f", report.sliced_ips);
  std::snprintf(c2, sizeof c2, "%.1fx scalar", report.sliced_speedup);
  table.add_row({"sliced-64", std::to_string(kGroup), c1, c2,
                 report.sliced_gate ? "yes (>= 8x)" : "NO (< 8x)"});
  std::snprintf(c1, sizeof c1, "%.2f", report.compiled_ips);
  std::snprintf(c2, sizeof c2, "%.1fx sliced", report.compiled_speedup);
  table.add_row({"compiled-256", std::to_string(kBlock), c1, c2,
                 report.compiled_gate ? "yes (>= 2x)" : "NO (< 2x)"});
  std::snprintf(c1, sizeof c1, "%.2f", report.auto_small_ips);
  std::snprintf(c2, sizeof c2, "auto %d lanes", report.auto_width);
  table.add_row({"compiled-auto", std::to_string(kSmall), c1, c2, "-"});
  std::snprintf(c1, sizeof c1, "%.2f", report.wide_small_ips);
  const double waste = report.auto_small_ips > 0.0 && report.wide_small_ips > 0.0
                           ? report.auto_small_ips / report.wide_small_ips
                           : 0.0;
  std::snprintf(c2, sizeof c2, "auto is %.1fx", waste);
  table.add_row({"compiled-512", std::to_string(kSmall), c1, c2, "-"});
  bench::print_table(table);
  write_json_artifact(report);

  if (!report.sliced_gate) {
    std::printf("GATE FAILED: sliced batch-64 throughput is %.1fx scalar (< 8x)\n",
                report.sliced_speedup);
    std::exit(1);
  }
  if (!report.compiled_gate) {
    std::printf("GATE FAILED: compiled 256-lane throughput is %.1fx interpreted (< 2x)\n",
                report.compiled_speedup);
    std::exit(1);
  }
  std::printf("gates passed: sliced %.1fx scalar (>= 8x), compiled %.1fx sliced (>= 2x)\n\n",
              report.sliced_speedup, report.compiled_speedup);
}

// The timing section scans batch sizes {1, 8, 64, 256} on a smaller
// instance so both paths fit the benchmark budget; the ratio between
// the two counters at equal batch is the lane-engine speedup.
void run_batch_bench(benchmark::State& state, pipeline::SlicedMode mode,
                     pipeline::SlicedMode compiled = pipeline::SlicedMode::kOff,
                     int lane_width = 0) {
  const math::Int u = 3, p = 6;
  const pipeline::DesignRequest request = matmul_request(u, p);
  const pipeline::PlanPtr plan = pipeline::global_plan_cache().get_or_compose(request);
  const ItemSet set = make_items(plan, p, static_cast<std::size_t>(state.range(0)));
  pipeline::BatchOptions options;
  options.sliced = mode;
  options.compiled = compiled;
  options.lane_width = lane_width;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::run_batch(pipeline::global_plan_cache(), request, set.items, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BatchScalar(benchmark::State& state) {
  run_batch_bench(state, pipeline::SlicedMode::kOff);
}
BENCHMARK(BM_BatchScalar)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BatchSliced(benchmark::State& state) {
  run_batch_bench(state, pipeline::SlicedMode::kOn);
}
BENCHMARK(BM_BatchSliced)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BatchCompiled(benchmark::State& state) {
  run_batch_bench(state, pipeline::SlicedMode::kOn, pipeline::SlicedMode::kOn, 256);
}
BENCHMARK(BM_BatchCompiled)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
