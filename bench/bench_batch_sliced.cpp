// BM_BatchSliced — scalar vs bit-sliced batch execution.
//
// The lane engine packs up to 64 independent problems into the bit
// lanes of one uint64_t per channel, so one event evaluation, one
// routing hop and one slot write serve 64 multiplications. The
// reproduction table measures items/sec on the paper's Fig. 4 16x16
// instance (u = 16, p = 16) and enforces the acceptance bar: the
// sliced path must deliver >= 8x the scalar throughput at batch 64.
// The table doubles as the CI gate — the binary exits nonzero when the
// bar is missed, failing the bench step.
#include "bench/bench_util.hpp"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "core/workload.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/executor.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

pipeline::DesignRequest matmul_request(math::Int u, math::Int p) {
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", u, 0, 0, 0};
  request.p = p;
  request.expansion = core::Expansion::kII;
  request.mapping = pipeline::MappingStrategy::kPublishedFig4;
  return request;
}

/// Seeded batch items over one plan. The workload table is loaded
/// fully before any OperandFn is taken (x_fn captures the table, so
/// the vector must not reallocate afterwards).
struct ItemSet {
  std::vector<core::Workload> workloads;
  std::vector<pipeline::BatchItem> items;
};

ItemSet make_items(const pipeline::PlanPtr& plan, math::Int p, std::size_t count) {
  ItemSet set;
  set.workloads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    set.workloads.push_back(core::make_safe_workload(plan->model, p, core::Expansion::kII,
                                                     1000 + static_cast<std::uint64_t>(i)));
  }
  set.items.reserve(count);
  for (const core::Workload& load : set.workloads) {
    set.items.push_back(pipeline::BatchItem{load.x_fn(), load.y_fn()});
  }
  return set;
}

double run_items_per_sec(const pipeline::DesignRequest& request,
                         const std::vector<pipeline::BatchItem>& items,
                         pipeline::SlicedMode mode) {
  pipeline::BatchOptions options;
  options.sliced = mode;
  const auto start = Clock::now();
  const pipeline::BatchResult result =
      pipeline::run_batch(pipeline::global_plan_cache(), request, items, options);
  const double elapsed = seconds_since(start);
  benchmark::DoNotOptimize(&result);
  return static_cast<double>(items.size()) / elapsed;
}

void print_tables() {
  bench::print_header(
      "BM_BatchSliced", "scalar vs 64-lane bit-sliced batch throughput",
      "One sliced machine pass carries up to 64 batch items in the bit lanes of a "
      "uint64_t per channel; the per-item marginal cost drops by the lane width. "
      "Acceptance bar (CI gate): sliced >= 8x scalar items/sec at batch 64 on the "
      "Fig. 4 16x16 instance.");

  const math::Int u = 16, p = 16;
  const pipeline::DesignRequest request = matmul_request(u, p);
  const pipeline::PlanPtr plan = pipeline::global_plan_cache().get_or_compose(request);
  if (!plan->has_mapping()) {
    std::printf("no feasible Fig. 4 plan at u=%lld p=%lld\n", (long long)u, (long long)p);
    std::exit(1);
  }

  // The scalar side re-walks the full wavefront once per item, so its
  // per-item cost is measured over a small probe batch; the sliced
  // side runs one real 64-item group.
  constexpr std::size_t kScalarProbe = 4;
  constexpr std::size_t kGroup = 64;
  const ItemSet probe = make_items(plan, p, kScalarProbe);
  const ItemSet group = make_items(plan, p, kGroup);

  const double scalar_ips = run_items_per_sec(request, probe.items, pipeline::SlicedMode::kOff);
  const double sliced_ips = run_items_per_sec(request, group.items, pipeline::SlicedMode::kOn);
  const double speedup = scalar_ips > 0.0 ? sliced_ips / scalar_ips : 0.0;

  TextTable table({"path", "items", "items/sec", "speedup", ">= 8x"});
  char c1[32], c2[32];
  std::snprintf(c1, sizeof c1, "%.2f", scalar_ips);
  table.add_row({"scalar", std::to_string(kScalarProbe), c1, "1x", "-"});
  std::snprintf(c1, sizeof c1, "%.2f", sliced_ips);
  std::snprintf(c2, sizeof c2, "%.1fx", speedup);
  table.add_row({"sliced", std::to_string(kGroup), c1, c2, speedup >= 8.0 ? "yes" : "NO"});
  bench::print_table(table);

  if (speedup < 8.0) {
    std::printf("GATE FAILED: sliced batch-64 throughput is %.1fx scalar (< 8x)\n", speedup);
    std::exit(1);
  }
  std::printf("gate passed: sliced batch-64 throughput is %.1fx scalar (>= 8x)\n\n", speedup);
}

// The timing section scans batch sizes {1, 8, 64, 256} on a smaller
// instance so both paths fit the benchmark budget; the ratio between
// the two counters at equal batch is the lane-engine speedup.
void run_batch_bench(benchmark::State& state, pipeline::SlicedMode mode) {
  const math::Int u = 3, p = 6;
  const pipeline::DesignRequest request = matmul_request(u, p);
  const pipeline::PlanPtr plan = pipeline::global_plan_cache().get_or_compose(request);
  const ItemSet set = make_items(plan, p, static_cast<std::size_t>(state.range(0)));
  pipeline::BatchOptions options;
  options.sliced = mode;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::run_batch(pipeline::global_plan_cache(), request, set.items, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BatchScalar(benchmark::State& state) {
  run_batch_bench(state, pipeline::SlicedMode::kOff);
}
BENCHMARK(BM_BatchScalar)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BatchSliced(benchmark::State& state) {
  run_batch_bench(state, pipeline::SlicedMode::kOn);
}
BENCHMARK(BM_BatchSliced)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
