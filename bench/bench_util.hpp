// Shared helpers for the experiment benches.
//
// Every bench binary regenerates its paper artifact (table/figure
// series) as plain text first — the reproduction output — and then runs
// its google-benchmark timing section. EXPERIMENTS.md records the
// paper-vs-measured comparison these binaries print.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "support/format.hpp"

namespace bitlevel::bench {

inline void print_header(const std::string& experiment, const std::string& artifact,
                         const std::string& claim) {
  std::printf("=== %s — %s ===\n%s\n\n", experiment.c_str(), artifact.c_str(), claim.c_str());
}

inline void print_table(const TextTable& table) {
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace bitlevel::bench

/// Print the reproduction tables, then run the registered benchmarks.
#define BITLEVEL_BENCH_MAIN(print_fn)                                   \
  int main(int argc, char** argv) {                                     \
    print_fn();                                                         \
    ::benchmark::Initialize(&argc, &argv[0]);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }
