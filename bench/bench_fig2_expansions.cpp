// E2 — Fig. 2: the two algorithm expansions.
//
// Regenerates the paper's qualitative comparison: Expansion I
// (partial-sum forwarding) keeps almost every cell a 3-input full adder
// and confines heavier 4/5-input compressors to the accumulation
// boundary, while Expansion II (final-sum boundary addition) puts them
// on the i1 = p hyperplane of every iteration — the load-imbalance
// remark at the end of Section 3. Also reports each expansion's operand
// capacity bound.
#include "bench/bench_util.hpp"

#include "arch/bit_array.hpp"
#include "arch/matmul_arrays.hpp"
#include "core/evaluator.hpp"
#include "core/expansion.hpp"
#include "core/workload.hpp"
#include "ir/kernels.hpp"

namespace {

using namespace bitlevel;
using core::Expansion;

void print_tables() {
  bench::print_header(
      "E2", "Fig. 2 — Expansion I vs Expansion II",
      "Expansion I is more computationally uniform: its 4+-input compressor cells are "
      "O(u^2 p^2) (accumulation boundary only) vs Expansion II's O(u^3 p) (every i1 = p "
      "hyperplane). Expansion II tolerates larger operands per chain.");

  TextTable table({"u", "p", "expansion", "3-input cells", "4-input", "5-input",
                   "heavy fraction", "max safe operand"});
  for (math::Int u : {3, 5, 8}) {
    for (math::Int p : {4, 8}) {
      const auto model = ir::kernels::matmul(u);
      for (Expansion e : {Expansion::kI, Expansion::kII}) {
        const auto hist = core::compute_load_histogram(core::expand(model, p, e));
        const math::Int total = u * u * u * p * p;
        const math::Int heavy = hist.count[4] + hist.count[5];
        char frac[32];
        std::snprintf(frac, sizeof frac, "%.4f",
                      static_cast<double>(heavy) / static_cast<double>(total));
        table.add_row({std::to_string(u), std::to_string(p),
                       e == Expansion::kI ? "I" : "II", std::to_string(hist.count[3]),
                       std::to_string(hist.count[4]), std::to_string(hist.count[5]), frac,
                       std::to_string(core::max_safe_operand(p, u, e))});
      }
    }
  }
  bench::print_table(table);

  // Ablation: both expansions under the SAME time-optimal mapping T of
  // (4.2). The distance vectors are identical, so the schedule length
  // and PE count match; the expansions trade per-cell compressor
  // complexity (and operand capacity) instead.
  std::printf(
      "Both expansions under T (4.2) — identical cycles/PEs, different cell loads:\n");
  TextTable arr({"u", "p", "expansion", "cycles", "PEs", "4+-input cells", "products ok"});
  for (Expansion e : {Expansion::kI, Expansion::kII}) {
    const math::Int u = 4, p = 6;
    const auto model = ir::kernels::matmul(u);
    const auto s = core::expand(model, p, e);
    const arch::BitLevelArray array(s, arch::matmul_mapping(arch::MatmulMapping::kFig4, p),
                                    arch::matmul_primitives(arch::MatmulMapping::kFig4, p));
    const auto w = core::make_safe_workload(model, p, e, 71);
    const auto run = array.run(w.x_fn(), w.y_fn());
    const auto ref = core::evaluate_word_reference(model, w.x_fn(), w.y_fn());
    bool ok = !run.z.empty();
    for (const auto& [j, v] : run.z) ok = ok && v == ref.at(j);
    const auto hist = core::compute_load_histogram(s);
    arr.add_row({std::to_string(u), std::to_string(p), e == Expansion::kI ? "I" : "II",
                 std::to_string(run.stats.cycles), std::to_string(run.stats.pe_count),
                 std::to_string(hist.count[4] + hist.count[5]), ok ? "yes" : "NO"});
  }
  bench::print_table(arr);
}

void BM_LoadHistogram(benchmark::State& state) {
  const auto s = core::expand(ir::kernels::matmul(state.range(0)), state.range(1),
                              state.range(2) == 0 ? Expansion::kI : Expansion::kII);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_load_histogram(s).max_inputs());
  }
}
BENCHMARK(BM_LoadHistogram)->Args({4, 4, 0})->Args({4, 4, 1});

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
