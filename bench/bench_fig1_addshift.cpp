// E1 — Fig. 1: the add-shift arithmetic algorithm.
//
// Regenerates the structural facts of Fig. 1 (the p x p cell grid, the
// dependence matrix D_as of eq. 3.4) across word lengths, verifies
// exactness against native multiplication, and reports the latency
// models the Section 4.2 comparison uses (sequential add-shift p^2 vs
// carry-save 2p vs the grid's own critical path 3(p-1)+1 under the
// optimal bit-level schedule).
#include "bench/bench_util.hpp"

#include "arith/add_shift.hpp"
#include "arith/carry_save.hpp"
#include "arith/ripple_adder.hpp"
#include "support/rng.hpp"

namespace {

using namespace bitlevel;

void print_tables() {
  bench::print_header(
      "E1", "Fig. 1 — add-shift multiplication",
      "The p x p full-adder grid with D_as = [[1,0,1],[0,1,-1]] multiplies exactly; "
      "its sequential word-level latency is p^2, carry-save is 2p.");

  const auto triplet = arith::AddShiftMultiplier(4).triplet();
  std::printf("D_as (eq. 3.4):\n%s\n", triplet.deps.to_string(triplet.coord_names).c_str());

  TextTable table({"p", "grid cells", "verified products", "mismatches", "t_b add-shift (p^2)",
                   "t_b carry-save (2p)", "bit-level critical path 3(p-1)+1"});
  Xoshiro256 rng(2024);
  for (math::Int p : {2, 4, 8, 12, 16, 24}) {
    const arith::AddShiftMultiplier mult(p);
    int checked = 0, bad = 0;
    for (int trial = 0; trial < 2000; ++trial) {
      const std::uint64_t a = rng.bits(static_cast<int>(p));
      const std::uint64_t b = rng.bits(static_cast<int>(p));
      if (mult.multiply(a, b).product != a * b) ++bad;
      ++checked;
    }
    table.add_row({std::to_string(p), std::to_string(p * p), std::to_string(checked),
                   std::to_string(bad),
                   std::to_string(arith::AddShiftMultiplier::sequential_latency(p)),
                   std::to_string(arith::CarrySaveMultiplier::latency(p)),
                   std::to_string(3 * (p - 1) + 1)});
  }
  bench::print_table(table);
}

void BM_AddShiftMultiply(benchmark::State& state) {
  const math::Int p = state.range(0);
  const arith::AddShiftMultiplier mult(p);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(static_cast<int>(p));
    const std::uint64_t b = rng.bits(static_cast<int>(p));
    benchmark::DoNotOptimize(mult.multiply(a, b).product);
  }
}
BENCHMARK(BM_AddShiftMultiply)->Arg(4)->Arg(8)->Arg(16);

void BM_CarrySaveMultiply(benchmark::State& state) {
  const math::Int p = state.range(0);
  const arith::CarrySaveMultiplier mult(p);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const std::uint64_t a = rng.bits(static_cast<int>(p));
    const std::uint64_t b = rng.bits(static_cast<int>(p));
    benchmark::DoNotOptimize(mult.multiply(a, b).product);
  }
}
BENCHMARK(BM_CarrySaveMultiply)->Arg(4)->Arg(8)->Arg(16);

void BM_RippleCarryAdd(benchmark::State& state) {
  const arith::RippleCarryAdder adder(state.range(0));
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        adder.add(rng.bits(static_cast<int>(state.range(0))),
                  rng.bits(static_cast<int>(state.range(0))))
            .sum);
  }
}
BENCHMARK(BM_RippleCarryAdd)->Arg(8)->Arg(32);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
