// E5 — Fig. 4 / eqs. (4.2)-(4.5): the time-optimal bit-level matmul
// architecture.
//
// Regenerates: total time t = 3(u-1) + 3(p-1) + 1 (eq. 4.5), u^2 p^2
// processors, the T*D matrix (4.4), the single buffered link on d4, and
// functional correctness of every product — all from the cycle-accurate
// simulation.
#include "bench/bench_util.hpp"

#include "arch/matmul_arrays.hpp"
#include "core/evaluator.hpp"
#include "core/expansion.hpp"
#include "ir/kernels.hpp"

namespace {

using namespace bitlevel;
using arch::BitLevelMatmulArray;
using arch::MatmulMapping;
using arch::WordMatrix;

void print_tables() {
  bench::print_header(
      "E5", "Fig. 4 — time-optimal bit-level matmul array (T of 4.2)",
      "Measured cycles == 3(u-1)+3(p-1)+1 (eq. 4.5); u^2 p^2 PEs; long [p,0]/[0,p] "
      "wires; one buffer register on the d4 link; products verified.");

  {
    const auto t = arch::matmul_mapping(MatmulMapping::kFig4, 3);
    const auto s = core::expand(ir::kernels::matmul(3), 3, core::Expansion::kII);
    std::printf("T (4.2) at p = 3:\n%s\nT*D (4.4):\n%s\n\n", t.to_string().c_str(),
                t.matrix().mul(s.deps.as_matrix()).to_string().c_str());
  }

  TextTable table({"u", "p", "cycles (measured)", "cycles (4.5)", "PEs (measured)",
                   "PEs (u^2 p^2)", "utilization", "max wire", "d4 buffer", "products ok"});
  std::vector<std::pair<math::Int, math::Int>> sizes;
  for (math::Int u : {2, 4, 6, 8}) {
    for (math::Int p : {4, 8}) sizes.emplace_back(u, p);
  }
  sizes.emplace_back(12, 12);  // quarter-million-cell runs:
  sizes.emplace_back(16, 16);  // the simulator is flat-indexed
  for (const auto& [u, p] : sizes) {
    {
      const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
      const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
      const WordMatrix x = WordMatrix::random(u, bound, 100 + u);
      const WordMatrix y = WordMatrix::random(u, bound, 200 + p);
      const auto result = array.multiply(x, y);
      const bool ok = result.z == WordMatrix::multiply_reference(x, y);
      char util[32];
      std::snprintf(util, sizeof util, "%.3f", result.stats.pe_utilization);
      table.add_row({std::to_string(u), std::to_string(p),
                     std::to_string(result.stats.cycles),
                     std::to_string(array.predicted_cycles()),
                     std::to_string(result.stats.pe_count),
                     std::to_string(array.predicted_processors()), util,
                     std::to_string(arch::matmul_primitives(MatmulMapping::kFig4, p)
                                        .max_wire_length()),
                     std::to_string(result.stats.buffer_depth[3]), ok ? "yes" : "NO"});
    }
  }
  bench::print_table(table);

  // Streaming memory mode: identical products, with peak output-slot
  // residency bounded by the Pi-window instead of the domain size. The
  // 16x16x16-bit instance has 16^5 > 10^6 index points, demonstrating
  // the >= 10x bound on a million-point domain.
  TextTable memory({"u", "p", "index points", "dense slots", "streaming peak", "reduction",
                    "products ok"});
  for (const auto& [u, p] : std::vector<std::pair<math::Int, math::Int>>{{8, 8}, {12, 12},
                                                                         {16, 16}}) {
    const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
    const WordMatrix x = WordMatrix::random(u, bound, 100 + u);
    const WordMatrix y = WordMatrix::random(u, bound, 200 + p);
    BitLevelMatmulArray dense(MatmulMapping::kFig4, u, p);
    const auto dense_run = dense.multiply(x, y);
    BitLevelMatmulArray streaming(MatmulMapping::kFig4, u, p);
    streaming.set_memory_mode(sim::MemoryMode::kStreaming);
    const auto streaming_run = streaming.multiply(x, y);
    const bool ok = streaming_run.z == WordMatrix::multiply_reference(x, y) &&
                    streaming_run.z == dense_run.z;
    char reduction[32];
    std::snprintf(reduction, sizeof reduction, "%.1fx",
                  static_cast<double>(dense_run.stats.peak_live_slots) /
                      static_cast<double>(streaming_run.stats.peak_live_slots));
    memory.add_row({std::to_string(u), std::to_string(p),
                    std::to_string(dense_run.stats.computations),
                    std::to_string(dense_run.stats.peak_live_slots),
                    std::to_string(streaming_run.stats.peak_live_slots), reduction,
                    ok ? "yes" : "NO"});
  }
  bench::print_table(memory);
}

void BM_Fig4Simulation(benchmark::State& state) {
  const math::Int u = state.range(0), p = state.range(1);
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const WordMatrix x = WordMatrix::random(u, bound, 1);
  const WordMatrix y = WordMatrix::random(u, bound, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.multiply(x, y).stats.cycles);
  }
  state.SetComplexityN(u * u * u * p * p);
}
BENCHMARK(BM_Fig4Simulation)->Args({2, 4})->Args({4, 4})->Args({4, 8})->Args({6, 8});

// Serial-vs-parallel wavefront execution on one CI-sized array. The
// third argument is the worker count; threads = 1 is the exact serial
// path, so the ratio of these rows is the wall-clock speedup of the
// Π-hyperplane fan-out (outputs are bit-identical by construction).
void BM_Fig4SimulationThreads(benchmark::State& state) {
  const math::Int u = state.range(0), p = state.range(1);
  const int threads = static_cast<int>(state.range(2));
  BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  array.set_threads(threads);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const WordMatrix x = WordMatrix::random(u, bound, 1);
  const WordMatrix y = WordMatrix::random(u, bound, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.multiply(x, y).stats.cycles);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_Fig4SimulationThreads)
    ->Args({6, 8, 1})
    ->Args({6, 8, 2})
    ->Args({6, 8, 4})
    ->Args({12, 12, 1})
    ->Args({12, 12, 2})
    ->Args({12, 12, 4})
    ->UseRealTime();

// Streaming vs dense output storage. The counters report the measured
// peak slot residency of each mode — the memory half of the tradeoff —
// while the timing rows show the wavefront-enumeration overhead.
void BM_Fig4StreamingMemory(benchmark::State& state) {
  const math::Int u = state.range(0), p = state.range(1);
  const bool streaming = state.range(2) != 0;
  BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  array.set_memory_mode(streaming ? sim::MemoryMode::kStreaming : sim::MemoryMode::kDense);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const WordMatrix x = WordMatrix::random(u, bound, 1);
  const WordMatrix y = WordMatrix::random(u, bound, 2);
  math::Int peak = 0;
  for (auto _ : state) {
    const auto result = array.multiply(x, y);
    peak = result.stats.peak_live_slots;
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_live_slots"] = static_cast<double>(peak);
  state.counters["streaming"] = streaming ? 1 : 0;
}
BENCHMARK(BM_Fig4StreamingMemory)
    ->Args({6, 8, 0})
    ->Args({6, 8, 1})
    ->Args({12, 12, 0})
    ->Args({12, 12, 1});

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
