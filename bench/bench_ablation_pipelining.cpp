// A2 (ablation) — problem pipelining on the Fig. 4 array.
//
// The paper evaluates one product at a time, leaving the array mostly
// idle (utilization ~ u/(3u+3p) per the wavefront geometry). Systolic
// arrays earn their area by STREAMING: a new problem enters every
// initiation interval (u cycles for Fig. 4 — each PE is busy u
// consecutive cycles per problem), so throughput approaches one matmul
// per u cycles and utilization approaches 1. This bench measures the
// whole curve cycle-accurately, with every product in every batch
// verified.
#include "bench/bench_util.hpp"

#include "arch/matmul_arrays.hpp"
#include "core/evaluator.hpp"

namespace {

using namespace bitlevel;
using arch::BitLevelMatmulArray;
using arch::MatmulMapping;
using arch::WordMatrix;

void print_tables() {
  bench::print_header(
      "A2 (ablation)", "problem pipelining / throughput",
      "Streaming B problems through one Fig. 4 array: total time = single-problem "
      "latency + (B-1)*u; utilization -> 1; throughput -> 1 matmul per u cycles.");

  const math::Int u = 4, p = 4;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);

  TextTable table({"problems", "cycles", "cycles/problem", "utilization", "products ok"});
  for (math::Int batches : {1, 2, 4, 8, 16, 32}) {
    std::vector<WordMatrix> xs, ys;
    for (math::Int b = 0; b < batches; ++b) {
      xs.push_back(WordMatrix::random(u, bound, 300 + static_cast<std::uint64_t>(b)));
      ys.push_back(WordMatrix::random(u, bound, 400 + static_cast<std::uint64_t>(b)));
    }
    const auto result = array.multiply_batch(xs, ys);
    bool ok = true;
    for (std::size_t b = 0; b < xs.size(); ++b) {
      ok = ok && result.z[b] == WordMatrix::multiply_reference(xs[b], ys[b]);
    }
    char per[32], util[32];
    std::snprintf(per, sizeof per, "%.2f",
                  static_cast<double>(result.stats.cycles) / static_cast<double>(batches));
    std::snprintf(util, sizeof util, "%.3f", result.stats.pe_utilization);
    table.add_row({std::to_string(batches), std::to_string(result.stats.cycles), per, util,
                   ok ? "yes" : "NO"});
  }
  bench::print_table(table);
  std::printf("initiation interval: %lld cycles; asymptotic throughput: 1 matmul / %lld "
              "cycles on %lld PEs\n",
              (long long)array.batch_initiation_interval(),
              (long long)array.batch_initiation_interval(),
              (long long)array.predicted_processors());
}

void BM_BatchedStream(benchmark::State& state) {
  const math::Int u = 3, p = 3;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  std::vector<WordMatrix> xs(static_cast<std::size_t>(state.range(0)),
                             WordMatrix::random(u, bound, 1));
  std::vector<WordMatrix> ys(xs.size(), WordMatrix::random(u, bound, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.multiply_batch(xs, ys).stats.cycles);
  }
}
BENCHMARK(BM_BatchedStream)->Arg(2)->Arg(8);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
