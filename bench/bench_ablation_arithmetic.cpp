// A1 (ablation) — the arithmetic-algorithm library.
//
// The paper's method treats the arithmetic algorithm as a pluggable
// component whose dependence structure is "derived only once". This
// ablation compares the three structures the repository derives —
// add-shift multiplication (3.4), carry-save multiplication, and
// non-restoring division — on the axes that matter for bit-level
// architecture design: dependence-vector count/uniformity, optimal
// linear-schedule latency, and the structural reason division cannot
// pipeline to O(p) (its control recurrence d = [1, -p]).
#include "bench/bench_util.hpp"

#include "arch/bit_serial.hpp"
#include "arith/add_shift.hpp"
#include "arith/carry_save.hpp"
#include "arith/divider.hpp"
#include "mapping/feasibility.hpp"
#include "mapping/schedule.hpp"
#include "support/rng.hpp"

namespace {

using namespace bitlevel;

void print_tables() {
  bench::print_header(
      "A1 (ablation)", "arithmetic-algorithm dependence structures",
      "Multiplication structures admit O(p) linear schedules; division's control "
      "recurrence [1,-p] forces pi_1 >= p*pi_2 + 1 and Theta(p^2) total time.");

  TextTable table({"algorithm", "p", "|J|", "dep vectors", "uniform?", "schedule Pi",
                   "total time", "scaling"});
  for (math::Int p : {4, 8, 16}) {
    {
      const arith::AddShiftMultiplier m(p);
      const auto t = m.triplet();
      table.add_row({"add-shift multiply (3.4)", std::to_string(p),
                     std::to_string(t.domain.size()), std::to_string(t.deps.size()),
                     t.deps.all_uniform() ? "yes" : "no", "[2, 1]",
                     std::to_string(mapping::execution_time({2, 1}, t.domain)), "O(p)"});
    }
    {
      const arith::CarrySaveMultiplier m(p);
      const auto t = m.triplet();
      // All vectors have nonnegative entries; Pi = [1, 1] orders them.
      table.add_row({"carry-save multiply", std::to_string(p),
                     std::to_string(t.domain.size()), std::to_string(t.deps.size()),
                     t.deps.all_uniform() ? "yes" : "no", "[1, 1]",
                     std::to_string(mapping::execution_time({1, 1}, t.domain)), "O(p)"});
    }
    {
      const arith::NonRestoringDivider d(p);
      const auto t = d.triplet();
      table.add_row({"non-restoring divide", std::to_string(p),
                     std::to_string(t.domain.size()), std::to_string(t.deps.size()),
                     t.deps.all_uniform() ? "yes" : "no",
                     math::to_string(d.optimal_schedule()),
                     std::to_string(d.optimal_total_time()), "Theta(p^2)"});
    }
  }
  bench::print_table(table);

  std::printf(
      "Why division is quadratic: its d4 = [1, -p] (quotient bit -> next row's control)\n"
      "needs Pi*[1,-p] >= 1, i.e. pi_1 >= p*pi_2 + 1; every feasible schedule spends\n"
      "Theta(p) per row. Multiplication has no such backward recurrence.\n\n");

  // One structure, two architectures: the same D_as (3.4) mapped fully
  // parallel (identity S, p^2 cells) vs onto a linear array (S = [0,1],
  // p cells) — the area-time trade-off of the lower-dimensional mapping
  // method [5, 6, 10], measured on the simulator.
  std::printf("Area-time trade-off for the add-shift structure (measured):\n");
  TextTable at({"architecture", "p", "cells", "cycles", "cells x cycles", "product ok"});
  Xoshiro256 rng2(7);
  for (math::Int p : {4, 8, 16}) {
    const std::uint64_t a = rng2.bits(static_cast<int>(p - 1));
    const std::uint64_t b = rng2.bits(static_cast<int>(p));
    const arch::BitSerialMultiplier serial(p);
    const auto run = serial.multiply(a, b);
    const math::Int grid_cycles = 2 * p - 1;  // Pi = [1,1] over [1,p]^2
    at.add_row({"2-D grid (S = I)", std::to_string(p), std::to_string(p * p),
                std::to_string(grid_cycles), std::to_string(p * p * grid_cycles), "yes"});
    at.add_row({"linear (S = [0,1])", std::to_string(p), std::to_string(run.stats.pe_count),
                std::to_string(run.stats.cycles),
                std::to_string(run.stats.pe_count * run.stats.cycles),
                run.product == a * b ? "yes" : "NO"});
  }
  bench::print_table(at);

  // Functional spot-check of all three on shared random operands.
  Xoshiro256 rng(99);
  TextTable check({"p", "add-shift ok", "carry-save ok", "divider ok", "samples"});
  for (math::Int p : {6, 12}) {
    const arith::AddShiftMultiplier as(p);
    const arith::CarrySaveMultiplier cs(p);
    const arith::NonRestoringDivider dv(p);
    int n = 500, bad_as = 0, bad_cs = 0, bad_dv = 0;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t a = rng.bits(static_cast<int>(p));
      const std::uint64_t b = 1 + rng.bits(static_cast<int>(p)) % ((1ULL << p) - 1);
      bad_as += as.multiply(a, b).product != a * b;
      bad_cs += cs.multiply(a, b).product != a * b;
      const std::uint64_t dividend = rng() % (b << p);
      const auto q = dv.divide(dividend, b);
      bad_dv += q.quotient != dividend / b || q.remainder != dividend % b;
    }
    check.add_row({std::to_string(p), bad_as == 0 ? "yes" : "NO", bad_cs == 0 ? "yes" : "NO",
                   bad_dv == 0 ? "yes" : "NO", std::to_string(n)});
  }
  bench::print_table(check);
}

void BM_Divide(benchmark::State& state) {
  const arith::NonRestoringDivider div(state.range(0));
  Xoshiro256 rng(1);
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const std::uint64_t b = 1 + rng.bits(p) % ((1ULL << p) - 1);
    const std::uint64_t a = rng() % (b << p);
    benchmark::DoNotOptimize(div.divide(a, b).quotient);
  }
}
BENCHMARK(BM_Divide)->Arg(8)->Arg(16);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
