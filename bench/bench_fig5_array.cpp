// E6 — Fig. 5 / eqs. (4.6)-(4.8): the nearest-neighbour bit-level
// matmul architecture.
//
// Regenerates the trade-off the paper describes: T' avoids the long
// wires of Fig. 4 (max wire length 2 vs p) at the cost of a slower
// schedule. Also documents erratum E6: the paper prints
// t' = (2p-1)(u-1)+3(p-1)+1, but its own Pi' = [p,p,1,2,1] evaluates to
// (2p+1)(u-1)+3(p-1)+1; the measured cycles match the latter.
#include "bench/bench_util.hpp"

#include "arch/matmul_arrays.hpp"
#include "core/evaluator.hpp"

namespace {

using namespace bitlevel;
using arch::BitLevelMatmulArray;
using arch::MatmulMapping;
using arch::WordMatrix;

void print_tables() {
  bench::print_header(
      "E6", "Fig. 5 — nearest-neighbour bit-level matmul array (T' of 4.6)",
      "No long wires (max wire 2); measured cycles == Pi'-evaluated time "
      "(2p+1)(u-1)+3(p-1)+1. The paper's printed (2p-1) coefficient is an arithmetic "
      "slip — see EXPERIMENTS.md erratum E6.");

  TextTable table({"u", "p", "cycles (measured)", "Pi' evaluated", "paper's printed (4.8)",
                   "Fig. 4 cycles", "max wire (Fig5/Fig4)", "products ok"});
  for (math::Int u : {2, 4, 6, 8}) {
    for (math::Int p : {4, 8}) {
      const BitLevelMatmulArray fig5(MatmulMapping::kFig5, u, p);
      const BitLevelMatmulArray fig4(MatmulMapping::kFig4, u, p);
      const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
      const WordMatrix x = WordMatrix::random(u, bound, 300 + u);
      const WordMatrix y = WordMatrix::random(u, bound, 400 + p);
      const auto result = fig5.multiply(x, y);
      const bool ok = result.z == WordMatrix::multiply_reference(x, y);
      const math::Int printed = (2 * p - 1) * (u - 1) + 3 * (p - 1) + 1;
      table.add_row(
          {std::to_string(u), std::to_string(p), std::to_string(result.stats.cycles),
           std::to_string(fig5.predicted_cycles()), std::to_string(printed),
           std::to_string(fig4.predicted_cycles()),
           std::to_string(
               arch::matmul_primitives(MatmulMapping::kFig5, p).max_wire_length()) +
               "/" +
               std::to_string(
                   arch::matmul_primitives(MatmulMapping::kFig4, p).max_wire_length()),
           ok ? "yes" : "NO"});
    }
  }
  bench::print_table(table);
}

void BM_Fig5Simulation(benchmark::State& state) {
  const math::Int u = state.range(0), p = state.range(1);
  const BitLevelMatmulArray array(MatmulMapping::kFig5, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const WordMatrix x = WordMatrix::random(u, bound, 1);
  const WordMatrix y = WordMatrix::random(u, bound, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.multiply(x, y).stats.cycles);
  }
}
BENCHMARK(BM_Fig5Simulation)->Args({2, 4})->Args({4, 4})->Args({4, 8});

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
