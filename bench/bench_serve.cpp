// BM_Serve — warm daemon vs cold one-shot-CLI-per-request throughput.
//
// The design-service daemon amortizes plan composition across every
// client: once a plan is warm in the shared cache, a request costs one
// socket round trip plus execution, while the one-shot baseline pays
// process startup AND a cold compose for each request. The table
// measures requests/sec both ways on the same simulate instance and
// enforces the acceptance bar: the warm daemon must deliver >= 10x the
// cold one-shot throughput. The binary exits nonzero when the bar is
// missed, failing the pipefail bench step in CI.
//
// The overload scenario floods a one-worker daemon with 2x its queue
// capacity of already-expired requests behind a heavy batch and gates
// on degradation: shedding one dead request must cost < 1% of an
// executed warm request, and the warm p50 after the flood must stay
// within 2x of the p50 before it. Set BITLEVEL_BENCH_JSON to also
// write the gate figures as a JSON artifact.
#include "bench/bench_util.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The measured instance: large enough that composition dominates a
/// cold run, small enough that the warm path turns around fast.
constexpr const char* kKernel = "matmul";
constexpr long kU = 3;
constexpr long kP = 5;

serve::ActionParams bench_params() {
  serve::ActionParams params;
  // Extents are spelled out because request_line serializes every
  // field and the wire parser (rightly) rejects v=0/w=0; leaving them
  // unset would measure error-response throughput, not simulation.
  params.request.kernel = pipeline::KernelSpec{kKernel, kU, kU, kU, 0};
  params.request.p = kP;
  params.request.expansion = core::Expansion::kII;
  return params;
}

/// Requests/sec over a warm daemon: one in-process server on a Unix
/// socket, one client, lockstep simulate requests. The first request
/// pays the only composition; it is excluded as warmup.
double warm_daemon_rps(int requests) {
  pipeline::PlanCache cache(16);
  serve::ServerConfig config;
  config.listen = "unix:/tmp/bitlevel-bench-serve-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  config.workers = 2;
  config.cache = &cache;
  serve::Server server(std::move(config));
  server.bind_and_listen();
  std::thread daemon([&] { server.run(); });

  serve::Client client;
  client.connect(server.endpoint());
  const serve::ActionParams params = bench_params();
  client.roundtrip(serve::request_line(0, "simulate", params));  // warmup compose

  const auto start = Clock::now();
  for (int i = 1; i <= requests; ++i) {
    benchmark::DoNotOptimize(client.roundtrip(serve::request_line(i, "simulate", params)));
  }
  const double elapsed = seconds_since(start);

  client.close();
  server.shutdown();
  daemon.join();
  return requests / elapsed;
}

/// Requests/sec spawning one cold CLI process per request — what a
/// shell loop without the daemon pays: fork/exec + a cold compose each
/// time. Measured over a small probe count; the ratio is what matters.
double cold_one_shot_rps(int requests, const char* bin) {
  const std::string command = std::string(bin) + " --kernel " + kKernel + " --u " +
                              std::to_string(kU) + " --p " + std::to_string(kP) +
                              " --action simulate --json > /dev/null 2>&1";
  const auto start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    if (std::system(command.c_str()) != 0) {
      std::printf("one-shot baseline failed: %s\n", command.c_str());
      std::exit(1);
    }
  }
  return requests / seconds_since(start);
}

/// Median lockstep simulate round-trip over a warm daemon, in ms.
double median_roundtrip_ms(serve::Client& client, const serve::ActionParams& params, int n,
                           std::int64_t id0) {
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto start = Clock::now();
    benchmark::DoNotOptimize(
        client.roundtrip(serve::request_line(id0 + i, "simulate", params)));
    ms.push_back(seconds_since(start) * 1000.0);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

struct OverloadReport {
  double warm_p50_before_ms = 0.0;
  double warm_p50_after_ms = 0.0;
  double shed_cost_ms = 0.0;  ///< Per flooded request, amortized.
  int shed = 0;               ///< deadline_exceeded rejections seen.
  int overloaded = 0;         ///< admission-control rejections seen.
  bool shed_gate = false;     ///< shed cost < 1% of a warm request.
  bool p50_gate = false;      ///< warm p50 after <= 2x before.
};

/// Flood a one-worker daemon with 2x its queue capacity of
/// already-expired requests stuck behind a heavy batch: every one must
/// be rejected (overloaded at admission or shed at pop), and the cost
/// of turning them all away must be noise next to real work.
OverloadReport run_overload_scenario() {
  constexpr std::size_t kQueue = 64;
  constexpr int kFlood = 2 * static_cast<int>(kQueue);
  pipeline::PlanCache cache(16);
  serve::ServerConfig config;
  config.listen = "unix:/tmp/bitlevel-bench-serve-ovl-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  config.workers = 1;
  config.max_queue = kQueue;
  config.cache = &cache;
  serve::Server server(std::move(config));
  server.bind_and_listen();
  std::thread daemon([&] { server.run(); });
  serve::Client client;
  client.connect(server.endpoint());
  const serve::ActionParams params = bench_params();
  client.roundtrip(serve::request_line(0, "simulate", params));  // warmup compose

  OverloadReport report;
  report.warm_p50_before_ms = median_roundtrip_ms(client, params, 31, 1000);

  // Heavy enough (hundreds of ms) that every queued 1 ms deadline
  // lapses long before the worker reaches it.
  serve::ActionParams heavy = bench_params();
  heavy.batch = 600;
  heavy.sliced = pipeline::SlicedMode::kOff;
  serve::ActionParams expired = bench_params();
  expired.deadline_ms = 1;  // lapses while queued behind the heavy batch

  const auto flood_start = Clock::now();
  client.send_line(serve::request_line(9999, "batch", heavy));
  for (int i = 0; i < kFlood; ++i) {
    client.send_line(serve::request_line(2000 + i, "simulate", expired));
  }
  double heavy_elapsed = 0.0;
  for (int seen = 0; seen < kFlood + 1; ++seen) {
    std::string line;
    if (!client.recv_line(&line)) break;
    if (line.find("\"id\":9999") != std::string::npos) {
      heavy_elapsed = seconds_since(flood_start);
    } else if (line.find("\"deadline_exceeded\"") != std::string::npos) {
      ++report.shed;
    } else if (line.find("\"overloaded\"") != std::string::npos) {
      ++report.overloaded;
    }
  }
  // Everything past the heavy batch's own completion is pure
  // flood-turnaway work, amortized over the flood.
  report.shed_cost_ms = (seconds_since(flood_start) - heavy_elapsed) * 1000.0 / kFlood;
  report.warm_p50_after_ms = median_roundtrip_ms(client, params, 31, 3000);
  report.shed_gate = report.shed_cost_ms < 0.01 * report.warm_p50_before_ms;
  report.p50_gate = report.warm_p50_after_ms <= 2.0 * report.warm_p50_before_ms;

  client.close();
  server.shutdown();
  daemon.join();
  return report;
}

/// One coalescing measurement: N concurrent single-item clients in
/// lockstep against one warm plan, window on or off.
struct CoalesceRun {
  double items_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t groups = 0;  ///< coalesced (>= 2 member) groups formed.
  std::uint64_t items = 0;   ///< items those groups carried.
};

struct CoalesceReport {
  CoalesceRun off;  ///< window 0: every request executes solo.
  CoalesceRun on;   ///< window 250us: requests share lane groups.
  double speedup = 0.0;
  bool throughput_gate = false;  ///< on >= 4x off items/sec.
  bool latency_gate = false;     ///< on p99 <= 2x off p50 + window.
};

constexpr std::int64_t kCoalesceWindowUs = 250;
constexpr int kCoalesceClients = 64;
constexpr int kCoalesceRounds = 6;

/// The single-item-per-request client flood: the honest uncoalesced
/// baseline is the same flood against window 0 — same wire bytes, same
/// clients, only the daemon's batching behavior differs.
CoalesceRun run_coalesce_clients(std::int64_t window_us) {
  pipeline::PlanCache cache(16);
  serve::ServerConfig config;
  config.listen = "unix:/tmp/bitlevel-bench-serve-co-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  // Two workers: one leads the open group while the other keeps
  // popping joiners. More workers would burn the idle pool executing
  // solo what the lanes could share.
  config.workers = 2;
  config.max_queue = 256;  // the whole flood must admit
  config.coalesce_window_us = window_us;
  config.cache = &cache;
  serve::Server server(std::move(config));
  server.bind_and_listen();
  std::thread daemon([&] { server.run(); });

  serve::ActionParams params = bench_params();
  // Interpreted sliced mode at deeper precision: the interpreter
  // dispatches every scheduled bit event, so the pass costs ~p^2 per
  // request while the per-item pack/verify work stays word-level flat.
  // This is the regime lane sharing is FOR — the pass dominates a solo
  // run (~1ms) and amortizes to ~30us per member across a full group.
  params.request.p = 8;
  params.batch = 1;
  params.sliced = pipeline::SlicedMode::kOn;
  params.compiled = pipeline::SlicedMode::kOff;
  {
    serve::Client warm;
    warm.connect(server.endpoint());
    warm.roundtrip(serve::request_line(0, "batch", params));  // warmup compose
  }

  std::vector<std::vector<double>> latencies_ms(kCoalesceClients);
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kCoalesceClients; ++c) {
    clients.emplace_back([&, c] {
      serve::Client client;
      client.connect(server.endpoint());
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      serve::ActionParams mine = params;
      for (int r = 0; r < kCoalesceRounds; ++r) {
        mine.seed = static_cast<std::uint64_t>(c * kCoalesceRounds + r + 1);
        const auto start = Clock::now();
        benchmark::DoNotOptimize(
            client.roundtrip(serve::request_line(c * kCoalesceRounds + r + 1, "batch", mine)));
        latencies_ms[static_cast<std::size_t>(c)].push_back(seconds_since(start) * 1000.0);
      }
    });
  }
  while (ready.load() < kCoalesceClients) std::this_thread::yield();
  const auto start = Clock::now();
  go.store(true);
  for (std::thread& t : clients) t.join();
  const double elapsed = seconds_since(start);

  CoalesceRun run;
  run.items_per_sec = kCoalesceClients * kCoalesceRounds / elapsed;
  std::vector<double> all;
  for (const auto& lat : latencies_ms) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  run.p50_ms = all[all.size() / 2];
  run.p99_ms = all[all.size() * 99 / 100];
  const serve::ServerStats stats = server.stats();
  run.groups = stats.coalesced_groups;
  run.items = stats.coalesced_items;
  server.shutdown();
  daemon.join();
  return run;
}

CoalesceReport run_coalesce_scenario() {
  CoalesceReport report;
  report.off = run_coalesce_clients(0);
  report.on = run_coalesce_clients(kCoalesceWindowUs);
  report.speedup =
      report.off.items_per_sec > 0.0 ? report.on.items_per_sec / report.off.items_per_sec : 0.0;
  report.throughput_gate = report.speedup >= 4.0;
  report.latency_gate =
      report.on.p99_ms <= 2.0 * report.off.p50_ms + kCoalesceWindowUs / 1000.0;
  return report;
}

void write_json_artifact(double cold_rps, double warm_rps, double speedup,
                         const OverloadReport& overload, const CoalesceReport& coalesce) {
  const char* path = std::getenv("BITLEVEL_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_serve");
  w.key("instance").value("matmul-u3-p5");
  w.key("cold_one_shot_rps").value(cold_rps);
  w.key("warm_daemon_rps").value(warm_rps);
  w.key("warm_speedup").value(speedup);
  w.key("warm_gate_10x").value(speedup >= 10.0);
  w.key("overload_shed").value(static_cast<std::int64_t>(overload.shed));
  w.key("overload_rejected").value(static_cast<std::int64_t>(overload.overloaded));
  w.key("shed_cost_ms").value(overload.shed_cost_ms);
  w.key("warm_p50_before_ms").value(overload.warm_p50_before_ms);
  w.key("warm_p50_after_ms").value(overload.warm_p50_after_ms);
  w.key("shed_gate_1pct").value(overload.shed_gate);
  w.key("p50_gate_2x").value(overload.p50_gate);
  w.key("coalesce_window_us").value(kCoalesceWindowUs);
  w.key("coalesce_clients").value(static_cast<std::int64_t>(kCoalesceClients));
  w.key("coalesce_items_per_sec_off").value(coalesce.off.items_per_sec);
  w.key("coalesce_items_per_sec_on").value(coalesce.on.items_per_sec);
  w.key("coalesce_speedup").value(coalesce.speedup);
  w.key("coalesce_p50_off_ms").value(coalesce.off.p50_ms);
  w.key("coalesce_p99_on_ms").value(coalesce.on.p99_ms);
  w.key("coalesced_groups").value(coalesce.on.groups);
  w.key("coalesced_items").value(coalesce.on.items);
  w.key("coalesce_gate_4x").value(coalesce.throughput_gate);
  w.key("coalesce_gate_p99").value(coalesce.latency_gate);
  w.end_object();
  FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::printf("warning: cannot write BITLEVEL_BENCH_JSON artifact to %s\n", path);
    return;
  }
  const std::string doc = w.str();
  std::fwrite(doc.data(), 1, doc.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

void print_tables() {
  bench::print_header(
      "BM_Serve", "warm design-service daemon vs cold one-shot CLI",
      "A warm plan in the daemon's shared cache turns a design request into one "
      "socket round trip; the one-shot baseline pays process startup plus a cold "
      "compose per request. Acceptance bar (CI gate): warm daemon >= 10x cold "
      "one-shot requests/sec on the matmul u=3 p=5 simulate instance.");

#ifndef BITLEVEL_DESIGN_BIN_PATH
#error "BITLEVEL_DESIGN_BIN_PATH must point at the bitlevel-design binary"
#endif
  constexpr int kWarmRequests = 200;
  constexpr int kColdRequests = 5;
  const double warm_rps = warm_daemon_rps(kWarmRequests);
  const double cold_rps = cold_one_shot_rps(kColdRequests, BITLEVEL_DESIGN_BIN_PATH);
  const double speedup = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;

  TextTable table({"path", "requests", "req/sec", "speedup", ">= 10x"});
  char c1[32], c2[32];
  std::snprintf(c1, sizeof c1, "%.2f", cold_rps);
  table.add_row({"cold one-shot CLI", std::to_string(kColdRequests), c1, "1x", "-"});
  std::snprintf(c1, sizeof c1, "%.2f", warm_rps);
  std::snprintf(c2, sizeof c2, "%.1fx", speedup);
  table.add_row(
      {"warm daemon", std::to_string(kWarmRequests), c1, c2, speedup >= 10.0 ? "yes" : "NO"});
  bench::print_table(table);

  if (speedup < 10.0) {
    std::printf("GATE FAILED: warm daemon throughput is %.1fx cold one-shot (< 10x)\n", speedup);
    std::exit(1);
  }
  std::printf("gate passed: warm daemon throughput is %.1fx cold one-shot (>= 10x)\n\n", speedup);

  bench::print_header(
      "BM_ServeOverload", "deadline shedding under 2x queue-capacity flood",
      "A one-worker daemon (queue 64) executes a heavy batch while 128 requests "
      "with a 1 ms deadline pile up behind it: every flooded request is turned "
      "away, either overloaded at admission or shed expired at pop, without ever "
      "composing. Gates: amortized shed cost < 1% of a warm executed request, "
      "and warm p50 after the flood <= 2x the p50 before it.");

  const OverloadReport overload = run_overload_scenario();
  TextTable otable({"metric", "value", "gate"});
  char o1[48];
  std::snprintf(o1, sizeof o1, "%.4f ms", overload.warm_p50_before_ms);
  otable.add_row({"warm p50 before flood", o1, "-"});
  otable.add_row({"flood turned away",
                  std::to_string(overload.shed) + " shed + " +
                      std::to_string(overload.overloaded) + " overloaded",
                  "-"});
  std::snprintf(o1, sizeof o1, "%.4f ms", overload.shed_cost_ms);
  otable.add_row({"shed cost per request", o1, overload.shed_gate ? "< 1% warm" : "GATE FAILED"});
  std::snprintf(o1, sizeof o1, "%.4f ms", overload.warm_p50_after_ms);
  otable.add_row({"warm p50 after flood", o1, overload.p50_gate ? "<= 2x before" : "GATE FAILED"});
  bench::print_table(otable);

  bench::print_header(
      "BM_ServeCoalesce", "cross-request lane coalescing: 64 single-item clients",
      "64 concurrent clients each send batch=1 requests against ONE warm plan. "
      "With the coalesce window off every request pays a full wavefront pass; "
      "with a 250 us window the daemon gathers concurrent requests onto shared "
      "compiled lane groups — one pass serves a whole group. Gates: coalescing "
      "on >= 4x items/sec vs off, and warm p99 with coalescing <= 2x the "
      "uncoalesced p50 plus the window (batching must not wreck tail latency).");

  const CoalesceReport coalesce = run_coalesce_scenario();
  TextTable ctable({"window", "items/sec", "p50 ms", "p99 ms", "groups", "items"});
  char k1[32], k2[32], k3[32];
  std::snprintf(k1, sizeof k1, "%.1f", coalesce.off.items_per_sec);
  std::snprintf(k2, sizeof k2, "%.3f", coalesce.off.p50_ms);
  std::snprintf(k3, sizeof k3, "%.3f", coalesce.off.p99_ms);
  ctable.add_row({"off", k1, k2, k3, "0", "0"});
  std::snprintf(k1, sizeof k1, "%.1f", coalesce.on.items_per_sec);
  std::snprintf(k2, sizeof k2, "%.3f", coalesce.on.p50_ms);
  std::snprintf(k3, sizeof k3, "%.3f", coalesce.on.p99_ms);
  ctable.add_row({"250 us", k1, k2, k3, std::to_string(coalesce.on.groups),
                  std::to_string(coalesce.on.items)});
  bench::print_table(ctable);

  write_json_artifact(cold_rps, warm_rps, speedup, overload, coalesce);

  if (coalesce.on.groups == 0) {
    std::printf("GATE FAILED: the coalescing flood formed no multi-member lane groups\n");
    std::exit(1);
  }
  if (!coalesce.throughput_gate) {
    std::printf("GATE FAILED: coalescing delivers %.1fx items/sec (< 4x uncoalesced)\n",
                coalesce.speedup);
    std::exit(1);
  }
  if (!coalesce.latency_gate) {
    std::printf("GATE FAILED: coalesced p99 %.3f ms > 2x uncoalesced p50 %.3f ms + %.3f ms "
                "window\n",
                coalesce.on.p99_ms, coalesce.off.p50_ms, kCoalesceWindowUs / 1000.0);
    std::exit(1);
  }
  std::printf("gate passed: coalescing %.1fx items/sec (>= 4x), p99 %.3f ms within "
              "2x p50 %.3f ms + window; %llu groups carried %llu items\n\n",
              coalesce.speedup, coalesce.on.p99_ms, coalesce.off.p50_ms,
              static_cast<unsigned long long>(coalesce.on.groups),
              static_cast<unsigned long long>(coalesce.on.items));

  if (overload.shed + overload.overloaded != 2 * 64) {
    std::printf("GATE FAILED: flood accounting is off (%d shed + %d overloaded != 128)\n",
                overload.shed, overload.overloaded);
    std::exit(1);
  }
  if (!overload.shed_gate) {
    std::printf("GATE FAILED: shedding a dead request costs %.4f ms (>= 1%% of the %.4f ms "
                "warm p50)\n",
                overload.shed_cost_ms, overload.warm_p50_before_ms);
    std::exit(1);
  }
  if (!overload.p50_gate) {
    std::printf("GATE FAILED: warm p50 degraded %.4f -> %.4f ms (> 2x) after the flood\n",
                overload.warm_p50_before_ms, overload.warm_p50_after_ms);
    std::exit(1);
  }
  std::printf("gate passed: shed cost %.4f ms (< 1%% of warm p50 %.4f ms), warm p50 after "
              "flood %.4f ms (<= 2x before)\n\n",
              overload.shed_cost_ms, overload.warm_p50_before_ms, overload.warm_p50_after_ms);
}

/// Timing section: the marginal cost of one warm request by action.
void run_warm_request_bench(benchmark::State& state, const char* action) {
  pipeline::PlanCache cache(16);
  serve::ServerConfig config;
  config.listen = "unix:/tmp/bitlevel-bench-serve-bm-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  config.workers = 2;
  config.cache = &cache;
  serve::Server server(std::move(config));
  server.bind_and_listen();
  std::thread daemon([&] { server.run(); });
  serve::Client client;
  client.connect(server.endpoint());
  const serve::ActionParams params = bench_params();
  client.roundtrip(serve::request_line(0, action, params));  // warm the cache
  std::int64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.roundtrip(serve::request_line(id++, action, params)));
  }
  state.SetItemsProcessed(state.iterations());
  client.close();
  server.shutdown();
  daemon.join();
}

void BM_ServeWarmSimulate(benchmark::State& state) {
  run_warm_request_bench(state, "simulate");
}
BENCHMARK(BM_ServeWarmSimulate)->Unit(benchmark::kMillisecond);

void BM_ServeWarmStats(benchmark::State& state) { run_warm_request_bench(state, "stats"); }
BENCHMARK(BM_ServeWarmStats)->Unit(benchmark::kMicrosecond);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
