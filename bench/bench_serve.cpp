// BM_Serve — warm daemon vs cold one-shot-CLI-per-request throughput.
//
// The design-service daemon amortizes plan composition across every
// client: once a plan is warm in the shared cache, a request costs one
// socket round trip plus execution, while the one-shot baseline pays
// process startup AND a cold compose for each request. The table
// measures requests/sec both ways on the same simulate instance and
// enforces the acceptance bar: the warm daemon must deliver >= 10x the
// cold one-shot throughput. The binary exits nonzero when the bar is
// missed, failing the pipefail bench step in CI.
#include "bench/bench_util.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "pipeline/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace bitlevel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The measured instance: large enough that composition dominates a
/// cold run, small enough that the warm path turns around fast.
constexpr const char* kKernel = "matmul";
constexpr long kU = 3;
constexpr long kP = 5;

serve::ActionParams bench_params() {
  serve::ActionParams params;
  params.request.kernel =
      pipeline::KernelSpec{kKernel, kU, 0, 0, 0};
  params.request.p = kP;
  params.request.expansion = core::Expansion::kII;
  return params;
}

/// Requests/sec over a warm daemon: one in-process server on a Unix
/// socket, one client, lockstep simulate requests. The first request
/// pays the only composition; it is excluded as warmup.
double warm_daemon_rps(int requests) {
  pipeline::PlanCache cache(16);
  serve::ServerConfig config;
  config.listen = "unix:/tmp/bitlevel-bench-serve-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  config.workers = 2;
  config.cache = &cache;
  serve::Server server(std::move(config));
  server.bind_and_listen();
  std::thread daemon([&] { server.run(); });

  serve::Client client;
  client.connect(server.endpoint());
  const serve::ActionParams params = bench_params();
  client.roundtrip(serve::request_line(0, "simulate", params));  // warmup compose

  const auto start = Clock::now();
  for (int i = 1; i <= requests; ++i) {
    benchmark::DoNotOptimize(client.roundtrip(serve::request_line(i, "simulate", params)));
  }
  const double elapsed = seconds_since(start);

  client.close();
  server.shutdown();
  daemon.join();
  return requests / elapsed;
}

/// Requests/sec spawning one cold CLI process per request — what a
/// shell loop without the daemon pays: fork/exec + a cold compose each
/// time. Measured over a small probe count; the ratio is what matters.
double cold_one_shot_rps(int requests, const char* bin) {
  const std::string command = std::string(bin) + " --kernel " + kKernel + " --u " +
                              std::to_string(kU) + " --p " + std::to_string(kP) +
                              " --action simulate --json > /dev/null 2>&1";
  const auto start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    if (std::system(command.c_str()) != 0) {
      std::printf("one-shot baseline failed: %s\n", command.c_str());
      std::exit(1);
    }
  }
  return requests / seconds_since(start);
}

void print_tables() {
  bench::print_header(
      "BM_Serve", "warm design-service daemon vs cold one-shot CLI",
      "A warm plan in the daemon's shared cache turns a design request into one "
      "socket round trip; the one-shot baseline pays process startup plus a cold "
      "compose per request. Acceptance bar (CI gate): warm daemon >= 10x cold "
      "one-shot requests/sec on the matmul u=3 p=5 simulate instance.");

#ifndef BITLEVEL_DESIGN_BIN_PATH
#error "BITLEVEL_DESIGN_BIN_PATH must point at the bitlevel-design binary"
#endif
  constexpr int kWarmRequests = 200;
  constexpr int kColdRequests = 5;
  const double warm_rps = warm_daemon_rps(kWarmRequests);
  const double cold_rps = cold_one_shot_rps(kColdRequests, BITLEVEL_DESIGN_BIN_PATH);
  const double speedup = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;

  TextTable table({"path", "requests", "req/sec", "speedup", ">= 10x"});
  char c1[32], c2[32];
  std::snprintf(c1, sizeof c1, "%.2f", cold_rps);
  table.add_row({"cold one-shot CLI", std::to_string(kColdRequests), c1, "1x", "-"});
  std::snprintf(c1, sizeof c1, "%.2f", warm_rps);
  std::snprintf(c2, sizeof c2, "%.1fx", speedup);
  table.add_row(
      {"warm daemon", std::to_string(kWarmRequests), c1, c2, speedup >= 10.0 ? "yes" : "NO"});
  bench::print_table(table);

  if (speedup < 10.0) {
    std::printf("GATE FAILED: warm daemon throughput is %.1fx cold one-shot (< 10x)\n", speedup);
    std::exit(1);
  }
  std::printf("gate passed: warm daemon throughput is %.1fx cold one-shot (>= 10x)\n\n", speedup);
}

/// Timing section: the marginal cost of one warm request by action.
void run_warm_request_bench(benchmark::State& state, const char* action) {
  pipeline::PlanCache cache(16);
  serve::ServerConfig config;
  config.listen = "unix:/tmp/bitlevel-bench-serve-bm-" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
  config.workers = 2;
  config.cache = &cache;
  serve::Server server(std::move(config));
  server.bind_and_listen();
  std::thread daemon([&] { server.run(); });
  serve::Client client;
  client.connect(server.endpoint());
  const serve::ActionParams params = bench_params();
  client.roundtrip(serve::request_line(0, action, params));  // warm the cache
  std::int64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.roundtrip(serve::request_line(id++, action, params)));
  }
  state.SetItemsProcessed(state.iterations());
  client.close();
  server.shutdown();
  daemon.join();
}

void BM_ServeWarmSimulate(benchmark::State& state) {
  run_warm_request_bench(state, "simulate");
}
BENCHMARK(BM_ServeWarmSimulate)->Unit(benchmark::kMillisecond);

void BM_ServeWarmStats(benchmark::State& state) { run_warm_request_bench(state, "stats"); }
BENCHMARK(BM_ServeWarmStats)->Unit(benchmark::kMicrosecond);

}  // namespace

BITLEVEL_BENCH_MAIN(print_tables)
