// Automatic design-space exploration.
//
// Hand the explorer an algorithm and a link technology; it enumerates
// projection-based space mappings, searches schedules, keeps the
// Definition-4.1-feasible designs and ranks them by your objective.
// Shown here on word-level matmul (it rediscovers the classical u x u
// array) and on the bit-level 1-D chain (where it finds a p x p block
// design automatically).
//
// Build & run:  ./design_space_explorer
#include <cstdio>

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "mapping/explore.hpp"
#include "support/format.hpp"

using namespace bitlevel;

namespace {

void report(const char* title, const mapping::ExploreResult& result, std::size_t show) {
  std::printf("--- %s ---\n", title);
  std::printf("spaces tried: %zu, schedules examined: %zu, feasible designs: %zu\n",
              result.spaces_tried, result.schedules_examined, result.designs.size());
  TextTable table({"rank", "projections (columns)", "Pi", "time", "PEs", "max wire"});
  for (std::size_t i = 0; i < result.designs.size() && i < show; ++i) {
    const auto& d = result.designs[i];
    std::string dirs;
    for (std::size_t c = 0; c < d.projections.cols(); ++c) {
      if (c != 0) dirs += " ";
      dirs += math::to_string(d.projections.col(c));
    }
    table.add_row({std::to_string(i + 1), dirs, math::to_string(d.t.schedule()),
                   std::to_string(d.total_time), std::to_string(d.processors),
                   std::to_string(d.max_wire)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  // 1. Word-level matmul onto a mesh: three objectives, three winners.
  const auto triplet = ir::kernels::matmul(5).triplet();
  mapping::ExploreOptions options;
  options.max_direction_sets = 24;
  for (auto [objective, name] :
       {std::pair{mapping::DesignObjective::kTime, "word-level matmul, minimize TIME"},
        std::pair{mapping::DesignObjective::kProcessors,
                  "word-level matmul, minimize PROCESSORS"}}) {
    report(name, explore_designs(triplet.domain, triplet.deps,
                                 mapping::InterconnectionPrimitives::mesh2d(), objective,
                                 options),
           4);
  }

  // 2. A bit-level structure: the 1-D accumulation chain (3.7) at p = 4
  //    expands to 3-D; the explorer maps it onto 2-D arrays.
  const auto s = core::expand(ir::kernels::scalar_chain(1, 6, 1), 4, core::Expansion::kII);
  mapping::ExploreOptions bit_options;
  bit_options.max_direction_sets = 12;
  bit_options.schedule_bound = 2;
  report("bit-level 1-D chain (3.7), minimize TIME",
         explore_designs(s.domain, s.deps, mapping::InterconnectionPrimitives::mesh2d_diag(),
                         mapping::DesignObjective::kTime, bit_options),
         4);

  std::printf(
      "Each row is a complete verified design: S annihilates the projections, Pi orders\n"
      "every dependence, S*D routes over the links within (4.1), no (PE, time) conflicts.\n");
  return 0;
}
