// Word-level vs bit-level, head to head.
//
// Runs the same matrices through the best word-level array (with both
// PE multiplier models) and both bit-level arrays, printing a full
// comparison: cycles, processors, utilization, wiring, speedups — the
// Section 4.2 discussion as a single program.
//
// Build & run:  ./wordlevel_vs_bitlevel [u] [p]
#include <cstdio>
#include <cstdlib>

#include "arch/matmul_arrays.hpp"
#include "arch/word_array.hpp"
#include "core/evaluator.hpp"
#include "support/format.hpp"

using namespace bitlevel;

int main(int argc, char** argv) {
  const math::Int u = argc > 1 ? std::atoll(argv[1]) : 4;
  const math::Int p = argc > 2 ? std::atoll(argv[2]) : 6;
  std::printf("Z = X * Y with u = %lld, p = %lld\n\n", (long long)u, (long long)p);

  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const arch::WordMatrix x = arch::WordMatrix::random(u, bound, 21);
  const arch::WordMatrix y = arch::WordMatrix::random(u, bound, 22);
  const arch::WordMatrix ref = arch::WordMatrix::multiply_reference(x, y);

  TextTable table({"architecture", "cycles", "PEs", "PE kind", "max wire", "utilization",
                   "correct", "speedup vs slowest"});
  struct Row {
    std::string name, pe, wire;
    math::Int cycles, pes;
    double util;
    bool ok;
  };
  std::vector<Row> rows;

  for (auto kind : {arith::WordMultiplier::kAddShift, arith::WordMultiplier::kCarrySave}) {
    const arch::WordLevelMatmulArray word(u, kind, p);
    const auto run = word.multiply(x, y);
    rows.push_back({std::string("word-level [4], ") +
                        (kind == arith::WordMultiplier::kAddShift ? "add-shift PE"
                                                                  : "carry-save PE"),
                    "word MAC", "1", run.total_cycles, word.predicted_processors(),
                    run.beat_stats.pe_utilization, run.z == ref});
  }
  for (auto which : {arch::MatmulMapping::kFig5, arch::MatmulMapping::kFig4}) {
    const arch::BitLevelMatmulArray bit(which, u, p);
    const auto run = bit.multiply(x, y);
    rows.push_back({which == arch::MatmulMapping::kFig4 ? "bit-level Fig. 4 (time-optimal)"
                                                        : "bit-level Fig. 5 (short wires)",
                    "full adder",
                    std::to_string(arch::matmul_primitives(which, p).max_wire_length()),
                    run.stats.cycles, run.stats.pe_count, run.stats.pe_utilization,
                    run.z == ref});
  }

  math::Int slowest = 0;
  for (const auto& r : rows) slowest = std::max(slowest, r.cycles);
  for (const auto& r : rows) {
    char util[32], speed[32];
    std::snprintf(util, sizeof util, "%.3f", r.util);
    std::snprintf(speed, sizeof speed, "%.2fx",
                  static_cast<double>(slowest) / static_cast<double>(r.cycles));
    table.add_row({r.name, std::to_string(r.cycles), std::to_string(r.pes), r.pe, r.wire, util,
                   r.ok ? "yes" : "NO", speed});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "A bit in the Fig. 4 array moves on as soon as it is produced — it never waits for "
      "the rest of its word. That is the whole O(p) advantage.\n");
  return 0;
}
