// Streaming throughput and signed operands.
//
// Two production concerns the paper leaves implicit, both built on the
// unmodified Fig. 4 array:
//   1. problem pipelining — a new matmul enters every u cycles, so PE
//      utilization climbs from ~0.2 (single problem) toward 1;
//   2. two's-complement operands — handled by the bias identity with
//      three unsigned passes (product + two correction sums).
//
// Build & run:  ./streaming_and_signed
#include <cstdio>
#include <vector>

#include "arch/matmul_arrays.hpp"
#include "arch/signed_matmul.hpp"
#include "core/evaluator.hpp"
#include "support/format.hpp"

using namespace bitlevel;

int main() {
  const math::Int u = 4, p = 5;
  const arch::BitLevelMatmulArray array(arch::MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);

  // 1. Stream batches of independent products through one array.
  std::printf("streaming %lldx%lld matmuls through one Fig. 4 array (p = %lld):\n",
              (long long)u, (long long)u, (long long)p);
  TextTable table({"problems", "cycles", "cycles/problem", "utilization", "all correct"});
  for (math::Int batches : {1, 4, 12}) {
    std::vector<arch::WordMatrix> xs, ys;
    for (math::Int b = 0; b < batches; ++b) {
      xs.push_back(arch::WordMatrix::random(u, bound, 10 + static_cast<std::uint64_t>(b)));
      ys.push_back(arch::WordMatrix::random(u, bound, 20 + static_cast<std::uint64_t>(b)));
    }
    const auto run = array.multiply_batch(xs, ys);
    bool ok = true;
    for (std::size_t b = 0; b < xs.size(); ++b) {
      ok = ok && run.z[b] == arch::WordMatrix::multiply_reference(xs[b], ys[b]);
    }
    char per[32], util[32];
    std::snprintf(per, sizeof per, "%.2f",
                  static_cast<double>(run.stats.cycles) / static_cast<double>(batches));
    std::snprintf(util, sizeof util, "%.3f", run.stats.pe_utilization);
    table.add_row({std::to_string(batches), std::to_string(run.stats.cycles), per, util,
                   ok ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("initiation interval: %lld cycles\n\n",
              (long long)array.batch_initiation_interval());

  // 2. Signed operands on the same unsigned silicon.
  const math::Int w = 3;  // signed entries in [-4, 3]
  const arch::BitLevelMatmulArray wide(arch::MatmulMapping::kFig4, u, 8);
  const arch::SignedWordMatrix sx = arch::SignedWordMatrix::random(u, 3, 5);
  const arch::SignedWordMatrix sy = arch::SignedWordMatrix::random(u, 3, 6);
  const auto signed_run = arch::multiply_signed(wide, w, sx, sy);
  const bool ok = signed_run.z == arch::SignedWordMatrix::multiply_reference(sx, sy);
  std::printf("signed %lld-bit product (bias identity, %lld unsigned passes): %s\n",
              (long long)w, (long long)signed_run.passes, ok ? "correct" : "WRONG");
  std::printf("  Z[1][1] = %lld, Z[%lld][%lld] = %lld\n", (long long)signed_run.z.at(1, 1),
              (long long)u, (long long)u, (long long)signed_run.z.at(u, u));
  return ok ? 0 : 1;
}
