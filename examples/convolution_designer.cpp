// Designing a bit-level convolver from scratch.
//
// The paper's method is not matmul-specific: any kernel of model (3.5)
// expands. This example takes 1-D convolution, composes its 4-D
// bit-level structure, *searches* for a time-optimal schedule over a
// compact p x p space mapping (weights and samples resident, one block
// processing the whole stream), verifies Definition 4.1, and runs the
// resulting array on real data.
//
// Build & run:  ./convolution_designer
#include <cstdio>
#include <vector>

#include "arch/bit_array.hpp"
#include "core/expansion.hpp"
#include "core/evaluator.hpp"
#include "ir/kernels.hpp"
#include "mapping/search.hpp"
#include "support/rng.hpp"

using namespace bitlevel;

int main() {
  const math::Int n = 6;  // output samples
  const math::Int k = 3;  // filter taps
  const math::Int p = 4;  // operand bits

  // 1. Word-level convolution: x pipelined along [1,-1] (the signal),
  //    y along [1,0] (the taps), accumulation along [0,1].
  const ir::WordLevelModel model = ir::kernels::convolution1d(n, k);
  const core::BitLevelStructure s = core::expand(model, p, core::Expansion::kII);
  std::printf("bit-level convolution structure (%lld index points):\n%s\n",
              (long long)s.domain.size(), s.deps.to_string(s.coord_names).c_str());

  // 2. Pick a compact space mapping: PE = (i1, i2) — a single p x p
  //    block that processes the whole (j1, j2) stream; taps and signal
  //    stay resident (S maps their flows to the zero displacement).
  const math::IntMat space{{0, 0, 1, 0}, {0, 0, 0, 1}};
  mapping::ScheduleSearchOptions options;
  options.coefficient_bound = 3;
  options.keep = 5;
  const auto prims = mapping::InterconnectionPrimitives::mesh2d_diag();
  const auto found = mapping::search_schedules(s.domain, s.deps, space, prims, options);
  if (found.feasible.empty()) {
    std::printf("no feasible schedule found\n");
    return 1;
  }
  std::printf("schedule search (%zu candidates examined), best 5:\n", found.examined);
  for (const auto& cand : found.feasible) {
    std::printf("  Pi = %s  -> total time %lld\n", math::to_string(cand.pi).c_str(),
                (long long)cand.total_time);
  }

  // 3. Build and run the array with the best schedule.
  const mapping::MappingMatrix t(space, found.feasible.front().pi);
  const arch::BitLevelArray array(s, t, prims);

  // Signal samples and taps; capacity bound for chains of length k.
  const std::uint64_t bound = core::max_safe_operand(p, k, core::Expansion::kII);
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> signal(static_cast<std::size_t>(n + k - 1));
  std::vector<std::uint64_t> taps(static_cast<std::size_t>(k));
  for (auto& v : signal) v = rng() % (bound + 1);
  for (auto& v : taps) v = rng() % (bound + 1);

  // Model semantics: x(j1, j2) = signal[j1 + j2 - 1] (constant along
  // [1,-1]); y(j1, j2) = taps[j2] (constant along [1,0]); the chain end
  // j2 = k holds z(j1) = sum_j2 signal[j1+j2-1] * taps[j2].
  const auto result = array.run(
      [&](const math::IntVec& j) { return signal[static_cast<std::size_t>(j[0] + j[1] - 2)]; },
      [&](const math::IntVec& j) { return taps[static_cast<std::size_t>(j[1] - 1)]; });

  bool ok = true;
  std::printf("\nz (array vs reference):\n");
  for (math::Int j1 = 1; j1 <= n; ++j1) {
    std::uint64_t ref = 0;
    for (math::Int j2 = 1; j2 <= k; ++j2) {
      ref += signal[static_cast<std::size_t>(j1 + j2 - 2)] * taps[static_cast<std::size_t>(j2 - 1)];
    }
    const std::uint64_t got = result.z.at(math::IntVec{j1, k});
    ok = ok && got == ref;
    std::printf("  z[%lld] = %llu (reference %llu)\n", (long long)j1,
                (unsigned long long)got, (unsigned long long)ref);
  }
  std::printf("\ncorrect: %s\n%s\n", ok ? "yes" : "NO", result.stats.to_string().c_str());
  std::printf("the whole stream ran on a single %lld x %lld bit-cell block\n", (long long)p,
              (long long)p);
  return ok ? 0 : 1;
}
