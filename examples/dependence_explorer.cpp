// The dependence-analysis toolbox, end to end.
//
// Starts from the raw matmul program (2.2) with broadcasts, eliminates
// them (Fortes-Moldovan) to recover the pipelined model (2.3), then
// runs all three analysis backends — GCD screen, Banerjee bounds, exact
// Diophantine — on a reference pair, and finishes with the Theorem 3.1
// composition and its trace validation.
//
// Build & run:  ./dependence_explorer
#include <cstdio>

#include "analysis/banerjee.hpp"
#include "analysis/exact.hpp"
#include "analysis/gcd_test.hpp"
#include "analysis/trace.hpp"
#include "core/verify.hpp"
#include "ir/kernels.hpp"
#include "ir/pipelining.hpp"

using namespace bitlevel;

int main() {
  const math::Int u = 4;

  // 0. The raw accumulation (2.1): z(j1, j2) written u times, so anti
  //    and output dependences exist — eliminated by single-assignment
  //    conversion (Example 2.1's transformation).
  const ir::Program program21 = ir::kernels::matmul_raw_program(u);
  const analysis::FullTrace full = analysis::trace_all_dependences(program21);
  std::printf("program (2.1): %s\n", program21.statements[0].label.c_str());
  std::printf("  flow %zu, anti %zu, output %zu dependence instances\n", full.flow.size(),
              full.anti.size(), full.output.size());
  const auto expanded = ir::expand_accumulation(program21);
  if (!expanded) {
    std::printf("single-assignment conversion failed\n");
    return 1;
  }
  const analysis::FullTrace after = analysis::trace_all_dependences(*expanded);
  std::printf("after expand_accumulation (2.2): flow %zu, anti %zu, output %zu\n\n",
              after.flow.size(), after.anti.size(), after.output.size());

  // 1. Broadcast detection & elimination: (2.2) -> (2.3).
  const ir::Program raw = *expanded;
  std::printf("program (2.2): %s\n", raw.statements[0].label.c_str());
  for (const auto& b : ir::find_broadcasts(raw)) {
    std::printf("  broadcast read of '%s'; pipelining direction %s\n", b.array.c_str(),
                math::to_string(b.pipelining_dir).c_str());
  }
  const auto model = ir::pipeline_accumulation_program(raw);
  if (!model) {
    std::printf("pipelining failed\n");
    return 1;
  }
  std::printf("pipelined model (2.3): h1 = %s, h2 = %s, h3 = %s\n\n",
              math::to_string(*model->h1).c_str(), math::to_string(*model->h2).c_str(),
              math::to_string(*model->h3).c_str());

  // 2. The classical test pipeline on one reference pair: does the z
  //    write at j reach the z read at j'?
  const ir::Program prog = model->access_program();
  const auto& z_stmt = prog.statements.back();
  const analysis::DependenceSystem sys =
      analysis::dependence_system(z_stmt.write.subscript, z_stmt.reads[0].subscript);
  std::printf("combined system [A_w | -A_r][j; j'] = b:\n%s\nb = %s\n", sys.a.to_string().c_str(),
              math::to_string(sys.b).c_str());
  std::printf("GCD test:      %s\n", analysis::gcd_test(sys) ? "maybe" : "independent");
  const math::IntVec lo = math::concat(prog.domain.lower(), prog.domain.lower());
  const math::IntVec hi = math::concat(prog.domain.upper(), prog.domain.upper());
  std::printf("Banerjee test: %s\n",
              analysis::banerjee_test(sys, lo, hi) ? "maybe" : "independent");
  const auto exact = analysis::exact_pair_dependences(prog.domain, "z", z_stmt.write.subscript,
                                                      z_stmt.reads[0].subscript, true);
  std::printf("exact test:    %zu flow instances, e.g. %s <- %s\n\n", exact.size(),
              math::to_string(exact.front().consumer).c_str(),
              math::to_string(exact.front().producer).c_str());

  // 3. Whole-program summaries agree between the exact and trace
  //    backends.
  const auto summary =
      analysis::DependenceSummary::from_instances(analysis::trace_dependences(prog));
  std::printf("distinct word-level distance vectors (trace):\n%s\n", summary.to_string().c_str());

  // 4. Theorem 3.1 at the bit level, validated against ground truth.
  for (auto e : {core::Expansion::kI, core::Expansion::kII}) {
    const auto report = core::verify_expansion(*model, 3, e);
    std::printf("%s: %zu traced edges, composition %s\n", core::to_string(e).c_str(),
                report.traced_edges, report.ok() ? "EXACT" : "MISMATCH");
  }
  return 0;
}
