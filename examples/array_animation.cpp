// Watch the architectures run.
//
// Renders the space-time behaviour of the paper's arrays as ASCII: the
// Fig. 4 mapping's computation wavefront sweeping the u*p x u*p grid,
// and the contrast with Fig. 5's slower schedule. The pictures are pure
// functions of (J, T) — the same data the cycle-accurate simulator
// executes.
//
// Build & run:  ./array_animation
#include <cstdio>

#include "arch/matmul_arrays.hpp"
#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "sim/timeline.hpp"

using namespace bitlevel;

int main() {
  const math::Int u = 2, p = 3;
  const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);

  std::printf("=== Fig. 4 mapping (time-optimal, T of 4.2) — %lldx%lld PEs ===\n",
              (long long)(u * p), (long long)(u * p));
  const auto t4 = arch::matmul_mapping(arch::MatmulMapping::kFig4, p);
  std::printf("%s\n", sim::cycle_snapshots(s.domain, t4).c_str());

  std::printf("=== Same array as a PE x cycle chart ===\n");
  sim::TimelineOptions chart_options;
  chart_options.max_pes = 40;
  std::printf("%s\n", sim::activity_chart(s.domain, t4, chart_options).c_str());

  std::printf("=== Fig. 5 mapping (short wires, T' of 4.6) — slower wavefront ===\n");
  const auto t5 = arch::matmul_mapping(arch::MatmulMapping::kFig5, p);
  sim::TimelineOptions snap_options;
  snap_options.max_cycles = 8;
  std::printf("%s...\n", sim::cycle_snapshots(s.domain, t5, snap_options).c_str());
  return 0;
}
