// Quickstart: the full pipeline on matrix multiplication.
//
//   word-level model (2.3)  --Theorem 3.1-->  bit-level structure
//   --Definition 4.1-->  feasible mapping  --simulator-->  verified
//   products in the predicted number of cycles.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "arch/matmul_arrays.hpp"
#include "core/expansion.hpp"
#include "core/evaluator.hpp"
#include "ir/kernels.hpp"
#include "mapping/feasibility.hpp"

using namespace bitlevel;

int main() {
  const math::Int u = 3;  // 3 x 3 matrices
  const math::Int p = 4;  // 4-bit operands

  // 1. The word-level algorithm: matmul in the pipelined form (2.3).
  const ir::WordLevelModel model = ir::kernels::matmul(u);
  std::printf("word-level triplet (J_w, D_w, E_w):\n%s\n", model.triplet().to_string().c_str());

  // 2. Theorem 3.1: compose the bit-level dependence structure without
  //    any general dependence analysis.
  const core::BitLevelStructure s = core::expand(model, p, core::Expansion::kII);
  std::printf("%s\n", s.to_string().c_str());

  // 3. The published time-optimal mapping (4.2) and its array.
  const arch::BitLevelMatmulArray array(arch::MatmulMapping::kFig4, u, p);
  std::printf("mapping T (4.2):\n%s\n\n", array.array().t().to_string().c_str());
  std::printf("wiring (the textual Fig. 4):\n%s\n",
              mapping::describe_routing(s.deps, array.array().t(),
                                        arch::matmul_primitives(arch::MatmulMapping::kFig4, p),
                                        array.array().k())
                  .c_str());

  // 4. Run real data through the cycle-accurate simulator.
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const arch::WordMatrix x = arch::WordMatrix::random(u, bound, 1);
  const arch::WordMatrix y = arch::WordMatrix::random(u, bound, 2);
  const arch::MatmulRunResult run = array.multiply(x, y);

  std::printf("Z = X * Y on the array:\n");
  for (math::Int i = 1; i <= u; ++i) {
    for (math::Int j = 1; j <= u; ++j) std::printf("%6llu", (unsigned long long)run.z.at(i, j));
    std::printf("\n");
  }
  const bool ok = run.z == arch::WordMatrix::multiply_reference(x, y);
  std::printf("\ncorrect: %s\ncycles: %lld (predicted %lld)\nPEs: %lld (predicted %lld)\n%s\n",
              ok ? "yes" : "NO", (long long)run.stats.cycles,
              (long long)array.predicted_cycles(), (long long)run.stats.pe_count,
              (long long)array.predicted_processors(), run.stats.to_string().c_str());
  return ok ? 0 : 1;
}
