// The generic array builder is expansion-agnostic: the same mapping T of
// (4.2) is feasible for the Expansion I structure (identical distance
// vectors, different validity regions), and the array computes correct
// products under Expansion I's capacity regime. The cell bodies differ
// (Expansion I needs the 4/5-input compressors only on the accumulation
// boundary), which is the area trade-off E2 quantifies.
#include <gtest/gtest.h>

#include "arch/bit_array.hpp"
#include "arch/matmul_arrays.hpp"
#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

using arch::BitLevelArray;
using arch::WordMatrix;
using core::Expansion;

struct Size {
  math::Int u, p;
};

class ExpansionIArrayTest : public ::testing::TestWithParam<Size> {};

TEST_P(ExpansionIArrayTest, Fig4MappingRunsExpansionI) {
  const auto [u, p] = GetParam();
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kI);
  const BitLevelArray array(s, arch::matmul_mapping(arch::MatmulMapping::kFig4, p),
                            arch::matmul_primitives(arch::MatmulMapping::kFig4, p));

  const std::uint64_t bound = core::max_safe_operand(p, u, Expansion::kI);
  ASSERT_GE(bound, 1u) << "pick p large enough for the chain length";
  const WordMatrix x = WordMatrix::random(u, bound, 31);
  const WordMatrix y = WordMatrix::random(u, bound, 32);
  const auto result = array.run([&](const math::IntVec& j) { return x.at(j[0], j[2]); },
                                [&](const math::IntVec& j) { return y.at(j[2], j[1]); });

  const WordMatrix ref = WordMatrix::multiply_reference(x, y);
  for (math::Int i = 1; i <= u; ++i) {
    for (math::Int j = 1; j <= u; ++j) {
      EXPECT_EQ(result.z.at(math::IntVec{i, j, u}), ref.at(i, j));
    }
  }
  // Same mapping, same index set: identical total time and PE count as
  // the Expansion II array — the expansions trade cell complexity, not
  // schedule length, under a common linear schedule.
  EXPECT_EQ(result.stats.cycles, 3 * (u - 1) + 3 * (p - 1) + 1);
  EXPECT_EQ(result.stats.pe_count, u * u * p * p);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExpansionIArrayTest,
                         ::testing::Values(Size{2, 5}, Size{3, 6}, Size{4, 7}),
                         [](const ::testing::TestParamInfo<Size>& info) {
                           return "u" + std::to_string(info.param.u) + "_p" +
                                  std::to_string(info.param.p);
                         });

TEST(ExpansionIArrayTest, Fig5MappingAlsoRunsExpansionI) {
  const math::Int u = 2, p = 5;
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kI);
  const BitLevelArray array(s, arch::matmul_mapping(arch::MatmulMapping::kFig5, p),
                            arch::matmul_primitives(arch::MatmulMapping::kFig5, p));
  const std::uint64_t bound = core::max_safe_operand(p, u, Expansion::kI);
  const WordMatrix x = WordMatrix::random(u, bound, 41);
  const WordMatrix y = WordMatrix::random(u, bound, 42);
  const auto result = array.run([&](const math::IntVec& j) { return x.at(j[0], j[2]); },
                                [&](const math::IntVec& j) { return y.at(j[2], j[1]); });
  const WordMatrix ref = WordMatrix::multiply_reference(x, y);
  for (math::Int i = 1; i <= u; ++i) {
    for (math::Int j = 1; j <= u; ++j) {
      EXPECT_EQ(result.z.at(math::IntVec{i, j, u}), ref.at(i, j));
    }
  }
  EXPECT_EQ(result.stats.cycles, (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1);
}

TEST(ExpansionIArrayTest, CapacityViolationThrows) {
  const math::Int u = 4, p = 4;
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kI);
  const BitLevelArray array(s, arch::matmul_mapping(arch::MatmulMapping::kFig4, p),
                            arch::matmul_primitives(arch::MatmulMapping::kFig4, p));
  // Chains of 4 operands of magnitude 7 exceed sum x <= 2^(p-1)-1 = 7.
  EXPECT_THROW(array.run([](const math::IntVec&) { return 7ULL; },
                         [](const math::IntVec&) { return 15ULL; }),
               OverflowError);
}

}  // namespace
}  // namespace bitlevel
