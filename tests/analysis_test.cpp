// Dependence-analysis backends: GCD and Banerjee screens, the exact
// Diophantine test, trace replay, and their mutual consistency.
#include <gtest/gtest.h>

#include <set>

#include "analysis/banerjee.hpp"
#include "analysis/classify.hpp"
#include "analysis/exact.hpp"
#include "analysis/gcd_test.hpp"
#include "analysis/trace.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel::analysis {
namespace {

using ir::AffineMap;

TEST(GcdTest, SingleEquation) {
  EXPECT_TRUE(gcd_test_equation({2, 4}, 6));
  EXPECT_FALSE(gcd_test_equation({2, 4}, 7));
  EXPECT_TRUE(gcd_test_equation({3, 5}, 1));  // coprime: always possible
  EXPECT_TRUE(gcd_test_equation({0, 0}, 0));
  EXPECT_FALSE(gcd_test_equation({0, 0}, 3));
}

TEST(GcdTest, SystemConstruction) {
  // write a(2j), read a(2j'+1): 2j - 2j' = 1 — never.
  const AffineMap w(math::IntMat{{2}}, {0});
  const AffineMap r(math::IntMat{{2}}, {1});
  const DependenceSystem sys = dependence_system(w, r);
  EXPECT_EQ(sys.a, (math::IntMat{{2, -2}}));
  EXPECT_EQ(sys.b, (math::IntVec{1}));
  EXPECT_FALSE(gcd_test(sys));
}

TEST(BanerjeeTest, RangeBounds) {
  const ExpressionRange r = expression_range({2, -3}, {0, 0}, {5, 4});
  EXPECT_EQ(r.min, -12);
  EXPECT_EQ(r.max, 10);
  EXPECT_TRUE(banerjee_test_equation({2, -3}, 0, {0, 0}, {5, 4}));
  EXPECT_FALSE(banerjee_test_equation({2, -3}, 11, {0, 0}, {5, 4}));
}

TEST(BanerjeeTest, RefinesGcd) {
  // j - j' = 100 passes the GCD test (gcd 1) but fails Banerjee for
  // loops of extent 10.
  const AffineMap w(math::IntMat{{1}}, {0});
  const AffineMap r(math::IntMat{{1}}, {-100});
  const DependenceSystem sys = dependence_system(w, r);
  EXPECT_TRUE(gcd_test(sys));
  EXPECT_FALSE(banerjee_test(sys, {1, 1}, {10, 10}));
}

TEST(TraceTest, MatmulWordLevelDependences) {
  const auto prog = ir::kernels::matmul(3).access_program();
  const auto trace = trace_dependences(prog);
  const auto summary = DependenceSummary::from_instances(trace);
  // Exactly the three uniform vectors of (2.4).
  const auto vectors = summary.distance_vectors();
  EXPECT_EQ(vectors, (std::vector<math::IntVec>{{0, 0, 1}, {0, 1, 0}, {1, 0, 0}}));
}

TEST(TraceTest, MatchesDeclaredStructure) {
  const auto model = ir::kernels::convolution1d(5, 3);
  const auto trace = trace_dependences(model.access_program());
  const auto triplet = model.triplet();
  const MatchReport report = match_structure(triplet.deps, triplet.domain, trace);
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(TraceTest, SingleAssignmentEnforced) {
  // z(j1) written u times: not single assignment.
  ir::Program prog{ir::IndexSet::cube(2, 3),
                   {{{"z", AffineMap::select(2, {0})}, {}, "z(j1) = ..."}}};
  EXPECT_THROW(trace_dependences(prog), PreconditionError);
  TraceOptions relaxed;
  relaxed.require_single_assignment = false;
  EXPECT_NO_THROW(trace_dependences(prog, relaxed));
}

TEST(TraceTest, GuardsRestrictAccesses) {
  // A read active only at j1 == 3 produces edges only there.
  const AffineMap id = AffineMap::identity(1);
  ir::Program prog{ir::IndexSet({1}, {5}),
                   {{{"a", id},
                     {{"a", AffineMap::translate({-1}), ir::ValidityRegion::coord_eq(0, 3)}},
                     "a(j) = guarded"}}};
  const auto trace = trace_dependences(prog);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].consumer, (math::IntVec{3}));
  EXPECT_EQ(trace[0].producer, (math::IntVec{2}));
}

TEST(ExactTest, AgreesWithTraceOnKernels) {
  for (const auto& model :
       {ir::kernels::matmul(3), ir::kernels::convolution1d(4, 3), ir::kernels::matvec(3, 3)}) {
    const auto prog = model.access_program();
    const auto traced = trace_dependences(prog);
    const auto exact = exact_dependences(prog);
    const std::set<DependenceInstance> a(traced.begin(), traced.end());
    const std::set<DependenceInstance> b(exact.begin(), exact.end());
    EXPECT_EQ(a, b) << model.name;
  }
}

TEST(ExactTest, StatsCountWork) {
  ExactAnalysisStats stats;
  const auto prog = ir::kernels::matmul(2).access_program();
  exact_dependences(prog, &stats);
  EXPECT_GT(stats.systems_solved, 0u);
  EXPECT_GT(stats.solutions_enumerated, 0u);
}

TEST(ExactTest, PairOrderingFiltersIntraIteration) {
  // Statement reads the element it writes, same iteration: the read
  // precedes the write, so no intra-iteration flow.
  const AffineMap id = AffineMap::identity(1);
  const auto deps = exact_pair_dependences(ir::IndexSet({1}, {4}), "a", id, id,
                                           /*write_first=*/false);
  EXPECT_TRUE(deps.empty());
  // With the writer in an earlier statement, same-iteration flow exists.
  const auto deps2 =
      exact_pair_dependences(ir::IndexSet({1}, {4}), "a", id, id, /*write_first=*/true);
  EXPECT_EQ(deps2.size(), 4u);
  for (const auto& d : deps2) EXPECT_EQ(d.consumer, d.producer);
}

TEST(SummaryTest, CollapsesAndDropsZeroDistances) {
  std::vector<DependenceInstance> instances{
      {"a", {2, 1}, {1, 1}},
      {"a", {3, 1}, {2, 1}},
      {"b", {2, 2}, {1, 2}},
      {"b", {2, 2}, {2, 2}},  // zero distance: dropped
  };
  const auto summary = DependenceSummary::from_instances(instances);
  ASSERT_EQ(summary.entries.size(), 1u);
  EXPECT_EQ(summary.entries[0].d, (math::IntVec{1, 0}));
  EXPECT_EQ(summary.entries[0].consumers.size(), 3u);
  EXPECT_EQ(summary.entries[0].arrays.size(), 2u);
}

TEST(ClassifyTest, DirectionsAndLevels) {
  EXPECT_EQ(to_string(direction_vector({1, 0, -1})), "(<, =, >)");
  EXPECT_EQ(dependence_level({0, 0, 1}), 3u);
  EXPECT_EQ(dependence_level({2, -1}), 1u);
  EXPECT_EQ(dependence_level({0, 0}), 0u);
}

TEST(ClassifyTest, MatmulParallelLoops) {
  // Word-level matmul carries dependences at levels 1 (y), 2 (x) and
  // 3 (z): no loop is fully parallel without further transformation.
  const auto t = ir::kernels::matmul(3).triplet();
  EXPECT_TRUE(parallel_loops(t.deps).empty());
  // Drop the accumulation: j3 becomes parallel.
  ir::DependenceMatrix no_z;
  no_z.add({{0, 1, 0}, "x", ir::ValidityRegion::all()});
  no_z.add({{1, 0, 0}, "y", ir::ValidityRegion::all()});
  EXPECT_EQ(parallel_loops(no_z), (std::vector<std::size_t>{3}));
}

TEST(MatchTest, DetectsMissingAndSpurious) {
  const ir::IndexSet domain({1}, {3});
  ir::DependenceMatrix deps;
  deps.add({{1}, "a", ir::ValidityRegion::all()});
  // Trace with an edge the structure does not predict (distance 2).
  std::vector<DependenceInstance> trace{{"a", {2}, {1}}, {"a", {3}, {2}}, {"a", {3}, {1}}};
  const auto report = match_structure(deps, domain, trace);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.missing.size(), 1u);   // the distance-2 edge
  EXPECT_TRUE(report.spurious.empty());

  // Trace missing a predicted edge.
  std::vector<DependenceInstance> partial{{"a", {2}, {1}}};
  const auto report2 = match_structure(deps, domain, partial);
  EXPECT_FALSE(report2.ok);
  EXPECT_EQ(report2.spurious.size(), 1u);  // predicted (3 <- 2) not traced
}

}  // namespace
}  // namespace bitlevel::analysis
