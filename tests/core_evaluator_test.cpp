// Functional correctness of the bit-level evaluator: the paper-exact
// grids compute the same accumulated products as plain word arithmetic,
// for both expansions, across kernels, widths and random operands.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace bitlevel {
namespace {

using core::Expansion;

/// Random operand tables over the word-level domain, bounded by the
/// capacity precondition.
struct Workload {
  std::map<math::IntVec, std::uint64_t> x, y;
  core::OperandFn x_fn() const {
    return [this](const math::IntVec& j) { return x.at(j); };
  }
  core::OperandFn y_fn() const {
    return [this](const math::IntVec& j) { return y.at(j); };
  }
};

Workload random_workload(const ir::WordLevelModel& m, math::Int p, Expansion e,
                         std::uint64_t seed) {
  const std::uint64_t bound = core::max_safe_operand(p, core::max_chain_length(m), e);
  Xoshiro256 rng(seed);
  Workload w;
  m.domain.for_each([&](const math::IntVec& j) {
    w.x[j] = rng() % (bound + 1);
    w.y[j] = rng() % (bound + 1);
    return true;
  });
  return w;
}

struct Case {
  std::string name;
  ir::WordLevelModel model;
  math::Int p;
  Expansion expansion;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (Expansion e : {Expansion::kI, Expansion::kII}) {
    const char* tag = e == Expansion::kI ? "expI" : "expII";
    for (math::Int p : {3, 5, 8}) {
      cases.push_back({"scalar_u6_p" + std::to_string(p) + "_" + tag,
                       ir::kernels::scalar_chain(1, 6, 1), p, e});
      cases.push_back({"matmul_u3_p" + std::to_string(p) + "_" + tag, ir::kernels::matmul(3), p,
                       e});
    }
    cases.push_back({std::string("conv_n6_k3_p6_") + tag, ir::kernels::convolution1d(6, 3), 6, e});
    cases.push_back({std::string("matvec_4x3_p7_") + tag, ir::kernels::matvec(4, 3), 7, e});
  }
  return cases;
}

class EvaluatorTest : public ::testing::TestWithParam<Case> {};

TEST_P(EvaluatorTest, MatchesWordReference) {
  const Case& c = GetParam();
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const Workload w = random_workload(c.model, c.p, c.expansion, seed);
    const auto s = core::expand(c.model, c.p, c.expansion);
    const auto got = core::evaluate_bitlevel(s, w.x_fn(), w.y_fn());
    const auto ref = core::evaluate_word_reference(c.model, w.x_fn(), w.y_fn());
    ASSERT_FALSE(got.z.empty());
    for (const auto& [j, value] : got.z) {
      EXPECT_EQ(value, ref.at(j)) << "at " << math::to_string(j) << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, EvaluatorTest, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

// Expansion I materializes z only at chain ends; Expansion II everywhere.
TEST(EvaluatorTest, MaterializationPoints) {
  const auto m = ir::kernels::matmul(3);
  Workload w = random_workload(m, 4, Expansion::kI, 3);
  const auto rI = core::evaluate_bitlevel(core::expand(m, 4, Expansion::kI), w.x_fn(), w.y_fn());
  EXPECT_EQ(rI.z.size(), 9u);  // u^2 chain-end points (j3 = u)
  w = random_workload(m, 4, Expansion::kII, 3);
  const auto rII = core::evaluate_bitlevel(core::expand(m, 4, Expansion::kII), w.x_fn(), w.y_fn());
  EXPECT_EQ(rII.z.size(), 27u);  // every point
}

// Overflowing operands must raise, never silently truncate.
TEST(EvaluatorTest, ExpansionIRowOverflowThrows) {
  const auto m = ir::kernels::scalar_chain(1, 8, 1);
  const auto s = core::expand(m, 4, Expansion::kI);
  // Eight full-magnitude operands grossly exceed the 2^(p-1)-1 row sum.
  const core::OperandFn full = [](const math::IntVec&) { return 15ULL; };
  EXPECT_THROW(core::evaluate_bitlevel(s, full, full), OverflowError);
}

TEST(EvaluatorTest, ExpansionIIReinjectOverflowThrows) {
  const auto m = ir::kernels::scalar_chain(1, 8, 1);
  const auto s = core::expand(m, 3, Expansion::kII);
  const core::OperandFn mid = [](const math::IntVec&) { return 3ULL; };  // 8 * 9 = 72 >= 2^5
  EXPECT_THROW(core::evaluate_bitlevel(s, mid, mid), OverflowError);
}

TEST(EvaluatorTest, MaxSafeOperandIsSafeAndTight) {
  // The documented bound must pass; doubling it must eventually fail.
  const auto m = ir::kernels::scalar_chain(1, 6, 1);
  for (Expansion e : {Expansion::kI, Expansion::kII}) {
    const math::Int p = 6;
    const std::uint64_t bound = core::max_safe_operand(p, 6, e);
    ASSERT_GE(bound, 1u);
    const auto s = core::expand(m, p, e);
    const core::OperandFn at_bound = [&](const math::IntVec&) { return bound; };
    EXPECT_NO_THROW(core::evaluate_bitlevel(s, at_bound, at_bound));
  }
}

TEST(EvaluatorTest, ChainLengths) {
  EXPECT_EQ(core::max_chain_length(ir::kernels::matmul(5)), 5);
  EXPECT_EQ(core::max_chain_length(ir::kernels::convolution1d(9, 4)), 4);
  EXPECT_EQ(core::max_chain_length(ir::kernels::scalar_chain(1, 7, 2)), 4);
}

}  // namespace
}  // namespace bitlevel
