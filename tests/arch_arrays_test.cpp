// Cycle-accurate architecture tests: the Fig. 4 and Fig. 5 bit-level
// arrays and the word-level baseline compute correct products, in
// exactly the predicted number of cycles, on the predicted number of
// processors.
#include <gtest/gtest.h>

#include "arch/matmul_arrays.hpp"
#include "arch/word_array.hpp"
#include "core/evaluator.hpp"
#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

using arch::BitLevelMatmulArray;
using arch::MatmulMapping;
using arch::WordLevelMatmulArray;
using arch::WordMatrix;

struct Case {
  MatmulMapping which;
  math::Int u;
  math::Int p;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.which == MatmulMapping::kFig4 ? "fig4" : "fig5") + "_u" +
         std::to_string(info.param.u) + "_p" + std::to_string(info.param.p);
}

class MatmulArrayTest : public ::testing::TestWithParam<Case> {};

TEST_P(MatmulArrayTest, ComputesCorrectProducts) {
  const auto [which, u, p] = GetParam();
  const BitLevelMatmulArray array(which, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  for (std::uint64_t seed : {11ULL, 23ULL}) {
    const WordMatrix x = WordMatrix::random(u, bound, seed);
    const WordMatrix y = WordMatrix::random(u, bound, seed + 1);
    const auto result = array.multiply(x, y);
    EXPECT_EQ(result.z, WordMatrix::multiply_reference(x, y)) << "seed " << seed;
  }
}

TEST_P(MatmulArrayTest, MatchesPredictedCyclesAndProcessors) {
  const auto [which, u, p] = GetParam();
  const BitLevelMatmulArray array(which, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const auto result = array.multiply(WordMatrix::random(u, bound, 5),
                                     WordMatrix::random(u, bound, 6));
  EXPECT_EQ(result.stats.cycles, array.predicted_cycles());
  EXPECT_EQ(result.stats.pe_count, array.predicted_processors());
  EXPECT_EQ(result.stats.computations, u * u * u * p * p);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulArrayTest,
                         ::testing::Values(Case{MatmulMapping::kFig4, 2, 3},
                                           Case{MatmulMapping::kFig4, 3, 3},
                                           Case{MatmulMapping::kFig4, 4, 4},
                                           Case{MatmulMapping::kFig4, 3, 5},
                                           Case{MatmulMapping::kFig5, 2, 3},
                                           Case{MatmulMapping::kFig5, 3, 3},
                                           Case{MatmulMapping::kFig5, 4, 4},
                                           Case{MatmulMapping::kFig5, 3, 5}),
                         case_name);

// The array agrees bit-for-bit with the standalone functional evaluator.
TEST(MatmulArrayTest, AgreesWithEvaluator) {
  const math::Int u = 3, p = 4;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const std::uint64_t bound = core::max_safe_operand(p, u, core::Expansion::kII);
  const WordMatrix x = WordMatrix::random(u, bound, 77);
  const WordMatrix y = WordMatrix::random(u, bound, 78);
  const auto via_array = array.multiply(x, y);

  const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
  const auto via_eval = core::evaluate_bitlevel(
      s, [&](const math::IntVec& j) { return x.at(j[0], j[2]); },
      [&](const math::IntVec& j) { return y.at(j[2], j[1]); });
  for (math::Int i = 1; i <= u; ++i) {
    for (math::Int j = 1; j <= u; ++j) {
      EXPECT_EQ(via_array.z.at(i, j), via_eval.z.at(math::IntVec{i, j, u}));
    }
  }
}

// The paper's buffer remark: under T of (4.2), d4 has slack Pi*d4 -
// hops = 2 - 1 = 1, i.e. one buffer register on the [1,0] link; every
// other column is slack-free.
TEST(MatmulArrayTest, Fig4BufferDepths) {
  const BitLevelMatmulArray array(MatmulMapping::kFig4, 2, 3);
  const std::uint64_t bound = core::max_safe_operand(3, 2, core::Expansion::kII);
  const auto result = array.multiply(WordMatrix::random(2, bound, 1),
                                     WordMatrix::random(2, bound, 2));
  // Columns: x, y, z, d4, d5, d6, d7. d4 is the paper's buffered link;
  // d3 (z) is stationary — S*d3 = 0, so its slack 1 is the local
  // accumulator register, not a wire buffer.
  ASSERT_EQ(result.stats.buffer_depth.size(), 7u);
  EXPECT_EQ(result.stats.buffer_depth[3], 1);  // d4: buffer on [1,0]
  EXPECT_EQ(result.stats.buffer_depth[2], 1);  // d3: stationary register
  for (std::size_t i : {0u, 1u, 4u, 5u, 6u}) {
    EXPECT_EQ(result.stats.buffer_depth[i], 0) << "column " << i;
  }
}

// Overfull operands must be rejected, not silently wrong.
TEST(MatmulArrayTest, CapacityViolationThrows) {
  const math::Int u = 3, p = 3;
  const BitLevelMatmulArray array(MatmulMapping::kFig4, u, p);
  const WordMatrix full(u, 7);  // all entries 2^p - 1
  EXPECT_THROW(array.multiply(full, full), OverflowError);
}

TEST(WordArrayTest, BaselineComputesAndTimes) {
  for (const auto kind : {arith::WordMultiplier::kAddShift, arith::WordMultiplier::kCarrySave}) {
    const math::Int u = 4, p = 8;
    const WordLevelMatmulArray array(u, kind, p);
    const WordMatrix x = WordMatrix::random(u, 255, 3);
    const WordMatrix y = WordMatrix::random(u, 255, 4);
    const auto result = array.multiply(x, y);
    EXPECT_EQ(result.z, WordMatrix::multiply_reference(x, y));
    EXPECT_EQ(result.beat_stats.cycles, 3 * (u - 1) + 1);
    EXPECT_EQ(result.beat_stats.pe_count, u * u);
    EXPECT_EQ(result.total_cycles, array.predicted_cycles());
  }
  EXPECT_EQ(WordLevelMatmulArray(4, arith::WordMultiplier::kAddShift, 8).beat_length(), 64);
  EXPECT_EQ(WordLevelMatmulArray(4, arith::WordMultiplier::kCarrySave, 8).beat_length(), 16);
}

// The headline claim: the bit-level array is O(p) times faster than the
// word-level array with carry-save PEs (and O(p^2) with add-shift PEs).
TEST(SpeedupTest, BitLevelBeatsWordLevel) {
  const math::Int u = 6;
  for (math::Int p : {4, 8, 16}) {
    const math::Int bit_cycles = 3 * (u - 1) + 3 * (p - 1) + 1;
    const math::Int word_cs = (3 * (u - 1) + 1) * 2 * p;
    const math::Int word_as = (3 * (u - 1) + 1) * p * p;
    const double speedup_cs = static_cast<double>(word_cs) / static_cast<double>(bit_cycles);
    const double speedup_as = static_cast<double>(word_as) / static_cast<double>(bit_cycles);
    // O(p): the carry-save speedup grows with p and exceeds 1 early.
    EXPECT_GT(speedup_cs, 1.0) << "p=" << p;
    EXPECT_GT(speedup_as, speedup_cs) << "p=" << p;
  }
}

}  // namespace
}  // namespace bitlevel
