// LP-based schedule-optimality certification: the rigorous form of
// Theorem 4.5, plus simplex unit tests.
#include <gtest/gtest.h>

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "arith/divider.hpp"
#include "mapping/optimality.hpp"
#include "math/simplex.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

using math::LinearProgram;
using math::LpStatus;
using math::Rational;

TEST(SimplexTest, SimpleMinimum) {
  // min x + y  s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
  LinearProgram lp;
  lp.objective = {Rational(1), Rational(1)};
  lp.constraints = {{Rational(1), Rational(2)}, {Rational(3), Rational(1)}};
  lp.bounds = {Rational(4), Rational(6)};
  const auto sol = math::solve_linear_program(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // Optimum at the intersection (8/5, 6/5): value 14/5.
  EXPECT_EQ(sol.value, Rational(14, 5));
  EXPECT_EQ(sol.x[0], Rational(8, 5));
  EXPECT_EQ(sol.x[1], Rational(6, 5));
}

TEST(SimplexTest, InfeasibleAndUnbounded) {
  // x >= 1 and -x >= 0 cannot both hold.
  LinearProgram infeasible;
  infeasible.objective = {Rational(1)};
  infeasible.constraints = {{Rational(1)}, {Rational(-1)}};
  infeasible.bounds = {Rational(1), Rational(0, 1) + Rational(1)};
  EXPECT_EQ(math::solve_linear_program(infeasible).status, LpStatus::kInfeasible);

  // min -x s.t. x >= 1: unbounded below.
  LinearProgram unbounded;
  unbounded.objective = {Rational(-1)};
  unbounded.constraints = {{Rational(1)}};
  unbounded.bounds = {Rational(1)};
  EXPECT_EQ(math::solve_linear_program(unbounded).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeBoundsHandled) {
  // min x s.t. x >= -3  ->  optimum 0 (x >= 0 binds).
  LinearProgram lp;
  lp.objective = {Rational(1)};
  lp.constraints = {{Rational(1)}};
  lp.bounds = {Rational(-3)};
  const auto sol = math::solve_linear_program(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.value, Rational(0));
}

TEST(SimplexTest, DegenerateRedundantRows) {
  // Duplicate constraints must not confuse phase 1.
  LinearProgram lp;
  lp.objective = {Rational(2), Rational(3)};
  lp.constraints = {{Rational(1), Rational(1)},
                    {Rational(1), Rational(1)},
                    {Rational(1), Rational(0)}};
  lp.bounds = {Rational(2), Rational(2), Rational(1)};
  const auto sol = math::solve_linear_program(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.value, Rational(4));  // x = (2, 0)
}

// Theorem 4.5, certified: the LP lower bound over ALL linear schedules
// equals the time of Pi = [1,1,1,2,1] — no search horizon involved.
TEST(OptimalityTest, Fig4ScheduleCertified) {
  for (math::Int u : {2, 3, 5}) {
    for (math::Int p : {2, 3, 5, 8}) {
      const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
      const auto cert =
          mapping::certify_time_optimal(s.domain, s.deps, math::IntVec{1, 1, 1, 2, 1});
      EXPECT_TRUE(cert.certified) << "u=" << u << " p=" << p << " achieved " << cert.achieved
                                  << " lower bound " << cert.lower_bound << " (LP "
                                  << cert.lp_bound.to_string() << ")";
      EXPECT_EQ(cert.achieved, 3 * (u - 1) + 3 * (p - 1) + 1);
    }
  }
}

// The word-level schedule [1,1,1] is likewise optimal.
TEST(OptimalityTest, WordLevelScheduleCertified) {
  const auto triplet = ir::kernels::matmul(6).triplet();
  const auto cert = mapping::certify_time_optimal(triplet.domain, triplet.deps, {1, 1, 1});
  EXPECT_TRUE(cert.certified);
  EXPECT_EQ(cert.achieved, 3 * 5 + 1);
}

// Fig. 5's Pi' is feasible but NOT time optimal: the certificate
// correctly refuses it.
TEST(OptimalityTest, Fig5ScheduleNotOptimal) {
  const math::Int u = 3, p = 3;
  const auto s = core::expand(ir::kernels::matmul(u), p, core::Expansion::kII);
  const auto cert = mapping::certify_time_optimal(s.domain, s.deps, {p, p, 1, 2, 1});
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.achieved, cert.lower_bound);
}

// The divider's Pi = [p+1, 1] is certified optimal — division's
// Theta(p^2) latency is a theorem, not a search artifact.
TEST(OptimalityTest, DividerScheduleCertified) {
  for (math::Int p : {2, 4, 8}) {
    const arith::NonRestoringDivider div(p);
    const auto t = div.triplet();
    const auto cert = mapping::certify_time_optimal(t.domain, t.deps, div.optimal_schedule());
    EXPECT_TRUE(cert.certified) << "p=" << p << ": achieved " << cert.achieved
                                << " >= lower bound " << cert.lower_bound;
    EXPECT_EQ(cert.achieved, div.optimal_total_time());
  }
}

TEST(OptimalityTest, RejectsInvalidCandidate) {
  const auto triplet = ir::kernels::matmul(3).triplet();
  EXPECT_THROW(mapping::certify_time_optimal(triplet.domain, triplet.deps, {1, 1, -1}),
               PreconditionError);
}

TEST(OptimalityTest, UnschedulableConeDetected) {
  // Dependences d and -d cannot both be ordered forward.
  ir::DependenceMatrix deps;
  deps.add({{1, 0}, "a", ir::ValidityRegion::all()});
  deps.add({{-1, 0}, "b", ir::ValidityRegion::all()});
  EXPECT_THROW(mapping::schedule_span_lower_bound(ir::IndexSet::cube(2, 3), deps),
               NotFoundError);
}

}  // namespace
}  // namespace bitlevel
