// The bit-sliced lane executor is indistinguishable from the scalar
// reference: for every kernel x expansion x memory mode x thread count
// in the determinism matrix, run_batch with SlicedMode::kOn must
// produce per-item z maps and statistics bit-identical to
// SlicedMode::kOff. Ragged tails (batch sizes 1, 63, 65) exercise the
// lane mask, per-seed operands exercise cross-lane isolation, and the
// validity-region gating is exercised by every kernel whose columns
// switch on and off across the domain (all of them). Also pins the
// want_z toggle, the sliced/scalar counters, and the campaign's
// score_corruption knob.
#include <gtest/gtest.h>

#include <vector>

#include "core/workload.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/executor.hpp"

namespace bitlevel::pipeline {
namespace {

using math::Int;

struct Case {
  KernelSpec kernel;
  Int p;
};

// Every registry kernel, smallest instances that still have interior
// points on both sides of each validity-region boundary.
const std::vector<Case> kCases = {
    {{"matmul", 2, 0, 0, 0}, 3},      {{"matmul_rect", 2, 3, 2, 0}, 3},
    {{"conv", 3, 2, 0, 0}, 3},        {{"matvec", 2, 3, 0, 0}, 3},
    {{"transform", 2, 0, 0, 0}, 3},   {{"scalar", 4, 0, 0, 0}, 4},
};

DesignRequest request_for(const Case& c, core::Expansion e) {
  DesignRequest request;
  request.kernel = c.kernel;
  request.p = c.p;
  request.expansion = e;
  request.mapping = MappingStrategy::kAuto;
  return request;
}

// The workloads must outlive the items (x_fn captures the table).
std::vector<core::Workload> make_workloads(const DesignRequest& request, std::size_t count) {
  const ir::WordLevelModel model = resolve_kernel(request.kernel);
  std::vector<core::Workload> workloads;
  workloads.reserve(count);
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    workloads.push_back(core::make_safe_workload(model, request.p, request.expansion, seed));
  }
  return workloads;
}

std::vector<BatchItem> items_for(const std::vector<core::Workload>& workloads) {
  std::vector<BatchItem> items;
  items.reserve(workloads.size());
  for (const core::Workload& w : workloads) items.push_back(BatchItem{w.x_fn(), w.y_fn()});
  return items;
}

void expect_identical(const PlanRunResult& a, const PlanRunResult& b, const std::string& what) {
  EXPECT_EQ(a.z, b.z) << what;
  EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
  EXPECT_EQ(a.stats.pe_count, b.stats.pe_count) << what;
  EXPECT_EQ(a.stats.computations, b.stats.computations) << what;
  EXPECT_EQ(a.stats.pe_utilization, b.stats.pe_utilization) << what;
  EXPECT_EQ(a.stats.link_transmissions, b.stats.link_transmissions) << what;
  EXPECT_EQ(a.stats.wire_length, b.stats.wire_length) << what;
  EXPECT_EQ(a.stats.buffered_value_cycles, b.stats.buffered_value_cycles) << what;
  EXPECT_EQ(a.stats.peak_live_slots, b.stats.peak_live_slots) << what;
  EXPECT_EQ(a.stats.observed_points, b.stats.observed_points) << what;
}

TEST(PipelineSlicedTest, SlicedMatchesScalarAcrossMatrix) {
  for (const Case& c : kCases) {
    for (const core::Expansion e : {core::Expansion::kI, core::Expansion::kII}) {
      const DesignRequest request = request_for(c, e);
      const std::vector<core::Workload> workloads = make_workloads(request, 5);
      const std::vector<BatchItem> items = items_for(workloads);
      for (const int threads : {1, 2}) {
        for (const sim::MemoryMode memory :
             {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
          PlanCache cache(8);
          BatchOptions scalar_options;
          scalar_options.threads = threads;
          scalar_options.memory = memory;
          scalar_options.sliced = SlicedMode::kOff;
          BatchOptions sliced_options = scalar_options;
          sliced_options.sliced = SlicedMode::kOn;
          // This matrix pins the INTERPRETED 64-lane engine against the
          // scalar reference; pipeline_compiled_test covers the
          // compiled wide-lane path against both.
          sliced_options.compiled = SlicedMode::kOff;

          const BatchResult scalar = run_batch(cache, request, items, scalar_options);
          const BatchResult sliced = run_batch(cache, request, items, sliced_options);
          ASSERT_EQ(scalar.results.size(), items.size());
          ASSERT_EQ(sliced.results.size(), items.size());
          EXPECT_EQ(scalar.scalar_items, static_cast<Int>(items.size()));
          EXPECT_EQ(scalar.sliced_items, 0);
          EXPECT_EQ(sliced.sliced_items, static_cast<Int>(items.size()));
          EXPECT_EQ(sliced.sliced_groups, 1);
          EXPECT_EQ(sliced.compiled_items, 0);
          EXPECT_EQ(sliced.scalar_items, 0);

          const std::string what = c.kernel.name + " e" + std::to_string(static_cast<int>(e)) +
                                   " t" + std::to_string(threads) + " m" +
                                   std::to_string(static_cast<int>(memory));
          for (std::size_t i = 0; i < items.size(); ++i) {
            expect_identical(sliced.results[i], scalar.results[i],
                             what + " item " + std::to_string(i));
            EXPECT_FALSE(sliced.results[i].z.empty()) << what;
          }
        }
      }
    }
  }
}

// Batch sizes straddling the 64-lane word: 1 (single active lane), 63
// (one inactive tail lane), 64 (exactly full — the mask must not shift
// by the full word width), 65 (a full group plus a 1-lane group), and
// 127/128/129 (the same straddle one group later). The inactive lanes
// must neither leak into active lanes nor trip the capacity-honesty
// checks.
TEST(PipelineSlicedTest, RaggedTailsMatchScalar) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  for (const std::size_t count : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                                  std::size_t{65}, std::size_t{127}, std::size_t{128},
                                  std::size_t{129}}) {
    const std::vector<core::Workload> workloads = make_workloads(request, count);
    const std::vector<BatchItem> items = items_for(workloads);
    for (const sim::MemoryMode memory :
         {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
      PlanCache cache(8);
      BatchOptions scalar_options;
      scalar_options.memory = memory;
      scalar_options.threads = 1;
      scalar_options.sliced = SlicedMode::kOff;
      BatchOptions sliced_options = scalar_options;
      sliced_options.sliced = SlicedMode::kOn;
      sliced_options.compiled = SlicedMode::kOff;  // interpreted 64-lane engine

      const BatchResult scalar = run_batch(cache, request, items, scalar_options);
      const BatchResult sliced = run_batch(cache, request, items, sliced_options);
      EXPECT_EQ(sliced.sliced_groups, static_cast<Int>((count + 63) / 64));
      EXPECT_EQ(sliced.sliced_items, static_cast<Int>(count));
      for (std::size_t i = 0; i < count; ++i) {
        expect_identical(sliced.results[i], scalar.results[i],
                         "batch " + std::to_string(count) + " item " + std::to_string(i));
      }
    }
  }
}

TEST(PipelineSlicedTest, AutoSlicesMultiItemBatches) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 3);
  const std::vector<BatchItem> items = items_for(workloads);
  PlanCache cache(8);

  BatchOptions options;  // defaults: kAuto — matmul plans carry a
                         // compiled schedule, so auto takes the
                         // compiled wide-lane path.
  const BatchResult multi = run_batch(cache, request, items, options);
  EXPECT_EQ(multi.compiled_items, 3);
  EXPECT_EQ(multi.compiled_groups, 1);
  EXPECT_EQ(multi.sliced_items, 0);
  EXPECT_EQ(multi.scalar_items, 0);

  const std::vector<BatchItem> one(items.begin(), items.begin() + 1);
  const BatchResult single = run_batch(cache, request, one, options);
  EXPECT_EQ(single.compiled_items, 0);
  EXPECT_EQ(single.sliced_items, 0);
  EXPECT_EQ(single.scalar_items, 1);
  expect_identical(single.results[0], multi.results[0], "auto single vs sliced lane 0");
}

// want_z = false skips the read-out on both paths: no z maps, and in
// streaming mode no observe predicate is installed (observed_points 0).
// Everything else in the statistics is unchanged.
TEST(PipelineSlicedTest, WantZOffSkipsReadOut) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 3);
  const std::vector<BatchItem> items = items_for(workloads);
  for (const sim::MemoryMode memory :
       {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
    for (const SlicedMode mode : {SlicedMode::kOff, SlicedMode::kOn}) {
      PlanCache cache(8);
      BatchOptions with_z;
      with_z.memory = memory;
      with_z.sliced = mode;
      BatchOptions without_z = with_z;
      without_z.want_z = false;

      const BatchResult full = run_batch(cache, request, items, with_z);
      const BatchResult bare = run_batch(cache, request, items, without_z);
      for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_FALSE(full.results[i].z.empty());
        EXPECT_TRUE(bare.results[i].z.empty());
        EXPECT_EQ(bare.results[i].stats.cycles, full.results[i].stats.cycles);
        EXPECT_EQ(bare.results[i].stats.computations, full.results[i].stats.computations);
        if (memory == sim::MemoryMode::kStreaming) {
          EXPECT_EQ(bare.results[i].stats.observed_points, 0);
        } else {
          EXPECT_EQ(bare.results[i].stats.observed_points,
                    full.results[i].stats.observed_points);
        }
      }
    }
  }
}

TEST(PipelineSlicedTest, SlicedOffIsPlainScalarPath) {
  const DesignRequest request = request_for(kCases[2], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 2);
  const std::vector<BatchItem> items = items_for(workloads);
  PlanCache cache(8);
  BatchOptions options;
  options.sliced = SlicedMode::kOff;
  const BatchResult batch = run_batch(cache, request, items, options);
  const PlanPtr fresh = compose(request);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const PlanRunResult reference = run_plan(*fresh, items[i].x, items[i].y);
    expect_identical(batch.results[i], reference, "scalar batch vs fresh plan");
  }
}

// score_corruption = false skips the reference run and every read-out;
// detection and recovery figures are untouched because injection and
// monitoring never depended on the read-out.
TEST(PipelineSlicedTest, CampaignScoreCorruptionOff) {
  const DesignRequest request = request_for(kCases[0], core::Expansion::kII);
  const std::vector<core::Workload> workloads = make_workloads(request, 1);

  CampaignOptions scored;
  scored.kinds = {faults::FaultKind::kBitFlip};
  scored.rates = {0.05};
  scored.seed = 7;
  CampaignOptions unscored = scored;
  unscored.score_corruption = false;

  PlanCache cache(8);
  const CampaignResult with_score =
      run_campaign(cache, request, workloads[0].x_fn(), workloads[0].y_fn(), scored);
  const CampaignResult without_score =
      run_campaign(cache, request, workloads[0].x_fn(), workloads[0].y_fn(), unscored);

  EXPECT_GT(with_score.reference_words, 0);
  EXPECT_EQ(without_score.reference_words, 0);
  ASSERT_EQ(with_score.reports.size(), 1u);
  ASSERT_EQ(without_score.reports.size(), 1u);
  EXPECT_EQ(without_score.reports[0].faults_detected, with_score.reports[0].faults_detected);
  EXPECT_EQ(without_score.reports[0].faults_recovered, with_score.reports[0].faults_recovered);
  EXPECT_EQ(without_score.reports[0].corrupted_words, 0);
  EXPECT_FALSE(without_score.reports[0].silent_corruption);
}

}  // namespace
}  // namespace bitlevel::pipeline
