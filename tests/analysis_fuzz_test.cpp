// Differential fuzzing of the two exact dependence backends: on random
// single-assignment programs with random affine reads and random
// guards, the exact Diophantine analyzer and the trace replayer must
// produce identical instance sets — they share no code beyond the IR.
#include <gtest/gtest.h>

#include <set>

#include "analysis/exact.hpp"
#include "analysis/trace.hpp"
#include "support/rng.hpp"

namespace bitlevel::analysis {
namespace {

using ir::AffineMap;
using ir::Program;
using ir::Statement;
using ir::ValidityRegion;

AffineMap random_affine(Xoshiro256& rng, std::size_t n) {
  math::IntMat a(n, n);
  math::IntVec b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.uniform(-1, 1);
    b[r] = rng.uniform(-2, 2);
  }
  return AffineMap(std::move(a), std::move(b));
}

ValidityRegion random_guard(Xoshiro256& rng, std::size_t n, const ir::IndexSet& domain) {
  switch (rng() % 4) {
    case 0:
      return ValidityRegion::all();
    case 1: {
      const std::size_t c = rng() % n;
      return ValidityRegion::coord_eq(c, rng.uniform(domain.lower()[c], domain.upper()[c]));
    }
    case 2: {
      const std::size_t c = rng() % n;
      return ValidityRegion::coord_ne(c, rng.uniform(domain.lower()[c], domain.upper()[c]));
    }
    default: {
      const std::size_t c = rng() % n;
      return ValidityRegion::coord_ge(c, rng.uniform(domain.lower()[c], domain.upper()[c]));
    }
  }
}

/// Random single-assignment program: each statement writes its own
/// array through the identity subscript (so trace and exact agree on
/// what "the" producer is) and reads 1-2 random affine references of
/// random arrays under random guards.
Program random_program(Xoshiro256& rng) {
  const std::size_t n = 1 + rng() % 2;
  math::IntVec lo(n), hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    lo[i] = rng.uniform(-2, 1);
    hi[i] = lo[i] + rng.uniform(1, 3);
  }
  Program prog{ir::IndexSet(lo, hi), {}};
  const std::size_t nstmts = 1 + rng() % 3;
  const char* arrays[] = {"a", "b", "c"};
  for (std::size_t s = 0; s < nstmts; ++s) {
    Statement st{{arrays[s], AffineMap::identity(n)}, {}, "fuzz"};
    st.guard = random_guard(rng, n, prog.domain);
    const std::size_t nreads = 1 + rng() % 2;
    for (std::size_t r = 0; r < nreads; ++r) {
      st.reads.push_back({arrays[rng() % nstmts], random_affine(rng, n),
                          random_guard(rng, n, prog.domain)});
    }
    prog.statements.push_back(std::move(st));
  }
  prog.validate();
  return prog;
}

class AnalysisFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisFuzzTest, ExactEqualsTrace) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Program prog = random_program(rng);
    const auto traced = trace_dependences(prog);
    const auto exact = exact_dependences(prog);
    const std::set<DependenceInstance> a(traced.begin(), traced.end());
    const std::set<DependenceInstance> b(exact.begin(), exact.end());
    ASSERT_EQ(a, b) << "trial " << trial << " domain " << prog.domain.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u, 707u, 808u));

}  // namespace
}  // namespace bitlevel::analysis
