// Section 4: feasibility of the paper's two bit-level matmul mappings,
// the execution-time formulas (4.5)/(4.8), and processor counts.
#include <gtest/gtest.h>

#include "core/expansion.hpp"
#include "ir/kernels.hpp"
#include "mapping/feasibility.hpp"
#include "mapping/schedule.hpp"
#include "support/error.hpp"

namespace bitlevel {
namespace {

using core::Expansion;
using mapping::InterconnectionPrimitives;
using mapping::MappingMatrix;

/// T of eq. (4.2) for word length p.
MappingMatrix fig4_mapping(math::Int p) {
  return MappingMatrix(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {1, 1, 1, 2, 1}});
}

/// T' of eq. (4.6).
MappingMatrix fig5_mapping(math::Int p) {
  return MappingMatrix(math::IntMat{{p, 0, 0, 1, 0}, {0, p, 0, 0, 1}, {p, p, 1, 2, 1}});
}

struct Size {
  math::Int u;
  math::Int p;
};

class PaperMappingTest : public ::testing::TestWithParam<Size> {};

TEST_P(PaperMappingTest, Fig4MappingIsFeasible) {
  const auto [u, p] = GetParam();
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kII);
  const auto report = mapping::check_feasible(s.domain, s.deps, fig4_mapping(p),
                                              InterconnectionPrimitives::fig4(p));
  EXPECT_TRUE(report.ok) << report.to_string();
  ASSERT_TRUE(report.k.has_value());
  // (4.1) holds with equality or slack for every column.
  const math::IntMat& k = *report.k;
  const math::IntVec pi = fig4_mapping(p).schedule();
  for (std::size_t i = 0; i < s.deps.size(); ++i) {
    math::Int hops = 0;
    for (std::size_t j = 0; j < k.rows(); ++j) hops += k.at(j, i);
    EXPECT_LE(hops, math::dot(pi, s.deps[i].d)) << "column " << i;
  }
}

TEST_P(PaperMappingTest, Fig5MappingIsFeasible) {
  const auto [u, p] = GetParam();
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kII);
  const auto report = mapping::check_feasible(s.domain, s.deps, fig5_mapping(p),
                                              InterconnectionPrimitives::mesh2d_diag());
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST_P(PaperMappingTest, ExecutionTimeFormulas) {
  const auto [u, p] = GetParam();
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kII);
  // (4.5): t = 3(u-1) + 3(p-1) + 1.
  EXPECT_EQ(mapping::execution_time(fig4_mapping(p).schedule(), s.domain),
            3 * (u - 1) + 3 * (p - 1) + 1);
  // (4.8) as printed simplifies Pi'([u,u,u,p,p]-[1,1,1,1,1])+1 to
  // (2p-1)(u-1)+3(p-1)+1, but with the paper's own Pi' = [p,p,1,2,1]
  // the product is (2p+1)(u-1)+3(p-1)+1 — the printed coefficient is an
  // arithmetic slip (the Pi' that would yield 2p-1, [p-1,p-1,1,2,1],
  // violates condition 2: pipelining x/y needs p unit hops per word
  // step). We assert the value that follows from (4.6); see
  // EXPERIMENTS.md, erratum E6.
  EXPECT_EQ(mapping::execution_time(fig5_mapping(p).schedule(), s.domain),
            (2 * p + 1) * (u - 1) + 3 * (p - 1) + 1);
}

TEST_P(PaperMappingTest, ProcessorCounts) {
  const auto [u, p] = GetParam();
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kII);
  // Both mappings share S, hence both use u^2 * p^2 processors.
  EXPECT_EQ(mapping::processor_count(fig4_mapping(p).space(), s.domain), u * u * p * p);
}

TEST_P(PaperMappingTest, OccupancyIsConflictFree) {
  const auto [u, p] = GetParam();
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kII);
  const auto stats = mapping::occupancy(fig4_mapping(p), s.domain);
  EXPECT_EQ(stats.computations, u * u * u * p * p);
  EXPECT_EQ(stats.processors, u * u * p * p);
  EXPECT_EQ(stats.total_time, 3 * (u - 1) + 3 * (p - 1) + 1);
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PaperMappingTest,
                         ::testing::Values(Size{2, 2}, Size{3, 3}, Size{4, 3}, Size{3, 4}),
                         [](const ::testing::TestParamInfo<Size>& info) {
                           return "u" + std::to_string(info.param.u) + "_p" +
                                  std::to_string(info.param.p);
                         });

// The long wires are what make T schedulable: without them (plain mesh +
// diagonal), the word-level hops S*d1 = [0,p] cannot be covered in
// Pi*d1 = 1 time unit, and condition 2 must fail.
TEST(MappingTest, Fig4WithoutLongWiresIsInfeasible) {
  const math::Int u = 3, p = 3;
  const auto s = core::expand(ir::kernels::matmul(u), p, Expansion::kII);
  const auto report = mapping::check_feasible(s.domain, s.deps, fig4_mapping(p),
                                              InterconnectionPrimitives::mesh2d_diag());
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations.front().find("condition 2"), std::string::npos)
      << report.to_string();
}

// Reversing the schedule violates condition 1 on every column.
TEST(MappingTest, BackwardScheduleViolatesCondition1) {
  const auto s = core::expand(ir::kernels::matmul(2), 2, Expansion::kII);
  const MappingMatrix t(fig4_mapping(2).space(), math::IntVec{-1, -1, -1, -2, -1});
  const auto report =
      mapping::check_feasible(s.domain, s.deps, t, InterconnectionPrimitives::fig4(2));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violations.front().find("condition 1"), std::string::npos);
}

// A rank-deficient T trips condition 4.
TEST(MappingTest, RankDeficientMappingRejected) {
  const auto s = core::expand(ir::kernels::matmul(2), 2, Expansion::kII);
  const MappingMatrix t(math::IntMat{{2, 0, 0, 1, 0}, {2, 0, 0, 1, 0}, {1, 1, 1, 2, 1}});
  const auto report =
      mapping::check_feasible(s.domain, s.deps, t, InterconnectionPrimitives::fig4(2));
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& v : report.violations) found = found || v.find("condition 4") != std::string::npos;
  EXPECT_TRUE(found) << report.to_string();
}

// Collapsing i1 and i2 onto the same processor coordinate creates a
// computational conflict (condition 3).
TEST(MappingTest, ConflictingMappingRejected) {
  const auto s = core::expand(ir::kernels::matmul(2), 3, Expansion::kII);
  // S drops the i2 coordinate entirely: points differing only in i2
  // collide at equal times unless Pi separates them; choose Pi that
  // does not.
  const MappingMatrix t(math::IntMat{{3, 0, 0, 1, 0}, {0, 3, 0, 0, 0}, {1, 1, 1, 2, 0}});
  const auto report =
      mapping::check_feasible(s.domain, s.deps, t, InterconnectionPrimitives::fig4(3));
  EXPECT_FALSE(report.ok);
}

// Scaling T by 2 violates the coprimality condition 5 and nothing else.
TEST(MappingTest, CommonFactorViolatesCondition5) {
  const auto s = core::expand(ir::kernels::matmul(2), 2, Expansion::kII);
  math::IntMat doubled{{4, 0, 0, 2, 0}, {0, 4, 0, 0, 2}, {2, 2, 2, 4, 2}};
  const auto report = mapping::check_feasible(s.domain, s.deps, MappingMatrix(std::move(doubled)),
                                              InterconnectionPrimitives::fig4(2));
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& v : report.violations) found = found || v.find("condition 5") != std::string::npos;
  EXPECT_TRUE(found) << report.to_string();
}

}  // namespace
}  // namespace bitlevel
