// Cached plans are indistinguishable from fresh ones: for a matrix of
// kernels x expansions x memory modes x thread counts, a plan composed
// once and reused through the PlanCache must produce bit-identical
// outputs and statistics to a plan composed from scratch for every
// run. Also pins the cache-key canonicalization (execution knobs and
// unused extents do not address new plans) and the acceptance
// criterion: one composition per distinct key, counted by the cache.
#include <gtest/gtest.h>

#include <vector>

#include "core/workload.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/executor.hpp"

namespace bitlevel::pipeline {
namespace {

using math::Int;

struct Case {
  KernelSpec kernel;
  Int p;
};

const std::vector<Case> kCases = {
    {{"matmul", 2, 0, 0, 0}, 3},
    {{"conv", 3, 2, 0, 0}, 3},
    {{"scalar", 4, 0, 0, 0}, 4},
};

DesignRequest request_for(const Case& c, core::Expansion e) {
  DesignRequest request;
  request.kernel = c.kernel;
  request.p = c.p;
  request.expansion = e;
  request.mapping = MappingStrategy::kAuto;
  return request;
}

PlanRunResult run_with(const DesignPlan& plan, int threads, sim::MemoryMode memory,
                       std::uint64_t seed) {
  const core::Workload workload =
      core::make_safe_workload(plan.model, plan.request.p, plan.request.expansion, seed);
  return run_plan(plan, workload.x_fn(), workload.y_fn(), RunOptions{threads, memory});
}

void expect_identical(const PlanRunResult& a, const PlanRunResult& b, const char* what) {
  EXPECT_EQ(a.z, b.z) << what;
  EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
  EXPECT_EQ(a.stats.pe_count, b.stats.pe_count) << what;
  EXPECT_EQ(a.stats.computations, b.stats.computations) << what;
  EXPECT_EQ(a.stats.pe_utilization, b.stats.pe_utilization) << what;
  EXPECT_EQ(a.stats.link_transmissions, b.stats.link_transmissions) << what;
  EXPECT_EQ(a.stats.wire_length, b.stats.wire_length) << what;
}

TEST(PipelinePlanTest, CachedPlansRunBitIdenticalToFresh) {
  PlanCache cache(16);
  std::uint64_t composed = 0;
  for (const Case& c : kCases) {
    for (const core::Expansion e : {core::Expansion::kI, core::Expansion::kII}) {
      const DesignRequest request = request_for(c, e);
      const PlanPtr fresh = compose(request);
      const PlanPtr cached = cache.get_or_compose(request);
      ++composed;
      ASSERT_TRUE(fresh->has_mapping()) << fresh->key;
      ASSERT_TRUE(cached->has_mapping()) << cached->key;
      EXPECT_EQ(fresh->key, cached->key);
      EXPECT_EQ(fresh->t->matrix(), cached->t->matrix()) << cached->key;

      // Repeat lookups share the SAME immutable plan object.
      EXPECT_EQ(cache.get_or_compose(request).get(), cached.get());

      for (const int threads : {1, 2}) {
        for (const sim::MemoryMode memory :
             {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
          const PlanRunResult a = run_with(*fresh, threads, memory, 42);
          const PlanRunResult b = run_with(*cached, threads, memory, 42);
          expect_identical(a, b, cached->key.c_str());
          EXPECT_FALSE(b.z.empty()) << cached->key;
        }
      }
    }
  }
  // One composition per distinct key — the repeat lookups above were
  // all hits.
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, composed);
  EXPECT_EQ(stats.hits, composed);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PipelinePlanTest, ExecutionKnobsDoNotAddressNewPlans) {
  PlanCache cache(8);
  DesignRequest request = request_for(kCases[2], core::Expansion::kII);
  const PlanPtr base = cache.get_or_compose(request);
  for (const int threads : {0, 1, 2}) {
    for (const sim::MemoryMode memory :
         {sim::MemoryMode::kDense, sim::MemoryMode::kStreaming}) {
      DesignRequest variant = request;
      variant.threads = threads;
      variant.memory = memory;
      EXPECT_EQ(canonical_key(variant), base->key);
      EXPECT_EQ(cache.get_or_compose(variant).get(), base.get());
    }
  }
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PipelinePlanTest, UnusedExtentsAreCanonicalized) {
  PlanCache cache(8);
  DesignRequest a;
  a.kernel = KernelSpec{"matmul", 2, 5, 9, 0};
  a.p = 3;
  a.mapping = MappingStrategy::kStructureOnly;
  DesignRequest b = a;
  b.kernel.v = 7;
  b.kernel.w = 1;
  EXPECT_EQ(canonical_key(a), canonical_key(b));
  EXPECT_EQ(cache.get_or_compose(a).get(), cache.get_or_compose(b).get());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PipelinePlanTest, RunBatchSharesOnePlanAcrossItems) {
  PlanCache cache(8);
  const DesignRequest request = request_for(kCases[1], core::Expansion::kII);
  const ir::WordLevelModel model = resolve_kernel(request.kernel);
  // The workloads must outlive the items (x_fn captures the table).
  std::vector<core::Workload> workloads;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    workloads.push_back(
        core::make_safe_workload(model, request.p, request.expansion, seed));
  }
  std::vector<BatchItem> items;
  for (const core::Workload& w : workloads) items.push_back(BatchItem{w.x_fn(), w.y_fn()});

  const BatchResult first = run_batch(cache, request, items);
  EXPECT_FALSE(first.plan_was_cached);
  ASSERT_EQ(first.results.size(), items.size());

  const BatchResult second = run_batch(cache, request, items);
  EXPECT_TRUE(second.plan_was_cached);
  EXPECT_EQ(second.plan.get(), first.plan.get());

  // Each item is bit-identical to a run over a freshly composed plan.
  const PlanPtr fresh = compose(request);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const PlanRunResult reference = run_plan(*fresh, items[i].x, items[i].y);
    expect_identical(first.results[i], reference, "batch item vs fresh");
    expect_identical(second.results[i], reference, "cached batch item vs fresh");
  }
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PipelinePlanTest, StageTimingsAreRecorded) {
  const PlanPtr plan = compose(request_for(kCases[0], core::Expansion::kII));
  EXPECT_GE(plan->timings.expand_ms, 0.0);
  EXPECT_GE(plan->timings.map_ms, 0.0);
  EXPECT_GT(plan->timings.total_ms(), 0.0);
  EXPECT_EQ(plan->structure->p, 3);
}

}  // namespace
}  // namespace bitlevel::pipeline
