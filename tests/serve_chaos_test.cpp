// Socket-fault chaos harness for the design-service daemon, plus the
// cancellation/deadline layer underneath it: mid-line disconnects,
// garbage frames, clients killed mid-response, slow readers, idle
// connections, expired and mid-execution deadlines. The invariants
// under every fault: no worker wedges, no partial state escapes, the
// counter ledger balances after a drain
//   requests == served_ok + served_error
//               + rejected_overloaded + rejected_oversized
//               + rejected_deadline
// and leaked_plans == 0. Each daemon test appends its drain ledger as
// a JSON line to $BITLEVEL_CHAOS_LEDGER_JSON (when set) for the CI
// artifact.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache.hpp"
#include "pipeline/executor.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/cancel.hpp"
#include "support/json.hpp"

namespace bitlevel::serve {
namespace {

std::string temp_socket_path(const char* tag) {
  return "/tmp/bitlevel-chaos-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

/// A counting semaphore (C++17 has none): the test_stall hook blocks
/// workers on acquire() until the test release()s them.
class Gate {
 public:
  void release(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    permits_ += n;
    cv_.notify_all();
  }
  void acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int permits_ = 0;
};

/// Runs a Server on its own thread; joins + drains on destruction.
class TestDaemon {
 public:
  explicit TestDaemon(ServerConfig config) : server_(std::move(config)) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { report_ = server_.run(); });
  }
  ~TestDaemon() { drain(); }

  DrainReport drain() {
    server_.shutdown();
    if (thread_.joinable()) thread_.join();
    return report_;
  }

  Server& server() { return server_; }
  const std::string& endpoint() const { return server_.endpoint(); }

 private:
  Server server_;
  std::thread thread_;
  DrainReport report_;
};

const JsonValue* find_or_null(const JsonValue& doc, const char* key) {
  return doc.is_object() ? doc.find(key) : nullptr;
}

std::string error_code(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* error = find_or_null(doc, "error");
  if (error == nullptr || !error->is_object()) return "";
  const JsonValue* code = error->find("code");
  return code != nullptr && code->is_string() ? code->string_v : "";
}

bool error_retryable_flag(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* error = find_or_null(doc, "error");
  if (error == nullptr || !error->is_object()) return false;
  const JsonValue* retryable = error->find("retryable");
  return retryable != nullptr && retryable->is_bool() && retryable->bool_v;
}

bool response_ok(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* ok = find_or_null(doc, "ok");
  return ok != nullptr && ok->is_bool() && ok->bool_v;
}

/// A raw (non-Client) Unix socket, for injecting torn frames the
/// Client class refuses to produce. endpoint_spec is "unix:<path>".
int raw_unix_connect(const std::string& endpoint_spec) {
  const std::string path = endpoint_spec.substr(std::strlen("unix:"));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// The post-drain invariants every chaos scenario must satisfy, plus
/// the CI ledger artifact (one JSON line per scenario when
/// BITLEVEL_CHAOS_LEDGER_JSON names a file).
void check_ledger(const char* test, const DrainReport& report) {
  const ServerStats& s = report.stats;
  EXPECT_EQ(s.requests, s.served_ok + s.served_error + s.rejected_overloaded +
                            s.rejected_oversized + s.rejected_deadline)
      << "ledger out of balance in " << test;
  EXPECT_EQ(report.leaked_plans, 0u) << "leaked plans in " << test;
  if (const char* path = std::getenv("BITLEVEL_CHAOS_LEDGER_JSON")) {
    std::ofstream out(path, std::ios::app);
    out << "{\"test\":\"" << test << "\",\"requests\":" << s.requests
        << ",\"served_ok\":" << s.served_ok << ",\"served_error\":" << s.served_error
        << ",\"rejected_overloaded\":" << s.rejected_overloaded
        << ",\"rejected_oversized\":" << s.rejected_oversized
        << ",\"rejected_deadline\":" << s.rejected_deadline
        << ",\"leaked_plans\":" << report.leaked_plans << "}\n";
  }
}

// ------------------------------------------------ cancellation layer

TEST(CancelTokenTest, NullManualAndDeadlineTokens) {
  const CancelToken null_token;
  EXPECT_FALSE(null_token.valid());
  EXPECT_FALSE(null_token.cancelled());
  EXPECT_NO_THROW(null_token.check("anywhere"));  // null: one pointer test

  const CancelToken manual = CancelToken::manual();
  EXPECT_TRUE(manual.valid());
  EXPECT_FALSE(manual.cancelled());
  EXPECT_NO_THROW(manual.check("before"));
  const CancelToken copy = manual;  // copies share the state
  manual.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_THROW(copy.check("lane-group boundary"), DeadlineExceededError);
  try {
    copy.check("lane-group boundary");
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_NE(std::string(e.what()).find("lane-group boundary"), std::string::npos);
  }

  const CancelToken generous = CancelToken::with_deadline_ms(60'000);
  EXPECT_FALSE(generous.cancelled());
  const CancelToken expired =
      CancelToken::with_deadline_at(std::chrono::steady_clock::now() -
                                    std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.cancelled());
  EXPECT_THROW(expired.check("wavefront pass"), DeadlineExceededError);
  // DeadlineExceededError is a bitlevel::Error: generic handlers still
  // catch it (the serve layer intercepts it FIRST to tag retryable).
  EXPECT_THROW(expired.check("wavefront pass"), Error);
}

// A pre-cancelled token sheds run_batch before any plan is composed:
// zero cache misses proves no work started.
TEST(CancelTokenTest, PreCancelledBatchShedsBeforeComposing) {
  pipeline::PlanCache cache(4);
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", 2, 2, 2, 0};
  request.p = 3;
  std::vector<pipeline::BatchItem> items(4);
  for (auto& item : items) {
    item.x = [](const math::IntVec&) { return std::uint64_t{1}; };
    item.y = [](const math::IntVec&) { return std::uint64_t{1}; };
  }
  pipeline::BatchOptions options;
  options.cancel = CancelToken::manual();
  options.cancel.cancel();
  EXPECT_THROW(pipeline::run_batch(cache, request, items, options), DeadlineExceededError);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.leaked_plans(), 0u);
}

// Deterministic mid-run cancellation: item 64's operand function fires
// while the SECOND lane group materializes, so the run is cancelled at
// a cooperative boundary after real work happened — and the unwound
// batch pins no plan.
TEST(CancelTokenTest, BatchCancelsAtLaneGroupBoundary) {
  pipeline::PlanCache cache(4);
  pipeline::DesignRequest request;
  request.kernel = pipeline::KernelSpec{"matmul", 2, 2, 2, 0};
  request.p = 3;
  const CancelToken cancel = CancelToken::manual();
  std::vector<pipeline::BatchItem> items;
  constexpr int kItems = 130;  // 3 lane groups of 64
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) {
    items.push_back(pipeline::BatchItem{
        [cancel, i](const math::IntVec&) {
          if (i >= 64) cancel.cancel();  // fires in lane group 2
          return std::uint64_t{1};
        },
        [](const math::IntVec&) { return std::uint64_t{1}; }});
  }
  pipeline::BatchOptions options;
  options.sliced = pipeline::SlicedMode::kOn;
  options.compiled = pipeline::SlicedMode::kOff;
  options.cancel = cancel;
  EXPECT_THROW(pipeline::run_batch(cache, request, items, options), DeadlineExceededError);
  EXPECT_EQ(cache.stats().misses, 1u);  // the plan WAS composed...
  EXPECT_EQ(cache.leaked_plans(), 0u);  // ...and released on unwind
}

TEST(RetryBackoffTest, DeterministicExponentialWithBoundedJitter) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    const std::int64_t a = retry_backoff_ms(100, attempt, 42);
    const std::int64_t b = retry_backoff_ms(100, attempt, 42);
    EXPECT_EQ(a, b);  // pure function of (base, attempt, seed)
    EXPECT_GE(a, 100 << attempt);
    EXPECT_LT(a, (100 << attempt) + 100);  // jitter stays below base
  }
  // Different seeds decorrelate the jitter without breaking the bounds.
  EXPECT_NE(retry_backoff_ms(100, 3, 1), retry_backoff_ms(100, 3, 2));
  EXPECT_EQ(retry_backoff_ms(0, 5, 7), 0);
  EXPECT_EQ(retry_backoff_ms(-10, 5, 7), 0);
}

TEST(RetryableTaggingTest, TaxonomyAndEnvelopes) {
  EXPECT_TRUE(error_retryable("overloaded"));
  EXPECT_TRUE(error_retryable("deadline_exceeded"));
  EXPECT_TRUE(error_retryable("shutting_down"));
  EXPECT_FALSE(error_retryable("parse_error"));
  EXPECT_FALSE(error_retryable("bad_request"));
  EXPECT_FALSE(error_retryable("oversized"));
  EXPECT_FALSE(error_retryable("infeasible"));
  EXPECT_FALSE(error_retryable("internal"));

  pipeline::PlanCache cache(4);
  const ServeContext context{cache, {}, {}};
  // Fatal taxonomy rows carry retryable:false in the envelope.
  const std::string parse = handle_line(context, "{not json");
  EXPECT_EQ(error_code(parse), "parse_error");
  EXPECT_FALSE(error_retryable_flag(parse));
  // A cancelled token produces a retryable deadline_exceeded BEFORE
  // composing anything.
  const CancelToken cancelled = CancelToken::manual();
  cancelled.cancel();
  const std::string shed = handle_line(
      context, "{\"id\":3,\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":3,\"p\":3}",
      nullptr, cancelled);
  EXPECT_EQ(error_code(shed), "deadline_exceeded") << shed;
  EXPECT_TRUE(error_retryable_flag(shed)) << shed;
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ServerConfigTest, ValidationRejectsBadKnobsUpFront) {
  auto with = [](auto mutate) {
    ServerConfig config;
    mutate(config);
    return config;
  };
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.workers = 0; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.max_queue = 0; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.max_line_bytes = 32; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.accept_poll_ms = -2; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.default_deadline_ms = -1; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.max_deadline_ms = -1; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.idle_timeout_ms = -2; })}, Error);
  EXPECT_THROW(Server{with([](ServerConfig& c) { c.write_stall_ms = -1; })}, Error);
  EXPECT_NO_THROW(Server{with([](ServerConfig& c) { c.idle_timeout_ms = -1; })});
}

// ------------------------------------------------- daemon chaos runs

// A queued request whose deadline expires while it waits is shed at
// pop time: structured retryable deadline_exceeded, rejected_deadline
// counted, and ZERO plan compositions — for the batch and the tiled
// family alike.
TEST(ServeChaosTest, ExpiredDeadlineIsShedWithoutComposing) {
  const std::string path = temp_socket_path("shed");
  pipeline::PlanCache cache(4);
  Gate started;
  Gate release;
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.cache = &cache;
  config.test_stall = [&] {
    started.release();
    release.acquire();
  };
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  // Occupy the single worker, then queue two deadline-carrying
  // requests and let their 50ms budgets lapse in the queue.
  client.send_line("{\"id\":1,\"action\":\"test-stall\"}");
  started.acquire();
  client.send_line(
      "{\"id\":2,\"action\":\"batch\",\"kernel\":\"scalar\",\"u\":3,\"p\":3,"
      "\"batch\":4,\"deadline_ms\":50}");
  client.send_line(
      "{\"id\":3,\"action\":\"tiled\",\"kernel\":\"matmul\",\"u\":4,\"p\":3,"
      "\"tile_m\":2,\"deadline_ms\":50}");
  while (daemon.server().stats().in_flight < 3) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  release.release(1);

  std::string response;
  ASSERT_TRUE(client.recv_line(&response));  // the stalled request
  EXPECT_TRUE(response_ok(response)) << response;
  for (const std::int64_t id : {2, 3}) {
    ASSERT_TRUE(client.recv_line(&response));
    EXPECT_EQ(error_code(response), "deadline_exceeded") << response;
    EXPECT_TRUE(error_retryable_flag(response)) << response;
    EXPECT_EQ(find_or_null(json_parse(response), "id")->int_v, id) << response;
  }
  EXPECT_EQ(daemon.server().stats().rejected_deadline, 2u);
  EXPECT_EQ(cache.stats().misses, 0u);  // shed = the work never started
  check_ledger("ExpiredDeadlineIsShedWithoutComposing", daemon.drain());
}

// A request whose deadline expires mid-execution stops at the next
// cooperative boundary: structured retryable deadline_exceeded counted
// as served_error (it DID execute), with no torn result and no leaked
// plan.
TEST(ServeChaosTest, MidExecutionDeadlineCancelsAtBoundary) {
  const std::string path = temp_socket_path("midrun");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  // A million scalar problems cannot finish inside 300ms; the deadline
  // fires at a workload/lane boundary deep inside the batch engine.
  const std::string response = client.roundtrip(
      "{\"id\":7,\"action\":\"batch\",\"kernel\":\"scalar\",\"u\":3,\"p\":3,"
      "\"batch\":1000000,\"sliced\":\"off\",\"deadline_ms\":300}");
  EXPECT_EQ(error_code(response), "deadline_exceeded") << response;
  EXPECT_TRUE(error_retryable_flag(response)) << response;

  const ServerStats stats = daemon.server().stats();
  EXPECT_EQ(stats.served_error, 1u);     // executed and cancelled...
  EXPECT_EQ(stats.rejected_deadline, 0u);  // ...not shed from the queue
  EXPECT_EQ(cache.leaked_plans(), 0u);
  check_ledger("MidExecutionDeadlineCancelsAtBoundary", daemon.drain());
}

TEST(ServeChaosTest, MidLineDisconnectLeavesDaemonServing) {
  const std::string path = temp_socket_path("midline");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  // Half a request, then the peer vanishes: never framed, never
  // counted, never served.
  const int torn = raw_unix_connect(daemon.endpoint());
  raw_send(torn, "{\"id\":1,\"action\":\"sim");
  ::close(torn);
  // And a line torn AFTER framing another: the complete first line is
  // served into the void, the fragment dies with the socket.
  const int half = raw_unix_connect(daemon.endpoint());
  raw_send(half, "{\"id\":2,\"action\":\"stats\"}\n{\"id\":3,\"act");
  ::close(half);

  Client client;
  client.connect(daemon.endpoint());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(response_ok(client.roundtrip("{\"id\":9,\"action\":\"stats\"}")));
  }
  check_ledger("MidLineDisconnectLeavesDaemonServing", daemon.drain());
}

TEST(ServeChaosTest, GarbageFramesGetStructuredErrors) {
  const std::string path = temp_socket_path("garbage");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  client.send_line(std::string("\x01\x02\xff garbage", 11));
  client.send_line("{]{]");
  client.send_line("]]]]");
  for (int i = 0; i < 3; ++i) {
    std::string response;
    ASSERT_TRUE(client.recv_line(&response));
    EXPECT_EQ(error_code(response), "parse_error") << response;
    EXPECT_FALSE(error_retryable_flag(response)) << response;
  }
  EXPECT_TRUE(response_ok(client.roundtrip("{\"id\":4,\"action\":\"stats\"}")));
  EXPECT_EQ(cache.stats().misses, 0u);
  check_ledger("GarbageFramesGetStructuredErrors", daemon.drain());
}

// The satellite-1 regression: a client that dies before reading its
// response turns the worker's send() into EPIPE — never into a
// process-killing SIGPIPE (this test binary does NOT ignore SIGPIPE,
// so MSG_NOSIGNAL is load-bearing here).
TEST(ServeChaosTest, KillClientMidResponseDoesNotKillDaemon) {
  const std::string path = temp_socket_path("killclient");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  for (int round = 0; round < 4; ++round) {
    Client doomed;
    doomed.connect(daemon.endpoint());
    doomed.send_line(
        "{\"id\":1,\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":3,\"p\":3}");
    doomed.close();  // gone before the response is written
  }
  Client survivor;
  survivor.connect(daemon.endpoint());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(response_ok(survivor.roundtrip(
        "{\"id\":2,\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":3,\"p\":3}")));
  }
  const DrainReport report = daemon.drain();
  // Every admitted request executed and was counted, written or not.
  EXPECT_EQ(report.stats.served_ok, 7u);
  check_ledger("KillClientMidResponseDoesNotKillDaemon", report);
}

// A reader that never drains its socket is dropped after the
// write_stall_ms budget instead of pinning a worker forever; fresh
// clients are served immediately afterwards.
TEST(ServeChaosTest, SlowReaderIsDroppedNotWedged) {
  const std::string path = temp_socket_path("slowreader");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.max_queue = 8192;
  config.write_stall_ms = 200;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client slow;
  slow.connect(daemon.endpoint());
  // Thousands of pipelined responses the client never reads: the
  // socket buffer fills, a worker stalls out its 200ms budget and the
  // connection is dropped.
  constexpr int kFlood = 4000;
  for (int i = 0; i < kFlood; ++i) {
    slow.send_line("{\"id\":" + std::to_string(i) + ",\"action\":\"stats\"}");
  }
  Client fresh;
  fresh.connect(daemon.endpoint());
  EXPECT_TRUE(response_ok(fresh.roundtrip("{\"id\":-1,\"action\":\"stats\"}")));
  const DrainReport report = daemon.drain();
  // Every popped task was executed and counted even though most
  // responses went to a dead connection.
  EXPECT_EQ(report.stats.served_ok,
            report.stats.requests - report.stats.rejected_overloaded);
  check_ledger("SlowReaderIsDroppedNotWedged", report);
}

TEST(ServeChaosTest, IdleReaperClosesIdleKeepsActive) {
  const std::string path = temp_socket_path("reaper");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.accept_poll_ms = 25;
  config.idle_timeout_ms = 150;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client idle;
  idle.connect(daemon.endpoint());
  EXPECT_TRUE(response_ok(idle.roundtrip("{\"id\":1,\"action\":\"stats\"}")));
  Client active;
  active.connect(daemon.endpoint());
  // The active client keeps trickling requests well inside the idle
  // window; the idle one goes silent and must be reaped.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(response_ok(active.roundtrip("{\"id\":2,\"action\":\"stats\"}")));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  std::string line;
  EXPECT_FALSE(idle.recv_line(&line));  // EOF: reaped, not wedged
  EXPECT_TRUE(response_ok(active.roundtrip("{\"id\":3,\"action\":\"stats\"}")));
  check_ledger("IdleReaperClosesIdleKeepsActive", daemon.drain());
}

// A connection whose request is still executing is BUSY, not idle —
// the reaper must leave it alone however long the run takes, then
// deliver the response on the still-open socket.
TEST(ServeChaosTest, ReaperSparesInFlightRequests) {
  const std::string path = temp_socket_path("reaperbusy");
  pipeline::PlanCache cache(4);
  Gate started;
  Gate release;
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.accept_poll_ms = 20;
  config.idle_timeout_ms = 100;
  config.cache = &cache;
  config.test_stall = [&] {
    started.release();
    release.acquire();
  };
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  client.send_line("{\"id\":1,\"action\":\"test-stall\"}");
  started.acquire();
  // No bytes in either direction for 3x the idle timeout — but a
  // request is in flight, so the reaper must spare the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  release.release(1);
  std::string response;
  ASSERT_TRUE(client.recv_line(&response));
  EXPECT_TRUE(response_ok(response)) << response;
  check_ledger("ReaperSparesInFlightRequests", daemon.drain());
}

}  // namespace
}  // namespace bitlevel::serve
