// The design-service daemon, in process: framing discipline, strict
// parse errors, admission control, stats monotonicity, shared-cache
// semantics and graceful drain — every failure mode must come back as
// a structured JSON error on the offending connection, never as a
// daemon crash.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"

namespace bitlevel::serve {
namespace {

std::string temp_socket_path(const char* tag) {
  return "/tmp/bitlevel-serve-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

/// A counting semaphore (C++17 has none): the test_stall hook blocks
/// workers on acquire() until the test release()s them.
class Gate {
 public:
  void release(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    permits_ += n;
    cv_.notify_all();
  }
  void acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return permits_ > 0; });
    --permits_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int permits_ = 0;
};

/// Runs a Server on its own thread; joins + drains on destruction.
class TestDaemon {
 public:
  explicit TestDaemon(ServerConfig config) : server_(std::move(config)) {
    server_.bind_and_listen();
    thread_ = std::thread([this] { report_ = server_.run(); });
  }
  ~TestDaemon() { drain(); }

  DrainReport drain() {
    server_.shutdown();
    if (thread_.joinable()) thread_.join();
    return report_;
  }

  Server& server() { return server_; }
  const std::string& endpoint() const { return server_.endpoint(); }

 private:
  Server server_;
  std::thread thread_;
  DrainReport report_;
};

/// A cheap feasible request: scalar product, u=3, p=3.
std::string scalar_request(std::int64_t id, const char* action) {
  return std::string("{\"id\":") + std::to_string(id) + ",\"action\":\"" + action +
         "\",\"kernel\":\"scalar\",\"u\":3,\"p\":3}";
}

const JsonValue* find_or_null(const JsonValue& doc, const char* key) {
  return doc.is_object() ? doc.find(key) : nullptr;
}

std::string error_code(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* error = find_or_null(doc, "error");
  if (error == nullptr || !error->is_object()) return "";
  const JsonValue* code = error->find("code");
  return code != nullptr && code->is_string() ? code->string_v : "";
}

bool response_ok(const std::string& response) {
  const JsonValue doc = json_parse(response);
  const JsonValue* ok = find_or_null(doc, "ok");
  return ok != nullptr && ok->is_bool() && ok->bool_v;
}

TEST(ServeEndpointTest, ParsesUnixAndTcpSpecs) {
  const Endpoint u = parse_endpoint("unix:/tmp/x.sock");
  EXPECT_TRUE(u.is_unix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.to_string(), "unix:/tmp/x.sock");
  const Endpoint t = parse_endpoint("tcp:8080");
  EXPECT_FALSE(t.is_unix);
  EXPECT_EQ(t.port, 8080);
  EXPECT_THROW(parse_endpoint("http:80"), Error);
  EXPECT_THROW(parse_endpoint("tcp:notaport"), Error);
  EXPECT_THROW(parse_endpoint("tcp:70000"), Error);
  EXPECT_THROW(parse_endpoint("unix:"), Error);
}

TEST(ServeProtocolTest, RequestLineRoundTripsThroughTheParser) {
  pipeline::PlanCache cache(4);
  const ServeContext context{cache, {}, {}};
  ActionParams params;
  params.request.kernel = pipeline::KernelSpec{"scalar", 3, 3, 3, 0};
  params.request.p = 3;
  params.seed = 7;
  const std::string response =
      handle_line(context, request_line(42, "simulate", params));
  EXPECT_TRUE(response_ok(response)) << response;
  const JsonValue doc = json_parse(response);
  EXPECT_EQ(find_or_null(doc, "id")->int_v, 42);
  EXPECT_EQ(find_or_null(doc, "action")->string_v, "simulate");
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ServeProtocolTest, StrictErrorsAreStructuredAndTyped) {
  pipeline::PlanCache cache(4);
  const ServeContext context{cache, {}, {}};
  struct Case {
    const char* line;
    const char* code;
  };
  const std::vector<Case> cases = {
      {"{not json", "parse_error"},
      {"[1,2,3]", "parse_error"},  // not an object
      {"{\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":1e999}", "parse_error"},
      {"{\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":1e9}", "bad_request"},
      {"{\"id\":1}", "bad_request"},  // missing action
      {"{\"id\":1,\"action\":\"frobnicate\"}", "bad_request"},
      {"{\"id\":1,\"action\":\"test-stall\"}", "bad_request"},  // hidden w/o hook
      {"{\"id\":1,\"action\":\"simulate\",\"kernel\":\"nope\"}", "bad_request"},
      {"{\"id\":1,\"action\":\"simulate\",\"kernel\":\"scalar\",\"u\":0}", "bad_request"},
      {"{\"id\":1,\"action\":\"simulate\",\"kernel\":\"scalar\",\"bogus\":1}", "bad_request"},
      {"{\"id\":1,\"action\":\"simulate\",\"u\":\"three\"}", "bad_request"},
      {"{\"id\":1,\"action\":\"stats\",\"kernel\":\"scalar\"}", "bad_request"},
      {"{\"id\":1,\"action\":\"fault-campaign\",\"kernel\":\"scalar\",\"u\":3,\"p\":3,"
       "\"fault_rates\":[2.0]}",
       "bad_request"},
  };
  for (const Case& c : cases) {
    const std::string response = handle_line(context, c.line);
    EXPECT_TRUE(json_valid(response)) << c.line;
    EXPECT_FALSE(response_ok(response)) << c.line;
    EXPECT_EQ(error_code(response), c.code) << c.line << "\n" << response;
  }
  // Nothing malformed ever reached composition.
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ServeProtocolTest, InvalidUtf8IsAParseError) {
  pipeline::PlanCache cache(4);
  const ServeContext context{cache, {}, {}};
  std::string line = "{\"id\":1,\"action\":\"";
  line += static_cast<char>(0xFF);  // no UTF-8 lead byte is 0xFF
  line += "\"}";
  const std::string response = handle_line(context, line);
  EXPECT_EQ(error_code(response), "parse_error") << response;
  // Overlong encoding of '/' (0xC0 0xAF) must be rejected too.
  std::string overlong = "{\"id\":1,\"action\":\"";
  overlong += static_cast<char>(0xC0);
  overlong += static_cast<char>(0xAF);
  overlong += "\"}";
  EXPECT_EQ(error_code(handle_line(context, overlong)), "parse_error");
}

TEST(ServeProtocolTest, TiledActionServesACheckedGrid) {
  pipeline::PlanCache cache(8);
  const ServeContext context{cache, {}, {}};
  const std::string response = handle_line(
      context,
      "{\"id\":7,\"action\":\"tiled\",\"kernel\":\"matmul\",\"u\":5,\"p\":3,"
      "\"tile_m\":2,\"tile_n\":2,\"tile_k\":2}");
  ASSERT_TRUE(response_ok(response)) << response;
  const JsonValue doc = json_parse(response);
  const JsonValue* result = find_or_null(doc, "result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("tiles_total")->int_v, 27);
  EXPECT_EQ(result->find("tiles_executed")->int_v, 27);
  EXPECT_TRUE(result->find("correct")->bool_v) << response;
  const JsonValue* tile = result->find("tile");
  ASSERT_NE(tile, nullptr);
  EXPECT_EQ(tile->find("grid_m")->int_v, 3);
  EXPECT_EQ(tile->find("shapes")->int_v, 8);
  // One composition per distinct tile shape, not per tile.
  EXPECT_EQ(cache.stats().misses, 8u);
}

TEST(ServeProtocolTest, TiledBadRequestsAreStructured) {
  pipeline::PlanCache cache(4);
  const ServeContext context{cache, {}, {}};
  for (const char* line : {
           // Tiled without any tile knobs is rejected at parse time.
           "{\"id\":1,\"action\":\"tiled\",\"kernel\":\"matmul\",\"u\":4,\"p\":3}",
           // tile_m out of range.
           "{\"id\":1,\"action\":\"tiled\",\"kernel\":\"matmul\",\"u\":4,\"p\":3,"
           "\"tile_m\":0}",
           // Tile knobs only make sense on batch-like actions.
           "{\"id\":1,\"action\":\"simulate\",\"kernel\":\"matmul\",\"u\":4,\"p\":3,"
           "\"tile_m\":2}",
           // Non-tileable kernel: the pipeline's typed precondition error
           // surfaces as a structured bad_request.
           "{\"id\":1,\"action\":\"tiled\",\"kernel\":\"conv\",\"u\":4,\"v\":3,\"p\":3,"
           "\"tile_m\":2}",
           // Tile larger than the instance, same path.
           "{\"id\":1,\"action\":\"tiled\",\"kernel\":\"matmul\",\"u\":4,\"p\":3,"
           "\"tile_m\":9}",
       }) {
    const std::string response = handle_line(context, line);
    EXPECT_TRUE(json_valid(response)) << line;
    EXPECT_FALSE(response_ok(response)) << line << "\n" << response;
    EXPECT_EQ(error_code(response), "bad_request") << line << "\n" << response;
  }
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ServeProtocolTest, StatsReportsResidentBytesPerEntry) {
  pipeline::PlanCache cache(8);
  const ServeContext context{cache, {}, {}};
  ASSERT_TRUE(response_ok(handle_line(context, scalar_request(1, "simulate"))));
  const std::string response = handle_line(context, "{\"id\":2,\"action\":\"stats\"}");
  ASSERT_TRUE(response_ok(response)) << response;
  const JsonValue doc = json_parse(response);
  const JsonValue* plan_cache = find_or_null(doc, "result")->find("plan_cache");
  ASSERT_NE(plan_cache, nullptr);
  const JsonValue* resident = plan_cache->find("resident_bytes");
  ASSERT_NE(resident, nullptr);
  EXPECT_GT(resident->int_v, 0);
  const JsonValue* entries = plan_cache->find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_EQ(entries->array_v.size(), 1u);
  const JsonValue& entry = entries->array_v[0];
  EXPECT_FALSE(entry.find("key")->string_v.empty());
  EXPECT_EQ(entry.find("bytes")->int_v, resident->int_v);
}

TEST(ServeServerTest, ServesConcurrentClientsOverUnixSocket) {
  const std::string path = temp_socket_path("concurrent");
  pipeline::PlanCache cache(8);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 4;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<std::thread> threads;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      client.connect(daemon.endpoint());
      for (int r = 0; r < kRequests; ++r) {
        const std::string response =
            client.roundtrip(scalar_request(c * kRequests + r, "simulate"));
        if (response_ok(response)) ++ok_counts[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(ok_counts[c], kRequests);

  // Shared-cache semantics: 32 identical requests from 4 clients
  // composed the plan exactly once.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(kClients * kRequests - 1));

  const DrainReport report = daemon.drain();
  EXPECT_EQ(report.leaked_plans, 0u);
  EXPECT_EQ(report.stats.served_ok, static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(report.stats.served_error, 0u);
}

TEST(ServeServerTest, TcpEphemeralPortIsReportedAndServes) {
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "tcp:0";
  config.workers = 1;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));
  ASSERT_NE(daemon.endpoint(), "tcp:0");  // rewritten to the bound port

  Client client;
  client.connect(daemon.endpoint());
  const std::string response = client.roundtrip("{\"id\":1,\"action\":\"stats\"}");
  EXPECT_TRUE(response_ok(response)) << response;
}

TEST(ServeServerTest, OversizedLineRejectsAndResyncs) {
  const std::string path = temp_socket_path("oversized");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.max_line_bytes = 128;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  const std::string huge = "{\"id\":9,\"pad\":\"" + std::string(4096, 'x') + "\"}";
  const std::string rejected = client.roundtrip(huge);
  EXPECT_EQ(error_code(rejected), "oversized") << rejected;
  // The connection resynchronizes at the next newline: the following
  // request on the same socket is served normally.
  const std::string response = client.roundtrip("{\"id\":10,\"action\":\"stats\"}");
  EXPECT_TRUE(response_ok(response)) << response;
  EXPECT_GE(daemon.server().stats().rejected_oversized, 1u);
}

TEST(ServeServerTest, BoundedQueueRejectsWithOverloaded) {
  const std::string path = temp_socket_path("overload");
  pipeline::PlanCache cache(4);
  Gate started;
  Gate release;
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.max_queue = 1;
  config.cache = &cache;
  config.test_stall = [&] {
    started.release();
    release.acquire();
  };
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  // #1 occupies the single worker (held on the gate), #2 fills the
  // single queue slot, so #3 must be rejected at admission.
  client.send_line("{\"id\":1,\"action\":\"test-stall\"}");
  started.acquire();
  client.send_line("{\"id\":2,\"action\":\"test-stall\"}");
  while (daemon.server().stats().in_flight < 2) std::this_thread::yield();
  client.send_line("{\"id\":3,\"action\":\"stats\"}");
  std::string response;
  ASSERT_TRUE(client.recv_line(&response));
  EXPECT_EQ(error_code(response), "overloaded") << response;
  const JsonValue doc = json_parse(response);
  EXPECT_EQ(find_or_null(doc, "id")->int_v, 3);  // rejection keeps the id

  release.release(2);
  ASSERT_TRUE(client.recv_line(&response));
  EXPECT_TRUE(response_ok(response)) << response;
  ASSERT_TRUE(client.recv_line(&response));
  EXPECT_TRUE(response_ok(response)) << response;
  EXPECT_EQ(daemon.server().stats().rejected_overloaded, 1u);
}

TEST(ServeServerTest, StatsCountersAreMonotone) {
  const std::string path = temp_socket_path("stats");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  auto snapshot = [&] { return daemon.server().stats(); };
  ServerStats before = snapshot();
  for (int i = 0; i < 5; ++i) {
    const std::string response = client.roundtrip(scalar_request(i, "simulate"));
    EXPECT_TRUE(response_ok(response));
    const ServerStats after = snapshot();
    EXPECT_GE(after.requests, before.requests);
    EXPECT_GE(after.served_ok, before.served_ok);
    EXPECT_GE(after.served_error, before.served_error);
    EXPECT_GE(after.rejected_overloaded, before.rejected_overloaded);
    EXPECT_GE(after.rejected_oversized, before.rejected_oversized);
    EXPECT_GE(after.connections, before.connections);
    before = after;
  }
  EXPECT_GE(before.served_ok, 5u);

  // The served stats document agrees with the live counters' shape.
  const std::string response = client.roundtrip("{\"id\":99,\"action\":\"stats\"}");
  ASSERT_TRUE(response_ok(response)) << response;
  const JsonValue doc = json_parse(response);
  const JsonValue* result = find_or_null(doc, "result");
  ASSERT_NE(result, nullptr);
  const JsonValue* server = result->find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->find("served_ok")->int_v, 5);
  const JsonValue* plan_cache = result->find("plan_cache");
  ASSERT_NE(plan_cache, nullptr);
  EXPECT_EQ(plan_cache->find("misses")->int_v, 1);
}

TEST(ServeServerTest, TwoClientsOneCompositionExactlyOneMiss) {
  const std::string path = temp_socket_path("onemiss");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client a;
  Client b;
  a.connect(daemon.endpoint());
  b.connect(daemon.endpoint());
  // The same canonical key from two connections at once: the cache's
  // in-flight rendezvous guarantees one composition even when both
  // miss simultaneously.
  a.send_line(scalar_request(1, "simulate"));
  b.send_line(scalar_request(2, "simulate"));
  std::string ra;
  std::string rb;
  ASSERT_TRUE(a.recv_line(&ra));
  ASSERT_TRUE(b.recv_line(&rb));
  EXPECT_TRUE(response_ok(ra)) << ra;
  EXPECT_TRUE(response_ok(rb)) << rb;
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 2u);
  EXPECT_EQ(cache.leaked_plans(), 0u);
}

// Regression for the accept loop's discarded poll result: with a
// finite accept tick the loop wakes on timeouts with NO ready fd, and
// it must treat those as idle re-arms — not index into revents of a
// descriptor poll never flagged. Connections arriving after many idle
// ticks are still accepted and served, and the drain stays clean.
TEST(ServeServerTest, FiniteAcceptPollServesLateConnections) {
  const std::string path = temp_socket_path("accepttick");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 1;
  config.accept_poll_ms = 10;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  // Let several idle poll timeouts elapse before the first connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  Client first;
  first.connect(daemon.endpoint());
  EXPECT_TRUE(response_ok(first.roundtrip("{\"id\":1,\"action\":\"stats\"}")));

  // And between connections: the listener must still be armed.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Client second;
  second.connect(daemon.endpoint());
  EXPECT_TRUE(response_ok(second.roundtrip(scalar_request(2, "simulate"))));

  const DrainReport report = daemon.drain();
  EXPECT_EQ(report.leaked_plans, 0u);
  EXPECT_EQ(report.stats.served_ok, 2u);

  ServerConfig bad;
  bad.accept_poll_ms = -5;
  EXPECT_THROW(Server{std::move(bad)}, Error);
}

// The compiled wide-lane batch path through the daemon: the served
// "result" payload is byte-identical to a one-shot handle_line run of
// the SAME request line, and it reports the compiled counters.
TEST(ServeServerTest, CompiledBatchServedMatchesOneShot) {
  const std::string path = temp_socket_path("compiledbatch");
  pipeline::PlanCache cache(4);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  const std::string request =
      "{\"id\":7,\"action\":\"batch\",\"kernel\":\"matmul\",\"u\":2,\"p\":3,\"batch\":5,"
      "\"sliced\":\"on\",\"compiled\":\"on\",\"lanes\":256}";
  Client client;
  client.connect(daemon.endpoint());
  const std::string response = client.roundtrip(request);
  ASSERT_TRUE(response_ok(response)) << response;
  const std::string served = json_member_text(response, "result");
  ASSERT_FALSE(served.empty()) << response;
  EXPECT_NE(served.find("\"correct\":true"), std::string::npos) << served;
  EXPECT_NE(served.find("\"compiled\":\"on\""), std::string::npos) << served;
  EXPECT_NE(served.find("\"lanes\":256"), std::string::npos) << served;
  EXPECT_NE(served.find("\"compiled_groups\":1"), std::string::npos) << served;
  EXPECT_NE(served.find("\"compiled_items\":5"), std::string::npos) << served;
  EXPECT_NE(served.find("\"sliced_items\":0"), std::string::npos) << served;

  // One-shot: same line through the handler directly, fresh cache.
  pipeline::PlanCache fresh(4);
  const ServeContext context{fresh, {}, {}};
  const std::string oneshot = json_member_text(handle_line(context, request), "result");
  EXPECT_EQ(served, oneshot);

  // Invalid lane widths are strict bad_request errors, not crashes.
  const std::string bad = client.roundtrip(
      "{\"id\":8,\"action\":\"batch\",\"kernel\":\"matmul\",\"u\":2,\"p\":3,\"lanes\":100}");
  EXPECT_EQ(error_code(bad), "bad_request") << bad;
}

TEST(ServeServerTest, DrainAnswersEveryAdmittedRequestThenExits) {
  const std::string path = temp_socket_path("drain");
  pipeline::PlanCache cache(8);
  ServerConfig config;
  config.listen = "unix:" + path;
  config.workers = 2;
  config.cache = &cache;
  TestDaemon daemon(std::move(config));

  Client client;
  client.connect(daemon.endpoint());
  // Pipeline a burst, then a stats marker: when the marker's response
  // arrives, every line before it has been read and admitted — so the
  // drain that follows must answer all of them.
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) client.send_line(scalar_request(i, "batch"));
  client.send_line("{\"id\":100,\"action\":\"stats\"}");
  std::vector<std::string> responses;
  std::string line;
  for (int i = 0; i < kBurst + 1; ++i) {
    ASSERT_TRUE(client.recv_line(&line));
    responses.push_back(line);
  }
  const DrainReport report = daemon.drain();
  EXPECT_EQ(report.leaked_plans, 0u);
  EXPECT_EQ(report.stats.served_ok, static_cast<std::uint64_t>(kBurst + 1));
  for (const std::string& response : responses) {
    EXPECT_TRUE(response_ok(response)) << response;
  }
  // After the drain the socket is gone: EOF for the client.
  EXPECT_FALSE(client.recv_line(&line));
}

}  // namespace
}  // namespace bitlevel::serve
